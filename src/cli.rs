//! Command-line interface mirroring the paper's flags.
//!
//! Everything runs against the simulated node (DESIGN.md §2), so the CLI
//! additionally takes `--cpu` (which simulated system) and `--freq`
//! (which P-state; real FIRESTARTER leaves P-state selection to the OS).

use crate::prelude::*;
use fs2_core::groups::format_groups;
use fs2_metrics::CsvWriter;
use fs2_tuning::Nsga2Config;
use std::fmt;

/// CLI failure, printed to stderr with exit code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// What the invocation asks for.
#[derive(Debug, Clone, PartialEq)]
enum Action {
    Help,
    Avail,
    ListMetrics,
    Measure,
    Optimize,
    Fleet,
    /// Run the fleet service on a TCP address until killed.
    Serve,
    /// Submit the fleet request to a remote `--serve` instance.
    Connect,
    /// Fit a fleet profile to a power trace (`--calibrate`).
    Calibrate,
}

/// Parsed configuration.
#[derive(Debug, Clone)]
pub struct CliConfig {
    action: Action,
    cpu: String,
    function: Option<String>,
    groups: Option<String>,
    line_count: Option<u32>,
    timeout_s: f64,
    freq_mhz: f64,
    start_delta_ms: f64,
    stop_delta_ms: f64,
    measurement: bool,
    dump_registers: bool,
    error_detection: bool,
    /// `None` keeps [`RunConfig::default`]'s iteration count.
    functional_iters: Option<u64>,
    version_emulation: String,
    gpus: u32,
    gpu_init: String,
    individuals: usize,
    generations: u32,
    nsga2_m: f64,
    preheat_s: f64,
    optimization_metrics: String,
    /// `None` keeps each action's own default (measurement seed for
    /// Measure/Optimize, the Fig. 1 fleet seed for Fleet).
    seed: Option<u64>,
    nodes: u32,
    samples_per_node: u32,
    threads: usize,
    fleet_temporal: String,
    cap_w: Option<f64>,
    budget_w: Option<f64>,
    budget_policy: String,
    prescreen: bool,
    serve_addr: Option<String>,
    connect_addr: Option<String>,
    /// Shards per fleet request (0 = one per worker).
    shards: usize,
    /// Service worker-pool size (0 = host cores).
    workers: usize,
    /// Admission wait-queue bound.
    queue_depth: usize,
    /// Admission per-request node·sample cost cap.
    max_cost: u64,
    /// Request deadline in ms (`None` = no deadline).
    deadline_ms: Option<u64>,
    /// Total `--connect` attempts, including the first.
    retries: u32,
    /// Chaos injection periods (0 = off) and schedule seed.
    chaos_panic_every: u64,
    chaos_kill_every: u64,
    chaos_drop_every: u64,
    chaos_seed: u64,
    /// Write the reply's raw sample bits here (one hex u64 per line).
    dump_samples: Option<String>,
    /// Target trace CSV for `--calibrate`.
    calibrate_trace: Option<String>,
    /// Where `--calibrate` writes the fitted profile (default stdout).
    profile_out: Option<String>,
    /// Fleet profile driving `--fleet` / `--connect` runs.
    profile: Option<String>,
    /// Write the episode run's labeled trace CSV here.
    emit_trace: Option<String>,
}

/// Default RNG seed for Measure/Optimize runs.
const DEFAULT_SEED: u64 = 0xF12E_57A2;

impl Default for CliConfig {
    fn default() -> CliConfig {
        CliConfig {
            action: Action::Measure,
            cpu: "rome".to_string(),
            function: None,
            groups: None,
            line_count: None,
            timeout_s: 10.0,
            freq_mhz: 0.0,
            start_delta_ms: 5000.0,
            stop_delta_ms: 2000.0,
            measurement: true,
            dump_registers: false,
            error_detection: false,
            functional_iters: None,
            version_emulation: "2.0".to_string(),
            gpus: 0,
            gpu_init: "device".to_string(),
            individuals: 40,
            generations: 20,
            nsga2_m: 0.35,
            preheat_s: 240.0,
            optimization_metrics: "sysfs-powercap-rapl,perf-ipc".to_string(),
            seed: None,
            nodes: 612,
            samples_per_node: 2000,
            threads: 0,
            fleet_temporal: "iid".to_string(),
            cap_w: None,
            budget_w: None,
            budget_policy: "shed".to_string(),
            prescreen: false,
            serve_addr: None,
            connect_addr: None,
            shards: 0,
            workers: 0,
            queue_depth: 64,
            max_cost: 1 << 30,
            deadline_ms: None,
            retries: 1,
            chaos_panic_every: 0,
            chaos_kill_every: 0,
            chaos_drop_every: 0,
            chaos_seed: 0,
            dump_samples: None,
            calibrate_trace: None,
            profile_out: None,
            profile: None,
            emit_trace: None,
        }
    }
}

const HELP: &str = "\
firestarter2 — FIRESTARTER 2 reproduction (simulated hardware)

USAGE: firestarter2 [OPTIONS]

WORKLOAD
  -a, --avail                     list available instruction mixes
  -i, --function NAME             select the instruction mix (I)
  --run-instruction-groups SPEC   memory accesses M, e.g. REG:4,L1_L:2,L2_L:1
  --set-line-count N              unroll factor u
  -t, --timeout SECONDS           workload duration (default 10)
  --freq MHZ                      P-state frequency (default: nominal)
  --cpu {rome|haswell|generic}    simulated system (default rome)
  --version-emulation {2.0|1.7.4} register init scheme (§III-D bug)

MEASUREMENT
  --measurement                   print metric CSV after the run (default)
  --start-delta MS                exclude window head (default 5000)
  --stop-delta MS                 exclude window tail (default 2000)
  --list-metrics                  list metric names
  --dump-registers                dump vector registers after the run
  --error-detection               compare register state across cores
  --functional-iters N            value-level (§III-D) iterations for
                                  triviality measurement and error
                                  detection (default 1500)

GPUS
  --gpus N                        attach N simulated Tesla K80 cards
  --gpu-init {device|host}        matrix initialization strategy

FLEET (Fig. 1)
  --fleet                         simulate the Taurus Haswell fleet CDF
                                  through real per-node engines
  --nodes N                       fleet size (default 612, mixed SKUs)
  --samples-per-node N            60 s means per node (default 2000)
  --threads N                     sweep threads (default 0 = all cores)
  --fleet-temporal {iid|episodes} per-node sampling: independent minutes
                                  (default) or Markov job episodes with
                                  dwell times, ramps and idle hand-backs
  --cap-w W                       what-if per-node power cap: clamp each
                                  drawn P-state to the class's highest
                                  admissible one (per-sample)
  --budget-w W                    fleet-wide power budget per 60 s tick:
                                  admit node draws in node-id order,
                                  resolve the rest via --budget-policy
  --budget-policy {shed|defer}    shed drops a denied node to its idle
                                  floor for the tick; defer pushes the
                                  episode's remaining ticks later
                                  (default shed)

FLEET SERVICE
  --serve ADDR                    run the fleet service on ADDR
                                  (e.g. 127.0.0.1:7171) until killed;
                                  JSON-lines protocol, one request per
                                  line, nc-compatible
  --connect ADDR                  submit this invocation's fleet flags
                                  to a --serve instance and print the
                                  reply like a local --fleet run
  --shards N                      shards per request (0 = one/worker)
  --workers N                     worker-pool threads (0 = host cores)
  --queue-depth N                 admission wait-queue bound before the
                                  service sheds requests (default 64)
  --max-cost N                    reject requests above N node-samples
                                  (default 2^30)
  --deadline-ms MS                request deadline: unmeetable requests
                                  are rejected at admission, overruns
                                  fail typed mid-flight
  --retries N                     total --connect attempts, with a
                                  seeded deterministic backoff between
                                  them (default 1 = no retry)
  --dump-samples PATH             write the reply's raw sample bits to
                                  PATH, one hex u64 per line

FAULT INJECTION (--serve / --fleet; off by default)
  --chaos-panic-every N           panic one shard task every Nth request
  --chaos-kill-every N            kill one pool worker every Nth request
                                  (supervision respawns it)
  --chaos-drop-every N            drop every Nth reply mid-stream and
                                  close the connection (TCP only)
  --chaos-seed N                  seeds the injection schedule; the
                                  same seed replays the same faults

FLEET CALIBRATION
  --calibrate TRACE.csv           fit a fleet profile to a per-node
                                  power trace (node,tick,power_w[,state])
                                  and print the clone-fidelity report;
                                  honours --seed, --threads,
                                  --individuals and --generations
  --profile-out PATH              write the fitted profile here
                                  (default: print it after the report)
  --profile PATH                  drive a --fleet or --connect run with
                                  a calibrated profile (forces episode
                                  mode; the profile rides the request)
  --emit-trace PATH               write the labeled per-node trace of a
                                  --fleet episode run to PATH, in the
                                  format --calibrate consumes

OPTIMIZATION (§III-C)
  --optimize=NSGA2                run the self-tuning loop
  --individuals N                 population size (default 40)
  --generations N                 generations (default 20)
  --nsga2-m P                     mutation probability (default 0.35)
  --preheat SECONDS               preheat duration (default 240)
  --prescreen                     score candidates with cached traceless
                                  evaluations first and skip the full
                                  measured run for clear losers
  --optimization-metric A,B       objective metrics
  --seed N                        RNG seed

  -h, --help                      this help
";

fn parse_kv(
    arg: &str,
    args: &mut std::slice::Iter<'_, String>,
    key: &str,
) -> Result<Option<String>, CliError> {
    if let Some(rest) = arg.strip_prefix(&format!("{key}=")) {
        return Ok(Some(rest.to_string()));
    }
    if arg == key {
        return match args.next() {
            Some(v) => Ok(Some(v.clone())),
            None => Err(err(format!("{key} requires a value"))),
        };
    }
    Ok(None)
}

/// Parses an argument list (without the program name).
pub fn parse_args(argv: &[String]) -> Result<CliConfig, CliError> {
    let mut cfg = CliConfig::default();
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let a = arg.as_str();
        match a {
            "-h" | "--help" => cfg.action = Action::Help,
            "-a" | "--avail" => cfg.action = Action::Avail,
            "--list-metrics" => cfg.action = Action::ListMetrics,
            "--fleet" => cfg.action = Action::Fleet,
            "--measurement" => cfg.measurement = true,
            "--dump-registers" => cfg.dump_registers = true,
            "--error-detection" => cfg.error_detection = true,
            "--prescreen" => cfg.prescreen = true,
            _ if a == "--optimize" || a.starts_with("--optimize=") => {
                let v = a.strip_prefix("--optimize=").unwrap_or("NSGA2");
                if !v.eq_ignore_ascii_case("nsga2") {
                    return Err(err(format!("unknown optimizer `{v}` (only NSGA2)")));
                }
                cfg.action = Action::Optimize;
            }
            _ => {
                let mut matched = false;
                macro_rules! opt {
                    ($key:expr, $slot:expr, $parse:expr) => {
                        if !matched {
                            if let Some(v) = parse_kv(a, &mut args, $key)? {
                                #[allow(clippy::redundant_closure_call)]
                                {
                                    $slot = $parse(&v).map_err(|_| {
                                        err(format!("invalid value `{v}` for {}", $key))
                                    })?;
                                }
                                matched = true;
                            }
                        }
                    };
                }
                let id = |v: &String| -> Result<String, ()> { Ok(v.clone()) };
                let some_id = |v: &String| -> Result<Option<String>, ()> { Ok(Some(v.clone())) };
                opt!("--cpu", cfg.cpu, id);
                opt!("-i", cfg.function, some_id);
                opt!("--function", cfg.function, some_id);
                opt!("--run-instruction-groups", cfg.groups, some_id);
                opt!("--set-line-count", cfg.line_count, |v: &String| v
                    .parse::<u32>()
                    .map(Some)
                    .map_err(|_| ()));
                opt!("-t", cfg.timeout_s, |v: &String| v
                    .parse::<f64>()
                    .map_err(|_| ()));
                opt!("--timeout", cfg.timeout_s, |v: &String| v
                    .parse::<f64>()
                    .map_err(|_| ()));
                opt!("--freq", cfg.freq_mhz, |v: &String| v
                    .parse::<f64>()
                    .map_err(|_| ()));
                opt!("--start-delta", cfg.start_delta_ms, |v: &String| v
                    .parse::<f64>()
                    .map_err(|_| ()));
                opt!("--stop-delta", cfg.stop_delta_ms, |v: &String| v
                    .parse::<f64>()
                    .map_err(|_| ()));
                opt!("--functional-iters", cfg.functional_iters, |v: &String| v
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| ()));
                opt!("--version-emulation", cfg.version_emulation, id);
                opt!("--gpus", cfg.gpus, |v: &String| v
                    .parse::<u32>()
                    .map_err(|_| ()));
                opt!("--gpu-init", cfg.gpu_init, id);
                opt!("--individuals", cfg.individuals, |v: &String| v
                    .parse::<usize>()
                    .map_err(|_| ()));
                opt!("--generations", cfg.generations, |v: &String| v
                    .parse::<u32>()
                    .map_err(|_| ()));
                opt!("--nsga2-m", cfg.nsga2_m, |v: &String| v
                    .parse::<f64>()
                    .map_err(|_| ()));
                opt!("--preheat", cfg.preheat_s, |v: &String| v
                    .parse::<f64>()
                    .map_err(|_| ()));
                opt!("--optimization-metric", cfg.optimization_metrics, id);
                opt!("--metric-path", cfg.optimization_metrics, id);
                opt!("--seed", cfg.seed, |v: &String| v
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| ()));
                opt!("--nodes", cfg.nodes, |v: &String| v
                    .parse::<u32>()
                    .map_err(|_| ()));
                opt!("--samples-per-node", cfg.samples_per_node, |v: &String| v
                    .parse::<u32>()
                    .map_err(|_| ()));
                opt!("--threads", cfg.threads, |v: &String| v
                    .parse::<usize>()
                    .map_err(|_| ()));
                opt!("--fleet-temporal", cfg.fleet_temporal, id);
                opt!("--cap-w", cfg.cap_w, |v: &String| v
                    .parse::<f64>()
                    .map(Some)
                    .map_err(|_| ()));
                opt!("--budget-w", cfg.budget_w, |v: &String| v
                    .parse::<f64>()
                    .map(Some)
                    .map_err(|_| ()));
                opt!("--budget-policy", cfg.budget_policy, id);
                opt!("--serve", cfg.serve_addr, some_id);
                opt!("--connect", cfg.connect_addr, some_id);
                opt!("--shards", cfg.shards, |v: &String| v
                    .parse::<usize>()
                    .map_err(|_| ()));
                opt!("--workers", cfg.workers, |v: &String| v
                    .parse::<usize>()
                    .map_err(|_| ()));
                opt!("--queue-depth", cfg.queue_depth, |v: &String| v
                    .parse::<usize>()
                    .map_err(|_| ()));
                opt!("--max-cost", cfg.max_cost, |v: &String| v
                    .parse::<u64>()
                    .map_err(|_| ()));
                opt!("--deadline-ms", cfg.deadline_ms, |v: &String| v
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| ()));
                opt!("--retries", cfg.retries, |v: &String| v
                    .parse::<u32>()
                    .map_err(|_| ()));
                opt!(
                    "--chaos-panic-every",
                    cfg.chaos_panic_every,
                    |v: &String| v.parse::<u64>().map_err(|_| ())
                );
                opt!("--chaos-kill-every", cfg.chaos_kill_every, |v: &String| v
                    .parse::<u64>()
                    .map_err(|_| ()));
                opt!("--chaos-drop-every", cfg.chaos_drop_every, |v: &String| v
                    .parse::<u64>()
                    .map_err(|_| ()));
                opt!("--chaos-seed", cfg.chaos_seed, |v: &String| v
                    .parse::<u64>()
                    .map_err(|_| ()));
                opt!("--dump-samples", cfg.dump_samples, some_id);
                opt!("--calibrate", cfg.calibrate_trace, some_id);
                opt!("--profile-out", cfg.profile_out, some_id);
                opt!("--profile", cfg.profile, some_id);
                opt!("--emit-trace", cfg.emit_trace, some_id);
                if !matched {
                    return Err(err(format!("unknown argument `{a}` (see --help)")));
                }
            }
        }
    }
    // Validated here so both Measure and Optimize reject it instead of
    // tripping the payload builder's assert.
    if cfg.line_count == Some(0) {
        return Err(err("--set-line-count must be at least 1"));
    }
    if cfg.functional_iters == Some(0) {
        return Err(err("--functional-iters must be at least 1"));
    }
    if cfg.nodes == 0 {
        return Err(err("--nodes must be at least 1"));
    }
    if cfg.samples_per_node == 0 {
        return Err(err("--samples-per-node must be at least 1"));
    }
    if let Some(cap) = cfg.cap_w {
        if cap <= 0.0 || !cap.is_finite() {
            return Err(err("--cap-w must be a positive wattage"));
        }
    }
    if let Some(b) = cfg.budget_w {
        if b <= 0.0 || !b.is_finite() {
            return Err(err("--budget-w must be a positive wattage"));
        }
    }
    if cfg.max_cost == 0 {
        return Err(err("--max-cost must be at least 1"));
    }
    if cfg.deadline_ms == Some(0) {
        return Err(err("--deadline-ms must be at least 1"));
    }
    if cfg.retries == 0 {
        return Err(err("--retries must be at least 1 (the first attempt)"));
    }
    let chaos_on =
        cfg.chaos_panic_every > 0 || cfg.chaos_kill_every > 0 || cfg.chaos_drop_every > 0;
    if chaos_on && cfg.connect_addr.is_some() {
        return Err(err(
            "chaos injection lives server-side (use --serve or --fleet, not --connect)",
        ));
    }
    if cfg.serve_addr.is_some() && cfg.connect_addr.is_some() {
        return Err(err("--serve and --connect are mutually exclusive"));
    }
    if cfg.calibrate_trace.is_some() && (cfg.serve_addr.is_some() || cfg.connect_addr.is_some()) {
        return Err(err("--calibrate runs locally (drop --serve/--connect)"));
    }
    if cfg.profile_out.is_some() && cfg.calibrate_trace.is_none() {
        return Err(err("--profile-out needs --calibrate"));
    }
    if cfg.action != Action::Help {
        if cfg.calibrate_trace.is_some() {
            cfg.action = Action::Calibrate;
        } else if cfg.serve_addr.is_some() {
            cfg.action = Action::Serve;
        } else if cfg.connect_addr.is_some() {
            cfg.action = Action::Connect;
        }
    }
    if cfg.emit_trace.is_some() && cfg.action != Action::Fleet {
        return Err(err("--emit-trace needs a local --fleet run"));
    }
    Ok(cfg)
}

fn sku_for(cfg: &CliConfig) -> Result<Sku, CliError> {
    match cfg.cpu.to_ascii_lowercase().as_str() {
        "rome" | "epyc" | "zen2" => Ok(Sku::amd_epyc_7502()),
        "haswell" | "xeon" => Ok(Sku::intel_xeon_e5_2680_v3()),
        "generic" => Ok(Sku::generic()),
        other => Err(err(format!("unknown --cpu `{other}`"))),
    }
}

/// Executes a parsed configuration, returning the program output.
pub fn execute(cfg: &CliConfig) -> Result<String, CliError> {
    match cfg.action {
        Action::Help => Ok(HELP.to_string()),
        Action::Avail => {
            let sku = sku_for(cfg)?;
            let mut out = format!(
                "Available functions for {} ({}):\n",
                sku.name,
                sku.uarch.name()
            );
            for (i, m) in MixRegistry::available_for(sku.uarch).iter().enumerate() {
                out.push_str(&format!(
                    "  {} | {:5} | {}{}\n",
                    i + 1,
                    m.name,
                    m.description,
                    if i == 0 { "  (default)" } else { "" }
                ));
            }
            Ok(out)
        }
        Action::ListMetrics => Ok("\
Available metrics:
  sysfs-powercap-rapl   node power via RAPL energy counters [W]
  perf-ipc              instructions per cycle via perf events
  ipc-estimate          IPC from loop counts at assumed frequency
  metricq               buffered external power meter (LMG95 via MetricQ) [W]
"
        .to_string()),
        Action::Measure => run_measure(cfg),
        Action::Optimize => run_optimize(cfg),
        Action::Fleet => run_fleet(cfg),
        Action::Serve => run_serve(cfg),
        Action::Connect => run_connect(cfg),
        Action::Calibrate => run_calibrate(cfg),
    }
}

/// Loads the `--profile` file into the request's profile slot.
fn profile_from_cli(cfg: &CliConfig) -> Result<Option<fs2_calib::FleetProfile>, CliError> {
    match &cfg.profile {
        None => Ok(None),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| err(format!("--profile {path}: {e}")))?;
            fs2_calib::FleetProfile::from_text(&text)
                .map(Some)
                .map_err(|e| err(format!("--profile {path}: {e}")))
        }
    }
}

/// Expands the fleet flags into a service request (shared by the
/// local `--fleet` broker path and the remote `--connect` path).
fn fleet_request_from_cli(cfg: &CliConfig) -> Result<fs2_service::FleetRequest, CliError> {
    use fs2_cluster::{BudgetPolicy, TemporalMode};

    let temporal = match cfg.fleet_temporal.to_ascii_lowercase().as_str() {
        "iid" => TemporalMode::Iid,
        "episodes" => TemporalMode::Episodes,
        other => {
            return Err(err(format!(
                "unknown --fleet-temporal `{other}` (iid or episodes)"
            )))
        }
    };
    let budget_policy = match cfg.budget_policy.to_ascii_lowercase().as_str() {
        "shed" | "shed-to-floor" => BudgetPolicy::ShedToFloor,
        "defer" => BudgetPolicy::Defer,
        other => {
            return Err(err(format!(
                "unknown --budget-policy `{other}` (shed or defer)"
            )))
        }
    };
    Ok(fs2_service::FleetRequest {
        nodes: cfg.nodes,
        samples_per_node: cfg.samples_per_node,
        // Without an explicit --seed the request matches the
        // fig01/example pipeline exactly (the Fig. 1 seed).
        seed: cfg.seed,
        temporal,
        threads: cfg.threads,
        power_cap_w: cfg.cap_w,
        budget_w: cfg.budget_w,
        budget_policy,
        shards: (cfg.shards > 0).then_some(cfg.shards),
        want_samples: true,
        want_cdf: false,
        profile: profile_from_cli(cfg)?,
        deadline_ms: cfg.deadline_ms,
    })
}

fn service_config_from_cli(cfg: &CliConfig) -> fs2_service::ServiceConfig {
    fs2_service::ServiceConfig {
        workers: cfg.workers,
        default_shards: cfg.shards,
        admission: fs2_service::AdmissionConfig {
            max_queue: cfg.queue_depth,
            max_request_cost: cfg.max_cost,
            ..fs2_service::AdmissionConfig::default()
        },
        chaos: fs2_service::ChaosConfig {
            seed: cfg.chaos_seed,
            panic_every: cfg.chaos_panic_every,
            kill_every: cfg.chaos_kill_every,
            drop_reply_every: cfg.chaos_drop_every,
            ..fs2_service::ChaosConfig::default()
        },
    }
}

fn write_sample_bits(path: &str, samples: &[f64]) -> Result<(), CliError> {
    let mut text = String::with_capacity(samples.len() * 17);
    for s in samples {
        text.push_str(&format!("{:016x}\n", s.to_bits()));
    }
    std::fs::write(path, text).map_err(|e| err(format!("--dump-samples {path}: {e}")))
}

/// Renders a service reply exactly like the historical one-shot
/// `--fleet` output (the CDF is recomputed client-side from the
/// returned samples, so local and served runs print the same bytes).
fn print_fleet_reply(
    cfg: &CliConfig,
    req: &fs2_service::FleetRequest,
    reply: &fs2_service::FleetReply,
) -> Result<String, CliError> {
    use fs2_cluster::{FleetConfig, PowerCdf};

    if !reply.ok {
        let kind = reply
            .error_kind
            .as_deref()
            .map(|k| format!(" [{k}]"))
            .unwrap_or_default();
        return Err(err(format!(
            "fleet service{kind}: {}",
            reply.error.as_deref().unwrap_or("unspecified failure")
        )));
    }
    let fleet_cfg = FleetConfig::taurus_haswell_scaled(cfg.nodes);
    let cdf = PowerCdf::from_samples(&reply.samples, 0.1);

    let mut out = String::new();
    out.push_str(&format!(
        "FIRESTARTER 2 reproduction — fleet of {} nodes ({} SKU groups)\n",
        fleet_cfg.total_nodes(),
        fleet_cfg.groups.len()
    ));
    for group in &fleet_cfg.groups {
        out.push_str(&format!("  {:>4} x {}\n", group.nodes, group.sku.name));
    }
    if let Some(p) = &req.profile {
        out.push_str(&format!(
            "  calibrated profile `{}`: floor share {:.1} %, {} job classes\n",
            p.name,
            p.floor_share * 100.0,
            p.classes.len()
        ));
    }
    out.push_str(&format!(
        "  {} 60 s-mean samples via {} engines: {} payloads built, {} operating points\n",
        cdf.samples, reply.registry.engines, reply.registry.payload_misses, reply.power_points
    ));
    out.push_str(&format!(
        "  exec caches: decoded-kernel {}/{} hits, ExecStats {}/{} hits\n",
        reply.registry.decoded_hits,
        reply.registry.decoded_hits + reply.registry.decoded_misses,
        reply.registry.exec_hits,
        reply.registry.exec_hits + reply.registry.exec_misses,
    ));
    out.push_str(&format!(
        "  tuner pre-screen: {} scored, {} pruned (rate {:.2})\n",
        reply.registry.prescreen_evals,
        reply.registry.prescreen_pruned,
        reply.registry.prescreen_prune_rate(),
    ));
    // Quiet on a healthy service so local and served runs print the
    // same bytes; only faults surface the supervision ledger.
    if let Some(pool) = &reply.pool {
        if pool.panics_caught > 0 || pool.workers_respawned > 0 {
            out.push_str(&format!(
                "  supervision: {} shard panics caught, {} workers respawned\n",
                pool.panics_caught, pool.workers_respawned
            ));
        }
    }
    if let Some(cap) = cfg.cap_w {
        out.push_str(&format!(
            "  power cap {cap:.1} W: {} of {} drawn samples clamped to lower P-states \
             ({} remap-table cells)\n",
            reply.capped_samples,
            reply.samples.len(),
            reply.capped_points
        ));
        if reply.infeasible_points > 0 {
            out.push_str(&format!(
                "  warning: {} operating points exceed the cap even at their class's \
                 lowest-power P-state (cap infeasible for those classes)\n",
                reply.infeasible_points
            ));
        }
    }
    if let Some(stats) = &reply.budget {
        out.push_str(&format!(
            "  budget {:.0} W ({}): peak fleet draw {:.0} W, mean {:.0} W, \
             p95 utilization {:.1} %\n",
            stats.budget_w,
            stats.policy,
            stats.peak_fleet_w,
            stats.mean_fleet_w,
            stats.util_p95 * 100.0
        ));
        let shed: u64 = stats.shed_ticks.iter().sum();
        let deferred: u64 = stats.deferred_ticks.iter().sum();
        out.push_str(&format!(
            "  budget denials: {shed} node-ticks shed, {deferred} deferred, \
             {} proposals truncated past the horizon\n",
            stats.truncated_proposals
        ));
        let denials = if shed > 0 {
            &stats.shed_ticks
        } else {
            &stats.deferred_ticks
        };
        if shed + deferred > 0 {
            out.push_str("  denied per state:");
            for (state, &n) in stats.states.iter().zip(denials.iter()) {
                if n > 0 {
                    out.push_str(&format!(" {state} {n}"));
                }
            }
            out.push('\n');
        }
        if stats.infeasible_floor_ticks > 0 {
            out.push_str(&format!(
                "  warning: {} ticks where idle floors alone exceed the budget \
                 (budget infeasible without powering nodes off)\n",
                stats.infeasible_floor_ticks
            ));
        }
    }
    if let Some(stats) = &reply.episodes {
        out.push_str(&format!(
            "  episodes: lag-1 autocorr {:.3}; time shares",
            stats.lag1_autocorr
        ));
        for ((state, &got), &want) in stats
            .states
            .iter()
            .zip(&stats.empirical_shares)
            .zip(&stats.model_shares)
        {
            out.push_str(&format!(
                " {state} {:.1}% (model {:.1}%)",
                got * 100.0,
                want * 100.0
            ));
        }
        out.push('\n');
        out.push_str("  mean dwell [min]:");
        for (state, &d) in stats.states.iter().zip(&stats.mean_dwell_ticks) {
            out.push_str(&format!(" {state} {d:.1}"));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "  range {:.1} .. {:.1} W; {:.1} % at or below 100 W; median {:.1} W, p95 {:.1} W\n",
        cdf.min_w,
        cdf.max_w,
        cdf.fraction_at(100.0) * 100.0,
        cdf.quantile(0.5),
        cdf.quantile(0.95)
    ));
    let mut csv = CsvWriter::new();
    csv.header(&["power_w", "cumulative_fraction"]);
    for w in (40..=360).step_by(20) {
        csv.row(&[
            format!("{w}"),
            format!("{:.4}", cdf.fraction_at(f64::from(w))),
        ]);
    }
    out.push_str(csv.as_str());
    Ok(out)
}

/// One-shot `--fleet`: a thin client of the in-process broker over a
/// fresh service instance (the full request → admission → shard →
/// engine stack, minus the socket).
fn run_fleet(cfg: &CliConfig) -> Result<String, CliError> {
    use std::sync::Arc;

    let req = fleet_request_from_cli(cfg)?;
    let service = Arc::new(fs2_service::FleetService::new(service_config_from_cli(cfg)));
    let broker = fs2_service::Broker::new(service, 1);
    let line = broker
        .call(req.to_line())
        .ok_or_else(|| err("fleet broker shut down mid-request"))?;
    let reply = fs2_service::FleetReply::from_line(&line).map_err(|e| err(e.to_string()))?;
    if reply.ok {
        if let Some(path) = &cfg.dump_samples {
            write_sample_bits(path, &reply.samples)?;
        }
        if let Some(path) = &cfg.emit_trace {
            use fs2_cluster::TemporalMode;
            let fleet_cfg = req.to_config();
            if fleet_cfg.temporal != TemporalMode::Episodes {
                return Err(err(
                    "--emit-trace needs --fleet-temporal episodes or --profile \
                     (i.i.d. minutes carry no episode labels)",
                ));
            }
            let trace = fs2_calib::Trace::from_fleet(&fleet_cfg, &reply.samples);
            std::fs::write(path, trace.to_csv())
                .map_err(|e| err(format!("--emit-trace {path}: {e}")))?;
        }
    }
    print_fleet_reply(cfg, &req, &reply)
}

fn run_serve(cfg: &CliConfig) -> Result<String, CliError> {
    use std::sync::Arc;

    let addr = cfg
        .serve_addr
        .as_deref()
        .expect("Serve action implies --serve");
    let service = Arc::new(fs2_service::FleetService::new(service_config_from_cli(cfg)));
    let server =
        fs2_service::serve(service, addr).map_err(|e| err(format!("--serve {addr}: {e}")))?;
    // Announce readiness on stdout (smoke tests poll for this), then
    // serve until the process is killed.
    println!("fleet service listening on {}", server.local_addr());
    loop {
        std::thread::park();
    }
}

fn run_connect(cfg: &CliConfig) -> Result<String, CliError> {
    let addr = cfg
        .connect_addr
        .as_deref()
        .expect("Connect action implies --connect");
    let req = fleet_request_from_cli(cfg)?;
    // Retry on transport failures AND on transient typed failures
    // (an injected/real shard panic is gone by the next attempt).
    // ClientError's Display says *which* transport failure was hit — a
    // stalled server ("timed out …") reads differently from a vanished
    // one ("connection closed before a reply arrived").
    let policy = fs2_service::RetryPolicy {
        attempts: cfg.retries,
        ..fs2_service::RetryPolicy::default()
    };
    let attempts = policy.attempts.max(1);
    let suffix = || {
        if cfg.retries > 1 {
            format!(" after {} attempts", cfg.retries)
        } else {
            String::new()
        }
    };
    let mut line = None;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                policy.backoff_ms(attempt - 1),
            ));
        }
        match fs2_service::call(addr, &req.to_line()) {
            Ok(got) => {
                let transient = fs2_service::FleetReply::from_line(&got)
                    .map(|r| {
                        !r.ok
                            && r.error_kind.as_deref()
                                == Some(fs2_service::proto::kind::SHARD_PANIC)
                    })
                    .unwrap_or(false);
                line = Some(got);
                if !transient {
                    break;
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    let line = match (line, last_err) {
        (Some(line), _) => line,
        (None, Some(e)) => return Err(err(format!("--connect {addr}{}: {e}", suffix()))),
        (None, None) => return Err(err(format!("--connect {addr}: no attempts made"))),
    };
    let reply = fs2_service::FleetReply::from_line(&line).map_err(|e| err(e.to_string()))?;
    if let Some(path) = &cfg.dump_samples {
        if reply.ok {
            write_sample_bits(path, &reply.samples)?;
        }
    }
    print_fleet_reply(cfg, &req, &reply)
}

/// `--calibrate TRACE.csv`: fit a fleet profile to the trace and
/// report the clone fidelity (ISSUE: trace-driven fleet cloning).
fn run_calibrate(cfg: &CliConfig) -> Result<String, CliError> {
    use fs2_calib::{calibrate, CalibConfig, Trace};

    let path = cfg
        .calibrate_trace
        .as_deref()
        .expect("Calibrate action implies --calibrate");
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("--calibrate {path}: {e}")))?;
    let trace = Trace::from_csv(&text).map_err(|e| err(format!("--calibrate {path}: {e}")))?;
    let defaults = CalibConfig::default();
    let calib_cfg = CalibConfig {
        seed: cfg.seed.unwrap_or(defaults.seed),
        threads: cfg.threads,
        individuals: cfg.individuals,
        generations: cfg.generations,
        ..defaults
    };
    let result =
        calibrate(&trace, &calib_cfg).map_err(|e| err(format!("--calibrate {path}: {e}")))?;

    let mut out = String::new();
    out.push_str(&format!(
        "calibrated {path}: {} nodes x {} total ticks ({}), {} evaluations \
         ({} duplicate-genome hits)\n\n",
        trace.nodes().len(),
        trace.n_ticks(),
        if trace.is_labeled() {
            "state-labeled"
        } else {
            "power-only"
        },
        result.evaluations,
        result.nsga_cache_hits
    ));
    out.push_str(&result.report.render());
    match &cfg.profile_out {
        Some(dest) => {
            std::fs::write(dest, result.profile.to_text())
                .map_err(|e| err(format!("--profile-out {dest}: {e}")))?;
            out.push_str(&format!("\nfitted profile written to {dest}\n"));
        }
        None => {
            out.push_str("\nfitted profile:\n");
            out.push_str(&result.profile.to_text());
        }
    }
    Ok(out)
}

fn workload_from_cli(cfg: &CliConfig, sku: &Sku) -> Result<PayloadConfig, CliError> {
    let mix = match &cfg.function {
        Some(name) => MixRegistry::by_name(sku.uarch, name)
            .ok_or_else(|| err(format!("unknown function `{name}` (see --avail)")))?,
        None => MixRegistry::default_for(sku.uarch),
    };
    let groups = match &cfg.groups {
        Some(s) => parse_groups(s).map_err(|e| err(format!("--run-instruction-groups: {e}")))?,
        None => parse_groups("REG:1").expect("static default"),
    };
    let unroll = cfg
        .line_count
        .unwrap_or_else(|| default_unroll(sku, mix, &groups));
    Ok(PayloadConfig {
        mix,
        groups,
        unroll,
    })
}

fn init_scheme(cfg: &CliConfig) -> Result<InitScheme, CliError> {
    match cfg.version_emulation.as_str() {
        "2.0" | "2" => Ok(InitScheme::V2Safe),
        "1.7.4" => Ok(InitScheme::V174Buggy),
        other => Err(err(format!("unknown --version-emulation `{other}`"))),
    }
}

fn gpu_power(cfg: &CliConfig, duration_s: f64) -> Result<f64, CliError> {
    if cfg.gpus == 0 {
        return Ok(0.0);
    }
    let strategy = match cfg.gpu_init.as_str() {
        "device" => InitStrategy::OnDevice,
        "host" => InitStrategy::HostThenTransfer,
        other => return Err(err(format!("unknown --gpu-init `{other}`"))),
    };
    let stress = GpuStress {
        devices: (0..cfg.gpus)
            .map(|_| fs2_gpu::GpuDevice::new(fs2_gpu::device::GpuSpec::k80()))
            .collect(),
        strategy,
        mem_fraction: 0.9,
    };
    Ok(stress.run(duration_s).avg_power_w)
}

fn run_measure(cfg: &CliConfig) -> Result<String, CliError> {
    let sku = sku_for(cfg)?;
    let workload = workload_from_cli(cfg, &sku)?;
    let external_w = gpu_power(cfg, cfg.timeout_s)?;
    let engine = Engine::with_seed(sku, cfg.seed.unwrap_or(DEFAULT_SEED));
    let payload = engine.payload(&workload);
    let run_cfg = RunConfig {
        freq_mhz: cfg.freq_mhz,
        duration_s: cfg.timeout_s,
        start_delta_s: (cfg.start_delta_ms / 1000.0).min(cfg.timeout_s / 2.0),
        stop_delta_s: (cfg.stop_delta_ms / 1000.0).min(cfg.timeout_s / 4.0),
        init: init_scheme(cfg)?,
        error_detection: cfg.error_detection,
        dump_registers: cfg.dump_registers,
        functional_iters: cfg
            .functional_iters
            .unwrap_or(RunConfig::default().functional_iters),
        external_w,
        ..RunConfig::default()
    };
    // Session::run goes through the engine's payload / decoded-kernel /
    // ExecStats cache tiers (not that a one-shot CLI run repeats much —
    // but it keeps the CLI on the same path the experiments use).
    let r = engine.session().run(&workload, &run_cfg);

    let mut out = String::new();
    out.push_str(&format!(
        "FIRESTARTER 2 reproduction — workload {}\n",
        payload.kernel.name
    ));
    out.push_str(&format!(
        "  requested {} MHz, applied {} MHz{}\n",
        r.requested_freq_mhz,
        r.applied_freq_mhz,
        if r.throttled { " (EDC throttled)" } else { "" }
    ));
    if let Some(passed) = r.error_check_passed {
        out.push_str(&format!(
            "  error detection: {}\n",
            if passed {
                "PASS"
            } else {
                "FAIL — register divergence"
            }
        ));
    }
    if cfg.measurement {
        let mut csv = CsvWriter::new();
        csv.header(&["metric", "mean", "min", "max", "unit"]);
        csv.row(&[
            "sysfs-powercap-rapl".into(),
            format!("{:.1}", r.power.mean),
            format!("{:.1}", r.power.min),
            format!("{:.1}", r.power.max),
            "W".into(),
        ]);
        csv.row(&[
            "perf-ipc".into(),
            format!("{:.3}", r.ipc),
            format!("{:.3}", r.ipc),
            format!("{:.3}", r.ipc),
            "instructions/cycle".into(),
        ]);
        csv.row(&[
            "freq".into(),
            format!("{:.0}", r.applied_freq_mhz),
            String::new(),
            String::new(),
            "MHz".into(),
        ]);
        csv.row(&[
            "dc-access-rate".into(),
            format!("{:.3}", r.dc_access_rate),
            String::new(),
            String::new(),
            "accesses/cycle".into(),
        ]);
        csv.row(&[
            "trivial-fraction".into(),
            format!("{:.4}", r.trivial_fraction),
            String::new(),
            String::new(),
            "of FP lane ops".into(),
        ]);
        out.push_str(csv.as_str());
    }
    if let Some(dump) = &r.register_dump {
        out.push_str("register dump:\n");
        out.push_str(dump);
    }
    Ok(out)
}

fn run_optimize(cfg: &CliConfig) -> Result<String, CliError> {
    let sku = sku_for(cfg)?;
    let mix = match &cfg.function {
        Some(name) => MixRegistry::by_name(sku.uarch, name)
            .ok_or_else(|| err(format!("unknown function `{name}`")))?,
        None => MixRegistry::default_for(sku.uarch),
    };
    let seed = cfg.seed.unwrap_or(DEFAULT_SEED);
    let engine = Engine::with_seed(sku, seed);
    let tune_cfg = TuneConfig {
        nsga2: Nsga2Config {
            individuals: cfg.individuals,
            generations: cfg.generations,
            mutation_prob: cfg.nsga2_m,
            crossover_prob: 0.9,
            seed,
        },
        test_duration_s: cfg.timeout_s,
        preheat_s: cfg.preheat_s,
        freq_mhz: cfg.freq_mhz,
        mix,
        unroll: cfg.line_count,
        max_count: 8,
        prescreen: cfg.prescreen,
    };
    let result = engine.session().tune(&tune_cfg);

    let mut out = String::new();
    out.push_str(&format!(
        "NSGA-II finished: {} evaluations ({} cache hits), metrics: {}\n",
        result.nsga2.history.len(),
        result.nsga2.cache_hits,
        cfg.optimization_metrics
    ));
    if cfg.prescreen {
        let stats = engine.cache_stats();
        out.push_str(&format!(
            "pre-screen: {} candidates scored traceless, {} pruned before measurement \
             ({:.1} % prune rate)\n",
            stats.prescreen_evals,
            stats.prescreen_pruned,
            if stats.prescreen_evals > 0 {
                stats.prescreen_pruned as f64 / stats.prescreen_evals as f64 * 100.0
            } else {
                0.0
            }
        ));
    }
    out.push_str("final Pareto front (power [W], IPC):\n");
    let mut front = result.nsga2.front.clone();
    front.sort_by(|a, b| b.objectives[0].total_cmp(&a.objectives[0]));
    for ind in front.iter().take(10) {
        out.push_str(&format!(
            "  {:7.1} W  {:5.3} ipc  {}\n",
            ind.objectives[0],
            ind.objectives[1],
            format_groups(&fs2_core::autotune::genes_to_groups(&ind.genes)),
        ));
    }
    out.push_str(&format!(
        "selected optimum: --run-instruction-groups={} --set-line-count={}\n",
        format_groups(&result.best_groups),
        result.unroll
    ));
    Ok(out)
}

/// Entry point used by `main` and the CLI tests.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    execute(&parse_args(argv)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn help_and_avail() {
        let out = run(&args("--help")).unwrap();
        assert!(out.contains("--run-instruction-groups"));
        let out = run(&args("--avail")).unwrap();
        assert!(out.contains("FMA"));
        assert!(out.contains("(default)"));
    }

    #[test]
    fn list_metrics() {
        let out = run(&args("--list-metrics")).unwrap();
        for m in ["sysfs-powercap-rapl", "perf-ipc", "ipc-estimate", "metricq"] {
            assert!(out.contains(m), "missing {m}");
        }
    }

    #[test]
    fn measure_defaults() {
        let out = run(&args(
            "-t 6 --freq 1500 --start-delta 1000 --stop-delta 500",
        ))
        .unwrap();
        assert!(out.contains("sysfs-powercap-rapl"));
        assert!(out.contains("applied 1500 MHz"));
    }

    #[test]
    fn measure_with_groups_and_unroll() {
        let out = run(&args(
            "-t 6 --freq 1500 --run-instruction-groups REG:4,L1_L:2,L2_L:1 --set-line-count 210",
        ))
        .unwrap();
        assert!(out.contains("REG:4,L1_L:2,L2_L:1"));
        assert!(out.contains("u210"));
    }

    #[test]
    fn error_detection_and_dump() {
        let out = run(&args("-t 6 --freq 1500 --error-detection --dump-registers")).unwrap();
        assert!(out.contains("error detection: PASS"));
        assert!(out.contains("ymm15"));
    }

    #[test]
    fn measure_reports_trivial_fraction() {
        let grab = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("trivial-fraction"))
                .and_then(|l| l.split(',').nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        let v2 = run(&args("-t 6 --freq 1500")).unwrap();
        assert_eq!(grab(&v2), 0.0, "v2.0 init must stay non-trivial");
        let v174 = run(&args(
            "-t 6 --freq 1500 --version-emulation 1.7.4 --functional-iters 2000",
        ))
        .unwrap();
        assert!(
            grab(&v174) > 0.5,
            "±∞ clock-gating fraction missing: {v174}"
        );
    }

    #[test]
    fn functional_iters_flag_controls_the_value_pass() {
        // Under the 1.7.4 bug the first iteration still starts from
        // finite registers, so the trivial fraction keeps climbing with
        // more replays. The flag must actually reach the executor.
        let grab = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("trivial-fraction"))
                .and_then(|l| l.split(',').nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        let at = |iters: u32| -> f64 {
            grab(
                &run(&args(&format!(
                    "-t 6 --freq 1500 --version-emulation 1.7.4 --functional-iters {iters}"
                )))
                .unwrap(),
            )
        };
        let (short, long) = (at(1), at(2000));
        assert!(
            short < long,
            "iteration count must reach the executor: {short} vs {long}"
        );
        assert!(run(&args("--functional-iters 0")).is_err());
        assert!(run(&args("--functional-iters lots")).is_err());
    }

    #[test]
    fn fleet_reports_exec_cache_counters() {
        let out = run(&args("--fleet --nodes 8 --samples-per-node 40")).unwrap();
        assert!(
            out.contains("exec caches: decoded-kernel"),
            "missing exec-cache counters: {out}"
        );
        assert!(out.contains("ExecStats"));
    }

    #[test]
    fn version_emulation_changes_power() {
        let v2 = run(&args("-t 6 --freq 2500 --seed 5")).unwrap();
        let v174 = run(&args("-t 6 --freq 2500 --seed 5 --version-emulation 1.7.4")).unwrap();
        let grab = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("sysfs-powercap-rapl"))
                .and_then(|l| l.split(',').nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(grab(&v2) > grab(&v174));
    }

    #[test]
    fn optimize_small() {
        let out = run(&args(
            "--optimize=NSGA2 --individuals 6 --generations 2 --preheat 30 -t 5 \
             --freq 1500 --set-line-count 126 --seed 3",
        ))
        .unwrap();
        assert!(out.contains("NSGA-II finished: 18 evaluations"));
        assert!(out.contains("selected optimum"));
        assert!(out.contains("--run-instruction-groups="));
    }

    #[test]
    fn gpu_flag_adds_power() {
        let without = run(&args("-t 6 --freq 1500 --cpu haswell --seed 2")).unwrap();
        let with = run(&args("-t 6 --freq 1500 --cpu haswell --gpus 4 --seed 2")).unwrap();
        let grab = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("sysfs-powercap-rapl"))
                .and_then(|l| l.split(',').nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        let delta = grab(&with) - grab(&without);
        assert!(delta > 300.0, "4 K80s only added {delta:.1} W");
    }

    #[test]
    fn fleet_action_reports_engine_backed_cdf() {
        let out = run(&args("--fleet --nodes 12 --samples-per-node 60 --seed 11")).unwrap();
        assert!(out.contains("fleet of 12 nodes"));
        assert!(out.contains("E5-2680 v3"));
        assert!(out.contains("E5-2695 v3"), "fleet must mix SKUs: {out}");
        assert!(out.contains("payloads built"));
        assert!(out.contains("power_w,cumulative_fraction"));
    }

    #[test]
    fn fleet_default_seed_matches_fig1_pipeline() {
        // Without --seed the CLI must reproduce the fig01/example CDF
        // (FleetConfig's 0xF1EE7), not the measurement default.
        let implicit = run(&args("--fleet --nodes 12 --samples-per-node 60")).unwrap();
        let explicit = run(&args(&format!(
            "--fleet --nodes 12 --samples-per-node 60 --seed {}",
            0xF1EE7u64
        )))
        .unwrap();
        assert_eq!(implicit, explicit);
    }

    #[test]
    fn fleet_action_is_deterministic_per_seed() {
        let a = run(&args("--fleet --nodes 8 --samples-per-node 40 --seed 5")).unwrap();
        let b = run(&args(
            "--fleet --nodes 8 --samples-per-node 40 --seed 5 --threads 3",
        ))
        .unwrap();
        assert_eq!(a, b, "thread count must not change the CDF");
        let c = run(&args("--fleet --nodes 8 --samples-per-node 40 --seed 6")).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn fleet_episode_mode_reports_temporal_stats() {
        let out = run(&args(
            "--fleet --fleet-temporal episodes --nodes 12 --samples-per-node 200",
        ))
        .unwrap();
        assert!(out.contains("lag-1 autocorr"), "no episode stats: {out}");
        assert!(out.contains("mean dwell"));
        assert!(out.contains("floor"));
        // The i.i.d. default prints no episode section.
        let iid = run(&args("--fleet --nodes 12 --samples-per-node 200")).unwrap();
        assert!(!iid.contains("lag-1 autocorr"));
    }

    #[test]
    fn fleet_episode_mode_is_thread_invariant() {
        let a = run(&args(
            "--fleet --fleet-temporal episodes --nodes 8 --samples-per-node 100 --threads 1",
        ))
        .unwrap();
        let b = run(&args(
            "--fleet --fleet-temporal episodes --nodes 8 --samples-per-node 100 --threads 4",
        ))
        .unwrap();
        assert_eq!(a, b, "episode CDF must not depend on thread count");
    }

    #[test]
    fn fleet_power_cap_clamps_the_tail() {
        let uncapped = run(&args("--fleet --nodes 16 --samples-per-node 200")).unwrap();
        let capped = run(&args(
            "--fleet --nodes 16 --samples-per-node 200 --cap-w 300",
        ))
        .unwrap();
        assert!(capped.contains("power cap 300.0 W"));
        // Per-sample semantics: the line reports drawn samples, with
        // the static remap-cell count alongside.
        assert!(capped.contains("drawn samples clamped to lower P-states"));
        assert!(capped.contains("remap-table cells"));
        assert_ne!(uncapped, capped);
    }

    #[test]
    fn fleet_infeasible_cap_prints_a_warning() {
        // 150 W sits below every operating point: the fallback P-state
        // still exceeds the cap and must be called out, not silent.
        let out = run(&args(
            "--fleet --nodes 12 --samples-per-node 100 --cap-w 150",
        ))
        .unwrap();
        assert!(
            out.contains("warning:") && out.contains("exceed the cap"),
            "missing infeasible-cap warning: {out}"
        );
        // A cap above the table prints no warning.
        let ok = run(&args(
            "--fleet --nodes 12 --samples-per-node 100 --cap-w 400",
        ))
        .unwrap();
        assert!(!ok.contains("warning:"));
    }

    #[test]
    fn sharded_fleet_matches_the_unsharded_output() {
        let plain = run(&args("--fleet --nodes 12 --samples-per-node 80 --seed 9")).unwrap();
        for shards in [1, 2, 7] {
            let sharded = run(&args(&format!(
                "--fleet --nodes 12 --samples-per-node 80 --seed 9 --shards {shards} --workers 2"
            )))
            .unwrap();
            assert_eq!(plain, sharded, "--shards {shards} changed the output");
        }
    }

    #[test]
    fn connect_matches_the_local_fleet_output() {
        use std::sync::Arc;
        // A fresh server per comparison keeps the registry counters
        // cold, so local and served runs print identical bytes.
        let service = Arc::new(fs2_service::FleetService::new(
            fs2_service::ServiceConfig::small(),
        ));
        let server = fs2_service::serve(service, "127.0.0.1:0").unwrap();
        let local = run(&args("--fleet --nodes 10 --samples-per-node 60 --seed 3")).unwrap();
        let served = run(&args(&format!(
            "--connect {} --nodes 10 --samples-per-node 60 --seed 3",
            server.local_addr()
        )))
        .unwrap();
        assert_eq!(local, served, "served output diverged from local run");
    }

    #[test]
    fn dump_samples_is_invariant_across_transports_and_shards() {
        let dir = std::env::temp_dir();
        let a = dir.join(format!("fs2_dump_a_{}.txt", std::process::id()));
        let b = dir.join(format!("fs2_dump_b_{}.txt", std::process::id()));
        run(&args(&format!(
            "--fleet --nodes 8 --samples-per-node 40 --seed 5 --dump-samples {}",
            a.display()
        )))
        .unwrap();
        run(&args(&format!(
            "--fleet --nodes 8 --samples-per-node 40 --seed 5 --shards 7 --workers 3 \
             --dump-samples {}",
            b.display()
        )))
        .unwrap();
        let dump_a = std::fs::read_to_string(&a).unwrap();
        let dump_b = std::fs::read_to_string(&b).unwrap();
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
        assert_eq!(dump_a.lines().count(), 8 * 40);
        assert!(dump_a.lines().all(|l| u64::from_str_radix(l, 16).is_ok()));
        assert_eq!(dump_a, dump_b, "sample bits changed across shard counts");
    }

    #[test]
    fn calibrate_round_trips_through_trace_profile_and_fleet() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("fs2_trace_{}.csv", std::process::id()));
        let profile = dir.join(format!("fs2_profile_{}.txt", std::process::id()));

        // 1. An episode fleet run emits the labeled trace.
        let emitted = run(&args(&format!(
            "--fleet --fleet-temporal episodes --nodes 24 --samples-per-node 400 \
             --emit-trace {}",
            trace.display()
        )))
        .unwrap();
        assert!(emitted.contains("lag-1 autocorr"));
        let head = std::fs::read_to_string(&trace).unwrap();
        assert!(head.starts_with("node,tick,power_w,state\n"), "{head:.60}");

        // 2. Calibration fits a profile to that trace.
        let report = run(&args(&format!(
            "--calibrate {} --individuals 6 --generations 3 --profile-out {}",
            trace.display(),
            profile.display()
        )))
        .unwrap();
        assert!(report.contains("state-labeled"));
        assert!(report.contains("cdf_distance"));
        assert!(report.contains("fitted profile written to"));

        // 3. The fitted profile drives a fleet run end to end.
        let profiled = run(&args(&format!(
            "--fleet --nodes 24 --samples-per-node 100 --profile {}",
            profile.display()
        )))
        .unwrap();
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&profile);
        assert!(
            profiled.contains("calibrated profile `calibrated`"),
            "profile line missing: {profiled}"
        );
        // The profile forces episode mode even though the CLI default
        // temporal is iid.
        assert!(profiled.contains("lag-1 autocorr"));
    }

    #[test]
    fn calibration_flags_are_validated() {
        // --profile-out / --emit-trace only make sense in context.
        assert!(run(&args("--profile-out /tmp/p.txt")).is_err());
        assert!(run(&args("--emit-trace /tmp/t.csv")).is_err());
        assert!(run(&args("--calibrate t.csv --connect 127.0.0.1:1")).is_err());
        // i.i.d. minutes carry no episode labels to emit.
        assert!(run(&args(
            "--fleet --nodes 8 --samples-per-node 40 --emit-trace /tmp/t.csv"
        ))
        .is_err());
        // Missing and malformed inputs fail with context, not panics.
        assert!(run(&args("--calibrate /nonexistent/trace.csv")).is_err());
        assert!(run(&args("--fleet --profile /nonexistent/p.txt")).is_err());
        let bad = std::env::temp_dir().join(format!("fs2_bad_profile_{}.txt", std::process::id()));
        std::fs::write(&bad, "# wrong header\n").unwrap();
        let res = run(&args(&format!("--fleet --profile {}", bad.display())));
        let _ = std::fs::remove_file(&bad);
        assert!(res.is_err());
        // The help text documents the calibration surface.
        let help = run(&args("--help")).unwrap();
        assert!(help.contains("FLEET CALIBRATION"));
        assert!(help.contains("--calibrate"));
        assert!(help.contains("--emit-trace"));
    }

    #[test]
    fn service_flags_are_validated() {
        assert!(run(&args("--fleet --max-cost 0")).is_err());
        assert!(run(&args("--serve 127.0.0.1:0 --connect 127.0.0.1:1")).is_err());
        assert!(run(&args("--help --serve 127.0.0.1:0"))
            .unwrap()
            .contains("FLEET SERVICE"));
    }

    #[test]
    fn fleet_budget_reports_arbitration() {
        // 12 nodes draw ~146 W each on average; 1500 W binds hard.
        let budgeted = run(&args(
            "--fleet --fleet-temporal episodes --nodes 12 --samples-per-node 200 --budget-w 1500",
        ))
        .unwrap();
        assert!(budgeted.contains("budget 1500 W (shed-to-floor)"));
        assert!(budgeted.contains("peak fleet draw"));
        assert!(budgeted.contains("node-ticks shed"));
        assert!(budgeted.contains("denied per state:"));
        let unbudgeted = run(&args(
            "--fleet --fleet-temporal episodes --nodes 12 --samples-per-node 200",
        ))
        .unwrap();
        assert!(!unbudgeted.contains("budget"));
        assert_ne!(budgeted, unbudgeted);
        // The defer policy is reported and produces a different stream.
        let deferred = run(&args(
            "--fleet --fleet-temporal episodes --nodes 12 --samples-per-node 200 \
             --budget-w 1500 --budget-policy defer",
        ))
        .unwrap();
        assert!(deferred.contains("budget 1500 W (defer)"));
        assert_ne!(deferred, budgeted);
        // The budget also arbitrates the i.i.d. sampler.
        let iid = run(&args(
            "--fleet --nodes 12 --samples-per-node 200 --budget-w 1500",
        ))
        .unwrap();
        assert!(iid.contains("budget 1500 W"));
    }

    #[test]
    fn fleet_budget_is_thread_count_invariant() {
        for policy in ["shed", "defer"] {
            let a = run(&args(&format!(
                "--fleet --fleet-temporal episodes --nodes 8 --samples-per-node 100 \
                 --budget-w 1000 --budget-policy {policy} --threads 1"
            )))
            .unwrap();
            let b = run(&args(&format!(
                "--fleet --fleet-temporal episodes --nodes 8 --samples-per-node 100 \
                 --budget-w 1000 --budget-policy {policy} --threads 4"
            )))
            .unwrap();
            assert_eq!(a, b, "{policy}: budgeted CDF depends on thread count");
        }
    }

    #[test]
    fn fleet_infeasible_budget_prints_a_warning() {
        // 12 nodes x ~83 W idle floor ≈ 1 kW: a 500 W budget is below
        // the unconditional floors on every tick.
        let out = run(&args(
            "--fleet --nodes 12 --samples-per-node 50 --budget-w 500",
        ))
        .unwrap();
        assert!(
            out.contains("idle floors alone exceed the budget"),
            "missing infeasible-budget warning: {out}"
        );
    }

    #[test]
    fn bad_arguments_are_rejected() {
        assert!(run(&args("--nonsense")).is_err());
        assert!(run(&args("--cpu mars")).is_err());
        assert!(run(&args("--run-instruction-groups L9_X:1")).is_err());
        assert!(run(&args("--optimize=SA")).is_err());
        assert!(run(&args("--set-line-count abc")).is_err());
        // Zero unroll must be a CLI error on every action, not a panic
        // inside the payload builder.
        assert!(run(&args("--set-line-count 0")).is_err());
        assert!(run(&args("--optimize=NSGA2 --set-line-count 0")).is_err());
        assert!(run(&args("-t")).is_err());
        assert!(run(&args("--fleet --nodes 0")).is_err());
        assert!(run(&args("--fleet --samples-per-node 0")).is_err());
        assert!(run(&args("--fleet --fleet-temporal markov")).is_err());
        assert!(run(&args("--fleet --cap-w 0")).is_err());
        assert!(run(&args("--fleet --cap-w -10")).is_err());
        assert!(run(&args("--fleet --cap-w watts")).is_err());
        assert!(run(&args("--fleet --budget-w 0")).is_err());
        assert!(run(&args("--fleet --budget-w -5")).is_err());
        assert!(run(&args("--fleet --budget-w watts")).is_err());
        assert!(run(&args("--fleet --budget-w 1000 --budget-policy bogus")).is_err());
    }

    #[test]
    fn haswell_and_generic_cpus_work() {
        let out = run(&args("--avail --cpu haswell")).unwrap();
        assert!(out.contains("haswell"));
        let out = run(&args("--avail --cpu generic")).unwrap();
        assert!(out.contains("AVX"));
        assert!(!out.contains("| FMA"));
    }
}
