//! # firestarter2 — reproduction of "FIRESTARTER 2: Dynamic Code
//! # Generation for Processor Stress Tests" (IEEE CLUSTER 2021)
//!
//! This facade crate re-exports the whole workspace and provides the
//! command-line interface. See `README.md` for the architecture overview
//! and `DESIGN.md` for the paper-to-module mapping.
//!
//! ## Quickstart
//!
//! ```
//! use firestarter2::prelude::*;
//!
//! // Detect the (simulated) processor and spin up the workload engine:
//! // it memoizes payload generation and hands out measurement sessions.
//! let sku = detect(&CpuId::amd_rome());
//! let engine = Engine::new(sku);
//!
//! // Build (and cache) the default workload for the paper's example
//! // access groups, then run it for 10 simulated seconds at 1500 MHz.
//! let workload = engine.config_for_spec("REG:4,L1_L:2,L2_L:1").unwrap();
//! let result = engine.session().run(
//!     &workload,
//!     &RunConfig {
//!         freq_mhz: 1500.0,
//!         duration_s: 10.0,
//!         start_delta_s: 2.0,
//!         stop_delta_s: 1.0,
//!         ..RunConfig::default()
//!     },
//! );
//! assert!(result.power.mean > 150.0);
//!
//! // A second request for the same spec is served from the cache.
//! let _ = engine.payload(&workload);
//! assert_eq!(engine.cache_stats().hits, 1);
//! ```

pub use fs2_arch as arch;
pub use fs2_baselines as baselines;
pub use fs2_calib as calib;
pub use fs2_cluster as cluster;
pub use fs2_core as core;
pub use fs2_gpu as gpu;
pub use fs2_isa as isa;
pub use fs2_metrics as metrics;
pub use fs2_power as power;
pub use fs2_service as service;
pub use fs2_sim as sim;
pub use fs2_tuning as tuning;

pub mod cli;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use fs2_arch::{detect, CpuId, MemLevel, Microarch, Sku};
    pub use fs2_calib::{calibrate, CalibConfig, FidelityReport, FleetProfile, Trace};
    pub use fs2_core::autotune::{AutoTuner, TuneConfig, TuneResult};
    pub use fs2_core::engine::{CacheStats, Engine, Session};
    pub use fs2_core::groups::{format_groups, parse_groups, AccessGroup, Pattern, Target};
    pub use fs2_core::legacy::{LegacyWorkload, Version};
    pub use fs2_core::mix::{InstructionMix, MixRegistry};
    pub use fs2_core::payload::{build_payload, default_unroll, Payload, PayloadConfig};
    pub use fs2_core::registry::{EngineRegistry, RegistryStats};
    pub use fs2_core::runner::{RunConfig, RunResult, Runner};
    pub use fs2_gpu::{GpuStress, InitStrategy};
    pub use fs2_metrics::{CsvWriter, Summary, TimeSeries};
    pub use fs2_power::{NodePowerModel, PowerBreakdown};
    pub use fs2_service::{FleetReply, FleetRequest, FleetService, ServiceConfig};
    pub use fs2_sim::{InitScheme, Kernel, SystemSim};
    pub use fs2_tuning::Nsga2Config;
}
