use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match firestarter2::cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("firestarter2: {e}");
            ExitCode::from(2)
        }
    }
}
