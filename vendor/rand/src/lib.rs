//! Offline shim for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` / `gen_bool`.
//!
//! The container building this repository has no access to crates.io, so
//! the real `rand` crate cannot be fetched. Call sites keep the upstream
//! API; only the generator differs: xoshiro256++ seeded via SplitMix64
//! instead of ChaCha12. Everything is deterministic per seed, which is
//! all the workspace relies on (cluster fleet synthesis, NSGA-II, and
//! the ablation binary all seed explicitly).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from by [`Rng::gen_range`]
/// (stand-in for `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range; panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample in [0, 1) with 53-bit precision — the primitive
    /// behind the f64 `gen_range`, exposed so hot loops that precompute
    /// a range's span can sample `lo + gen_unit() * span` with the
    /// exact draw (and bit pattern) `gen_range(lo..hi)` would produce.
    fn gen_unit(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a raw u64 to [0, 1) with 53-bit precision.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Unbiased uniform integer in [0, span) via 128-bit multiply with
/// rejection (Lemire's method).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_ranges!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (API stand-in for the real
    /// `rand::rngs::StdRng`; the stream differs from upstream ChaCha12,
    /// which no caller in this workspace depends on).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0..1u64 << 60), c.gen_range(0..1u64 << 60));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&v));
            let v = rng.gen_range(5usize..8);
            assert!((5..8).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            let frac = f64::from(c) / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.35)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.35).abs() < 0.01, "gen_bool(0.35) -> {frac}");
    }
}
