//! Fig. 9 — power, instruction throughput and data-cache access rate of
//! FIRESTARTER optimized for accesses up to each level of the hierarchy,
//! at 1500 MHz (to avoid the throttling of §IV-E).
//!
//! Paper landmarks: 235 W (no access) → 437 W (main memory), +86 %; IPC
//! dips to ≈3.4 where power is highest.

use crate::experiments::common::{engine_for, optimize_rung, spec_of};
use crate::report::{r3, w, Report};
use fs2_arch::{MemLevel, Sku};

pub struct Rung {
    pub name: &'static str,
    pub spec: String,
    pub power_w: f64,
    pub ipc: f64,
    pub dc_access_rate: f64,
}

pub fn sweep() -> Vec<Rung> {
    let engine = engine_for(Sku::amd_epyc_7502());
    let rungs = [
        ("No access", None),
        ("Level 1", Some(MemLevel::L1)),
        ("Level 2", Some(MemLevel::L2)),
        ("Level 3", Some(MemLevel::L3)),
        ("Main memory", Some(MemLevel::Ram)),
    ];
    rungs
        .into_iter()
        .map(|(name, up_to)| {
            let (groups, result) = optimize_rung(&engine, up_to, 1500.0);
            Rung {
                name,
                spec: spec_of(&groups),
                power_w: result.power.total_w(),
                ipc: result.node.core.ipc,
                dc_access_rate: result.node.core.dc_accesses_per_cycle,
            }
        })
        .collect()
}

pub fn run() -> Report {
    let rungs = sweep();
    let mut rep = Report::new(
        "fig09",
        "power / IPC / data-cache access rate per memory level @ 1500 MHz (2x EPYC 7502)",
    );
    rep.csv_header(&[
        "level",
        "power_w",
        "ipc",
        "dc_accesses_per_cycle",
        "workload",
    ]);
    for r in &rungs {
        rep.line(format!(
            "{:<12} {:>7} W   ipc {:>5}   dc/cyc {:>5}   {}",
            r.name,
            w(r.power_w),
            r3(r.ipc),
            r3(r.dc_access_rate),
            r.spec
        ));
        rep.csv_row(&[
            r.name.to_string(),
            w(r.power_w),
            r3(r.ipc),
            r3(r.dc_access_rate),
            r.spec.clone(),
        ]);
    }
    let first = rungs.first().unwrap().power_w;
    let last = rungs.last().unwrap().power_w;
    rep.blank();
    rep.line(format!(
        "No access -> Main memory: {} W -> {} W = +{:.0} %  (paper: 235 -> 437 W, +86 %)",
        w(first),
        w(last),
        (last / first - 1.0) * 100.0
    ));
    rep.line(format!(
        "IPC at the highest-power point: {} (paper: drops to ≈3.4)",
        r3(rungs.last().unwrap().ipc)
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig09_landmarks() {
        let rungs = super::sweep();
        // Monotone power ladder.
        for pair in rungs.windows(2) {
            assert!(
                pair[1].power_w > pair[0].power_w,
                "{} not above {}",
                pair[1].name,
                pair[0].name
            );
        }
        let first = rungs.first().unwrap();
        let last = rungs.last().unwrap();
        // Paper: 235 W and 437 W with +86 %.
        assert!(
            (200.0..270.0).contains(&first.power_w),
            "no-access rung {} W",
            first.power_w
        );
        assert!(
            (370.0..480.0).contains(&last.power_w),
            "main-memory rung {} W",
            last.power_w
        );
        let gain = last.power_w / first.power_w - 1.0;
        assert!((0.5..1.2).contains(&gain), "gain {:.2}", gain);
        // IPC never rises above the register-only level, and at least one
        // rung shows the dip. (The analytic model's power optimum sits at
        // the no-stall knee, so the RAM rung's dip is weaker than the
        // paper's 3.4 — see EXPERIMENTS.md.)
        assert!(last.ipc <= first.ipc + 1e-9);
        assert!(last.ipc > 2.0, "ipc collapsed: {}", last.ipc);
        assert!(
            rungs.iter().any(|r| r.ipc < 3.9),
            "no rung shows an IPC dip"
        );
        // Data-cache access rate is highest for the L1 rung.
        let l1 = &rungs[1];
        assert!(l1.dc_access_rate >= rungs[2].dc_access_rate);
    }
}
