//! Fig. 1 — cumulative power distribution of 612 Haswell nodes over a
//! year (1 Sa/s, 60 s means, 0.1 W bins), fed by real per-node engines:
//! every sample composes engine-evaluated payload power with the node's
//! idle floor instead of a fitted per-class normal.
//!
//! Alongside the paper's i.i.d. CDF, a time-correlated variant runs the
//! same operating points through the Markov episode model (dwell times,
//! ramps, idle hand-backs) — the structure the production trace has and
//! an i.i.d. sampler cannot reproduce — and a budget-constrained
//! variant adds facility-level power management: the fleet-wide sum of
//! node draws is capped per 60 s tick and over-budget episodes are shed
//! to the idle floor.

use crate::report::{w, Report};
use fs2_cluster::{FleetConfig, FleetSim, PowerCdf, TemporalMode};

/// The facility budget of the constrained variant, W: between the
/// unconstrained fleet's mean (~89 kW) and peak (~93 kW) tick draw, so
/// it binds on the peaks without starving the fleet.
const BUDGET_W: f64 = 90_000.0;

pub fn run() -> Report {
    let fleet = FleetSim::new(FleetConfig::default());
    let run = fleet.run();
    let cdf = PowerCdf::from_samples(&run.samples, 0.1);

    let mut rep = Report::new(
        "fig01",
        "CDF of node power for the 612-node Haswell fleet (engine-backed synthetic year)",
    );
    rep.line(format!(
        "{} nodes x {} 60-second means = {} samples, 0.1 W bins",
        fleet.config.total_nodes(),
        fleet.config.samples_per_node,
        cdf.samples
    ));
    rep.line(format!(
        "engine-backed: {} engines ({} SKUs), {} payloads built, {} operating points; \
         {} spec parses served {} requests",
        run.registry.engines,
        fleet.config.groups.len(),
        run.registry.payload_misses,
        run.power_table.len(),
        run.registry.spec_misses,
        run.registry.spec_hits + run.registry.spec_misses,
    ));
    rep.line(format!(
        "range {} .. {} W (paper: max 359.9 W)",
        w(cdf.min_w),
        w(cdf.max_w)
    ));
    rep.line(format!(
        "idle shoulder: {:.1} % of samples at or below 100 W; {:.1} % below 50 W (paper: steep incline between 50 and 100 W)",
        cdf.fraction_at(100.0) * 100.0,
        cdf.fraction_at(50.0) * 100.0
    ));
    rep.line(format!(
        "median {} W, p95 {} W, p99.9 {} W",
        w(cdf.quantile(0.5)),
        w(cdf.quantile(0.95)),
        w(cdf.quantile(0.999))
    ));
    // Time-correlated variant: identical engines and operating points,
    // Markov episodes instead of i.i.d. node-minutes.
    let ep_fleet = FleetSim::new(FleetConfig {
        temporal: TemporalMode::Episodes,
        ..FleetConfig::default()
    });
    let ep_run = ep_fleet.run();
    let ep_cdf = PowerCdf::from_samples(&ep_run.samples, 0.1);
    let stats = ep_run.episodes.expect("episode stats");
    rep.blank();
    rep.line(format!(
        "time-correlated variant (Markov episodes): lag-1 autocorrelation {:.3} \
         (i.i.d. would be ~0); range {} .. {} W",
        stats.lag1_autocorr,
        w(ep_cdf.min_w),
        w(ep_cdf.max_w)
    ));
    let shares: Vec<String> = stats
        .states
        .iter()
        .zip(&stats.empirical_shares)
        .zip(&stats.model_shares)
        .map(|((s, &got), &want)| format!("{s} {:.1}% (model {:.1}%)", got * 100.0, want * 100.0))
        .collect();
    rep.line(format!("episode time shares: {}", shares.join(", ")));
    let dwell: Vec<String> = stats
        .states
        .iter()
        .zip(&stats.mean_dwell_ticks)
        .map(|(s, &d)| format!("{s} {d:.1}"))
        .collect();
    rep.line(format!(
        "mean episode dwell [60 s ticks]: {}",
        dwell.join(", ")
    ));

    // Budget-constrained variant: the same episode fleet under a
    // facility power budget; over-budget episodes shed to the floor.
    let budget_fleet = FleetSim::new(FleetConfig {
        temporal: TemporalMode::Episodes,
        budget_w: Some(BUDGET_W),
        ..FleetConfig::default()
    });
    let budget_run = budget_fleet.run();
    let budget_cdf = PowerCdf::from_samples(&budget_run.samples, 0.1);
    let budget = budget_run.budget.expect("budget stats");
    rep.blank();
    rep.line(format!(
        "budget-constrained variant ({:.0} kW fleet budget, {} policy): \
         peak fleet draw {:.1} kW, mean {:.1} kW, p95 utilization {:.1} %",
        budget.budget_w / 1000.0,
        budget.policy.name(),
        budget.peak_fleet_w / 1000.0,
        budget.mean_fleet_w / 1000.0,
        budget.utilization.quantile(0.95) * 100.0
    ));
    let shed_total: u64 = budget.shed_ticks.iter().sum();
    let shed: Vec<String> = budget
        .states
        .iter()
        .zip(&budget.shed_ticks)
        .filter(|(_, &n)| n > 0)
        .map(|(s, n)| format!("{s} {n}"))
        .collect();
    rep.line(format!(
        "shed node-ticks: {shed_total} total ({}); {} infeasible-floor ticks",
        shed.join(", "),
        budget.infeasible_floor_ticks
    ));

    rep.csv_header(&[
        "power_w",
        "cumulative_fraction",
        "episode_cumulative_fraction",
        "budget_cumulative_fraction",
    ]);
    for wv in (40..=360).step_by(10) {
        rep.csv_row(&[
            format!("{wv}"),
            format!("{:.4}", cdf.fraction_at(f64::from(wv))),
            format!("{:.4}", ep_cdf.fraction_at(f64::from(wv))),
            format!("{:.4}", budget_cdf.fraction_at(f64::from(wv))),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig01_report_has_landmarks() {
        let rep = super::run();
        let out = rep.render();
        assert!(out.contains("612 nodes"));
        assert!(out.contains("0.1 W bins"));
        assert!(out.contains("engine-backed"));
        assert!(out.contains("time-correlated variant"));
        assert!(out.contains("lag-1 autocorrelation"));
        assert!(out.contains("budget-constrained variant"));
        assert!(out.contains("shed node-ticks"));
        assert!(rep.csv().lines().count() > 30);
        assert!(rep.csv().starts_with("power_w,cumulative_fraction,episode"));
        assert!(rep
            .csv()
            .lines()
            .next()
            .unwrap()
            .ends_with("budget_cumulative_fraction"));
    }
}
