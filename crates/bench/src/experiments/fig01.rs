//! Fig. 1 — cumulative power distribution of 612 Haswell nodes over a
//! year (1 Sa/s, 60 s means, 0.1 W bins), fed by real per-node engines:
//! every sample composes engine-evaluated payload power with the node's
//! idle floor instead of a fitted per-class normal.

use crate::report::{w, Report};
use fs2_cluster::{FleetConfig, FleetSim, PowerCdf};

pub fn run() -> Report {
    let fleet = FleetSim::new(FleetConfig::default());
    let run = fleet.run();
    let cdf = PowerCdf::from_samples(&run.samples, 0.1);

    let mut rep = Report::new(
        "fig01",
        "CDF of node power for the 612-node Haswell fleet (engine-backed synthetic year)",
    );
    rep.line(format!(
        "{} nodes x {} 60-second means = {} samples, 0.1 W bins",
        fleet.config.total_nodes(),
        fleet.config.samples_per_node,
        cdf.samples
    ));
    rep.line(format!(
        "engine-backed: {} engines ({} SKUs), {} payloads built, {} operating points; \
         {} spec parses served {} requests",
        run.registry.engines,
        fleet.config.groups.len(),
        run.registry.payload_misses,
        run.power_table.len(),
        run.registry.spec_misses,
        run.registry.spec_hits + run.registry.spec_misses,
    ));
    rep.line(format!(
        "range {} .. {} W (paper: max 359.9 W)",
        w(cdf.min_w),
        w(cdf.max_w)
    ));
    rep.line(format!(
        "idle shoulder: {:.1} % of samples at or below 100 W; {:.1} % below 50 W (paper: steep incline between 50 and 100 W)",
        cdf.fraction_at(100.0) * 100.0,
        cdf.fraction_at(50.0) * 100.0
    ));
    rep.line(format!(
        "median {} W, p95 {} W, p99.9 {} W",
        w(cdf.quantile(0.5)),
        w(cdf.quantile(0.95)),
        w(cdf.quantile(0.999))
    ));
    rep.csv_header(&["power_w", "cumulative_fraction"]);
    for wv in (40..=360).step_by(10) {
        rep.csv_row(&[
            format!("{wv}"),
            format!("{:.4}", cdf.fraction_at(f64::from(wv))),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig01_report_has_landmarks() {
        let rep = super::run();
        let out = rep.render();
        assert!(out.contains("612 nodes"));
        assert!(out.contains("0.1 W bins"));
        assert!(out.contains("engine-backed"));
        assert!(rep.csv().lines().count() > 30);
    }
}
