//! Fig. 8 — power consumption and instruction throughput for different
//! unroll factors and P-states (workload `L1_L:1`, the paper's §IV-C).
//!
//! Expected shape: small loops run from the µop cache (low front-end
//! power); once the loop exceeds it (u ≈ 1000) power steps up because the
//! decoders work; beyond L1I (u ≈ 2000) code streams from L2 — IPC stays
//! flat but power rises again, and at nominal frequency the extra current
//! triggers a small EDC frequency dip (2.5 → 2.4 GHz in the paper).

use crate::experiments::common::{direct_eval, engine_for};
use crate::report::{mhz, r3, w, Report};
use fs2_arch::pipeline::FetchSource;
use fs2_arch::Sku;

pub const UNROLLS: [u32; 12] = [
    32, 64, 125, 250, 500, 750, 1000, 1500, 2000, 4000, 8000, 16000,
];
pub const FREQS: [f64; 3] = [1500.0, 2200.0, 2500.0];

pub struct Point {
    pub unroll: u32,
    pub freq_req: f64,
    pub freq_applied: f64,
    pub power_w: f64,
    pub ipc: f64,
    pub fetch: FetchSource,
    pub uops_from_decoder_frac: f64,
}

pub fn sweep() -> Vec<Point> {
    let engine = engine_for(Sku::amd_epyc_7502());
    // The cartesian (unroll × P-state) grid fans out in parallel; each
    // unroll's payload is built once and shared via the engine cache
    // across its three frequency points.
    let combos: Vec<(u32, f64)> = UNROLLS
        .iter()
        .flat_map(|&u| FREQS.iter().map(move |&f| (u, f)))
        .collect();
    engine.sweep(&combos, 0, |engine, _, &(u, f)| {
        let mut cfg = engine
            .config_for_spec("L1_L:1")
            .expect("static experiment spec");
        cfg.unroll = u;
        let payload = engine.payload(&cfg);
        let r = direct_eval(engine, &payload, f);
        // Validate the fetch source with the event-counter equivalent
        // of PMC 0xAA ("UOps Dispatched From Decoder").
        let (_, ev) = engine.sim().run(&payload.kernel, r.applied_mhz, 1e8, None);
        let (dec, opc) = (ev.uops_from_decoder, ev.uops_from_opcache);
        let frac = if dec + opc == 0 {
            0.0
        } else {
            dec as f64 / (dec + opc) as f64
        };
        Point {
            unroll: u,
            freq_req: f,
            freq_applied: r.applied_mhz,
            power_w: r.power.total_w(),
            ipc: r.node.core.ipc,
            fetch: r.node.core.fetch_source,
            uops_from_decoder_frac: frac,
        }
    })
}

pub fn run() -> Report {
    let points = sweep();
    let mut rep = Report::new(
        "fig08",
        "power and IPC vs unroll factor (--set-line-count) at 1500/2200/2500 MHz, workload L1_L:1",
    );
    rep.csv_header(&[
        "unroll",
        "freq_req_mhz",
        "freq_applied_mhz",
        "power_w",
        "ipc",
        "fetch_source",
        "uops_from_decoder_frac",
    ]);
    for p in &points {
        rep.csv_row(&[
            p.unroll.to_string(),
            mhz(p.freq_req),
            mhz(p.freq_applied),
            w(p.power_w),
            r3(p.ipc),
            p.fetch.name().to_string(),
            format!("{:.2}", p.uops_from_decoder_frac),
        ]);
    }

    // Annotate the transitions at nominal frequency.
    let nominal: Vec<&Point> = points.iter().filter(|p| p.freq_req == 2500.0).collect();
    let first_decoder = nominal.iter().find(|p| p.fetch == FetchSource::L1i);
    let first_l2 = nominal.iter().find(|p| p.fetch == FetchSource::L2);
    let opcache_power = nominal
        .iter()
        .filter(|p| p.fetch == FetchSource::OpCache)
        .map(|p| p.power_w)
        .fold(0.0f64, f64::max);
    if let Some(p) = first_decoder {
        rep.line(format!(
            "op-cache exceeded at u={} -> power steps {} -> {} W (paper: increase at u ≈ 1000)",
            p.unroll,
            w(opcache_power),
            w(p.power_w)
        ));
    }
    if let Some(p) = first_l2 {
        rep.line(format!(
            "L1I exceeded at u={} -> code streams from L2; applied frequency {} MHz at nominal (paper: 2.5 -> 2.4 GHz dip)",
            p.unroll,
            mhz(p.freq_applied)
        ));
    }
    rep.line("IPC stays ≈4 across all fetch sources (paper: throughput does not decrease)");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_shape() {
        let points = sweep();
        let at = |u: u32, f: f64| -> &Point {
            points
                .iter()
                .find(|p| p.unroll == u && p.freq_req == f)
                .unwrap()
        };
        // Fetch-source transitions (validated via the decoder-µop event).
        assert_eq!(at(250, 2500.0).fetch, FetchSource::OpCache);
        assert_eq!(at(250, 2500.0).uops_from_decoder_frac, 0.0);
        assert_eq!(at(1500, 2500.0).fetch, FetchSource::L1i);
        assert!(at(1500, 2500.0).uops_from_decoder_frac > 0.99);
        assert_eq!(at(4000, 2500.0).fetch, FetchSource::L2);

        // Power steps up when the loop leaves the µop cache.
        assert!(
            at(1500, 2500.0).power_w > at(250, 2500.0).power_w + 3.0,
            "no decoder power step: {} vs {}",
            at(1500, 2500.0).power_w,
            at(250, 2500.0).power_w
        );

        // IPC is essentially flat at 4 for every regime at 1500 MHz.
        for &u in &UNROLLS {
            let p = at(u, 1500.0);
            assert!(p.ipc > 3.6, "IPC collapsed at u={u}: {}", p.ipc);
        }

        // No throttling while the loop is op-cache or L1I resident...
        assert_eq!(at(250, 2500.0).freq_applied, 2500.0);
        assert_eq!(at(1500, 2500.0).freq_applied, 2500.0);
        // ...but L2-resident code dips below nominal (paper: 2.5 -> 2.4).
        let l2_point = at(16000, 2500.0);
        assert!(
            l2_point.freq_applied < 2500.0 && l2_point.freq_applied >= 2300.0,
            "L2-code dip out of band: {} MHz",
            l2_point.freq_applied
        );
        // Higher frequencies give more power at every unroll.
        for &u in &UNROLLS {
            assert!(at(u, 2500.0).power_w > at(u, 1500.0).power_w);
        }
    }
}
