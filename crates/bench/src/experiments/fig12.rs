//! Fig. 12 — the 3×3 cross-evaluation: workloads optimized at 1500, 2200
//! and 2500 MHz, each measured at all three frequencies; reporting power
//! (a), instruction throughput (b) and applied core frequency (c).
//!
//! Paper shape: each column's maximum power lies on the diagonal (the
//! workload optimized for the tested frequency wins); all workloads
//! throttle below nominal at 2200/2500 MHz; IPC falls with test frequency
//! for memory-rich workloads.

use crate::experiments::common::engine_for;
use crate::experiments::fig11::tune_config;
use crate::report::{mhz, r3, w, Report};
use fs2_arch::Sku;
use fs2_core::groups::{format_groups, AccessGroup};
use fs2_core::mix::MixRegistry;
use fs2_core::payload::PayloadConfig;
use fs2_core::runner::RunConfig;

pub const FREQS: [f64; 3] = [1500.0, 2200.0, 2500.0];

pub struct Cell {
    pub optimized_for: f64,
    pub tested_at: f64,
    pub power_w: f64,
    pub ipc: f64,
    pub applied_mhz: f64,
}

pub struct Matrix {
    pub cells: Vec<Cell>,
    pub workloads: Vec<(f64, Vec<AccessGroup>, u32)>,
}

impl Matrix {
    pub fn cell(&self, optimized_for: f64, tested_at: f64) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.optimized_for == optimized_for && c.tested_at == tested_at)
            .expect("full matrix")
    }
}

/// The per-frequency tuning fan-out. `hinted` selects the hinted queue
/// (the production path: each item's size hint is the tuning's known
/// simulated duration); the unhinted variant exists so the regression
/// test can assert both queues return identical results.
pub(crate) fn tune_all(
    engine: &fs2_core::engine::Engine,
    quick: bool,
    hinted: bool,
) -> Vec<(f64, Vec<AccessGroup>, u32)> {
    let tunings: Vec<(usize, f64)> = FREQS.iter().copied().enumerate().collect();
    let worker = |engine: &fs2_core::engine::Engine, _: usize, &(i, freq): &(usize, f64)| {
        let cfg = tune_config(quick, freq, 100 + i as u64);
        let result = engine.session().tune(&cfg);
        (freq, result.best_groups, result.unroll)
    };
    if hinted {
        engine.sweep_hinted(
            &tunings,
            0,
            |_, &(_, freq)| {
                // Known per-item cost: the full tuning's simulated
                // duration (preheat + evaluation budget × test time).
                (tune_config(quick, freq, 0).expected_duration_s() * 1000.0) as u64
            },
            worker,
        )
    } else {
        engine.sweep(&tunings, 0, worker)
    }
}

pub fn cross_evaluate(quick: bool) -> Matrix {
    let engine = engine_for(Sku::amd_epyc_7502());

    // One optimization per frequency, fanned out in parallel (separate
    // sessions: fresh thermal state per training, like separate lab
    // sessions). All three tunings share the engine's payload cache
    // and queue by their known durations.
    let workloads = tune_all(&engine, quick, true);

    // Evaluate all nine combinations with the paper's measurement window
    // (240 s, first 120 s and last 2 s discarded), in parallel — each
    // cell gets its own preheated session, so results are identical to
    // the serial pass.
    let mix = MixRegistry::default_for(engine.sku().uarch);
    let combos: Vec<(f64, Vec<AccessGroup>, u32, f64)> = workloads
        .iter()
        .flat_map(|(opt_freq, groups, unroll)| {
            FREQS
                .iter()
                .map(move |&test_freq| (*opt_freq, groups.clone(), *unroll, test_freq))
        })
        .collect();
    // Every cell costs the same known simulated span (240 s preheat +
    // 240 s measurement); the constant duration hint keeps the queue
    // order identical to the unhinted pass (stable sort on ties).
    let cells = engine.sweep_hinted(
        &combos,
        0,
        |_, _| 480_000,
        |engine, _, (opt_freq, groups, unroll, test_freq)| {
            let config = PayloadConfig {
                mix,
                groups: groups.clone(),
                unroll: *unroll,
            };
            let mut session = engine.session();
            session.hold_power(240.0, 20.0, 400.0); // preheated node

            // Session::run goes through the engine cache tiers: the
            // three test frequencies of one workload share a single
            // functional pass (the §III-D value pass is frequency-
            // independent), so only payload-distinct cells pay it.
            let r = session.run(
                &config,
                &RunConfig {
                    freq_mhz: *test_freq,
                    duration_s: 240.0,
                    start_delta_s: 120.0,
                    stop_delta_s: 2.0,
                    functional_iters: 64,
                    ..RunConfig::default()
                },
            );
            Cell {
                optimized_for: *opt_freq,
                tested_at: *test_freq,
                power_w: r.power.mean,
                ipc: r.ipc,
                applied_mhz: r.applied_freq_mhz,
            }
        },
    );
    Matrix { cells, workloads }
}

fn heatmap(rep: &mut Report, title: &str, matrix: &Matrix, value: impl Fn(&Cell) -> String) {
    rep.line(format!(
        "{title} (rows: optimized for; columns: tested at 1500/2200/2500 MHz)"
    ));
    for &opt in &FREQS {
        let row: Vec<String> = FREQS
            .iter()
            .map(|&test| format!("{:>8}", value(matrix.cell(opt, test))))
            .collect();
        rep.line(format!("  {:>4} MHz |{}", opt as u32, row.join(" ")));
    }
    rep.blank();
}

pub fn run(quick: bool) -> Report {
    let matrix = cross_evaluate(quick);
    let mut rep = Report::new(
        "fig12",
        "optimized workloads x test frequencies: power / IPC / applied frequency",
    );
    for (freq, groups, unroll) in &matrix.workloads {
        rep.line(format!(
            "ω_opt-{}MHz: {} (u={unroll})",
            *freq as u32,
            format_groups(groups)
        ));
    }
    rep.blank();
    heatmap(&mut rep, "(a) power [W]", &matrix, |c| w(c.power_w));
    heatmap(
        &mut rep,
        "(b) instruction throughput [ipc/core]",
        &matrix,
        |c| r3(c.ipc),
    );
    heatmap(&mut rep, "(c) applied core frequency [MHz]", &matrix, |c| {
        mhz(c.applied_mhz)
    });

    // Diagonal-dominance check (paper: "each workload will lead to the
    // highest power consumption for its optimization point").
    let mut diagonal_wins = 0;
    for &test in &FREQS {
        let best = FREQS
            .iter()
            .map(|&opt| (opt, matrix.cell(opt, test).power_w))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if best.0 == test {
            diagonal_wins += 1;
        }
        rep.line(format!(
            "tested at {} MHz: best workload is ω_opt-{}MHz with {} W",
            test as u32,
            best.0 as u32,
            w(best.1)
        ));
    }
    rep.line(format!(
        "diagonal dominance: {diagonal_wins}/3 columns won by their own optimum (paper: 3/3)"
    ));

    rep.csv_header(&[
        "optimized_for",
        "tested_at",
        "power_w",
        "ipc",
        "applied_mhz",
    ]);
    for c in &matrix.cells {
        rep.csv_row(&[
            mhz(c.optimized_for),
            mhz(c.tested_at),
            w(c.power_w),
            r3(c.ipc),
            mhz(c.applied_mhz),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_matrix_shape() {
        let matrix = cross_evaluate(true);
        assert_eq!(matrix.cells.len(), 9);
        // No throttling at 1500 MHz anywhere (paper: 1492 ≈ no throttle).
        for &opt in &FREQS {
            assert_eq!(matrix.cell(opt, 1500.0).applied_mhz, 1500.0);
        }
        // Power grows with test frequency for every workload.
        for &opt in &FREQS {
            let p15 = matrix.cell(opt, 1500.0).power_w;
            let p25 = matrix.cell(opt, 2500.0).power_w;
            assert!(p25 > p15, "power not increasing for opt-{opt}");
        }
        // The 1500 MHz column: its own optimum is at least competitive.
        // Quick mode uses tiny populations, so allow a broad band here;
        // the paper-scale configuration (bin/fig12) shows the strict
        // diagonal dominance recorded in EXPERIMENTS.md.
        let best_1500 = FREQS
            .iter()
            .map(|&o| matrix.cell(o, 1500.0).power_w)
            .fold(f64::NEG_INFINITY, f64::max);
        let own_1500 = matrix.cell(1500.0, 1500.0).power_w;
        assert!(own_1500 > best_1500 * 0.90, "own optimum far from best");
    }

    #[test]
    fn hinted_tuning_fanout_matches_unhinted_queue() {
        // Regression for the duration-hint wiring: the hinted queue
        // only reorders execution, so the NSGA-II fan-out must return
        // results identical to the unhinted queue.
        let engine = engine_for(Sku::amd_epyc_7502());
        let hinted = tune_all(&engine, true, true);
        let unhinted = tune_all(&engine, true, false);
        assert_eq!(hinted, unhinted);
    }
}
