//! Fig. 2 — FIRESTARTER optimized for maximum power with different cache
//! accesses on the dual-socket Haswell node (2 GHz to avoid AVX
//! throttling), with and without 4× NVIDIA K80.

use crate::experiments::common::{
    direct_eval, engine_for, optimize_rung, payload_for, spec_of, sqrt_payload,
};
use crate::report::{w, Report};
use fs2_arch::{MemLevel, Sku};
use fs2_gpu::GpuStress;
use fs2_power::NodePowerModel;

pub fn run() -> Report {
    let sku = Sku::intel_xeon_e5_2680_v3();
    let engine = engine_for(sku.clone());
    let freq = 2000.0;
    let model = NodePowerModel::new(sku);
    let gpu = GpuStress::four_k80().run(240.0);

    let mut rep = Report::new(
        "fig02",
        "power ladder on 2x Xeon E5-2680 v3 @ 2000 MHz (+4x K80 on the GPGPU node)",
    );
    rep.csv_header(&["id", "cpu_node_w", "gpgpu_node_w", "workload"]);

    let row = |id: &str, name: &str, cpu_w: f64, spec: String, rep: &mut Report| {
        rep.line(format!(
            "{name:<34} {:>7} W   (+GPUs: {:>7} W)   {spec}",
            w(cpu_w),
            w(cpu_w + gpu.avg_power_w)
        ));
        rep.csv_row(&[id.to_string(), w(cpu_w), w(cpu_w + gpu.avg_power_w), spec]);
    };

    // Idle (C-states enabled); the GPGPU node adds the per-card idle.
    let idle = model.idle_power().total_w();
    rep.line(format!(
        "{:<34} {:>7} W   (+GPUs: {:>7} W)   -",
        "Idle (C-States enabled)",
        w(idle),
        w(idle + gpu.idle_power_w)
    ));
    rep.csv_row(&[
        "idle".into(),
        w(idle),
        w(idle + gpu.idle_power_w),
        String::new(),
    ]);

    // Low power loop (sqrtsd).
    let sqrt = sqrt_payload(&engine);
    let sqrt_r = direct_eval(&engine, &sqrt, freq);
    row(
        "sqrt",
        "Low power loop (sqrtsd)",
        sqrt_r.power.total_w(),
        "SQRT".into(),
        &mut rep,
    );

    // FIRESTARTER, no cache accesses.
    let reg = payload_for(&engine, "REG:1");
    let reg_r = direct_eval(&engine, &reg, freq);
    row(
        "reg",
        "FIRESTARTER, no cache accesses",
        reg_r.power.total_w(),
        "REG:1".into(),
        &mut rep,
    );

    // FIRESTARTER with L1+L2 / +L3 / +mem accesses (optimized per rung).
    for (id, name, up_to) in [
        ("l1l2", "FIRESTARTER, L1+L2 accesses", MemLevel::L2),
        ("l3", "FIRESTARTER, L1+L2+L3 accesses", MemLevel::L3),
        ("mem", "FIRESTARTER, L1+L2+L3+mem accesses", MemLevel::Ram),
    ] {
        let (groups, result) = optimize_rung(&engine, Some(up_to), freq);
        row(id, name, result.power.total_w(), spec_of(&groups), &mut rep);
    }

    rep.blank();
    rep.line(format!(
        "each K80: +{} W idle .. +{} W stressed (paper: 29 W .. 156 W); 4 cards stressed: +{} W",
        w(gpu.idle_power_w / 4.0),
        w(gpu.stress_power_w / 4.0),
        w(gpu.avg_power_w)
    ));
    rep.line("paper shape: each memory level adds to total power; GPGPU node ~1.1 kW fully loaded");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig02_ladder_is_monotone() {
        let rep = super::run();
        let csv = rep.csv();
        let powers: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        // idle < sqrt < REG < L1L2 < L3 < mem
        for pair in powers.windows(2) {
            assert!(pair[1] > pair[0], "ladder not monotone: {powers:?}");
        }
        // Full stress roughly 5x idle (paper: ~70 W -> ~360 W).
        assert!(powers.last().unwrap() / powers[0] > 3.0);
    }
}
