//! Fig. 6 — power trace of the FIRESTARTER 1.x automatic-tuning
//! prototype: every candidate requires template regeneration, compiling
//! and linking (a near-idle gap), then a minutes-long measurement to ride
//! out thermal effects.

use crate::experiments::common::engine_for;
use crate::report::{w, Report};
use fs2_arch::Sku;
use fs2_core::groups::parse_groups;
use fs2_core::legacy::{v1_tuning_candidate, V1TuningConfig};

pub fn run() -> Report {
    let engine = engine_for(Sku::amd_epyc_7502());
    let mut session = engine.session();
    let cfg = V1TuningConfig {
        freq_mhz: 1500.0,
        ..V1TuningConfig::default()
    };
    let candidates = [
        "REG:4,L1_LS:1",
        "REG:6,L1_LS:2,L2_L:1",
        "REG:8,L1_LS:2,L2_L:1,RAM_L:1",
    ];
    let mut measured = Vec::new();
    for spec in candidates {
        let groups = parse_groups(spec).unwrap();
        measured.push((
            spec,
            v1_tuning_candidate(session.runner_mut(), &groups, &cfg),
        ));
    }

    let total_s = session.clock().now_secs();
    let idle_w = session.power_model().idle_power().total_w();
    let (trace_min, trace_max) = session
        .trace()
        .min_max_between(0.0, total_s)
        .unwrap_or((0.0, 0.0));

    let mut rep = Report::new(
        "fig06",
        "FIRESTARTER 1.x tuning-prototype power trace (recompile per candidate)",
    );
    rep.line(format!(
        "{} candidates took {:.0} s of simulated time ({:.0} s per iteration: {:.0} s code generation+compile+link, {:.0} s measurement incl. {:.0} s warm-up)",
        candidates.len(),
        total_s,
        total_s / candidates.len() as f64,
        cfg.compile_s,
        cfg.measure_s,
        cfg.warmup_s
    ));
    rep.line(format!(
        "trace spans {} .. {} W; compile gaps dip to near idle ({} W)",
        w(trace_min),
        w(trace_max),
        w(idle_w)
    ));
    for (spec, p) in &measured {
        rep.line(format!("  candidate {spec:<34} -> {} W", w(*p)));
    }
    rep.blank();
    rep.line("paper shape: visible power drops between candidates and minutes-long measurements (contrast Fig. 7)");

    // Downsampled trace for plotting.
    rep.csv_header(&["t_s", "power_w"]);
    let agg = session.trace().aggregate_mean(5.0);
    for s in agg.samples() {
        rep.csv_row(&[format!("{:.1}", s.t_s), w(s.value)]);
    }
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig06_trace_has_gaps_and_long_cycles() {
        let rep = super::run();
        let out = rep.render();
        assert!(out.contains("compile gaps dip"));
        // Downsampled trace covers > 600 s.
        let last_t: f64 = rep
            .csv()
            .lines()
            .last()
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(last_t > 500.0, "trace too short: {last_t}");
    }
}
