//! §III-D — the data-dependent power comparison: FIRESTARTER 1.7.4 (the
//! ±∞-accumulation bug clock-gates the FMA units) vs 2.0 (fixed init),
//! REG-only at nominal frequency, 240 s window minus 120 s / 2 s deltas.
//!
//! Paper: 305.6 W (1.7.4) vs 314.1 W (2.0) — the fix gains ≈ 8.5 W.

use crate::experiments::common::engine_for;
use crate::report::{w, Report};
use fs2_arch::Sku;
use fs2_core::legacy::Version;
use fs2_core::runner::RunConfig;
use fs2_sim::InitScheme;

pub struct VersionRun {
    pub version: Version,
    pub power_w: f64,
    pub trivial_fraction: f64,
}

pub fn compare() -> (VersionRun, VersionRun) {
    let engine = engine_for(Sku::amd_epyc_7502());
    let sku = engine.sku().clone();
    let config = engine.config_for_spec("REG:1").expect("static spec");
    let measure = |init: InitScheme, version: Version| {
        let mut session = engine.session();
        session.hold_power(240.0, 20.0, 310.0); // warm node, like the lab
        let r = session.run(
            &config,
            &RunConfig {
                freq_mhz: f64::from(sku.nominal_mhz()),
                duration_s: 240.0,
                start_delta_s: 120.0,
                stop_delta_s: 2.0,
                init,
                functional_iters: 2500,
                ..RunConfig::default()
            },
        );
        VersionRun {
            version,
            power_w: r.power.mean,
            trivial_fraction: r.trivial_fraction,
        }
    };
    let v2 = measure(InitScheme::V2Safe, Version::V2_0);
    let v174 = measure(InitScheme::V174Buggy, Version::V1_7_4);
    (v2, v174)
}

pub fn run() -> Report {
    let (v2, v174) = compare();
    let mut rep = Report::new(
        "version",
        "§III-D: v1.7.4 init bug vs v2.0 fix (REG-only at nominal, 240 s window)",
    );
    rep.csv_header(&["version", "power_w", "trivial_fraction"]);
    for r in [&v2, &v174] {
        rep.line(format!(
            "FIRESTARTER {:<6}  {:>7} W   trivial FP lanes: {:>5.1} %",
            r.version.name(),
            w(r.power_w),
            r.trivial_fraction * 100.0
        ));
        rep.csv_row(&[
            r.version.name().to_string(),
            w(r.power_w),
            format!("{:.3}", r.trivial_fraction),
        ]);
    }
    rep.blank();
    rep.line(format!(
        "delta: {} W (paper: 314.1 - 305.6 = 8.5 W) — trivial operands clock-gate the FMA unit (Hickmann patent)",
        w(v2.power_w - v174.power_w)
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_delta_in_band() {
        let (v2, v174) = super::compare();
        assert!(v174.trivial_fraction > 0.8);
        assert_eq!(v2.trivial_fraction, 0.0);
        let delta = v2.power_w - v174.power_w;
        assert!(
            (3.0..=18.0).contains(&delta),
            "delta {delta:.1} W outside band (paper: 8.5 W)"
        );
    }
}
