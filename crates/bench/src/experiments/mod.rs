//! One module per table/figure of the paper.

pub mod common;
pub mod fig01;
pub mod fig02;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig11;
pub mod fig12;
pub mod table1;
pub mod table2;
pub mod version;

use crate::report::Report;

/// Runs every experiment. `quick` shrinks the NSGA-II populations (used
/// by tests and debug builds); the binaries default to the paper's
/// parameters.
pub fn all(quick: bool) -> Vec<Report> {
    vec![
        fig01::run(),
        fig02::run(),
        table1::run(quick),
        table2::run(),
        version::run(),
        fig06::run(),
        fig07::run(quick),
        fig08::run(),
        fig09::run(),
        fig11::run(quick),
        fig12::run(quick),
    ]
}
