//! Shared experiment plumbing.

use fs2_arch::{MemLevel, Sku};
use fs2_core::groups::{format_groups, parse_groups, AccessGroup, Pattern};
use fs2_core::mix::{InstructionMix, MixRegistry};
use fs2_core::payload::{build_payload, default_unroll, Payload, PayloadConfig};
use fs2_power::{solve_throttle, NodePowerModel, ThrottleResult};
use fs2_sim::SystemSim;

/// Builds a payload from a group string with the architecture default
/// mix and unroll factor.
pub fn payload_for(sku: &Sku, spec: &str) -> Payload {
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups(spec).expect("experiment group strings are valid");
    let unroll = default_unroll(sku, mix, &groups);
    build_payload(sku, &PayloadConfig { mix, groups, unroll })
}

/// Direct (traceless) evaluation: EDC-aware steady state + power.
/// Orders of magnitude faster than a full runner pass; used by the
/// parameter sweeps.
pub fn direct_eval(sku: &Sku, payload: &Payload, freq_mhz: f64) -> ThrottleResult {
    let sim = SystemSim::new(sku.clone());
    let model = NodePowerModel::new(sku.clone());
    solve_throttle(&sim, &model, &payload.kernel, freq_mhz, None, 0.0)
}

/// "To get the ratio with the highest power consumption, we vary the
/// ratio of register calculations and memory accesses" (§IV-D): sweeps
/// the REG share (and the nearest level's weight) for a ladder rung that
/// touches all levels up to `up_to`, returning the highest-power
/// configuration.
pub fn optimize_rung(
    sku: &Sku,
    up_to: Option<MemLevel>,
    freq_mhz: f64,
) -> (Vec<AccessGroup>, ThrottleResult) {
    let mix_groups = |reg: u32, near: u32, up_to: Option<MemLevel>| -> Vec<AccessGroup> {
        let mut groups = Vec::new();
        if reg > 0 {
            groups.push(AccessGroup::reg(reg));
        }
        if let Some(level) = up_to {
            for (i, &l) in level.up_to().iter().enumerate() {
                let pattern = if l == MemLevel::L1 {
                    Pattern::TwoLoadsStore
                } else {
                    Pattern::LoadStore
                };
                let count = if i == 0 { near } else { 1 };
                groups.push(AccessGroup::mem(l, pattern, count));
            }
        } else if reg == 0 {
            groups.push(AccessGroup::reg(1));
        }
        groups
    };

    let mut best: Option<(Vec<AccessGroup>, ThrottleResult)> = None;
    // Wide REG sweep: shared far levels (Haswell's socket-wide L3) need
    // sparse access schedules, i.e. large register shares.
    let reg_candidates: &[u32] = if up_to.is_none() {
        &[1]
    } else {
        &[0, 1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 30]
    };
    // Dense near-level traffic with sparse far-level accesses is a key
    // shape (lots of L1 work riding under an almost-saturated DRAM
    // stream), so the near weight sweeps far wider than the REG share.
    let near_candidates: &[u32] = if up_to.is_none() {
        &[0]
    } else {
        &[1, 2, 3, 4, 6, 8, 12, 16]
    };
    for &reg in reg_candidates {
        for &near in near_candidates {
            let groups = mix_groups(reg, near, up_to);
            if groups.is_empty() {
                continue;
            }
            let mix = MixRegistry::default_for(sku.uarch);
            let unroll = default_unroll(sku, mix, &groups);
            let payload = build_payload(
                sku,
                &PayloadConfig {
                    mix,
                    groups: groups.clone(),
                    unroll,
                },
            );
            let result = direct_eval(sku, &payload, freq_mhz);
            let better = match &best {
                None => true,
                Some((_, b)) => result.power.total_w() > b.power.total_w(),
            };
            if better {
                best = Some((groups, result));
            }
        }
    }
    best.expect("at least one candidate evaluated")
}

/// Pretty group-string for reports.
pub fn spec_of(groups: &[AccessGroup]) -> String {
    format_groups(groups)
}

/// The SQRT low-power loop payload.
pub fn sqrt_payload(sku: &Sku) -> Payload {
    build_payload(
        sku,
        &PayloadConfig {
            mix: InstructionMix::SQRT,
            groups: parse_groups("REG:1").unwrap(),
            unroll: 64,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_optimizer_monotone_in_levels() {
        let sku = Sku::amd_epyc_7502();
        let mut prev = 0.0;
        for up_to in [
            None,
            Some(MemLevel::L1),
            Some(MemLevel::L2),
            Some(MemLevel::L3),
            Some(MemLevel::Ram),
        ] {
            let (_, result) = optimize_rung(&sku, up_to, 1500.0);
            let p = result.power.total_w();
            assert!(
                p > prev,
                "rung {up_to:?} not above previous: {p:.1} vs {prev:.1}"
            );
            prev = p;
        }
    }

    #[test]
    fn direct_eval_matches_runner_scale() {
        let sku = Sku::amd_epyc_7502();
        let p = payload_for(&sku, "REG:1");
        let r = direct_eval(&sku, &p, 1500.0);
        assert!((180.0..280.0).contains(&r.power.total_w()));
    }
}
