//! Shared experiment plumbing, routed through the `fs2-core` engine.
//!
//! Every experiment builds one [`Engine`] for its SKU and draws cached
//! payloads, traceless evaluations, sessions and parallel sweeps from
//! it instead of wiring `build_payload` + `SystemSim` + `NodePowerModel`
//! by hand.

use fs2_arch::{MemLevel, Sku};
use fs2_core::engine::Engine;
use fs2_core::groups::{format_groups, parse_groups, AccessGroup, Pattern};
use fs2_core::mix::{InstructionMix, MixRegistry};
use fs2_core::payload::{default_unroll, Payload, PayloadConfig};
use fs2_power::ThrottleResult;
use std::sync::Arc;

/// The engine every experiment on `sku` shares.
pub fn engine_for(sku: Sku) -> Engine {
    Engine::new(sku)
}

/// Cached payload from a group string with the architecture default mix
/// and unroll factor.
pub fn payload_for(engine: &Engine, spec: &str) -> Arc<Payload> {
    engine
        .payload_for_spec(spec)
        .expect("experiment group strings are valid")
}

/// Direct (traceless) evaluation: EDC-aware steady state + power.
/// Orders of magnitude faster than a full runner pass; used by the
/// parameter sweeps. This is the raw payload path without the §III-D
/// data effect (trivial fraction 0.0), keeping the figure/table
/// experiments byte-stable; config-holding callers use
/// [`Engine::eval`], which wires in the cached trivial fraction.
pub fn direct_eval(engine: &Engine, payload: &Payload, freq_mhz: f64) -> ThrottleResult {
    engine.eval_payload(payload, freq_mhz, 0.0)
}

/// "To get the ratio with the highest power consumption, we vary the
/// ratio of register calculations and memory accesses" (§IV-D): sweeps
/// the REG share (and the nearest level's weight) for a ladder rung that
/// touches all levels up to `up_to`, returning the highest-power
/// configuration. The candidate grid fans out over [`Engine::sweep`].
pub fn optimize_rung(
    engine: &Engine,
    up_to: Option<MemLevel>,
    freq_mhz: f64,
) -> (Vec<AccessGroup>, ThrottleResult) {
    let mix_groups = |reg: u32, near: u32, up_to: Option<MemLevel>| -> Vec<AccessGroup> {
        let mut groups = Vec::new();
        if reg > 0 {
            groups.push(AccessGroup::reg(reg));
        }
        if let Some(level) = up_to {
            for (i, &l) in level.up_to().iter().enumerate() {
                let pattern = if l == MemLevel::L1 {
                    Pattern::TwoLoadsStore
                } else {
                    Pattern::LoadStore
                };
                let count = if i == 0 { near } else { 1 };
                groups.push(AccessGroup::mem(l, pattern, count));
            }
        } else if reg == 0 {
            groups.push(AccessGroup::reg(1));
        }
        groups
    };

    // Wide REG sweep: shared far levels (Haswell's socket-wide L3) need
    // sparse access schedules, i.e. large register shares.
    let reg_candidates: &[u32] = if up_to.is_none() {
        &[1]
    } else {
        &[0, 1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 30]
    };
    // Dense near-level traffic with sparse far-level accesses is a key
    // shape (lots of L1 work riding under an almost-saturated DRAM
    // stream), so the near weight sweeps far wider than the REG share.
    let near_candidates: &[u32] = if up_to.is_none() {
        &[0]
    } else {
        &[1, 2, 3, 4, 6, 8, 12, 16]
    };
    let mut candidates: Vec<Vec<AccessGroup>> = reg_candidates
        .iter()
        .flat_map(|&reg| {
            near_candidates
                .iter()
                .map(move |&near| mix_groups(reg, near, up_to))
        })
        .filter(|groups| !groups.is_empty())
        .collect();

    let evaluated = engine.sweep_hinted(
        &candidates,
        0,
        // Known per-candidate cost: payload generation dominates a
        // cache-miss evaluation and scales with the total access
        // count, so dense grids queue ahead of the trivial ones.
        |_, groups| groups.iter().map(|g| u64::from(g.count)).sum(),
        |engine, _, groups| {
            let mix = MixRegistry::default_for(engine.sku().uarch);
            let unroll = default_unroll(engine.sku(), mix, groups);
            engine.eval(
                &PayloadConfig {
                    mix,
                    groups: groups.clone(),
                    unroll,
                },
                freq_mhz,
            )
        },
    );

    // Deterministic selection: strict improvement, first index wins ties
    // (identical to the previous serial loop).
    let mut best: Option<(usize, f64)> = None;
    for (i, result) in evaluated.iter().enumerate() {
        let p = result.power.total_w();
        if best.is_none_or(|(_, bp)| p > bp) {
            best = Some((i, p));
        }
    }
    let (i, _) = best.expect("at least one candidate evaluated");
    let result = evaluated.into_iter().nth(i).expect("index in range");
    (candidates.swap_remove(i), result)
}

/// Pretty group-string for reports.
pub fn spec_of(groups: &[AccessGroup]) -> String {
    format_groups(groups)
}

/// The SQRT low-power loop payload.
pub fn sqrt_payload(engine: &Engine) -> Arc<Payload> {
    engine.payload(&PayloadConfig {
        mix: InstructionMix::SQRT,
        groups: parse_groups("REG:1").unwrap(),
        unroll: 64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_optimizer_monotone_in_levels() {
        let engine = engine_for(Sku::amd_epyc_7502());
        let mut prev = 0.0;
        for up_to in [
            None,
            Some(MemLevel::L1),
            Some(MemLevel::L2),
            Some(MemLevel::L3),
            Some(MemLevel::Ram),
        ] {
            let (_, result) = optimize_rung(&engine, up_to, 1500.0);
            let p = result.power.total_w();
            assert!(
                p > prev,
                "rung {up_to:?} not above previous: {p:.1} vs {prev:.1}"
            );
            prev = p;
        }
    }

    #[test]
    fn direct_eval_matches_runner_scale() {
        let engine = engine_for(Sku::amd_epyc_7502());
        let p = payload_for(&engine, "REG:1");
        let r = direct_eval(&engine, &p, 1500.0);
        assert!((180.0..280.0).contains(&r.power.total_w()));
    }

    #[test]
    fn hinted_experiment_queue_matches_unhinted_bitwise() {
        // Regression for the duration-hint wiring: the experiment
        // worker shape (cached payload + traceless eval) must return
        // identical results through the hinted queue, the unhinted
        // queue and a serial pass.
        let engine = engine_for(Sku::amd_epyc_7502());
        let candidates: Vec<Vec<AccessGroup>> = [
            "REG:1",
            "REG:4,L1_L:2",
            "REG:4,L1_2LS:2,L2_LS:1",
            "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1",
            "REG:2,RAM_LS:2",
            "REG:30,L1_2LS:16,L2_LS:1,L3_LS:1,RAM_LS:1",
        ]
        .iter()
        .map(|s| parse_groups(s).unwrap())
        .collect();
        let worker = |engine: &Engine, _: usize, groups: &Vec<AccessGroup>| {
            let mix = MixRegistry::default_for(engine.sku().uarch);
            let unroll = default_unroll(engine.sku(), mix, groups);
            let r = engine.eval(
                &PayloadConfig {
                    mix,
                    groups: groups.clone(),
                    unroll,
                },
                1500.0,
            );
            (r.power.total_w().to_bits(), r.applied_mhz.to_bits())
        };
        let hint =
            |_: usize, groups: &Vec<AccessGroup>| groups.iter().map(|g| u64::from(g.count)).sum();
        let serial = engine.sweep(&candidates, 1, worker);
        let unhinted = engine.sweep(&candidates, 4, worker);
        let hinted = engine.sweep_hinted(&candidates, 4, hint, worker);
        assert_eq!(hinted, unhinted, "hinted queue changed results");
        assert_eq!(hinted, serial, "parallel queue diverged from serial");
    }

    #[test]
    fn rung_optimizer_reuses_cached_payloads() {
        let engine = engine_for(Sku::amd_epyc_7502());
        let (g1, r1) = optimize_rung(&engine, Some(MemLevel::L2), 1500.0);
        let after_first = engine.cache_stats();
        assert!(after_first.misses > 0);
        // Second identical sweep: all payloads come from the cache.
        let (g2, r2) = optimize_rung(&engine, Some(MemLevel::L2), 1500.0);
        let after_second = engine.cache_stats();
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits >= after_first.misses);
        assert_eq!(g1, g2);
        assert_eq!(r1.power.total_w(), r2.power.total_w());
    }
}
