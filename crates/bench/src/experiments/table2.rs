//! Table II — test-system details, printed from the SKU database.

use crate::report::Report;
use fs2_arch::{MemLevel, Sku};

pub fn run() -> Report {
    let sku = Sku::amd_epyc_7502();
    let mut rep = Report::new("table2", "test system details (SKU database entry)");
    let t = &sku.topology;
    rep.line(format!(
        "Processor             2x AMD EPYC 7502 ({})",
        sku.name
    ));
    rep.line(format!(
        "Cores                 {}x {} ({} threads)",
        t.sockets,
        t.cores_per_socket(),
        t.total_threads()
    ));
    let freqs: Vec<String> = sku
        .pstates
        .states
        .iter()
        .map(|s| format!("{}", s.freq_mhz))
        .collect();
    rep.line(format!(
        "Available frequencies {} MHz (nominal {})",
        freqs.join(", "),
        sku.nominal_mhz()
    ));
    rep.line(format!(
        "L1-I and L1-D cache   {}x {} KiB + {} KiB",
        t.total_cores(),
        sku.l1i_bytes / 1024,
        sku.mem_level(MemLevel::L1).size_bytes / 1024
    ));
    rep.line(format!(
        "L2 cache              {}x {} KiB",
        t.total_cores(),
        sku.mem_level(MemLevel::L2).size_bytes / 1024
    ));
    rep.line(format!(
        "L3 cache              {}x {} MiB",
        t.total_ccxs(),
        sku.mem_level(MemLevel::L3).size_bytes / (1024 * 1024)
    ));
    rep.line(format!(
        "Memory                {} channels/socket DDR4 @ {} MHz ({:.0} GB/s/socket sustained)",
        sku.dram.channels,
        sku.dram.mem_clock_mhz,
        sku.dram.sustained_bytes_per_ns()
    ));
    rep.line(format!(
        "EDC limit             {} A per socket (throttle step {} MHz)",
        sku.edc_amps_per_socket, sku.pstates.throttle_step_mhz
    ));
    rep.blank();
    rep.line("paper Table II: 2x AMD EPYC 7502, 2x 32 cores, 1500/2200/2500 MHz,");
    rep.line("64x 32+32 KiB L1, 64x 512 KiB L2, 16x 16 MiB L3, 16x DDR4 @ 1600 MHz");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_matches_paper() {
        let out = super::run().render();
        assert!(out.contains("2x AMD EPYC 7502"));
        assert!(out.contains("2x 32"));
        assert!(out.contains("1500, 2200, 2500") || out.contains("2500, 2200, 1500"));
        assert!(out.contains("16x 16 MiB"));
        assert!(out.contains("512 KiB"));
    }
}
