//! Fig. 7 — power trace of FIRESTARTER 2's automatic tuning: 240 s
//! preheat, then back-to-back 10 s candidates with no recompile gaps.

use crate::experiments::common::engine_for;
use crate::report::{w, Report};
use fs2_arch::Sku;
use fs2_core::autotune::TuneConfig;
use fs2_tuning::Nsga2Config;

pub fn run(quick: bool) -> Report {
    let engine = engine_for(Sku::amd_epyc_7502());
    let mut session = engine.session();
    let cfg = TuneConfig {
        nsga2: Nsga2Config {
            individuals: if quick { 8 } else { 16 },
            generations: if quick { 2 } else { 4 },
            mutation_prob: 0.35,
            crossover_prob: 0.9,
            seed: 7,
        },
        test_duration_s: 10.0,
        preheat_s: 240.0,
        freq_mhz: 1500.0,
        ..TuneConfig::default()
    };
    let result = session.tune(&cfg);

    let total_s = session.clock().now_secs();
    let idle_w = session.power_model().idle_power().total_w();
    let (min_after_preheat, _max_w) = session
        .trace()
        .min_max_between(cfg.preheat_s, total_s)
        .unwrap();

    let mut rep = Report::new(
        "fig07",
        "FIRESTARTER 2 tuning power trace (preheat + gap-free 10 s candidates)",
    );
    rep.line(format!(
        "preheat {:.0} s, then {} candidate evaluations of {:.0} s each; total {:.0} s",
        cfg.preheat_s,
        result.nsga2.history.len(),
        cfg.test_duration_s,
        total_s
    ));
    rep.line(format!(
        "after preheat the trace never drops below {} W (idle would be {} W) — no visible gap between candidates",
        w(min_after_preheat),
        w(idle_w)
    ));
    rep.line(format!(
        "measurement per candidate: {:.0} s vs. the v1 prototype's {:.0} s cycle (Fig. 6)",
        cfg.test_duration_s, 217.0
    ));

    rep.csv_header(&["t_s", "power_w"]);
    let agg = session.trace().aggregate_mean(2.0);
    for s in agg.samples().iter().take(300) {
        rep.csv_row(&[format!("{:.1}", s.t_s), w(s.value)]);
    }
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig07_no_idle_gaps() {
        let rep = super::run(true);
        let out = rep.render();
        assert!(out.contains("no visible gap"));
        // Extract the two watt figures and verify the claim numerically.
        let line = out
            .lines()
            .find(|l| l.contains("never drops below"))
            .unwrap();
        let nums: Vec<f64> = line
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect();
        assert!(nums[0] > nums[1] * 1.25, "gap too close to idle: {line}");
    }
}
