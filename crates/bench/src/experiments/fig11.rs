//! Fig. 11 — power and instruction throughput of all evaluated
//! individuals of an optimization at 1500 MHz; the Pareto front emerges
//! and the selected optimum ω_opt is the highest-power individual.

use crate::experiments::common::engine_for;
use crate::report::{r3, w, Report};
use fs2_arch::Sku;
use fs2_core::autotune::{genes_to_groups, TuneConfig};
use fs2_core::groups::format_groups;
use fs2_tuning::{fast_nondominated_sort, Nsga2Config};

/// The paper's configuration: 40 individuals × 20 generations, m = 0.35,
/// t = 10 s, preheat 240 s. `quick` shrinks it for tests/debug runs.
pub fn tune_config(quick: bool, freq_mhz: f64, seed: u64) -> TuneConfig {
    TuneConfig {
        nsga2: Nsga2Config {
            individuals: if quick { 10 } else { 40 },
            generations: if quick { 5 } else { 20 },
            mutation_prob: 0.35,
            crossover_prob: 0.9,
            seed,
        },
        test_duration_s: 10.0,
        preheat_s: 240.0,
        freq_mhz,
        ..TuneConfig::default()
    }
}

pub fn run(quick: bool) -> Report {
    let engine = engine_for(Sku::amd_epyc_7502());
    let cfg = tune_config(quick, 1500.0, 11);
    let result = engine.session().tune(&cfg);

    let mut rep = Report::new(
        "fig11",
        "all evaluated individuals (power vs IPC) of an optimization at 1500 MHz",
    );
    rep.line(format!(
        "{} individuals x {} generations (m = {}), -t 10, preheat 240 s: {} evaluations, {} cache hits",
        cfg.nsga2.individuals,
        cfg.nsga2.generations,
        cfg.nsga2.mutation_prob,
        result.nsga2.history.len(),
        result.nsga2.cache_hits
    ));

    // Does the final front dominate the initial random population?
    let objs: Vec<Vec<f64>> = result
        .nsga2
        .history
        .iter()
        .map(|i| i.objectives.clone())
        .collect();
    let fronts = fast_nondominated_sort(&objs);
    let front0: Vec<usize> = fronts.first().cloned().unwrap_or_default();
    let gen0_on_front = front0
        .iter()
        .filter(|&&i| result.nsga2.history[i].generation == 0)
        .count();
    rep.line(format!(
        "global Pareto front holds {} points, only {} from the random initial generation",
        front0.len(),
        gen0_on_front
    ));

    let best = &result.best;
    rep.line(format!(
        "selected optimum ω_opt-1500MHz: {} W, ipc {}  ({})",
        w(best.objectives[0]),
        r3(best.objectives[1]),
        format_groups(&genes_to_groups(&best.genes))
    ));
    let max_power = result
        .nsga2
        .history
        .iter()
        .map(|i| i.objectives[0])
        .fold(f64::NEG_INFINITY, f64::max);
    rep.line(format!(
        "highest power seen across all evaluations: {} W (paper: ≈438 W at 1500 MHz)",
        w(max_power)
    ));

    rep.csv_header(&["eval_index", "generation", "power_w", "ipc"]);
    for ind in &result.nsga2.history {
        rep.csv_row(&[
            ind.eval_index.to_string(),
            ind.generation.to_string(),
            w(ind.objectives[0]),
            r3(ind.objectives[1]),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11_front_and_history() {
        let rep = super::run(true);
        let out = rep.render();
        assert!(out.contains("selected optimum"));
        // 10 × (5+1) = 60 evaluations in quick mode.
        assert_eq!(rep.csv().lines().count(), 61);
    }
}
