//! Table I — overview of stress tests for Linux: the qualitative feature
//! matrix, extended with measured mean/min/max power of each tool's
//! behavioural model on the simulated Haswell node.

use crate::experiments::common::engine_for;
use crate::report::{w, Report};
use fs2_arch::Sku;
use fs2_baselines::registry::WorkloadDefinition;
use fs2_baselines::{run_baseline, table1, Baseline};

fn check(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

pub fn run(quick: bool) -> Report {
    let mut rep = Report::new(
        "table1",
        "overview of stress tests (feature matrix + measured power on 2x E5-2680 v3 @ 2000 MHz)",
    );

    rep.line(format!(
        "{:<15} {:<26} {:>4} {:>4} {:>4} {:>4}  {:<8} {:<11} {:<9}",
        "benchmark", "workload", "proc", "mem", "gpu", "net", "err-chk", "define-new", "cc-indep"
    ));
    for row in table1() {
        let err = match row.error_check {
            Some(true) => "yes",
            Some(false) => "-",
            None => "partial",
        };
        let def = match row.define_new {
            WorkloadDefinition::Template => "template",
            WorkloadDefinition::Runtime => "runtime",
            WorkloadDefinition::SourceCode => "source",
            WorkloadDefinition::Fixed => "-",
        };
        rep.line(format!(
            "{:<15} {:<26} {:>4} {:>4} {:>4} {:>4}  {:<8} {:<11} {:<9}",
            row.name,
            row.workload,
            check(row.stresses_processor),
            check(row.stresses_memory),
            check(row.stresses_gpu),
            check(row.stresses_network),
            err,
            def,
            check(row.compiler_independent),
        ));
    }

    // Measured extension: run each behavioural model.
    rep.blank();
    rep.line("measured on the simulated Haswell node (240 s window after preheat):");
    rep.csv_header(&["tool", "mean_w", "min_w", "max_w"]);
    let duration = if quick { 120.0 } else { 240.0 };
    // Each tool's behavioural model runs in its own preheated session,
    // fanned out in parallel with its known simulated duration as the
    // queue hint (preheat + measurement window).
    let engine = engine_for(Sku::intel_xeon_e5_2680_v3());
    let mut results: Vec<(String, f64, f64, f64)> = engine.sweep_hinted(
        &Baseline::ALL,
        0,
        |_, _| ((240.0 + duration) * 1000.0) as u64,
        |engine, _, b| {
            let mut session = engine.session();
            session.hold_power(240.0, 20.0, 250.0); // preheat
            let r = run_baseline(session.runner_mut(), *b, duration, 2000.0);
            (r.name.to_string(), r.mean_w, r.min_w, r.max_w)
        },
    );
    results.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, mean, min, max) in &results {
        rep.line(format!(
            "  {:<20} mean {:>7} W   (min {:>7}, max {:>7})",
            name,
            w(*mean),
            w(*min),
            w(*max)
        ));
        rep.csv_row(&[name.clone(), w(*mean), w(*min), w(*max)]);
    }
    rep.blank();
    rep.line("shape: FIRESTARTER 2 tops the ladder; Linpack/Prime95 vary over time; stress-ng's scalar matrix kernel cannot reach SIMD power levels");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_firestarter2_wins() {
        let rep = super::run(true);
        let csv = rep.csv();
        let first = csv.lines().nth(1).unwrap();
        assert!(
            first.starts_with("FIRESTARTER"),
            "power ranking not led by FIRESTARTER: {first}"
        );
        // All eight tools measured.
        assert_eq!(csv.lines().count(), 9);
    }
}
