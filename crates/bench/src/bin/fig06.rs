//! Regenerates the fig06 experiment (see EXPERIMENTS.md).
fn main() {
    print!("{}", fs2_bench::experiments::fig06::run().render());
}
