//! Regenerates the fig09 experiment (see EXPERIMENTS.md).
fn main() {
    print!("{}", fs2_bench::experiments::fig09::run().render());
}
