//! Regenerates every table and figure, writing reports to `results/`.
//! Pass --quick for reduced NSGA-II configurations.

use std::fs;
use std::path::Path;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    for report in fs2_bench::experiments::all(quick) {
        let rendered = report.render();
        println!("{rendered}");
        let path = out_dir.join(format!("{}.txt", report.id));
        fs::write(&path, &rendered).expect("write report");
        eprintln!("wrote {}", path.display());
    }
}
