//! Regenerates the fig01 experiment (see EXPERIMENTS.md).
fn main() {
    print!("{}", fs2_bench::experiments::fig01::run().render());
}
