//! Micro-benchmark for the engine-backed fleet pipeline: the batched
//! group-eval path against the retained per-node reference, a serial
//! vs parallel packing sweep, and the registry-wide cache counters
//! accumulated across every case (the service-loop picture: one
//! registry serves all requests).
//!
//! Writes the measured baseline to `BENCH_fleet.json` (pass an output
//! path as the first argument to override; `--threads 1,2,4` overrides
//! the sweep list). Criterion is unavailable offline, so the timing
//! loop is manual: median of 9 repetitions.
//!
//! ```sh
//! cargo run --release -p fs2-bench --bin bench_fleet
//! ```

use fs2_bench::timing::median_ms;
use fs2_calib::{calibrate, CalibConfig, FleetProfile, Trace};
use fs2_cluster::{BudgetPolicy, FleetConfig, FleetSim, TemporalMode};
use fs2_core::EngineRegistry;
use fs2_service::{FleetRequest, FleetService, ServiceConfig};
use std::fmt::Write as _;
use std::hint::black_box;

/// Median-of-9 wall time of `f`, in milliseconds per call.
fn time_ms(f: impl FnMut()) -> f64 {
    median_ms(2, 1, 9, f)
}

/// Thread counts to sweep: powers of two up to the host parallelism.
/// A 1-thread host degrades to `[1]` — the sweep then records that no
/// packing measurement was possible rather than a fake speedup.
fn default_sweep(host_threads: usize) -> Vec<usize> {
    let mut sweep = vec![1];
    let mut t = 2;
    while t <= host_threads {
        sweep.push(t);
        t *= 2;
    }
    if *sweep.last().unwrap() < host_threads {
        sweep.push(host_threads);
    }
    sweep
}

fn main() {
    let mut out_path = "BENCH_fleet.json".to_string();
    let mut sweep_override: Option<Vec<usize>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let list = args.next().expect("--threads needs a comma-separated list");
            sweep_override = Some(
                list.split(',')
                    .map(|s| s.trim().parse().expect("thread count"))
                    .collect(),
            );
        } else {
            out_path = arg;
        }
    }

    // A long-tailed heterogeneous fleet: the fat-node slice is sampled
    // 8x longer, so hinted packing has actual work to schedule around.
    let mut cfg = FleetConfig::taurus_haswell_scaled(128);
    cfg.samples_per_node = 2000;
    cfg.groups[1].samples_per_node = Some(16_000);
    let total_samples = cfg.total_samples();

    // One registry for the whole benchmark run: every case after the
    // first hits the registry-wide payload/decode/ExecStats tier, the
    // way a resident fleet service would.
    let registry = EngineRegistry::with_seed(cfg.seed);

    let serial = {
        let mut c = cfg.clone();
        c.threads = 1;
        FleetSim::new(c)
    };
    let parallel = {
        let mut c = cfg.clone();
        c.threads = 0;
        FleetSim::new(c)
    };

    // Determinism gates before any number is published: the batched
    // composer (cold and warm-registry), the parallel packing, and the
    // per-node reference path must all emit identical bytes.
    let base = serial.run();
    let reference = serial.run_reference();
    assert_eq!(
        base.samples, reference.samples,
        "batched fleet diverges from the per-node reference"
    );
    assert_eq!(
        base.samples,
        serial.run_with(&registry).samples,
        "shared-registry fleet diverges from cold-registry run"
    );
    assert_eq!(
        base.samples,
        parallel.run_with(&registry).samples,
        "parallel fleet diverges from serial"
    );

    // The per-node reference rebuilds its registry per call, exactly as
    // the historical hot loop did; the batched cases share `registry`.
    let per_node_ms = time_ms(|| {
        black_box(serial.run_reference().samples);
    });
    let serial_ms = time_ms(|| {
        black_box(serial.run_with(&registry).samples);
    });
    let parallel_ms = time_ms(|| {
        black_box(parallel.run_with(&registry).samples);
    });
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial_ms / parallel_ms;
    let speedup_batch = per_node_ms / serial_ms;

    // Thread sweep over the same fleet and shared registry: a real
    // parallel-vs-serial packing measurement whenever the host has more
    // than one thread.
    let sweep = sweep_override.unwrap_or_else(|| default_sweep(host_threads));
    let mut sweep_ms: Vec<(usize, f64)> = Vec::with_capacity(sweep.len());
    for &t in &sweep {
        let sim = {
            let mut c = cfg.clone();
            c.threads = t;
            FleetSim::new(c)
        };
        assert_eq!(
            base.samples,
            sim.run_with(&registry).samples,
            "fleet diverges at {t} threads"
        );
        let ms = time_ms(|| {
            black_box(sim.run_with(&registry).samples);
        });
        sweep_ms.push((t, ms));
    }

    // Episode mode over the same fleet: timing plus the temporal
    // statistics (the autocorrelation an i.i.d. sampler cannot have),
    // gated on the usual serial/parallel determinism check.
    let ep_serial = {
        let mut c = cfg.clone();
        c.temporal = TemporalMode::Episodes;
        c.threads = 1;
        FleetSim::new(c)
    };
    let ep_parallel = {
        let mut c = cfg.clone();
        c.temporal = TemporalMode::Episodes;
        c.threads = 0;
        FleetSim::new(c)
    };
    let ep_base = ep_serial.run();
    assert_eq!(
        ep_base.samples,
        ep_parallel.run_with(&registry).samples,
        "parallel episode fleet diverges from serial"
    );
    let ep_serial_ms = time_ms(|| {
        black_box(ep_serial.run_with(&registry).samples);
    });
    let ep_parallel_ms = time_ms(|| {
        black_box(ep_parallel.run_with(&registry).samples);
    });
    let ep_stats = ep_base.episodes.expect("episode stats");

    // Budget-arbitrated episode fleet: the tick-synchronous three-phase
    // pass (propose parallel, arbitrate serial, apply parallel) under a
    // binding facility budget. Uniform horizon here — with the fat
    // slice's 16k-tick tail, 87.5 % of the ticks would have only 15
    // active nodes and the arbiter would mostly idle. All 128 nodes
    // stay active for all 2000 ticks, and 18 kW sits between the floor
    // sum (~10.7 kW) and the unconstrained mean draw (~18.7 kW), so
    // the arbiter works every tick.
    let budget_w = 18_000.0;
    let mut bu_cfg = cfg.clone();
    bu_cfg.groups[1].samples_per_node = None;
    bu_cfg.temporal = TemporalMode::Episodes;
    bu_cfg.budget_w = Some(budget_w);
    bu_cfg.budget_policy = BudgetPolicy::ShedToFloor;
    let bu_serial = {
        let mut c = bu_cfg.clone();
        c.threads = 1;
        FleetSim::new(c)
    };
    let bu_parallel = {
        let mut c = bu_cfg.clone();
        c.threads = 0;
        FleetSim::new(c)
    };
    let bu_base = bu_serial.run();
    assert_eq!(
        bu_base.samples,
        bu_parallel.run_with(&registry).samples,
        "parallel budgeted fleet diverges from serial"
    );
    let bu_serial_ms = time_ms(|| {
        black_box(bu_serial.run_with(&registry).samples);
    });
    let bu_parallel_ms = time_ms(|| {
        black_box(bu_parallel.run_with(&registry).samples);
    });
    let bu_stats = bu_base.budget.expect("budget stats");

    // The shared registry's counters after every case above: this is
    // the number the batching work exists for — repeat requests must be
    // mostly cache hits.
    let s = registry.stats();
    let rate = |hits: u64, misses: u64| {
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    };
    let payload_rate = rate(s.payload_hits, s.payload_misses);
    let exec_rate = rate(s.exec_hits, s.exec_misses);
    let decoded_rate = rate(s.decoded_hits, s.decoded_misses);

    // Service case: the same fleet served through the request/shard
    // stack, measuring the *cross-request* tier — a repeat tenant with
    // an identical config, then a near-identical one (new power cap).
    // This is the ROADMAP's "measure cross-request hit rates" ask.
    let service = FleetService::new(ServiceConfig::default());
    let svc_req = FleetRequest {
        nodes: 64,
        samples_per_node: 500,
        seed: Some(cfg.seed),
        ..FleetRequest::fig1()
    };
    let first = service.handle(&svc_req);
    assert!(first.ok, "{:?}", first.error);
    let svc_cold_ms = time_ms(|| {
        black_box(service.handle(&svc_req).samples);
    });
    let repeat = service.handle(&svc_req);
    assert!(repeat.ok);
    assert_eq!(
        first.samples, repeat.samples,
        "served repeat diverges from the first reply"
    );
    let svc_identical_payload_rate = repeat.registry.cross_payload_hit_rate();
    let svc_identical_exec_rate = repeat.registry.cross_exec_hit_rate();
    let near = service.handle(&FleetRequest {
        power_cap_w: Some(280.0),
        ..svc_req.clone()
    });
    assert!(near.ok);
    let svc_near_payload_rate = near.registry.cross_payload_hit_rate();

    // Clone-fidelity case: a trace synthesized from the pinned
    // exemplar profile, calibrated back with the CI smoke's budget.
    // The acceptance gates (shares within 2 %, lag-1 autocorr within
    // 0.02, per-state mean dwell within 10 %) run here too, so a
    // published baseline always reflects a passing calibration.
    let mut ct_cfg = FleetConfig {
        samples_per_node: 1200,
        seed: 0x7AC3_D00D,
        temporal: TemporalMode::Episodes,
        ..FleetConfig::taurus_haswell_scaled(96)
    };
    FleetProfile::exemplar().apply(&mut ct_cfg);
    let ct_run = FleetSim::new(ct_cfg.clone()).run();
    let ct_trace = Trace::from_fleet(&ct_cfg, &ct_run.samples);
    let calib_cfg = CalibConfig {
        eval_nodes: 32,
        eval_ticks: 600,
        individuals: 12,
        generations: 6,
        ..CalibConfig::default()
    };
    let t0 = std::time::Instant::now();
    let calib = calibrate(&ct_trace, &calib_cfg).expect("exemplar trace is well-formed");
    let calib_ms = t0.elapsed().as_secs_f64() * 1e3;
    let fid = &calib.report;
    assert!(fid.max_share_error <= 0.02, "share {}", fid.max_share_error);
    assert!(
        fid.autocorr_error <= 0.02,
        "autocorr {}",
        fid.autocorr_error
    );
    assert!(
        fid.max_dwell_rel_error <= 0.10,
        "dwell {}",
        fid.max_dwell_rel_error
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"engine-backed fleet generation (batched group eval)\",\n");
    let _ = writeln!(
        json,
        "  \"fleet\": \"{} nodes ({} SKUs), {} samples, fat slice at 16k samples/node\",",
        cfg.total_nodes(),
        cfg.groups.len(),
        total_samples
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    if host_threads == 1 {
        // On a 1-thread host the parallel case degenerates to the
        // serial path; the speedup number is not meaningful.
        json.push_str(
            "  \"note\": \"single-threaded host: parallel == serial path, \
             speedup is not a packing measurement\",\n",
        );
    }
    json.push_str("  \"cases_ms\": {\n");
    let _ = writeln!(json, "    \"fleet_generate_per_node\": {per_node_ms:.2},");
    let _ = writeln!(json, "    \"fleet_generate_serial\": {serial_ms:.2},");
    let _ = writeln!(json, "    \"fleet_generate_parallel\": {parallel_ms:.2},");
    let _ = writeln!(json, "    \"fleet_episodes_serial\": {ep_serial_ms:.2},");
    let _ = writeln!(
        json,
        "    \"fleet_episodes_parallel\": {ep_parallel_ms:.2},"
    );
    let _ = writeln!(json, "    \"fleet_budget_serial\": {bu_serial_ms:.2},");
    let _ = writeln!(json, "    \"fleet_budget_parallel\": {bu_parallel_ms:.2}");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"speedup_batch_vs_per_node\": {speedup_batch:.2},");
    let _ = writeln!(json, "  \"speedup_parallel_vs_serial\": {speedup:.2},");
    json.push_str("  \"threads_sweep_ms\": {\n");
    for (i, (t, ms)) in sweep_ms.iter().enumerate() {
        let comma = if i + 1 < sweep_ms.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{t}\": {ms:.2}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"episodes\": {\n");
    let _ = writeln!(
        json,
        "    \"lag1_autocorr\": {:.4},",
        ep_stats.lag1_autocorr
    );
    let _ = writeln!(
        json,
        "    \"floor_time_share\": {:.4},",
        ep_stats.empirical_shares[0]
    );
    json.push_str("    \"mean_dwell_ticks\": {\n");
    let n_states = ep_stats.states.len();
    for (i, (state, d)) in ep_stats
        .states
        .iter()
        .zip(&ep_stats.mean_dwell_ticks)
        .enumerate()
    {
        let comma = if i + 1 < n_states { "," } else { "" };
        let _ = writeln!(json, "      \"{state}\": {d:.1}{comma}");
    }
    json.push_str("    }\n");
    json.push_str("  },\n");
    json.push_str("  \"budget\": {\n");
    let _ = writeln!(json, "    \"budget_w\": {budget_w:.0},");
    let _ = writeln!(json, "    \"policy\": \"{}\",", bu_stats.policy.name());
    let _ = writeln!(json, "    \"ticks\": {},", bu_stats.ticks);
    let _ = writeln!(json, "    \"peak_fleet_w\": {:.1},", bu_stats.peak_fleet_w);
    let _ = writeln!(json, "    \"mean_fleet_w\": {:.1},", bu_stats.mean_fleet_w);
    let _ = writeln!(
        json,
        "    \"p95_utilization\": {:.4},",
        bu_stats.utilization.quantile(0.95)
    );
    let _ = writeln!(
        json,
        "    \"shed_node_ticks\": {},",
        bu_stats.shed_ticks.iter().sum::<u64>()
    );
    let _ = writeln!(
        json,
        "    \"infeasible_floor_ticks\": {}",
        bu_stats.infeasible_floor_ticks
    );
    json.push_str("  },\n");
    json.push_str("  \"registry\": {\n");
    let _ = writeln!(json, "    \"engines\": {},", s.engines);
    let _ = writeln!(json, "    \"payload_hits\": {},", s.payload_hits);
    let _ = writeln!(json, "    \"payload_misses\": {},", s.payload_misses);
    let _ = writeln!(json, "    \"payload_entries\": {},", s.payload_entries);
    let _ = writeln!(json, "    \"payload_hit_rate\": {payload_rate:.4},");
    let _ = writeln!(json, "    \"spec_hits\": {},", s.spec_hits);
    let _ = writeln!(json, "    \"spec_misses\": {},", s.spec_misses);
    let _ = writeln!(json, "    \"unroll_hits\": {},", s.unroll_hits);
    let _ = writeln!(json, "    \"unroll_misses\": {},", s.unroll_misses);
    let _ = writeln!(json, "    \"decoded_hits\": {},", s.decoded_hits);
    let _ = writeln!(json, "    \"decoded_misses\": {},", s.decoded_misses);
    let _ = writeln!(json, "    \"decoded_hit_rate\": {decoded_rate:.4},");
    let _ = writeln!(json, "    \"exec_hits\": {},", s.exec_hits);
    let _ = writeln!(json, "    \"exec_misses\": {},", s.exec_misses);
    let _ = writeln!(json, "    \"exec_hit_rate\": {exec_rate:.4},");
    let _ = writeln!(json, "    \"evals\": {}", s.evals);
    json.push_str("  },\n");
    json.push_str("  \"service\": {\n");
    let _ = writeln!(json, "    \"request_ms\": {svc_cold_ms:.2},");
    let _ = writeln!(
        json,
        "    \"identical_payload_hit_rate\": {svc_identical_payload_rate:.4},"
    );
    let _ = writeln!(
        json,
        "    \"identical_exec_hit_rate\": {svc_identical_exec_rate:.4},"
    );
    let _ = writeln!(
        json,
        "    \"near_identical_payload_hit_rate\": {svc_near_payload_rate:.4}"
    );
    json.push_str("  },\n");
    json.push_str("  \"fidelity\": {\n");
    json.push_str("    \"trace\": \"exemplar-profile self-clone, 96 nodes x 1200 ticks\",\n");
    let _ = writeln!(json, "    \"calibrate_ms\": {calib_ms:.2},");
    let _ = writeln!(json, "    \"evaluations\": {},", calib.evaluations);
    let _ = writeln!(json, "    \"cdf_distance\": {:.4},", fid.cdf_distance);
    let _ = writeln!(json, "    \"autocorr_error\": {:.4},", fid.autocorr_error);
    let _ = writeln!(json, "    \"max_share_error\": {:.4},", fid.max_share_error);
    let _ = writeln!(
        json,
        "    \"mean_dwell_rel_error\": {:.4},",
        fid.mean_dwell_rel_error
    );
    let _ = writeln!(
        json,
        "    \"max_dwell_rel_error\": {:.4}",
        fid.max_dwell_rel_error
    );
    json.push_str("  }\n");
    json.push_str("}\n");

    println!("### bench_fleet — engine-backed fleet generation\n");
    println!(
        "{} nodes, {} samples ({} long-tail)",
        cfg.total_nodes(),
        total_samples,
        cfg.groups[1].nodes
    );
    println!("per-node: {per_node_ms:>9.2} ms  (pre-batching reference)");
    println!("batched:  {serial_ms:>9.2} ms  ({speedup_batch:.2}x vs per-node)");
    println!("parallel: {parallel_ms:>9.2} ms  ({host_threads} host threads)");
    println!("speedup:  {speedup:>9.2}x");
    if host_threads == 1 {
        println!("(single-threaded host: speedup is not a packing measurement)");
    }
    for (t, ms) in &sweep_ms {
        println!("threads {t}: {ms:>8.2} ms");
    }
    println!(
        "episodes: {ep_serial_ms:.2} ms serial / {ep_parallel_ms:.2} ms parallel, \
         lag-1 autocorr {:.3}, floor share {:.1}%",
        ep_stats.lag1_autocorr,
        ep_stats.empirical_shares[0] * 100.0
    );
    println!(
        "budget:   {bu_serial_ms:.2} ms serial / {bu_parallel_ms:.2} ms parallel at \
         {budget_w:.0} W ({}), peak {:.0} W, {} node-ticks shed",
        bu_stats.policy.name(),
        bu_stats.peak_fleet_w,
        bu_stats.shed_ticks.iter().sum::<u64>()
    );
    println!(
        "registry: {} engines, payloads {} built / {} hits ({:.0}% hit rate), \
         exec {} live / {} hits ({:.0}% hit rate), {} evals",
        s.engines,
        s.payload_misses,
        s.payload_hits,
        payload_rate * 100.0,
        s.exec_misses,
        s.exec_hits,
        exec_rate * 100.0,
        s.evals
    );
    println!(
        "service:  {svc_cold_ms:.2} ms/request; cross-request hit rates: \
         identical payload {:.0}% / exec {:.0}%, near-identical payload {:.0}%",
        svc_identical_payload_rate * 100.0,
        svc_identical_exec_rate * 100.0,
        svc_near_payload_rate * 100.0
    );
    println!(
        "fidelity: self-clone in {calib_ms:.0} ms / {} evals; cdf {:.4}, \
         autocorr err {:.4}, max share err {:.4}, dwell rel err {:.4} max",
        calib.evaluations,
        fid.cdf_distance,
        fid.autocorr_error,
        fid.max_share_error,
        fid.max_dwell_rel_error
    );

    std::fs::write(&out_path, json).expect("write benchmark baseline");
    eprintln!("wrote {out_path}");
}
