//! Micro-benchmark for the engine-backed fleet pipeline: serial vs
//! parallel sample generation (hinted sweep), with the registry's
//! cache hit/miss counters for the run.
//!
//! Writes the measured baseline to `BENCH_fleet.json` (pass an output
//! path as the first argument to override). Criterion is unavailable
//! offline, so the timing loop is manual: median of 5 repetitions.
//!
//! ```sh
//! cargo run --release -p fs2-bench --bin bench_fleet
//! ```

use fs2_bench::timing::median_ms;
use fs2_cluster::{BudgetPolicy, FleetConfig, FleetSim, TemporalMode};
use std::fmt::Write as _;
use std::hint::black_box;

/// Median-of-5 wall time of `f`, in milliseconds per call.
fn time_ms(f: impl FnMut()) -> f64 {
    median_ms(1, 1, 5, f)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());

    // A long-tailed heterogeneous fleet: the fat-node slice is sampled
    // 8x longer, so hinted packing has actual work to schedule around.
    let mut cfg = FleetConfig::taurus_haswell_scaled(128);
    cfg.samples_per_node = 2000;
    cfg.groups[1].samples_per_node = Some(16_000);
    let total_samples = cfg.total_samples();

    let serial = {
        let mut c = cfg.clone();
        c.threads = 1;
        FleetSim::new(c)
    };
    let parallel = {
        let mut c = cfg.clone();
        c.threads = 0;
        FleetSim::new(c)
    };

    // Determinism gate before any number is published.
    let base = serial.run();
    assert_eq!(
        base.samples,
        parallel.generate(),
        "parallel fleet diverges from serial"
    );

    let serial_ms = time_ms(|| {
        black_box(serial.generate());
    });
    let parallel_ms = time_ms(|| {
        black_box(parallel.generate());
    });
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial_ms / parallel_ms;
    let s = base.registry;

    // Episode mode over the same fleet: timing plus the temporal
    // statistics (the autocorrelation an i.i.d. sampler cannot have),
    // gated on the usual serial/parallel determinism check.
    let ep_serial = {
        let mut c = cfg.clone();
        c.temporal = TemporalMode::Episodes;
        c.threads = 1;
        FleetSim::new(c)
    };
    let ep_parallel = {
        let mut c = cfg.clone();
        c.temporal = TemporalMode::Episodes;
        c.threads = 0;
        FleetSim::new(c)
    };
    let ep_base = ep_serial.run();
    assert_eq!(
        ep_base.samples,
        ep_parallel.generate(),
        "parallel episode fleet diverges from serial"
    );
    let ep_serial_ms = time_ms(|| {
        black_box(ep_serial.generate());
    });
    let ep_parallel_ms = time_ms(|| {
        black_box(ep_parallel.generate());
    });
    let ep_stats = ep_base.episodes.expect("episode stats");

    // Budget-arbitrated episode fleet: the tick-synchronous three-phase
    // pass (propose parallel, arbitrate serial, apply parallel) under a
    // binding facility budget. Uniform horizon here — with the fat
    // slice's 16k-tick tail, 87.5 % of the ticks would have only 15
    // active nodes and the arbiter would mostly idle. All 128 nodes
    // stay active for all 2000 ticks, and 18 kW sits between the floor
    // sum (~10.7 kW) and the unconstrained mean draw (~18.7 kW), so
    // the arbiter works every tick.
    let budget_w = 18_000.0;
    let mut bu_cfg = cfg.clone();
    bu_cfg.groups[1].samples_per_node = None;
    bu_cfg.temporal = TemporalMode::Episodes;
    bu_cfg.budget_w = Some(budget_w);
    bu_cfg.budget_policy = BudgetPolicy::ShedToFloor;
    let bu_serial = {
        let mut c = bu_cfg.clone();
        c.threads = 1;
        FleetSim::new(c)
    };
    let bu_parallel = {
        let mut c = bu_cfg.clone();
        c.threads = 0;
        FleetSim::new(c)
    };
    let bu_base = bu_serial.run();
    assert_eq!(
        bu_base.samples,
        bu_parallel.generate(),
        "parallel budgeted fleet diverges from serial"
    );
    let bu_serial_ms = time_ms(|| {
        black_box(bu_serial.generate());
    });
    let bu_parallel_ms = time_ms(|| {
        black_box(bu_parallel.generate());
    });
    let bu_stats = bu_base.budget.expect("budget stats");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"engine-backed fleet generation (hinted sweep)\",\n");
    let _ = writeln!(
        json,
        "  \"fleet\": \"{} nodes ({} SKUs), {} samples, fat slice at 16k samples/node\",",
        cfg.total_nodes(),
        cfg.groups.len(),
        total_samples
    );
    let _ = writeln!(json, "  \"host_threads\": {threads},");
    if threads == 1 {
        // On a 1-thread host the parallel case degenerates to the
        // serial path; the speedup number is not meaningful.
        json.push_str(
            "  \"note\": \"single-threaded host: parallel == serial path, \
             speedup is not a packing measurement\",\n",
        );
    }
    json.push_str("  \"cases_ms\": {\n");
    let _ = writeln!(json, "    \"fleet_generate_serial\": {serial_ms:.2},");
    let _ = writeln!(json, "    \"fleet_generate_parallel\": {parallel_ms:.2},");
    let _ = writeln!(json, "    \"fleet_episodes_serial\": {ep_serial_ms:.2},");
    let _ = writeln!(
        json,
        "    \"fleet_episodes_parallel\": {ep_parallel_ms:.2},"
    );
    let _ = writeln!(json, "    \"fleet_budget_serial\": {bu_serial_ms:.2},");
    let _ = writeln!(json, "    \"fleet_budget_parallel\": {bu_parallel_ms:.2}");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"speedup_parallel_vs_serial\": {speedup:.2},");
    json.push_str("  \"episodes\": {\n");
    let _ = writeln!(
        json,
        "    \"lag1_autocorr\": {:.4},",
        ep_stats.lag1_autocorr
    );
    let _ = writeln!(
        json,
        "    \"floor_time_share\": {:.4},",
        ep_stats.empirical_shares[0]
    );
    json.push_str("    \"mean_dwell_ticks\": {\n");
    let n_states = ep_stats.states.len();
    for (i, (state, d)) in ep_stats
        .states
        .iter()
        .zip(&ep_stats.mean_dwell_ticks)
        .enumerate()
    {
        let comma = if i + 1 < n_states { "," } else { "" };
        let _ = writeln!(json, "      \"{state}\": {d:.1}{comma}");
    }
    json.push_str("    }\n");
    json.push_str("  },\n");
    json.push_str("  \"budget\": {\n");
    let _ = writeln!(json, "    \"budget_w\": {budget_w:.0},");
    let _ = writeln!(json, "    \"policy\": \"{}\",", bu_stats.policy.name());
    let _ = writeln!(json, "    \"ticks\": {},", bu_stats.ticks);
    let _ = writeln!(json, "    \"peak_fleet_w\": {:.1},", bu_stats.peak_fleet_w);
    let _ = writeln!(json, "    \"mean_fleet_w\": {:.1},", bu_stats.mean_fleet_w);
    let _ = writeln!(
        json,
        "    \"p95_utilization\": {:.4},",
        bu_stats.utilization.quantile(0.95)
    );
    let _ = writeln!(
        json,
        "    \"shed_node_ticks\": {},",
        bu_stats.shed_ticks.iter().sum::<u64>()
    );
    let _ = writeln!(
        json,
        "    \"infeasible_floor_ticks\": {}",
        bu_stats.infeasible_floor_ticks
    );
    json.push_str("  },\n");
    json.push_str("  \"registry\": {\n");
    let _ = writeln!(json, "    \"engines\": {},", s.engines);
    let _ = writeln!(json, "    \"payload_hits\": {},", s.payload_hits);
    let _ = writeln!(json, "    \"payload_misses\": {},", s.payload_misses);
    let _ = writeln!(json, "    \"payload_entries\": {},", s.payload_entries);
    let _ = writeln!(json, "    \"spec_hits\": {},", s.spec_hits);
    let _ = writeln!(json, "    \"spec_misses\": {},", s.spec_misses);
    let _ = writeln!(json, "    \"unroll_hits\": {},", s.unroll_hits);
    let _ = writeln!(json, "    \"unroll_misses\": {},", s.unroll_misses);
    let _ = writeln!(json, "    \"decoded_hits\": {},", s.decoded_hits);
    let _ = writeln!(json, "    \"decoded_misses\": {},", s.decoded_misses);
    let _ = writeln!(json, "    \"exec_hits\": {},", s.exec_hits);
    let _ = writeln!(json, "    \"exec_misses\": {},", s.exec_misses);
    let _ = writeln!(json, "    \"evals\": {}", s.evals);
    json.push_str("  }\n");
    json.push_str("}\n");

    println!("### bench_fleet — engine-backed fleet generation\n");
    println!(
        "{} nodes, {} samples ({} long-tail)",
        cfg.total_nodes(),
        total_samples,
        cfg.groups[1].nodes
    );
    println!("serial:   {serial_ms:>9.2} ms");
    println!("parallel: {parallel_ms:>9.2} ms  ({threads} host threads)");
    println!("speedup:  {speedup:>9.2}x");
    if threads == 1 {
        println!("(single-threaded host: speedup is not a packing measurement)");
    }
    println!(
        "episodes: {ep_serial_ms:.2} ms serial / {ep_parallel_ms:.2} ms parallel, \
         lag-1 autocorr {:.3}, floor share {:.1}%",
        ep_stats.lag1_autocorr,
        ep_stats.empirical_shares[0] * 100.0
    );
    println!(
        "budget:   {bu_serial_ms:.2} ms serial / {bu_parallel_ms:.2} ms parallel at \
         {budget_w:.0} W ({}), peak {:.0} W, {} node-ticks shed",
        bu_stats.policy.name(),
        bu_stats.peak_fleet_w,
        bu_stats.shed_ticks.iter().sum::<u64>()
    );
    println!(
        "registry: {} engines, payloads {} built / {} hits, specs {} parsed / {} hits, {} evals",
        s.engines, s.payload_misses, s.payload_hits, s.spec_misses, s.spec_hits, s.evals
    );

    std::fs::write(&out_path, json).expect("write benchmark baseline");
    eprintln!("wrote {out_path}");
}
