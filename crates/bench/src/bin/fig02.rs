//! Regenerates the fig02 experiment (see EXPERIMENTS.md).
fn main() {
    print!("{}", fs2_bench::experiments::fig02::run().render());
}
