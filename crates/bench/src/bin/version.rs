//! Regenerates the version experiment (see EXPERIMENTS.md).
fn main() {
    print!("{}", fs2_bench::experiments::version::run().render());
}
