//! Ablation studies for the design choices called out in DESIGN.md §6.
//!
//! Prints four comparisons:
//!  1. NSGA-II vs pure random search at an equal evaluation budget.
//!  2. Proportionally distributed vs clustered access schedules.
//!  3. FMA triviality gating on vs off (the §III-D mechanism).
//!  4. Shared-resource contention model on vs off (all cores vs one).

use fs2_arch::Sku;
use fs2_core::autotune::{genes_to_groups, TuneConfig};
use fs2_core::distribute::{distribute, unroll_sequence};
use fs2_core::groups::{format_groups, parse_groups, Target};
use fs2_core::mix::MixRegistry;
use fs2_core::payload::{default_unroll, PayloadConfig};
use fs2_core::runner::RunConfig;
use fs2_sim::kernel::TaggedInst;
use fs2_sim::Kernel;
use fs2_tuning::Nsga2Config;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let sku = Sku::amd_epyc_7502();
    println!("### ablations — design-choice studies on {}\n", sku.name);
    nsga2_vs_random(&sku);
    spaced_vs_clustered(&sku);
    gating_on_off(&sku);
    contention_on_off(&sku);
}

/// 1. NSGA-II vs random search with the same evaluation budget.
fn nsga2_vs_random(sku: &Sku) {
    let budget = 96usize;
    let freq = 1500.0;

    // NSGA-II: 16 individuals x 5 generations = 96 evaluations.
    let engine = fs2_bench::experiments::common::engine_for(sku.clone());
    let cfg = TuneConfig {
        nsga2: Nsga2Config {
            individuals: 16,
            generations: 5,
            mutation_prob: 0.35,
            crossover_prob: 0.9,
            seed: 1,
        },
        test_duration_s: 10.0,
        preheat_s: 0.0,
        freq_mhz: freq,
        ..TuneConfig::default()
    };
    let tuned = engine.session().tune(&cfg);

    // Random search: same budget, same gene space, same engine cache.
    let mut rng = StdRng::seed_from_u64(1);
    let items = fs2_core::groups::all_valid_items().len();
    let mut session = engine.session();
    let mut best_random = f64::NEG_INFINITY;
    let mut best_genes = vec![0u32; items];
    for _ in 0..budget {
        let mut genes: Vec<u32> = (0..items).map(|_| rng.gen_range(0..=8u32)).collect();
        if genes.iter().all(|&g| g == 0) {
            genes[0] = 1;
        }
        let groups = genes_to_groups(&genes);
        let unroll = default_unroll(sku, cfg.mix, &groups);
        let payload = engine.payload(&PayloadConfig {
            mix: cfg.mix,
            groups,
            unroll,
        });
        let r = session.run_payload(
            &payload,
            &RunConfig {
                freq_mhz: freq,
                duration_s: 10.0,
                start_delta_s: 2.0,
                stop_delta_s: 1.0,
                functional_iters: 64,
                ..RunConfig::default()
            },
        );
        if r.power.mean > best_random {
            best_random = r.power.mean;
            best_genes = genes;
        }
    }

    println!("1. optimizer ablation ({budget} evaluations @ {freq} MHz):");
    println!(
        "   NSGA-II        best {:.1} W   ({})",
        tuned.best.objectives[0],
        format_groups(&tuned.best_groups)
    );
    println!(
        "   random search  best {:.1} W   ({})\n",
        best_random,
        format_groups(&genes_to_groups(&best_genes))
    );
}

/// 2. The paper's proportional interleaving vs naive clustering.
fn spaced_vs_clustered(sku: &Sku) {
    let engine = fs2_bench::experiments::common::engine_for(sku.clone());
    let groups = parse_groups("REG:4,L1_2LS:2,RAM_L:1").unwrap();
    let mix = MixRegistry::default_for(sku.uarch);
    let u = default_unroll(sku, mix, &groups);

    // Spaced: the shipped scheduler.
    let spaced = engine.payload(&PayloadConfig {
        mix,
        groups: groups.clone(),
        unroll: u,
    });

    // Clustered: all occurrences of each group back-to-back.
    let window = distribute(&groups);
    let mut clustered_window = window.clone();
    clustered_window.sort_unstable();
    let seq = unroll_sequence(&clustered_window, u);
    let mut body: Vec<TaggedInst> = Vec::new();
    for (i, &gi) in seq.iter().enumerate() {
        let g = &groups[gi];
        let access = match (g.target, g.pattern) {
            (Target::Mem(level), Some(p)) => Some((level, p)),
            _ => None,
        };
        body.extend(mix.emit_group(i as u32, access));
    }
    body.push(TaggedInst::reg(fs2_isa::Inst::Dec(fs2_isa::Gp::Rdi)));
    body.push(TaggedInst::reg(fs2_isa::Inst::Jnz { rel: 0 }));
    let clustered = Kernel::new("clustered", body, u);

    let mut session = engine.session();
    let cfg = RunConfig {
        freq_mhz: 1500.0,
        duration_s: 20.0,
        start_delta_s: 4.0,
        stop_delta_s: 2.0,
        functional_iters: 64,
        ..RunConfig::default()
    };
    let r_spaced = session.run_payload(&spaced, &cfg);
    let r_clustered = session.run_kernel(&clustered, &cfg);
    println!("2. access-distribution ablation (REG:4,L1_2LS:2,RAM_L:1 @1500 MHz):");
    println!(
        "   spaced (paper) {:.1} W  ipc {:.2}",
        r_spaced.power.mean, r_spaced.ipc
    );
    println!(
        "   clustered      {:.1} W  ipc {:.2}",
        r_clustered.power.mean, r_clustered.ipc
    );
    println!("   (aggregate traffic is identical; spacing matters for burst behaviour)\n");
}

/// 3. FMA triviality gating on/off.
fn gating_on_off(sku: &Sku) {
    use fs2_bench::experiments::common::{direct_eval, engine_for, payload_for};
    let engine = engine_for(sku.clone());
    let payload = payload_for(&engine, "REG:1");
    let on = direct_eval(&engine, &payload, 2500.0);
    // Gating "off" = operands fully trivial (the v1.7.4 end state).
    let sim = fs2_sim::SystemSim::new(sku.clone());
    let model = fs2_power::NodePowerModel::new(sku.clone());
    let off = fs2_power::solve_throttle(&sim, &model, &payload.kernel, 2500.0, None, 1.0);
    println!("3. FMA data-triviality gating (REG:1 @2500 MHz):");
    println!("   healthy operands  {:.1} W", on.power.total_w());
    println!(
        "   trivial operands  {:.1} W  (Δ {:.1} W; paper §III-D: 8.5 W)\n",
        off.power.total_w(),
        on.power.total_w() - off.power.total_w()
    );
}

/// 4. Contention model on/off.
fn contention_on_off(sku: &Sku) {
    use fs2_bench::experiments::common::{engine_for, payload_for};
    let engine = engine_for(sku.clone());
    let payload = payload_for(&engine, "REG:2,RAM_LS:2");
    let full = engine.sim().evaluate(&payload.kernel, 2500.0, None);
    let solo = engine.sim().evaluate(&payload.kernel, 2500.0, Some(1));
    println!("4. shared-resource contention (REG:2,RAM_LS:2 @2500 MHz):");
    println!(
        "   all {} cores: {:.2} ipc/core, {:.1} GB/s DRAM/node",
        full.active_cores,
        full.core.ipc,
        full.node_level_bytes_per_sec[fs2_arch::MemLevel::Ram.idx()] / 1e9
    );
    println!(
        "   single core : {:.2} ipc/core, {:.1} GB/s DRAM/node",
        solo.core.ipc,
        solo.node_level_bytes_per_sec[fs2_arch::MemLevel::Ram.idx()] / 1e9
    );
    println!("   (per-core DRAM share collapses under full occupancy — why static per-SKU workloads mistune)");
}
