//! Regenerates the fig07 experiment (see EXPERIMENTS.md).
//! Pass --quick for a reduced configuration.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", fs2_bench::experiments::fig07::run(quick).render());
}
