//! Regenerates the fig08 experiment (see EXPERIMENTS.md).
fn main() {
    print!("{}", fs2_bench::experiments::fig08::run().render());
}
