//! Micro-benchmark for the fleet service stack: concurrent clients
//! against one resident `FleetService` over the in-process broker,
//! measuring request throughput, reply-latency percentiles, and the
//! cross-request engine-cache hit rates that the shared tier exists
//! for (repeat tenants must be mostly cache hits).
//!
//! Writes the measured baseline to `BENCH_service.json` (pass an
//! output path as the first argument to override).
//!
//! ```sh
//! cargo run --release -p fs2-bench --bin bench_service
//! ```

use fs2_service::{
    call_with_retry, serve_with, AdmissionConfig, Broker, ChaosConfig, FleetReply, FleetRequest,
    FleetService, RetryPolicy, ServiceConfig, TransportConfig,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const CONCURRENT_CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 8;

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    let service = Arc::new(FleetService::new(ServiceConfig {
        workers: 0,        // one per host core
        default_shards: 0, // one per worker
        ..ServiceConfig::default()
    }));
    let broker = Arc::new(Broker::new(Arc::clone(&service), CONCURRENT_CLIENTS));

    let request = |seed: u64, cap: Option<f64>| FleetRequest {
        nodes: 64,
        samples_per_node: 500,
        seed: Some(seed),
        power_cap_w: cap,
        ..FleetRequest::fig1()
    };

    // Warm-up request: builds the payload/exec tier every later tenant
    // re-serves from. Its registry counters are the cold baseline.
    let line = broker
        .call(request(1, None).to_line())
        .expect("warm-up reply");
    let cold = FleetReply::from_line(&line).expect("decode warm-up");
    assert!(cold.ok, "{:?}", cold.error);

    // A second identical request: every payload and functional pass
    // must come out of the shared tier.
    let line = broker.call(request(1, None).to_line()).expect("repeat");
    let repeat = FleetReply::from_line(&line).expect("decode repeat");
    assert!(repeat.ok);
    assert_eq!(
        cold.samples, repeat.samples,
        "identical requests must produce identical samples"
    );
    let repeat_payload_rate = repeat.registry.cross_payload_hit_rate();
    let repeat_exec_rate = repeat.registry.cross_exec_hit_rate();

    // A near-identical tenant (new power cap, same fleet): the operating
    // points differ but the payload tier still re-serves.
    let line = broker
        .call(request(1, Some(280.0)).to_line())
        .expect("capped");
    let capped = FleetReply::from_line(&line).expect("decode capped");
    assert!(capped.ok);
    let near_payload_rate = capped.registry.cross_payload_hit_rate();

    // Throughput run: CONCURRENT_CLIENTS threads, each firing
    // REQUESTS_PER_CLIENT sequential requests at the warm service.
    // Per-request latencies pool across clients for the percentiles.
    let started = Instant::now();
    let handles: Vec<_> = (0..CONCURRENT_CLIENTS)
        .map(|client| {
            let broker = Arc::clone(&broker);
            std::thread::spawn(move || {
                let mut latencies_ms = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut ok = 0usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    // Half the tenants repeat the warmed config, half
                    // rotate fresh seeds — a realistic mixed fleet.
                    let seed = if i % 2 == 0 { 1 } else { 10 + client as u64 };
                    let t0 = Instant::now();
                    let line = broker
                        .call(request(seed, None).to_line())
                        .expect("broker reply");
                    latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    if FleetReply::from_line(&line).is_ok_and(|r| r.ok) {
                        ok += 1;
                    }
                }
                (latencies_ms, ok)
            })
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut replies_ok = 0usize;
    for h in handles {
        let (lat, ok) = h.join().unwrap();
        latencies_ms.extend(lat);
        replies_ok += ok;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let requests = CONCURRENT_CLIENTS * REQUESTS_PER_CLIENT;
    let requests_per_sec = requests as f64 / elapsed_s;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50_ms = percentile(&latencies_ms, 0.50);
    let p99_ms = percentile(&latencies_ms, 0.99);

    let stats = service.admission_stats();

    // Fault-tolerance phase, on deliberately tiny requests: a chaotic
    // service absorbing injected shard panics, a deadline screen
    // rejecting unmeetable requests, and a TCP retry loop riding over
    // dropped replies. Counters, not latencies — the point is that the
    // committed baseline records the supervision machinery working.
    let tiny = |seed: u64| FleetRequest {
        nodes: 8,
        samples_per_node: 40,
        seed: Some(seed),
        ..FleetRequest::fig1()
    };
    // The injected panics are caught, but the default hook would still
    // spray backtraces over the report; silence it for this phase.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let chaotic = FleetService::new(ServiceConfig {
        workers: 2,
        default_shards: 2,
        admission: AdmissionConfig::default(),
        chaos: ChaosConfig {
            seed: 29,
            panic_every: 2,
            ..ChaosConfig::default()
        },
    });
    let mut chaos_failed = 0u64;
    for _ in 0..6 {
        if !chaotic.handle(&tiny(3)).ok {
            chaos_failed += 1;
        }
    }
    let panics_caught = chaotic.pool_stats().panics_caught;
    assert_eq!(panics_caught, 3, "panic_every=2 over 6 requests");
    assert_eq!(chaos_failed, 3);
    assert_eq!(
        chaotic.pool_stats().live_workers,
        2,
        "supervision must keep the pool at strength"
    );
    std::panic::set_hook(default_hook);

    let screened = FleetService::new(ServiceConfig {
        workers: 2,
        default_shards: 2,
        admission: AdmissionConfig {
            cost_per_ms: 1, // 8 × 40 = 320 node·samples → ~320 ms estimate
            ..AdmissionConfig::default()
        },
        chaos: ChaosConfig::default(),
    });
    for _ in 0..4 {
        let reply = screened.handle(&FleetRequest {
            deadline_ms: Some(5),
            ..tiny(3)
        });
        assert!(!reply.ok, "a 5 ms deadline on ~320 ms of work must screen");
    }
    let deadline_rejects = screened.admission_stats().rejected_deadline;
    assert_eq!(deadline_rejects, 4);

    let dropping = Arc::new(FleetService::new(ServiceConfig {
        workers: 2,
        default_shards: 2,
        admission: AdmissionConfig::default(),
        chaos: ChaosConfig {
            seed: 31,
            drop_reply_every: 2,
            ..ChaosConfig::default()
        },
    }));
    let server = serve_with(
        Arc::clone(&dropping),
        "127.0.0.1:0",
        TransportConfig::default(),
    )
    .expect("bind chaos server");
    let addr = server.local_addr().to_string();
    let policy = RetryPolicy {
        attempts: 4,
        base_ms: 2,
        cap_ms: 20,
        seed: 5,
    };
    for _ in 0..4 {
        let line = call_with_retry(&addr, &tiny(7).to_line(), policy).expect("retries exhausted");
        assert!(FleetReply::from_line(&line).expect("decode").ok);
    }
    // Every dropped reply forced exactly one reconnect-and-retry.
    let retries = dropping
        .chaos()
        .map(|c| c.drops_injected())
        .unwrap_or_default();
    assert!(retries >= 2, "drop_reply_every=2 over 4 calls: {retries}");
    server.shutdown();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fleet service stack (broker + shards + shared caches)\",\n");
    let _ = writeln!(
        json,
        "  \"fleet\": \"64 nodes, 500 samples/node per request\","
    );
    let _ = writeln!(json, "  \"concurrent_clients\": {CONCURRENT_CLIENTS},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"replies_ok\": {replies_ok},");
    let _ = writeln!(json, "  \"requests_per_sec\": {requests_per_sec:.2},");
    let _ = writeln!(json, "  \"p50_ms\": {p50_ms:.2},");
    let _ = writeln!(json, "  \"p99_ms\": {p99_ms:.2},");
    let _ = writeln!(
        json,
        "  \"cross_request_payload_hit_rate\": {repeat_payload_rate:.4},"
    );
    let _ = writeln!(
        json,
        "  \"cross_request_exec_hit_rate\": {repeat_exec_rate:.4},"
    );
    let _ = writeln!(
        json,
        "  \"near_identical_payload_hit_rate\": {near_payload_rate:.4},"
    );
    let _ = writeln!(json, "  \"panics_caught\": {panics_caught},");
    let _ = writeln!(json, "  \"retries\": {retries},");
    let _ = writeln!(json, "  \"deadline_rejects\": {deadline_rejects},");
    json.push_str("  \"admission\": {\n");
    let _ = writeln!(json, "    \"admitted\": {},", stats.admitted);
    let _ = writeln!(json, "    \"queued\": {},", stats.queued);
    let _ = writeln!(json, "    \"shed_busy\": {},", stats.shed_busy);
    let _ = writeln!(
        json,
        "    \"rejected_oversize\": {},",
        stats.rejected_oversize
    );
    let _ = writeln!(json, "    \"peak_queue_depth\": {}", stats.peak_queue_depth);
    json.push_str("  }\n");
    json.push_str("}\n");

    println!("### bench_service — fleet service stack\n");
    println!(
        "{requests} requests from {CONCURRENT_CLIENTS} clients in {elapsed_s:.2} s \
         ({requests_per_sec:.1} req/s), {replies_ok} ok"
    );
    println!("latency: p50 {p50_ms:.1} ms, p99 {p99_ms:.1} ms");
    println!(
        "cross-request caches: payload {:.0}% / exec {:.0}% on the repeat tenant, \
         payload {:.0}% near-identical",
        repeat_payload_rate * 100.0,
        repeat_exec_rate * 100.0,
        near_payload_rate * 100.0
    );
    println!(
        "admission: {} admitted, {} queued (peak depth {}), {} shed",
        stats.admitted, stats.queued, stats.peak_queue_depth, stats.shed_busy
    );
    println!(
        "fault tolerance: {panics_caught} injected panics caught, {retries} dropped replies \
         retried, {deadline_rejects} unmeetable deadlines screened"
    );

    std::fs::write(&out_path, json).expect("write benchmark baseline");
    eprintln!("wrote {out_path}");
}
