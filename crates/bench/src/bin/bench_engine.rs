//! Micro-benchmark for the engine-layer optimizations: the three
//! functional-executor tiers (interpreted → pre-decoded → SoA
//! lane-vectorized), the engine's ExecStats cache, and the payload
//! cache vs rebuilding.
//!
//! Writes the measured baseline to `BENCH_engine.json` (pass an output
//! path as the first argument to override). Criterion is unavailable
//! offline, so the timing loop is manual: median of 7 repetitions.
//!
//! ```sh
//! cargo run --release -p fs2-bench --bin bench_engine
//! ```

use fs2_arch::Sku;
use fs2_bench::timing::median_ns;
use fs2_core::engine::Engine;
use fs2_sim::{run_functional, DecodedKernel, Executor, InitScheme};
use std::fmt::Write as _;
use std::hint::black_box;

/// Median-of-7 wall time of `f`, in nanoseconds per call.
fn time_ns(iters: u32, f: impl FnMut()) -> f64 {
    median_ns(iters.div_ceil(4), iters, 7, f)
}

struct Case {
    name: &'static str,
    ns_per_iter: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let engine = Engine::new(Sku::amd_epyc_7502());
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut cases: Vec<Case> = Vec::new();

    // Executor dispatch: the runner's per-candidate functional pass is
    // `functional_iters` replays of the kernel body. Use the autotuner's
    // common shape (3-group mix, modest unroll).
    let payload = engine
        .payload_for_spec("REG:2,L1_LS:1")
        .expect("static spec");
    let kernel = &payload.kernel;
    const FUNC_ITERS: u64 = 100;

    let interpreted = time_ns(40, || {
        let mut ex = Executor::new(InitScheme::V2Safe, 42);
        ex.run_interpreted(black_box(kernel), FUNC_ITERS);
        black_box(ex.state_hash());
    });
    cases.push(Case {
        name: "exec_interpreted_100_iters",
        ns_per_iter: interpreted,
    });

    let table = DecodedKernel::new(kernel);
    let predecoded = time_ns(40, || {
        let mut ex = Executor::new(InitScheme::V2Safe, 42);
        ex.run_predecoded(black_box(&table), FUNC_ITERS);
        black_box(ex.state_hash());
    });
    cases.push(Case {
        name: "exec_predecoded_100_iters",
        ns_per_iter: predecoded,
    });

    let soa = time_ns(40, || {
        let mut ex = Executor::new(InitScheme::V2Safe, 42);
        ex.run_decoded(black_box(&table), FUNC_ITERS);
        black_box(ex.state_hash());
    });
    cases.push(Case {
        name: "exec_soa_100_iters",
        ns_per_iter: soa,
    });

    // Sanity: all three tiers agree before we publish numbers.
    {
        let mut a = Executor::new(InitScheme::V2Safe, 7);
        let mut b = Executor::new(InitScheme::V2Safe, 7);
        let mut c = Executor::new(InitScheme::V2Safe, 7);
        a.run_decoded(&table, FUNC_ITERS);
        b.run_interpreted(kernel, FUNC_ITERS);
        c.run_predecoded(&table, FUNC_ITERS);
        assert_eq!(a.state_hash(), b.state_hash(), "dispatch paths diverge");
        assert_eq!(a.state_hash(), c.state_hash(), "baseline tier diverges");
        assert_eq!(a.stats(), b.stats(), "stats accounting diverges");
    }

    // ExecStats cache: a cold functional pass (the SoA executor end to
    // end, packaged as a FunctionalOutcome) vs the engine serving the
    // same (payload, init, seed, iters) tuple from its cache.
    let exec_cfg = engine.config_for_spec("REG:2,L1_LS:1").expect("static");
    let exec_cold = time_ns(40, || {
        black_box(run_functional(
            black_box(&table),
            InitScheme::V2Safe,
            42,
            FUNC_ITERS,
        ));
    });
    cases.push(Case {
        name: "exec_stats_cold_100_iters",
        ns_per_iter: exec_cold,
    });

    let _ = engine.functional_outcome(&exec_cfg, InitScheme::V2Safe, 42, FUNC_ITERS);
    let exec_hit = time_ns(400, || {
        black_box(engine.functional_outcome(
            black_box(&exec_cfg),
            InitScheme::V2Safe,
            42,
            FUNC_ITERS,
        ));
    });
    cases.push(Case {
        name: "exec_stats_cache_hit",
        ns_per_iter: exec_hit,
    });

    // Payload cache: cold build vs cached lookup of a paper-scale
    // payload (u = 1400, five access groups).
    let spec = "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1";
    let cold = time_ns(20, || {
        // A fresh engine per call: every request is a miss.
        let e = Engine::new(Sku::amd_epyc_7502());
        let mut cfg = e.config_for_spec(black_box(spec)).unwrap();
        cfg.unroll = 1400;
        black_box(e.payload(&cfg));
    });
    cases.push(Case {
        name: "payload_cold_build_u1400",
        ns_per_iter: cold,
    });

    let mut warm_cfg = engine.config_for_spec(spec).unwrap();
    warm_cfg.unroll = 1400;
    let _ = engine.payload(&warm_cfg);
    let warm = time_ns(200, || {
        black_box(engine.payload(black_box(&warm_cfg)));
    });
    cases.push(Case {
        name: "payload_cache_hit_u1400",
        ns_per_iter: warm,
    });

    let speedup_predecoded = interpreted / predecoded;
    let speedup_soa = predecoded / soa;
    let speedup_exec_cache = exec_cold / exec_hit;
    let speedup_cache = cold / warm;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"benchmark\": \"engine layer: SoA executor, ExecStats cache, payload cache\",\n",
    );
    json.push_str("  \"workloads\": {\n");
    json.push_str(
        "    \"executor\": \"REG:2,L1_LS:1 (default unroll), 100 functional iterations\",\n",
    );
    let _ = writeln!(json, "    \"payload\": \"{spec} @ u=1400\"");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    json.push_str("  \"cases_ns\": {\n");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}\": {:.0}{comma}", c.name, c.ns_per_iter);
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"speedup_predecoded_vs_interpreted\": {speedup_predecoded:.2},"
    );
    let _ = writeln!(json, "  \"speedup_soa_vs_predecoded\": {speedup_soa:.2},");
    let _ = writeln!(
        json,
        "  \"speedup_exec_stats_cache_hit\": {speedup_exec_cache:.1},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_cache_hit_vs_rebuild\": {speedup_cache:.1}"
    );
    json.push_str("}\n");

    println!("### bench_engine — functional-executor tiers and engine caches\n");
    for c in &cases {
        println!("{:<42} {:>12.0} ns/iter", c.name, c.ns_per_iter);
    }
    println!("\npre-decoded vs interpreted:    {speedup_predecoded:.2}x");
    println!("SoA vectorized vs pre-decoded: {speedup_soa:.2}x");
    println!("ExecStats cache hit vs cold:   {speedup_exec_cache:.1}x");
    println!("payload cache hit vs rebuild:  {speedup_cache:.1}x");

    std::fs::write(&out_path, json).expect("write benchmark baseline");
    eprintln!("wrote {out_path}");
}
