//! Regenerates the fig11 experiment (see EXPERIMENTS.md).
//! Pass --quick for a reduced configuration.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", fs2_bench::experiments::fig11::run(quick).render());
}
