//! Regenerates the table2 experiment (see EXPERIMENTS.md).
fn main() {
    print!("{}", fs2_bench::experiments::table2::run().render());
}
