//! Shared manual timing loop for the `src/bin` micro-benchmarks and
//! the `benches/` harnesses (criterion is unavailable offline). One
//! implementation so warm-up/median policy cannot drift between the
//! benchmark binaries.

use std::time::Instant;

/// Median wall time per call of `f`, in seconds.
///
/// Runs `warmup` untimed calls, then `reps` timed batches of `iters`
/// calls each, and returns the median batch normalized per call. Use
/// `reps == 1` for a plain mean over `iters` calls.
pub fn median_secs(warmup: u32, iters: u32, reps: u32, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0 && reps > 0);
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / f64::from(iters)
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// [`median_secs`] in nanoseconds per call.
pub fn median_ns(warmup: u32, iters: u32, reps: u32, f: impl FnMut()) -> f64 {
    median_secs(warmup, iters, reps, f) * 1e9
}

/// [`median_secs`] in milliseconds per call.
pub fn median_ms(warmup: u32, iters: u32, reps: u32, f: impl FnMut()) -> f64 {
    median_secs(warmup, iters, reps, f) * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_calls_and_orders_units() {
        let mut calls = 0u32;
        let secs = median_secs(2, 10, 3, || calls += 1);
        assert_eq!(calls, 2 + 10 * 3);
        assert!(secs >= 0.0);
        let mut calls = 0u32;
        let ns = median_ns(0, 1, 1, || calls += 1);
        assert_eq!(calls, 1);
        assert!(ns >= 0.0);
    }
}
