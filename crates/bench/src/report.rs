//! Plain-text experiment reports.

use fs2_metrics::CsvWriter;
use std::fmt::Write as _;

/// A rendered experiment: a title, aligned text rows, and CSV data.
#[derive(Debug, Clone)]
pub struct Report {
    pub id: String,
    pub title: String,
    text: String,
    csv: CsvWriter,
}

impl Report {
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            text: String::new(),
            csv: CsvWriter::new(),
        }
    }

    /// Adds a free-form text line.
    pub fn line(&mut self, s: impl AsRef<str>) -> &mut Self {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
        self
    }

    /// Adds a blank line.
    pub fn blank(&mut self) -> &mut Self {
        self.text.push('\n');
        self
    }

    /// Starts the CSV section with a header.
    pub fn csv_header(&mut self, names: &[&str]) -> &mut Self {
        self.csv.header(names);
        self
    }

    /// Adds a CSV row.
    pub fn csv_row(&mut self, fields: &[String]) -> &mut Self {
        self.csv.row(fields);
        self
    }

    /// The full printable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        out.push_str(&self.text);
        let csv = self.csv.as_str();
        if !csv.is_empty() {
            let _ = writeln!(out, "\ncsv:");
            out.push_str(csv);
        }
        out
    }

    /// The CSV section alone.
    pub fn csv(&self) -> &str {
        self.csv.as_str()
    }
}

/// Formats a watts value for tables.
pub fn w(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats an IPC/rate value.
pub fn r3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a frequency.
pub fn mhz(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_sections() {
        let mut rep = Report::new("fig09", "Memory levels");
        rep.line("hello").blank();
        rep.csv_header(&["a", "b"]);
        rep.csv_row(&["1".into(), "2".into()]);
        let out = rep.render();
        assert!(out.starts_with("### fig09 — Memory levels"));
        assert!(out.contains("hello"));
        assert!(out.contains("a,b\n1,2"));
    }

    #[test]
    fn formatters() {
        assert_eq!(w(437.25), "437.2");
        assert_eq!(r3(3.3912), "3.391");
        assert_eq!(mhz(2491.7), "2492");
    }
}
