//! # fs2-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation; each produces a
//! [`report::Report`] with the same rows/series the paper plots, plus a
//! machine-readable CSV. The `src/bin/` binaries print single
//! experiments; `bin/all_experiments` regenerates everything into
//! `results/` (the data behind `EXPERIMENTS.md`). Criterion benches in
//! `benches/` measure the cost of the moving parts and the ablations
//! called out in DESIGN.md §6.

pub mod experiments;
pub mod report;
pub mod timing;

pub use report::Report;
