//! Manual benches over the experiment generators themselves: one per
//! regenerable table/figure (the heavyweight NSGA-II experiments run in
//! quick mode here; `cargo run --release -p fs2-bench --bin
//! all_experiments` produces the paper-scale numbers).
//!
//! Criterion is not available offline; this is a `harness = false`
//! wall-clock loop. Run with `cargo bench -p fs2-bench --bench
//! experiments`.

use fs2_bench::experiments;
use fs2_bench::timing::median_ms;
use std::hint::black_box;

/// Mean wall time over `reps` calls (one warm-up), in ms/call.
fn time_ms(reps: u32, f: impl FnMut()) -> f64 {
    median_ms(1, reps, 1, f)
}

fn report(name: &str, ms: f64) {
    println!("{name:<32} {ms:>10.1} ms/iter");
}

fn main() {
    println!("### experiments — generator wall times\n");
    report(
        "fig01_fleet_cdf",
        time_ms(3, || {
            black_box(experiments::fig01::run());
        }),
    );
    report(
        "fig02_haswell_ladder",
        time_ms(3, || {
            black_box(experiments::fig02::run());
        }),
    );
    report(
        "fig09_rome_ladder",
        time_ms(3, || {
            black_box(experiments::fig09::run());
        }),
    );
    report(
        "fig06_v1_prototype_trace",
        time_ms(3, || {
            black_box(experiments::fig06::run());
        }),
    );
    report(
        "fig07_v2_trace_quick",
        time_ms(3, || {
            black_box(experiments::fig07::run(true));
        }),
    );
    report(
        "fig08_unroll_sweep",
        time_ms(3, || {
            black_box(experiments::fig08::run());
        }),
    );
    report(
        "fig11_tuning_quick",
        time_ms(1, || {
            black_box(experiments::fig11::run(true));
        }),
    );
    report(
        "fig12_cross_matrix_quick",
        time_ms(1, || {
            black_box(experiments::fig12::run(true));
        }),
    );
    report(
        "table1_feature_matrix_quick",
        time_ms(1, || {
            black_box(experiments::table1::run(true));
        }),
    );
    report(
        "table2_system",
        time_ms(3, || {
            black_box(experiments::table2::run());
        }),
    );
    report(
        "version_comparison",
        time_ms(3, || {
            black_box(experiments::version::run());
        }),
    );
}
