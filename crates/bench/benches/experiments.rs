//! Criterion benches over the experiment generators themselves: one per
//! regenerable table/figure (the heavyweight NSGA-II experiments run in
//! quick mode here; `cargo run --release -p fs2-bench --bin
//! all_experiments` produces the paper-scale numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use fs2_bench::experiments;

fn bench_fig01(c: &mut Criterion) {
    c.bench_function("fig01_fleet_cdf", |b| b.iter(experiments::fig01::run));
}

fn bench_fig02(c: &mut Criterion) {
    let mut g = c.benchmark_group("ladders");
    g.sample_size(10);
    g.bench_function("fig02_haswell_ladder", |b| {
        b.iter(experiments::fig02::run)
    });
    g.bench_function("fig09_rome_ladder", |b| b.iter(experiments::fig09::run));
    g.finish();
}

fn bench_fig06_07(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuning_traces");
    g.sample_size(10);
    g.bench_function("fig06_v1_prototype_trace", |b| {
        b.iter(experiments::fig06::run)
    });
    g.bench_function("fig07_v2_trace_quick", |b| {
        b.iter(|| experiments::fig07::run(true))
    });
    g.finish();
}

fn bench_fig08(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweeps");
    g.sample_size(10);
    g.bench_function("fig08_unroll_sweep", |b| b.iter(experiments::fig08::run));
    g.finish();
}

fn bench_fig11_12(c: &mut Criterion) {
    let mut g = c.benchmark_group("nsga2_experiments");
    g.sample_size(10);
    g.bench_function("fig11_tuning_quick", |b| {
        b.iter(|| experiments::fig11::run(true))
    });
    g.bench_function("fig12_cross_matrix_quick", |b| {
        b.iter(|| experiments::fig12::run(true))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_feature_matrix_quick", |b| {
        b.iter(|| experiments::table1::run(true))
    });
    g.bench_function("table2_system", |b| b.iter(experiments::table2::run));
    g.bench_function("version_comparison", |b| b.iter(experiments::version::run));
    g.finish();
}

criterion_group!(
    benches,
    bench_fig01,
    bench_fig02,
    bench_fig06_07,
    bench_fig08,
    bench_fig11_12,
    bench_tables
);
criterion_main!(benches);
