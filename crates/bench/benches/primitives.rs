//! Criterion benches for the moving parts: the costs that bound how fast
//! the self-tuning loop can evaluate candidates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fs2_arch::Sku;
use fs2_core::groups::parse_groups;
use fs2_core::mix::MixRegistry;
use fs2_core::payload::{build_payload, PayloadConfig};
use fs2_power::{solve_throttle, NodePowerModel};
use fs2_sim::core::{steady_state, ActiveSet};
use fs2_sim::{Executor, InitScheme, SystemSim};
use fs2_tuning::{Nsga2, Nsga2Config};

fn bench_encoder(c: &mut Criterion) {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:4,L1_L:2,L2_L:1").unwrap();
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll: 1400,
        },
    );
    let insts: Vec<_> = payload.kernel.insts_iter().copied().collect();

    c.bench_function("encode_5k_inst_payload", |b| {
        b.iter(|| fs2_isa::encoder::encode_sequence(black_box(&insts)))
    });
    c.bench_function("decode_24kb_code_buffer", |b| {
        b.iter(|| fs2_isa::decode_all(black_box(&payload.machine_code)).unwrap())
    });
}

fn bench_payload_build(c: &mut Criterion) {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1").unwrap();
    c.bench_function("build_payload_u1400", |b| {
        b.iter(|| {
            build_payload(
                black_box(&sku),
                &PayloadConfig {
                    mix,
                    groups: groups.clone(),
                    unroll: 1400,
                },
            )
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1").unwrap();
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll: 1400,
        },
    );
    let sim = SystemSim::new(sku.clone());
    let model = NodePowerModel::new(sku.clone());

    c.bench_function("steady_state_eval", |b| {
        b.iter(|| {
            steady_state(
                black_box(&sku),
                black_box(&payload.kernel),
                2500.0,
                ActiveSet::full(&sku),
            )
        })
    });
    // The ablation pair of DESIGN.md §6: a plain evaluation vs. the full
    // EDC/PPT-aware frequency solve.
    c.bench_function("node_eval_no_throttle_solve", |b| {
        b.iter(|| sim.evaluate(black_box(&payload.kernel), 2500.0, None))
    });
    c.bench_function("node_eval_with_throttle_solve", |b| {
        b.iter(|| {
            solve_throttle(
                &sim,
                &model,
                black_box(&payload.kernel),
                2500.0,
                None,
                0.0,
            )
        })
    });
}

fn bench_executor(c: &mut Criterion) {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:2,L1_LS:1").unwrap();
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll: 63,
        },
    );
    c.bench_function("functional_exec_100_iters", |b| {
        b.iter(|| {
            let mut ex = Executor::new(InitScheme::V2Safe, 42);
            ex.run(black_box(&payload.kernel), 100);
            ex.state_hash()
        })
    });
}

fn bench_nsga2(c: &mut Criterion) {
    c.bench_function("nsga2_sch_40x20", |b| {
        b.iter(|| {
            let mut problem = fs2_tuning::testfns::Sch::new();
            Nsga2::new(Nsga2Config {
                individuals: 40,
                generations: 20,
                mutation_prob: 0.35,
                crossover_prob: 0.9,
                seed: 1,
            })
            .run(black_box(&mut problem))
        })
    });
}

criterion_group!(
    benches,
    bench_encoder,
    bench_payload_build,
    bench_simulation,
    bench_executor,
    bench_nsga2
);
criterion_main!(benches);
