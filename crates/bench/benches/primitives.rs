//! Manual micro-benchmarks for the moving parts: the costs that bound
//! how fast the self-tuning loop can evaluate candidates.
//!
//! Criterion is not available offline, so this is a plain
//! `harness = false` timing loop: each case is warmed up, then run for a
//! fixed number of iterations with the median-of-5 wall time reported.
//! Run with `cargo bench -p fs2-bench --bench primitives`.

use fs2_arch::Sku;
use fs2_bench::timing::median_ns;
use fs2_core::groups::parse_groups;
use fs2_core::mix::MixRegistry;
use fs2_core::payload::{build_payload, PayloadConfig};
use fs2_power::{solve_throttle, NodePowerModel};
use fs2_sim::core::{steady_state, ActiveSet};
use fs2_sim::{Executor, InitScheme, SystemSim};
use fs2_tuning::{Nsga2, Nsga2Config};
use std::hint::black_box;

/// Times `f` over `iters` calls, median of 5 repetitions, in ns/call.
pub fn time_ns(iters: u32, f: impl FnMut()) -> f64 {
    median_ns(iters.div_ceil(4), iters, 5, f)
}

fn report(name: &str, ns: f64) {
    println!("{name:<34} {:>12.0} ns/iter", ns);
}

fn bench_encoder() {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:4,L1_L:2,L2_L:1").unwrap();
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll: 1400,
        },
    );
    let insts: Vec<_> = payload.kernel.insts_iter().copied().collect();

    report(
        "encode_5k_inst_payload",
        time_ns(50, || {
            black_box(fs2_isa::encoder::encode_sequence(black_box(&insts)));
        }),
    );
    report(
        "decode_24kb_code_buffer",
        time_ns(50, || {
            black_box(fs2_isa::decode_all(black_box(&payload.machine_code)).unwrap());
        }),
    );
}

fn bench_payload_build() {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1").unwrap();
    report(
        "build_payload_u1400",
        time_ns(20, || {
            black_box(build_payload(
                black_box(&sku),
                &PayloadConfig {
                    mix,
                    groups: groups.clone(),
                    unroll: 1400,
                },
            ));
        }),
    );
}

fn bench_simulation() {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1").unwrap();
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll: 1400,
        },
    );
    let sim = SystemSim::new(sku.clone());
    let model = NodePowerModel::new(sku.clone());

    report(
        "steady_state_eval",
        time_ns(200, || {
            black_box(steady_state(
                black_box(&sku),
                black_box(&payload.kernel),
                2500.0,
                ActiveSet::full(&sku),
            ));
        }),
    );
    // The ablation pair of DESIGN.md §6: a plain evaluation vs. the full
    // EDC/PPT-aware frequency solve.
    report(
        "node_eval_no_throttle_solve",
        time_ns(200, || {
            black_box(sim.evaluate(black_box(&payload.kernel), 2500.0, None));
        }),
    );
    report(
        "node_eval_with_throttle_solve",
        time_ns(100, || {
            black_box(solve_throttle(
                &sim,
                &model,
                black_box(&payload.kernel),
                2500.0,
                None,
                0.0,
            ));
        }),
    );
}

fn bench_executor() {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:2,L1_LS:1").unwrap();
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll: 63,
        },
    );
    report(
        "functional_exec_100_iters",
        time_ns(50, || {
            let mut ex = Executor::new(InitScheme::V2Safe, 42);
            ex.run(black_box(&payload.kernel), 100);
            black_box(ex.state_hash());
        }),
    );
}

fn bench_nsga2() {
    report(
        "nsga2_sch_40x20",
        time_ns(10, || {
            let mut problem = fs2_tuning::testfns::Sch::new();
            black_box(
                Nsga2::new(Nsga2Config {
                    individuals: 40,
                    generations: 20,
                    mutation_prob: 0.35,
                    crossover_prob: 0.9,
                    seed: 1,
                })
                .run(black_box(&mut problem)),
            );
        }),
    );
}

fn main() {
    println!("### primitives — micro-benchmarks (median of 5)\n");
    bench_encoder();
    bench_payload_build();
    bench_simulation();
    bench_executor();
    bench_nsga2();
}
