//! # fs2-calib — trace-driven fleet cloning
//!
//! The fleet's episode dwell/share profile and per-class duty mixes
//! (`fs2-cluster`) started as hand-set guesses. This crate closes the
//! loop: ingest a target trace (per-node power time series, CSV via
//! `fs2-metrics`), extract fit targets — power CDF, pooled lag-1
//! autocorrelation, stationary state shares, per-state mean dwell —
//! and fit a [`FleetProfile`] whose cloned fleet reproduces them.
//!
//! * [`trace`] — the trace container, CSV load/store, and target
//!   extraction ([`Trace`], [`FitTargets`]). Every malformed input is
//!   a typed [`TraceError`], never a panic.
//! * [`profile`] — the fleet-profile config file format
//!   ([`FleetProfile`]): a round-trip-exact text format describing
//!   the idle floor, per-class weights, dwells, duty bands and
//!   P-state sets. A profile applies onto a `FleetConfig`, so a
//!   calibrated clone runs through the unmodified fleet pipeline
//!   (and can be attached to `fs2-service` requests).
//! * [`calibrate()`] — the fitting loop: closed-form moment matching
//!   for shares/dwells (state-labeled traces) plus `fs2-tuning`
//!   NSGA-II over `FleetSim` itself for duty bands and P-state sets,
//!   reusing one engine registry so every candidate after the first
//!   hits the shared `EngineCaches` tier. Outputs a
//!   [`FidelityReport`] — the clone-quality numbers CI gates on.
//!
//! Determinism: a fit is a pure function of `(trace, CalibConfig)`.
//! `FleetSim` is bitwise thread-invariant and NSGA-II is seeded, so
//! the fitted profile and every fidelity number are identical for any
//! `threads` setting.

pub mod calibrate;
pub mod profile;
pub mod trace;

pub use calibrate::{
    calibrate, CalibConfig, CalibError, CalibrationResult, FidelityReport, StateFidelity,
};
pub use profile::{ClassProfile, FleetProfile, ProfileError, PSTATE_SETS};
pub use trace::{FitTargets, LabeledTargets, NodeTrace, Trace, TraceError};
