//! Target-trace ingestion and fit-target extraction.
//!
//! A trace is what an operator measures on a real installation:
//! per-node 60 s-mean power samples, optionally labeled with the
//! scheduler's job state per tick. The CSV wire format is long-form,
//! one row per `(node, tick)`:
//!
//! ```text
//! node,tick,power_w[,state]
//! 0,0,93.5,idle
//! 0,1,210.4,medium
//! ...
//! ```
//!
//! Rows must be grouped by node with ticks consecutive from 0; the
//! `state` column is optional but all-or-nothing. Parsing returns
//! typed [`TraceError`]s — empty input, a single-tick node, missing
//! or short columns, non-finite or negative power — never a panic.
//! A *constant-power* trace is valid: its pooled lag-1
//! autocorrelation is defined as 0.0 (the same zero-variance contract
//! as `EpisodeStats::lag1_autocorr`), not `NaN`.

use fs2_cluster::episodes::EpisodeWalk;
use fs2_cluster::fleet::{FleetConfig, PowerCdf};
use fs2_metrics::{CsvError, CsvReader, CsvWriter};
use std::fmt;

/// A typed trace-ingestion failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// CSV-layer failure (malformed quoting, short rows, missing
    /// columns, non-numeric fields).
    Csv(CsvError),
    /// The trace has a header but no data rows.
    Empty,
    /// A node carries fewer than two ticks, so it cannot contribute a
    /// single lag-1 pair (a one-row trace lands here).
    TooShort { node: u32, ticks: usize },
    /// A power value is negative (non-finite values are caught at the
    /// CSV layer as `BadNumber`).
    BadPower { line: usize, value: f64 },
    /// Ticks within a node are not consecutive from 0.
    NonContiguousTick { node: u32, expected: u64, got: u64 },
    /// A node id repeats after another node's rows began.
    SplitNode { node: u32 },
    /// Some rows carry a state label and others do not.
    MixedLabels { line: usize },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Csv(e) => write!(f, "trace CSV: {e}"),
            TraceError::Empty => write!(f, "trace has no data rows"),
            TraceError::TooShort { node, ticks } => {
                write!(
                    f,
                    "node {node} has {ticks} tick(s); lag-1 statistics need at least 2"
                )
            }
            TraceError::BadPower { line, value } => {
                write!(f, "line {line}: negative power {value}")
            }
            TraceError::NonContiguousTick {
                node,
                expected,
                got,
            } => {
                write!(f, "node {node}: expected tick {expected}, got {got}")
            }
            TraceError::SplitNode { node } => {
                write!(f, "node {node}: rows are not contiguous")
            }
            TraceError::MixedLabels { line } => {
                write!(
                    f,
                    "line {line}: state labels must be present on every row or none"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<CsvError> for TraceError {
    fn from(e: CsvError) -> TraceError {
        TraceError::Csv(e)
    }
}

/// One node's tick stream.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    /// Node id as it appeared in the trace.
    pub node: u32,
    /// 60 s-mean power per tick, W.
    pub power_w: Vec<f64>,
    /// Per-tick state labels; empty when the trace is unlabeled.
    pub states: Vec<String>,
}

/// A target trace: per-node power time series, optionally
/// state-labeled.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    nodes: Vec<NodeTrace>,
    labeled: bool,
}

/// Stationary-share and dwell targets extracted from a state-labeled
/// trace. States appear in order of first appearance; dwell is the
/// *observed-run* dwell (consecutive same-state ticks on one node form
/// one run — an episode model's self-transitions merge into runs, so
/// this is what any tick-level observer measures).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledTargets {
    pub states: Vec<String>,
    /// Fraction of all ticks per state (sums to 1).
    pub shares: Vec<f64>,
    /// Mean observed-run length per state, ticks.
    pub mean_run_ticks: Vec<f64>,
}

/// The statistics a calibration run fits against.
#[derive(Debug, Clone)]
pub struct FitTargets {
    /// Power CDF over the paper's 0.1 W bins.
    pub cdf: PowerCdf,
    /// Pooled per-node-centered lag-1 autocorrelation; 0.0 on zero
    /// pooled variance (constant trace), never `NaN`.
    pub lag1_autocorr: f64,
    /// Share/dwell targets when the trace is state-labeled.
    pub labels: Option<LabeledTargets>,
    pub n_nodes: usize,
    pub n_ticks: usize,
}

impl Trace {
    /// Builds a trace from per-node streams. Panics on internal
    /// misuse (empty node set, label/power length mismatch); external
    /// input goes through [`Trace::from_csv`] which returns typed
    /// errors instead.
    pub fn new(nodes: Vec<NodeTrace>) -> Trace {
        assert!(!nodes.is_empty(), "trace needs at least one node");
        let labeled = !nodes[0].states.is_empty();
        for n in &nodes {
            assert!(n.power_w.len() >= 2, "node {}: needs >= 2 ticks", n.node);
            if labeled {
                assert_eq!(n.states.len(), n.power_w.len());
            } else {
                assert!(n.states.is_empty());
            }
        }
        Trace { nodes, labeled }
    }

    /// Whether the trace carries per-tick state labels.
    pub fn is_labeled(&self) -> bool {
        self.labeled
    }

    /// The per-node streams.
    pub fn nodes(&self) -> &[NodeTrace] {
        &self.nodes
    }

    /// Total tick count across nodes.
    pub fn n_ticks(&self) -> usize {
        self.nodes.iter().map(|n| n.power_w.len()).sum()
    }

    /// Synthesizes a state-labeled trace from a fleet run: `samples`
    /// is `FleetRun::samples` for `cfg` (node-major order). The state
    /// labels replay each node's `EpisodeWalk` — a pure function of
    /// `(cfg.seed, node_id)`, exactly the stream the fleet's propose
    /// phase consumed — so the labels match the run tick for tick.
    pub fn from_fleet(cfg: &FleetConfig, samples: &[f64]) -> Trace {
        let mut nodes = Vec::new();
        let mut offset = 0usize;
        let mut node_id = 0u32;
        for group in &cfg.groups {
            let ticks = group.samples_per_node.unwrap_or(cfg.samples_per_node) as usize;
            for _ in 0..group.nodes {
                let power = samples[offset..offset + ticks].to_vec();
                let mut walk = EpisodeWalk::new(&cfg.episodes, &cfg.mix, cfg.seed, node_id);
                let names = cfg.episodes.state_names();
                let states = (0..ticks)
                    .map(|_| names[walk.next_tick().state].to_string())
                    .collect();
                nodes.push(NodeTrace {
                    node: node_id,
                    power_w: power,
                    states,
                });
                offset += ticks;
                node_id += 1;
            }
        }
        assert_eq!(offset, samples.len(), "sample count != fleet size");
        Trace::new(nodes)
    }

    /// Renders the trace as CSV (`node,tick,power_w[,state]`).
    /// Power uses shortest round-trip formatting, so
    /// `from_csv(to_csv(t))` reproduces every bit.
    pub fn to_csv(&self) -> String {
        let mut w = CsvWriter::new();
        if self.labeled {
            w.header(&["node", "tick", "power_w", "state"]);
        } else {
            w.header(&["node", "tick", "power_w"]);
        }
        for n in &self.nodes {
            for (t, &p) in n.power_w.iter().enumerate() {
                let mut row = vec![n.node.to_string(), t.to_string(), format!("{p}")];
                if self.labeled {
                    row.push(n.states[t].clone());
                }
                w.row(&row);
            }
        }
        w.finish()
    }

    /// Parses a CSV trace. Returns a typed [`TraceError`] on any
    /// malformed input; see the module docs for the format.
    pub fn from_csv(text: &str) -> Result<Trace, TraceError> {
        let csv = CsvReader::parse(text)?;
        let node_col = csv.column("node")?;
        let tick_col = csv.column("tick")?;
        let power_col = csv.column("power_w")?;
        let state_col = csv.column("state").ok();
        if csv.n_rows() == 0 {
            return Err(TraceError::Empty);
        }
        let mut nodes: Vec<NodeTrace> = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        for row in 0..csv.n_rows() {
            // CsvReader rows are 1-based lines with the header on
            // line 1; data row `i` sits on line `i + 2` for the error
            // messages below (trace rows never embed newlines).
            let line = row + 2;
            let node = u32::try_from(csv.u64_at(row, node_col)?).map_err(|_| {
                TraceError::Csv(CsvError::BadNumber {
                    line,
                    column: "node".into(),
                    value: csv.field(row, node_col).into(),
                })
            })?;
            let tick = csv.u64_at(row, tick_col)?;
            let power = csv.f64_at(row, power_col)?;
            if power < 0.0 {
                return Err(TraceError::BadPower { line, value: power });
            }
            let state = state_col.map(|c| csv.field(row, c).to_string());
            let is_new = nodes.last().map(|n| n.node) != Some(node);
            if is_new {
                if seen.contains(&node) {
                    return Err(TraceError::SplitNode { node });
                }
                seen.push(node);
                if tick != 0 {
                    return Err(TraceError::NonContiguousTick {
                        node,
                        expected: 0,
                        got: tick,
                    });
                }
                nodes.push(NodeTrace {
                    node,
                    power_w: Vec::new(),
                    states: Vec::new(),
                });
            }
            let cur = nodes.last_mut().expect("node pushed above");
            let expected = cur.power_w.len() as u64;
            if tick != expected {
                return Err(TraceError::NonContiguousTick {
                    node,
                    expected,
                    got: tick,
                });
            }
            cur.power_w.push(power);
            match state {
                Some(s) if !s.is_empty() => cur.states.push(s),
                // A present-but-empty state field means "unlabeled
                // row"; mixing those with labeled rows is an error,
                // caught below.
                _ => {}
            }
        }
        let labeled = !nodes[0].states.is_empty();
        let mut line = 2usize;
        for n in &nodes {
            if n.power_w.len() < 2 {
                return Err(TraceError::TooShort {
                    node: n.node,
                    ticks: n.power_w.len(),
                });
            }
            let node_labeled = !n.states.is_empty();
            if node_labeled != labeled || (node_labeled && n.states.len() != n.power_w.len()) {
                return Err(TraceError::MixedLabels { line });
            }
            line += n.power_w.len();
        }
        Ok(Trace { nodes, labeled })
    }

    /// Extracts the fit targets: power CDF, pooled lag-1
    /// autocorrelation, and — when labeled — stationary state shares
    /// and mean observed-run dwell.
    pub fn targets(&self) -> FitTargets {
        let all: Vec<f64> = self
            .nodes
            .iter()
            .flat_map(|n| n.power_w.iter().copied())
            .collect();
        let cdf = PowerCdf::from_samples(&all, 0.1);
        // Pooled lag-1 autocorrelation, per-node centered — the same
        // estimator (and the same 0.0-on-zero-variance contract) as
        // `EpisodeStats::lag1_autocorr`.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for n in &self.nodes {
            let s = &n.power_w;
            if s.len() >= 2 {
                let mean = s.iter().sum::<f64>() / s.len() as f64;
                den += s.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>();
                num += s
                    .windows(2)
                    .map(|w| (w[0] - mean) * (w[1] - mean))
                    .sum::<f64>();
            }
        }
        let lag1_autocorr = if den > 0.0 { num / den } else { 0.0 };
        let labels = self.labeled.then(|| self.labeled_targets());
        FitTargets {
            cdf,
            lag1_autocorr,
            labels,
            n_nodes: self.nodes.len(),
            n_ticks: all.len(),
        }
    }

    /// Share/run-dwell extraction over the state labels. States are
    /// indexed in order of first appearance across nodes in node
    /// order, so the result is deterministic.
    fn labeled_targets(&self) -> LabeledTargets {
        let mut states: Vec<String> = Vec::new();
        let mut ticks: Vec<u64> = Vec::new();
        let mut runs: Vec<u64> = Vec::new();
        for n in &self.nodes {
            let mut prev: Option<usize> = None;
            for s in &n.states {
                let idx = match states.iter().position(|x| x == s) {
                    Some(i) => i,
                    None => {
                        states.push(s.clone());
                        ticks.push(0);
                        runs.push(0);
                        states.len() - 1
                    }
                };
                ticks[idx] += 1;
                if prev != Some(idx) {
                    runs[idx] += 1;
                }
                prev = Some(idx);
            }
        }
        let total: u64 = ticks.iter().sum();
        let shares = ticks.iter().map(|&t| t as f64 / total as f64).collect();
        let mean_run_ticks = ticks
            .iter()
            .zip(&runs)
            .map(|(&t, &r)| if r == 0 { 0.0 } else { t as f64 / r as f64 })
            .collect();
        LabeledTargets {
            states,
            shares,
            mean_run_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs2_cluster::fleet::{FleetSim, TemporalMode};

    fn tiny_labeled() -> Trace {
        Trace::new(vec![
            NodeTrace {
                node: 0,
                power_w: vec![80.0, 80.0, 200.0, 200.0, 80.0],
                states: ["floor", "floor", "high", "high", "floor"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            },
            NodeTrace {
                node: 1,
                power_w: vec![80.0, 200.0, 200.0],
                states: ["floor", "high", "high"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            },
        ])
    }

    #[test]
    fn csv_round_trip_is_byte_exact() {
        let t = tiny_labeled();
        let text = t.to_csv();
        let back = Trace::from_csv(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_csv(), text);
    }

    #[test]
    fn targets_measure_shares_and_runs() {
        let t = tiny_labeled();
        let targets = t.targets();
        let labels = targets.labels.unwrap();
        assert_eq!(labels.states, vec!["floor".to_string(), "high".to_string()]);
        // 4 floor ticks of 8, over 3 runs; 4 high ticks over 2 runs.
        assert!((labels.shares[0] - 0.5).abs() < 1e-12);
        assert!((labels.mean_run_ticks[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((labels.mean_run_ticks[1] - 2.0).abs() < 1e-12);
        assert_eq!(targets.n_nodes, 2);
        assert_eq!(targets.n_ticks, 8);
    }

    #[test]
    fn constant_power_trace_is_valid_with_zero_autocorr() {
        let t = Trace::new(vec![NodeTrace {
            node: 0,
            power_w: vec![100.0; 32],
            states: Vec::new(),
        }]);
        let targets = t.targets();
        assert_eq!(targets.lag1_autocorr, 0.0);
        assert!(!targets.lag1_autocorr.is_nan());
        assert!(targets.labels.is_none());
    }

    #[test]
    fn typed_errors_for_malformed_traces() {
        // Header only: empty trace.
        assert_eq!(
            Trace::from_csv("node,tick,power_w\n"),
            Err(TraceError::Empty)
        );
        // Single tick on a node.
        assert_eq!(
            Trace::from_csv("node,tick,power_w\n0,0,50\n"),
            Err(TraceError::TooShort { node: 0, ticks: 1 })
        );
        // Missing column.
        assert!(matches!(
            Trace::from_csv("node,tick\n0,0\n"),
            Err(TraceError::Csv(CsvError::MissingColumn { .. }))
        ));
        // Short row.
        assert!(matches!(
            Trace::from_csv("node,tick,power_w\n0,0\n"),
            Err(TraceError::Csv(CsvError::ShortRow { .. }))
        ));
        // Non-numeric and non-finite power.
        assert!(matches!(
            Trace::from_csv("node,tick,power_w\n0,0,oops\n0,1,1\n"),
            Err(TraceError::Csv(CsvError::BadNumber { .. }))
        ));
        assert!(matches!(
            Trace::from_csv("node,tick,power_w\n0,0,NaN\n0,1,1\n"),
            Err(TraceError::Csv(CsvError::BadNumber { .. }))
        ));
        // Negative power.
        assert_eq!(
            Trace::from_csv("node,tick,power_w\n0,0,-5\n0,1,1\n"),
            Err(TraceError::BadPower {
                line: 2,
                value: -5.0
            })
        );
        // Tick gaps and split nodes.
        assert_eq!(
            Trace::from_csv("node,tick,power_w\n0,0,1\n0,2,1\n"),
            Err(TraceError::NonContiguousTick {
                node: 0,
                expected: 1,
                got: 2
            })
        );
        assert_eq!(
            Trace::from_csv("node,tick,power_w\n0,0,1\n0,1,1\n1,0,1\n1,1,1\n0,0,1\n"),
            Err(TraceError::SplitNode { node: 0 })
        );
        // Mixed labels.
        assert!(matches!(
            Trace::from_csv("node,tick,power_w,state\n0,0,1,floor\n0,1,1,\n"),
            Err(TraceError::MixedLabels { .. })
        ));
    }

    #[test]
    fn fleet_synthesis_labels_match_episode_shares() {
        let cfg = FleetConfig {
            samples_per_node: 400,
            temporal: TemporalMode::Episodes,
            ..FleetConfig::taurus_haswell_scaled(24)
        };
        let run = FleetSim::new(cfg.clone()).run();
        let trace = Trace::from_fleet(&cfg, &run.samples);
        assert!(trace.is_labeled());
        let targets = trace.targets();
        let labels = targets.labels.unwrap();
        // The replayed labels must reproduce the run's own per-state
        // tick accounting exactly: compare against EpisodeStats
        // shares (same walks, same tick streams).
        let stats = run.episodes.unwrap();
        for (i, name) in stats.states.iter().enumerate() {
            let li = labels.states.iter().position(|s| s == name);
            let got = li.map(|j| labels.shares[j]).unwrap_or(0.0);
            assert!(
                (got - stats.empirical_shares[i]).abs() < 1e-12,
                "{name}: trace share {got} != walk share {}",
                stats.empirical_shares[i]
            );
        }
        // And the pooled autocorrelation is literally the same
        // estimator over the same streams.
        assert!((targets.lag1_autocorr - stats.lag1_autocorr).abs() < 1e-12);
    }
}
