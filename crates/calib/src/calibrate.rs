//! The auto-calibration loop: fit a [`FleetProfile`] to a target
//! trace by running NSGA-II over `FleetSim` itself.
//!
//! The fit splits along what can be solved in closed form and what
//! cannot:
//!
//! * **Moment matching** (state-labeled traces). `EpisodeModel::
//!   from_mix` makes long-run time shares *equal* to the configured
//!   shares, so floor share and class weights are read straight off
//!   the trace. Episode dwells need one correction: `from_mix` rows
//!   are identical, so a state self-transitions with probability
//!   `q_j` and consecutive episodes merge into one *observed run* of
//!   expected length `d_j / (1 - q_j)`. A short fixed-point iteration
//!   inverts that bias, recovering episode dwells whose observed runs
//!   match the trace's.
//! * **NSGA-II search** (everything moments cannot give): per-class
//!   duty-cycle bands and P-state sets — and, for unlabeled traces,
//!   the floor share, a dwell scale and the class weights too. Each
//!   candidate profile is applied to a small evaluation fleet and
//!   scored by running `FleetSim` (seeded, bitwise thread-invariant);
//!   all candidates share one `EngineRegistry`, so after the first
//!   candidate warms the `(SKU, spec, P-state)` tables every later
//!   evaluation is pure cache hits plus sampling.
//!
//! Objectives (all errors, negated for the maximizing optimizer):
//! power-CDF distance, pooled lag-1 autocorrelation error, and mean
//! per-state observed-run dwell error. The returned
//! [`FidelityReport`] re-measures the *final* profile against a
//! fresh, independently seeded clone fleet — those are the numbers
//! the CI gate and `BENCH_fleet.json` carry.
//!
//! Determinism: the fit is a pure function of `(trace, CalibConfig)`.
//! `CalibConfig::threads` only sets the evaluation fleet's sweep
//! threads, which never change `FleetSim` bits.

use crate::profile::{FleetProfile, PSTATE_SETS};
use crate::trace::{FitTargets, Trace};
use fs2_cluster::fleet::{FleetConfig, FleetSim, PowerCdf};
use fs2_core::{EngineCaches, EngineRegistry};
use fs2_tuning::{Nsga2, Nsga2Config, Problem};
use std::fmt;
use std::sync::Arc;

/// Seed salt for the candidate-evaluation fleet.
const EVAL_SALT: u64 = 0xCA11_B0A7;
/// Seed salt for the final fidelity clone (independent of both the
/// evaluation fleet and any seed the target trace was built from).
const CLONE_SALT: u64 = 0xC10E_5EED;

/// Calibration budget and evaluation-fleet sizing.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibConfig {
    /// Nodes in the candidate-evaluation fleet.
    pub eval_nodes: u32,
    /// Ticks per node in the candidate-evaluation fleet.
    pub eval_ticks: u32,
    /// Nodes in the final fidelity clone; 0 = match the trace.
    pub clone_nodes: u32,
    /// Ticks per node in the final fidelity clone; 0 = match the
    /// trace's mean ticks per node.
    pub clone_ticks: u32,
    /// Master seed: drives NSGA-II and derives the evaluation/clone
    /// fleet seeds. The whole fit is a pure function of
    /// `(trace, seed)` plus the budget fields.
    pub seed: u64,
    /// Sweep threads for the evaluation/clone fleets (0 = host
    /// parallelism). Never changes any fitted parameter or fidelity
    /// bit — `FleetSim` is thread-invariant.
    pub threads: usize,
    /// NSGA-II population size (>= 2).
    pub individuals: usize,
    /// NSGA-II generations.
    pub generations: u32,
}

impl Default for CalibConfig {
    fn default() -> CalibConfig {
        CalibConfig {
            eval_nodes: 32,
            eval_ticks: 600,
            clone_nodes: 0,
            clone_ticks: 0,
            seed: 0xCA11_BF17,
            threads: 0,
            individuals: 16,
            generations: 8,
        }
    }
}

/// A typed calibration failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibError {
    /// A trace state label that is neither `floor` nor a known class.
    UnknownState { name: String },
    /// A labeled trace with no job states at all (floor only):
    /// there is no mix to fit.
    NoJobStates,
}

impl fmt::Display for CalibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibError::UnknownState { name } => {
                write!(f, "trace state {name:?} is not floor or a known class")
            }
            CalibError::NoJobStates => {
                write!(f, "trace never leaves the idle floor; no job mix to fit")
            }
        }
    }
}

impl std::error::Error for CalibError {}

/// Per-state fidelity row: target vs clone, shares and observed-run
/// dwell.
#[derive(Debug, Clone, PartialEq)]
pub struct StateFidelity {
    pub state: String,
    pub target_share: f64,
    pub clone_share: f64,
    /// Mean observed-run length in the trace, ticks (0 if absent).
    pub target_dwell_ticks: f64,
    pub clone_dwell_ticks: f64,
}

/// Clone-quality numbers: the final fitted profile re-measured
/// against an independently seeded clone fleet. These are the fields
/// CI gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// Mean |CDF_target - CDF_clone| over a uniform power grid
    /// spanning both supports.
    pub cdf_distance: f64,
    pub target_lag1: f64,
    pub clone_lag1: f64,
    /// |target_lag1 - clone_lag1|.
    pub autocorr_error: f64,
    /// max over states of |share_target - share_clone| (0.0 for
    /// unlabeled traces).
    pub max_share_error: f64,
    /// Mean/max over trace states of relative observed-run dwell
    /// error (0.0 for unlabeled traces).
    pub mean_dwell_rel_error: f64,
    pub max_dwell_rel_error: f64,
    /// Per-state table (empty for unlabeled traces).
    pub states: Vec<StateFidelity>,
    /// Fidelity-clone fleet size actually used.
    pub clone_nodes: u32,
    pub clone_ticks_per_node: u32,
}

impl FidelityReport {
    /// Human-readable report for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "clone fidelity ({} nodes x {} ticks):\n",
            self.clone_nodes, self.clone_ticks_per_node
        ));
        out.push_str(&format!("  cdf_distance        {:.4}\n", self.cdf_distance));
        out.push_str(&format!(
            "  lag1_autocorr       target {:.4}  clone {:.4}  error {:.4}\n",
            self.target_lag1, self.clone_lag1, self.autocorr_error
        ));
        if !self.states.is_empty() {
            out.push_str(&format!(
                "  max_share_error     {:.4}\n",
                self.max_share_error
            ));
            out.push_str(&format!(
                "  dwell_rel_error     mean {:.4}  max {:.4}\n",
                self.mean_dwell_rel_error, self.max_dwell_rel_error
            ));
            out.push_str("  state      share(target/clone)   dwell(target/clone)\n");
            for s in &self.states {
                out.push_str(&format!(
                    "  {:<9} {:.4} / {:.4}       {:.1} / {:.1}\n",
                    s.state,
                    s.target_share,
                    s.clone_share,
                    s.target_dwell_ticks,
                    s.clone_dwell_ticks
                ));
            }
        }
        out
    }
}

/// The calibration output: the fitted profile plus its fidelity.
#[derive(Debug, Clone)]
pub struct CalibrationResult {
    pub profile: FleetProfile,
    pub report: FidelityReport,
    /// NSGA-II evaluations performed (duplicate-genome cache hits
    /// excluded).
    pub evaluations: u32,
    /// NSGA-II duplicate-genome cache hits.
    pub nsga_cache_hits: u32,
}

/// Moment-matched share/dwell parameters for a labeled trace.
struct Moments {
    floor_share: f64,
    floor_dwell: f64,
    /// Per known class: mix weight (trace time share; 0 when the
    /// class never appears).
    weights: Vec<f64>,
    /// Per known class: episode dwell after self-transition
    /// de-biasing.
    dwells: Vec<f64>,
}

/// Recovers episode-level dwells from observed-run dwells. With
/// `from_mix`'s identical rows, state `j` self-transitions with
/// `q_j = (s_j/d_j) / Σ_k (s_k/d_k)` and the expected observed run is
/// `d_j / (1 - q_j)`; iterate `d_j ← r_j · (1 - q_j)` to a fixed
/// point (contractive for q < 1; 60 rounds is far past convergence).
fn debias_dwells(shares: &[f64], runs: &[f64]) -> Vec<f64> {
    let mut d: Vec<f64> = runs.iter().map(|&r| r.max(1.0)).collect();
    for _ in 0..60 {
        let denom: f64 = shares
            .iter()
            .zip(&d)
            .filter(|(&s, _)| s > 0.0)
            .map(|(&s, &dj)| s / dj)
            .sum();
        if denom <= 0.0 {
            break;
        }
        for j in 0..d.len() {
            if shares[j] > 0.0 {
                let q = (shares[j] / d[j]) / denom;
                d[j] = (runs[j] * (1.0 - q)).max(1.0);
            }
        }
    }
    d
}

/// Extracts moment-matched parameters from a labeled trace's targets.
fn match_moments(targets: &FitTargets, names: &[&str]) -> Result<Option<Moments>, CalibError> {
    let Some(labels) = &targets.labels else {
        return Ok(None);
    };
    // Trace state order → (floor | class index) mapping.
    let mut share_of = vec![0.0f64; names.len() + 1];
    let mut run_of = vec![0.0f64; names.len() + 1];
    for (i, state) in labels.states.iter().enumerate() {
        let slot = if state == "floor" {
            0
        } else {
            match names.iter().position(|n| n == state) {
                Some(c) => c + 1,
                None => {
                    return Err(CalibError::UnknownState {
                        name: state.clone(),
                    })
                }
            }
        };
        share_of[slot] = labels.shares[i];
        run_of[slot] = labels.mean_run_ticks[i];
    }
    if share_of[1..].iter().all(|&s| s == 0.0) {
        return Err(CalibError::NoJobStates);
    }
    // A trace that never idles still needs a (tiny) floor state:
    // `from_mix` requires floor_share > 0.
    if share_of[0] == 0.0 {
        share_of[0] = 1e-3;
        run_of[0] = 1.0;
    }
    let dwells = debias_dwells(&share_of, &run_of);
    Ok(Some(Moments {
        floor_share: share_of[0],
        floor_dwell: dwells[0],
        weights: share_of[1..].to_vec(),
        dwells: dwells[1..].to_vec(),
    }))
}

/// Mean absolute CDF difference over a uniform 257-point power grid
/// spanning both supports.
fn cdf_distance(a: &PowerCdf, b: &PowerCdf) -> f64 {
    if a.samples == 0 || b.samples == 0 {
        return 1.0;
    }
    let lo = a.min_w.min(b.min_w);
    let hi = a.max_w.max(b.max_w);
    if hi <= lo {
        return (a.fraction_at(lo) - b.fraction_at(lo)).abs();
    }
    let n = 257;
    let mut total = 0.0;
    for i in 0..n {
        let x = lo + (hi - lo) * (i as f64) / ((n - 1) as f64);
        total += (a.fraction_at(x) - b.fraction_at(x)).abs();
    }
    total / n as f64
}

/// The NSGA-II problem: decode genes → profile → evaluation-fleet run
/// → distance to the trace targets.
struct CloneProblem<'a> {
    targets: &'a FitTargets,
    moments: Option<Moments>,
    /// Trace run dwells indexed like the model states (floor first),
    /// for the dwell objective; empty when unlabeled.
    target_runs: Vec<f64>,
    base: FleetProfile,
    eval_cfg: FleetConfig,
    registry: &'a EngineRegistry,
}

impl CloneProblem<'_> {
    /// Genome layout. Labeled traces (shares/dwells moment-matched):
    /// 3 genes per class — duty_lo (percent, 0..=95), duty_width
    /// (percent of the remaining headroom, 1..=100), P-state set
    /// index. Unlabeled traces prepend floor_share (percent, 1..=60)
    /// and a dwell scale (percent, 25..=400), and append one weight
    /// gene (1..=100) per class.
    fn gene_bounds(&self) -> Vec<(u32, u32)> {
        let n_classes = self.base.classes.len();
        let mut b = Vec::new();
        if self.moments.is_none() {
            b.push((1, 60));
            b.push((25, 400));
        }
        for _ in 0..n_classes {
            b.push((0, 95));
            b.push((1, 100));
            b.push((0, (PSTATE_SETS.len() - 1) as u32));
        }
        if self.moments.is_none() {
            for _ in 0..n_classes {
                b.push((1, 100));
            }
        }
        b
    }

    /// Decodes a genome into a complete profile.
    fn decode(&self, genes: &[u32]) -> FleetProfile {
        let n_classes = self.base.classes.len();
        let mut p = self.base.clone();
        let class_base = if self.moments.is_none() { 2 } else { 0 };
        match &self.moments {
            Some(m) => {
                p.floor_share = m.floor_share;
                p.floor_dwell_ticks = m.floor_dwell;
                for (i, c) in p.classes.iter_mut().enumerate() {
                    c.weight = m.weights[i];
                    c.dwell_ticks = m.dwells[i];
                }
            }
            None => {
                p.floor_share = f64::from(genes[0]) / 100.0;
                let scale = f64::from(genes[1]) / 100.0;
                for (i, c) in p.classes.iter_mut().enumerate() {
                    c.dwell_ticks = (self.base.classes[i].dwell_ticks * scale).max(1.0);
                    c.weight = f64::from(genes[2 + 3 * n_classes + i]) / 100.0;
                }
                p.floor_dwell_ticks = (self.base.floor_dwell_ticks * scale).max(1.0);
            }
        }
        for (i, c) in p.classes.iter_mut().enumerate() {
            let lo = f64::from(genes[class_base + 3 * i]) / 100.0;
            let width = f64::from(genes[class_base + 3 * i + 1]) / 100.0;
            let hi = lo + width * (1.0 - lo);
            // width >= 1% keeps the band non-empty; clamp away from
            // exact 1.0 rounding.
            c.duty = (lo, hi.min(1.0).max(lo + 1e-4));
            c.pstate_set = genes[class_base + 3 * i + 2] as usize;
        }
        p
    }

    /// Runs one candidate through the evaluation fleet and extracts
    /// its targets with the same estimator used on the trace.
    fn measure(&self, profile: &FleetProfile) -> FitTargets {
        let mut cfg = self.eval_cfg.clone();
        profile.apply(&mut cfg);
        let run = FleetSim::new(cfg.clone()).run_with(self.registry);
        Trace::from_fleet(&cfg, &run.samples).targets()
    }

    /// Error triple (cdf, autocorr, dwell) for a candidate's
    /// measured targets.
    fn errors(&self, got: &FitTargets) -> (f64, f64, f64) {
        let cdf = cdf_distance(&self.targets.cdf, &got.cdf);
        let ac = (self.targets.lag1_autocorr - got.lag1_autocorr).abs();
        let dwell = if self.target_runs.is_empty() {
            0.0
        } else {
            let got_labels = got.labels.as_ref().expect("eval fleet is labeled");
            let state_names: Vec<&str> = std::iter::once("floor")
                .chain(self.base.classes.iter().map(|c| c.name))
                .collect();
            let mut total = 0.0;
            let mut n = 0usize;
            for (j, &target_run) in self.target_runs.iter().enumerate() {
                if target_run <= 0.0 {
                    continue;
                }
                let name = state_names[j];
                let got_run = got_labels
                    .states
                    .iter()
                    .position(|s| s == name)
                    .map(|i| got_labels.mean_run_ticks[i])
                    .unwrap_or(0.0);
                total += (got_run - target_run).abs() / target_run.max(1.0);
                n += 1;
            }
            if n == 0 {
                0.0
            } else {
                total / n as f64
            }
        };
        (cdf, ac, dwell)
    }
}

impl Problem for CloneProblem<'_> {
    fn n_genes(&self) -> usize {
        self.gene_bounds().len()
    }

    fn n_objectives(&self) -> usize {
        3
    }

    fn bounds(&self) -> Vec<(u32, u32)> {
        self.gene_bounds()
    }

    fn evaluate(&mut self, genes: &[u32]) -> Vec<f64> {
        let profile = self.decode(genes);
        let got = self.measure(&profile);
        let (cdf, ac, dwell) = self.errors(&got);
        // The optimizer maximizes; errors enter negated.
        vec![-cdf, -ac, -dwell]
    }
}

/// Fits a profile to `trace`. Returns the fitted profile and a
/// fidelity report measured against a fresh clone fleet. Pure
/// function of `(trace, cfg)`; see the module docs.
pub fn calibrate(trace: &Trace, cfg: &CalibConfig) -> Result<CalibrationResult, CalibError> {
    let targets = trace.targets();
    let base = FleetProfile::taurus_haswell();
    let names: Vec<&str> = base.classes.iter().map(|c| c.name).collect();
    let moments = match_moments(&targets, &names)?;
    let target_runs: Vec<f64> = match &targets.labels {
        Some(labels) => {
            let state_names: Vec<&str> = std::iter::once("floor").chain(names.clone()).collect();
            state_names
                .iter()
                .map(|n| {
                    labels
                        .states
                        .iter()
                        .position(|s| s == n)
                        .map(|i| labels.mean_run_ticks[i])
                        .unwrap_or(0.0)
                })
                .collect()
        }
        None => Vec::new(),
    };

    let caches = Arc::new(EngineCaches::new());
    let eval_seed = cfg.seed ^ EVAL_SALT;
    let registry = EngineRegistry::with_caches(eval_seed, Arc::clone(&caches));
    let eval_cfg = FleetConfig {
        samples_per_node: cfg.eval_ticks,
        seed: eval_seed,
        threads: cfg.threads,
        ..FleetConfig::taurus_haswell_scaled(cfg.eval_nodes)
    };

    let mut problem = CloneProblem {
        targets: &targets,
        moments,
        target_runs,
        base,
        eval_cfg,
        registry: &registry,
    };
    let nsga = Nsga2::new(Nsga2Config {
        individuals: cfg.individuals,
        generations: cfg.generations,
        seed: cfg.seed,
        ..Nsga2Config::default()
    });
    let result = nsga.run(&mut problem);

    // Deterministic selection from the Pareto front: minimize the
    // summed error, tie-break on the genome.
    let mut best: Option<(&Vec<u32>, f64)> = None;
    for ind in &result.front {
        let score: f64 = -ind.objectives.iter().sum::<f64>();
        let better = match best {
            None => true,
            Some((genes, s)) => {
                score < s - 1e-12 || ((score - s).abs() <= 1e-12 && ind.genes < *genes)
            }
        };
        if better {
            best = Some((&ind.genes, score));
        }
    }
    let (genes, _) = best.expect("NSGA-II front is never empty");
    let mut profile = problem.decode(genes);
    profile.name = "calibrated".to_string();

    // Final fidelity: re-measure the fitted profile on an
    // independently seeded clone fleet sized like the trace.
    let clone_nodes = if cfg.clone_nodes > 0 {
        cfg.clone_nodes
    } else {
        (targets.n_nodes as u32).max(1)
    };
    let clone_ticks = if cfg.clone_ticks > 0 {
        cfg.clone_ticks
    } else {
        ((targets.n_ticks / targets.n_nodes.max(1)) as u32).max(2)
    };
    let clone_seed = cfg.seed ^ CLONE_SALT;
    let clone_registry = EngineRegistry::with_caches(clone_seed, caches);
    let mut clone_cfg = FleetConfig {
        samples_per_node: clone_ticks,
        seed: clone_seed,
        threads: cfg.threads,
        ..FleetConfig::taurus_haswell_scaled(clone_nodes)
    };
    profile.apply(&mut clone_cfg);
    let clone_run = FleetSim::new(clone_cfg.clone()).run_with(&clone_registry);
    let clone_targets = Trace::from_fleet(&clone_cfg, &clone_run.samples).targets();

    let report = fidelity(&targets, &clone_targets, clone_nodes, clone_ticks);
    Ok(CalibrationResult {
        profile,
        report,
        evaluations: result.history.len() as u32,
        nsga_cache_hits: result.cache_hits,
    })
}

/// Builds the fidelity report comparing trace targets against
/// clone-fleet targets, both measured with the same estimators.
pub fn fidelity(
    target: &FitTargets,
    clone: &FitTargets,
    clone_nodes: u32,
    clone_ticks_per_node: u32,
) -> FidelityReport {
    let cdf = cdf_distance(&target.cdf, &clone.cdf);
    let ac = (target.lag1_autocorr - clone.lag1_autocorr).abs();
    let mut states = Vec::new();
    let mut max_share = 0.0f64;
    let mut dwell_errs = Vec::new();
    if let (Some(t), Some(c)) = (&target.labels, &clone.labels) {
        // Union of state names, trace order first.
        let mut names: Vec<String> = t.states.clone();
        for s in &c.states {
            if !names.contains(s) {
                names.push(s.clone());
            }
        }
        for name in &names {
            let ti = t.states.iter().position(|s| s == name);
            let ci = c.states.iter().position(|s| s == name);
            let ts = ti.map(|i| t.shares[i]).unwrap_or(0.0);
            let cs = ci.map(|i| c.shares[i]).unwrap_or(0.0);
            let td = ti.map(|i| t.mean_run_ticks[i]).unwrap_or(0.0);
            let cd = ci.map(|i| c.mean_run_ticks[i]).unwrap_or(0.0);
            max_share = max_share.max((ts - cs).abs());
            if td > 0.0 {
                dwell_errs.push((cd - td).abs() / td.max(1.0));
            }
            states.push(StateFidelity {
                state: name.clone(),
                target_share: ts,
                clone_share: cs,
                target_dwell_ticks: td,
                clone_dwell_ticks: cd,
            });
        }
    }
    let (mean_dwell, max_dwell) = if dwell_errs.is_empty() {
        (0.0, 0.0)
    } else {
        (
            dwell_errs.iter().sum::<f64>() / dwell_errs.len() as f64,
            dwell_errs.iter().copied().fold(0.0, f64::max),
        )
    };
    FidelityReport {
        cdf_distance: cdf,
        target_lag1: target.lag1_autocorr,
        clone_lag1: clone.lag1_autocorr,
        autocorr_error: ac,
        max_share_error: max_share,
        mean_dwell_rel_error: mean_dwell,
        max_dwell_rel_error: max_dwell,
        states,
        clone_nodes,
        clone_ticks_per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs2_cluster::fleet::TemporalMode;

    /// Synthesizes a labeled trace from a known profile.
    pub(crate) fn trace_from(profile: &FleetProfile, nodes: u32, ticks: u32, seed: u64) -> Trace {
        let mut cfg = FleetConfig {
            samples_per_node: ticks,
            seed,
            temporal: TemporalMode::Episodes,
            ..FleetConfig::taurus_haswell_scaled(nodes)
        };
        profile.apply(&mut cfg);
        let run = FleetSim::new(cfg.clone()).run();
        Trace::from_fleet(&cfg, &run.samples)
    }

    #[test]
    fn debias_recovers_episode_dwells() {
        // Forward model: shares + episode dwells → q → run dwells;
        // the fixed point must invert it.
        let shares = [0.15, 0.2125, 0.17, 0.17, 0.17, 0.1275];
        let dwell = [8.0, 6.0, 10.0, 14.0, 20.0, 30.0];
        let denom: f64 = shares.iter().zip(&dwell).map(|(&s, &d)| s / d).sum();
        let runs: Vec<f64> = shares
            .iter()
            .zip(&dwell)
            .map(|(&s, &d)| d / (1.0 - (s / d) / denom))
            .collect();
        let got = debias_dwells(&shares, &runs);
        for (g, w) in got.iter().zip(&dwell) {
            assert!((g - w).abs() < 1e-9, "dwell {g} != {w}");
        }
    }

    #[test]
    fn moment_matching_reads_shares_off_the_trace() {
        let profile = FleetProfile::exemplar();
        let trace = trace_from(&profile, 48, 800, 0xBEEF);
        let targets = trace.targets();
        let base = FleetProfile::taurus_haswell();
        let names: Vec<&str> = base.classes.iter().map(|c| c.name).collect();
        let m = match_moments(&targets, &names).unwrap().unwrap();
        assert!((m.floor_share - 0.15).abs() < 0.02);
        // Weights are trace time shares; compare against the
        // profile's intended shares (0.85 * normalized weight).
        for (i, c) in profile.classes.iter().enumerate() {
            let want = 0.85 * c.weight;
            assert!(
                (m.weights[i] - want).abs() < 0.02,
                "{}: weight {} vs {want}",
                c.name,
                m.weights[i]
            );
        }
        // De-biased dwells land near the true episode dwells.
        for (i, c) in profile.classes.iter().enumerate() {
            let rel = (m.dwells[i] - c.dwell_ticks).abs() / c.dwell_ticks;
            assert!(
                rel < 0.15,
                "{}: dwell {} vs {} (rel {rel})",
                c.name,
                m.dwells[i],
                c.dwell_ticks
            );
        }
    }

    #[test]
    fn unknown_state_and_floor_only_are_typed_errors() {
        use crate::trace::NodeTrace;
        let t = Trace::new(vec![NodeTrace {
            node: 0,
            power_w: vec![1.0, 2.0],
            states: vec!["warp".into(), "warp".into()],
        }]);
        assert_eq!(
            calibrate(&t, &CalibConfig::default()).unwrap_err(),
            CalibError::UnknownState {
                name: "warp".into()
            }
        );
        let t = Trace::new(vec![NodeTrace {
            node: 0,
            power_w: vec![1.0, 2.0],
            states: vec!["floor".into(), "floor".into()],
        }]);
        assert_eq!(
            calibrate(&t, &CalibConfig::default()).unwrap_err(),
            CalibError::NoJobStates
        );
    }

    #[test]
    fn cdf_distance_is_zero_on_self_and_positive_on_shift() {
        let a = PowerCdf::from_samples(&[100.0, 120.0, 140.0, 160.0], 0.1);
        let b = PowerCdf::from_samples(&[200.0, 220.0, 240.0, 260.0], 0.1);
        assert_eq!(cdf_distance(&a, &a), 0.0);
        assert!(cdf_distance(&a, &b) > 0.3);
    }
}
