//! The fleet-profile config file format.
//!
//! A [`FleetProfile`] is everything calibration fits: the idle-floor
//! share and dwell, and per job class a mix weight, episode dwell,
//! ramp, duty-cycle band and P-state set. It is the operator-facing
//! artifact — written by `--calibrate`, loadable by `--profile`,
//! attachable to `fs2-service` requests — and applies onto a
//! `FleetConfig` so a clone runs through the unmodified fleet
//! pipeline.
//!
//! The text format is line-based (`key = value` plus `[class NAME]`
//! sections). The writer is canonical — fixed key order, shortest
//! round-trip float formatting — so `load → write → load` is
//! byte-identical, and the parser rejects malformed input with typed
//! [`ProfileError`]s: unknown keys or classes, NaN, empty/inverted
//! duty bands, sub-tick dwells, non-stochastic weights.
//!
//! Class names are fixed to the five Taurus utilization classes so a
//! profile can reuse their `&'static` payload specs (`JobClass`
//! requires `'static` strs); what calibration actually fits — weight,
//! dwell, duty band, P-state set — is free per class.

use fs2_cluster::episodes::EpisodeModel;
use fs2_cluster::fleet::{FleetConfig, TemporalMode};
use fs2_cluster::jobs::{JobClass, JobMix};
use std::fmt;

/// Header line every profile file must start with.
pub const PROFILE_HEADER: &str = "# fs2 fleet profile v1";

/// The known classes: `(name, payload spec)`. Specs are the engine
/// payloads behind each utilization class (`JobMix::taurus_haswell`).
const CLASS_SPECS: &[(&str, &str)] = &[
    ("idle", "REG:1"),
    ("low", "REG:2,L1_L:1"),
    ("medium", "REG:4,L1_2LS:2,L2_LS:1"),
    ("high", "REG:6,L1_2LS:3,L2_LS:1,L3_LS:1"),
    ("peak", "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1"),
];

/// The P-state sets a class may draw from (indices into the SKU
/// P-state tables: 0 = nominal, 2 = minimum). Calibration selects one
/// set per class; the text format stores the set itself.
pub const PSTATE_SETS: &[&[usize]] = &[&[0], &[1], &[2], &[0, 1], &[1, 2], &[0, 1, 2]];

/// One job class's fitted parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassProfile {
    pub name: &'static str,
    /// Engine payload spec (fixed per class name).
    pub spec: &'static str,
    /// Mix weight (fraction of non-floor node hours; need not be
    /// normalized, must be non-negative with a positive total).
    pub weight: f64,
    /// Mean episode dwell, 60 s ticks (>= 1).
    pub dwell_ticks: f64,
    /// Ramp-in length, ticks.
    pub ramp_ticks: u32,
    /// Duty-cycle band `[lo, hi)` within `[0, 1]`.
    pub duty: (f64, f64),
    /// Index into [`PSTATE_SETS`].
    pub pstate_set: usize,
}

/// A complete fleet profile: the calibrated clone of an installation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetProfile {
    /// Operator-chosen profile name (single line, no `=`).
    pub name: String,
    /// Long-run fraction of node time on the bare idle floor, in
    /// (0, 1).
    pub floor_share: f64,
    /// Mean idle-floor episode dwell, ticks (>= 1).
    pub floor_dwell_ticks: f64,
    /// Per-class parameters, in mix order.
    pub classes: Vec<ClassProfile>,
}

/// A typed profile-format failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The first line is not [`PROFILE_HEADER`].
    MissingHeader,
    /// A line is neither `key = value`, a `[class NAME]` section, a
    /// comment nor blank.
    BadLine { line: usize, text: String },
    /// A key that does not belong in its section.
    UnknownKey { line: usize, key: String },
    /// `[class NAME]` with a name outside the known class set.
    UnknownClass { line: usize, name: String },
    /// The same class declared twice.
    DuplicateClass { name: String },
    /// A required key never appeared in its section.
    MissingKey { section: String, key: &'static str },
    /// A value failed to parse, or parsed non-finite (NaN/inf).
    BadValue {
        line: usize,
        key: String,
        value: String,
    },
    /// A P-state set not present in [`PSTATE_SETS`].
    UnknownPstates { line: usize, value: String },
    /// `floor_share` outside (0, 1).
    BadFloorShare { value: f64 },
    /// A dwell below one tick.
    BadDwell { section: String, value: f64 },
    /// A duty band that is empty, inverted, or outside [0, 1].
    BadDuty { class: String, lo: f64, hi: f64 },
    /// A negative class weight.
    BadWeight { class: String, value: f64 },
    /// All class weights are zero (nothing to schedule).
    NonStochastic,
    /// No `[class ...]` sections at all.
    NoClasses,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::MissingHeader => {
                write!(f, "profile must start with {PROFILE_HEADER:?}")
            }
            ProfileError::BadLine { line, text } => {
                write!(f, "line {line}: unparseable line {text:?}")
            }
            ProfileError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key {key:?}")
            }
            ProfileError::UnknownClass { line, name } => {
                write!(f, "line {line}: unknown class {name:?}")
            }
            ProfileError::DuplicateClass { name } => {
                write!(f, "class {name:?} declared twice")
            }
            ProfileError::MissingKey { section, key } => {
                write!(f, "{section}: missing key {key:?}")
            }
            ProfileError::BadValue { line, key, value } => {
                write!(f, "line {line}: bad value {value:?} for {key:?}")
            }
            ProfileError::UnknownPstates { line, value } => {
                write!(f, "line {line}: P-state set {value:?} is not supported")
            }
            ProfileError::BadFloorShare { value } => {
                write!(f, "floor_share {value} outside (0, 1)")
            }
            ProfileError::BadDwell { section, value } => {
                write!(f, "{section}: dwell {value} below one tick")
            }
            ProfileError::BadDuty { class, lo, hi } => {
                write!(f, "class {class}: duty band [{lo}, {hi}) invalid")
            }
            ProfileError::BadWeight { class, value } => {
                write!(f, "class {class}: negative weight {value}")
            }
            ProfileError::NonStochastic => {
                write!(f, "class weights sum to zero")
            }
            ProfileError::NoClasses => write!(f, "profile declares no classes"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Looks up the `'static` spec for a known class name.
fn class_spec(name: &str) -> Option<(&'static str, &'static str)> {
    CLASS_SPECS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(n, s)| (n, s))
}

impl FleetProfile {
    /// The hand-set Taurus Haswell profile the fleet has always used
    /// (`JobMix::taurus_haswell` + `EpisodeModel::taurus_haswell`),
    /// expressed as a profile. Applying it reproduces the default
    /// episode fleet parameters exactly.
    pub fn taurus_haswell() -> FleetProfile {
        let dwell = [10.0, 20.0, 30.0, 60.0, 120.0];
        let ramp = [0u32, 1, 1, 2, 3];
        let duty = [
            (0.0, 0.06),
            (0.05, 0.35),
            (0.35, 0.75),
            (0.80, 1.0),
            (0.95, 1.0),
        ];
        let weight = [0.30, 0.25, 0.22, 0.20, 0.03];
        let pstates: [&[usize]; 5] = [&[2], &[2], &[1, 2], &[0, 1], &[0]];
        let classes = CLASS_SPECS
            .iter()
            .enumerate()
            .map(|(i, &(name, spec))| ClassProfile {
                name,
                spec,
                weight: weight[i],
                dwell_ticks: dwell[i],
                ramp_ticks: ramp[i],
                duty: duty[i],
                pstate_set: pstate_set_index(pstates[i]).expect("default sets are known"),
            })
            .collect();
        FleetProfile {
            name: "taurus-haswell".to_string(),
            floor_share: 0.10,
            floor_dwell_ticks: 15.0,
            classes,
        }
    }

    /// The pinned exemplar profile (`tests/data/exemplar.profile`):
    /// moderate dwells and an even-ish mix, so every state
    /// accumulates enough observed runs in modest-sized traces for
    /// tight share/dwell statistics. The self-clone property suite,
    /// the bench fidelity section and the CI calibration smoke all
    /// fit against traces synthesized from this profile.
    pub fn exemplar() -> FleetProfile {
        let mut p = FleetProfile::taurus_haswell();
        p.name = "exemplar-v1".to_string();
        p.floor_share = 0.15;
        p.floor_dwell_ticks = 8.0;
        let dwell = [6.0, 10.0, 14.0, 20.0, 30.0];
        let ramp = [0u32, 1, 1, 2, 2];
        let weight = [0.25, 0.20, 0.20, 0.20, 0.15];
        for (i, c) in p.classes.iter_mut().enumerate() {
            c.dwell_ticks = dwell[i];
            c.ramp_ticks = ramp[i];
            c.weight = weight[i];
        }
        p
    }

    /// Validates the semantic invariants the fleet constructors assert
    /// (so `apply` can never panic on a loaded profile).
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.classes.is_empty() {
            return Err(ProfileError::NoClasses);
        }
        if !(self.floor_share.is_finite() && self.floor_share > 0.0 && self.floor_share < 1.0) {
            return Err(ProfileError::BadFloorShare {
                value: self.floor_share,
            });
        }
        if !(self.floor_dwell_ticks.is_finite() && self.floor_dwell_ticks >= 1.0) {
            return Err(ProfileError::BadDwell {
                section: "floor".to_string(),
                value: self.floor_dwell_ticks,
            });
        }
        let mut total = 0.0;
        for c in &self.classes {
            if !(c.dwell_ticks.is_finite() && c.dwell_ticks >= 1.0) {
                return Err(ProfileError::BadDwell {
                    section: format!("class {}", c.name),
                    value: c.dwell_ticks,
                });
            }
            let (lo, hi) = c.duty;
            if !(lo.is_finite() && hi.is_finite() && lo < hi && lo >= 0.0 && hi <= 1.0) {
                return Err(ProfileError::BadDuty {
                    class: c.name.to_string(),
                    lo,
                    hi,
                });
            }
            if !(c.weight.is_finite() && c.weight >= 0.0) {
                return Err(ProfileError::BadWeight {
                    class: c.name.to_string(),
                    value: c.weight,
                });
            }
            assert!(c.pstate_set < PSTATE_SETS.len(), "pstate_set out of range");
            total += c.weight;
        }
        if total <= 0.0 {
            return Err(ProfileError::NonStochastic);
        }
        Ok(())
    }

    /// The job mix this profile describes. The profile must be valid
    /// (loaded profiles always are; hand-built ones should call
    /// [`FleetProfile::validate`] first).
    pub fn to_mix(&self) -> JobMix {
        JobMix::new(
            self.classes
                .iter()
                .map(|c| {
                    (
                        JobClass {
                            name: c.name,
                            spec: c.spec,
                            duty: c.duty,
                            pstates: PSTATE_SETS[c.pstate_set],
                        },
                        c.weight,
                    )
                })
                .collect(),
        )
    }

    /// The episode model this profile describes over `mix` (which must
    /// be [`FleetProfile::to_mix`]'s output).
    pub fn to_model(&self, mix: &JobMix) -> EpisodeModel {
        let dwell: Vec<f64> = self.classes.iter().map(|c| c.dwell_ticks).collect();
        let ramp: Vec<u32> = self.classes.iter().map(|c| c.ramp_ticks).collect();
        EpisodeModel::from_mix(mix, self.floor_share, self.floor_dwell_ticks, &dwell, &ramp)
    }

    /// Applies the profile onto a fleet configuration: replaces the
    /// mix and episode model and switches to episode sampling. Node
    /// groups, seeds, caps and budgets are left untouched.
    pub fn apply(&self, cfg: &mut FleetConfig) {
        let mix = self.to_mix();
        cfg.episodes = self.to_model(&mix);
        cfg.mix = mix;
        cfg.temporal = TemporalMode::Episodes;
    }

    /// Renders the canonical text form. Floats use shortest
    /// round-trip formatting, so `from_text(to_text(p)) == p` exactly
    /// and re-rendering a loaded profile is byte-identical.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(PROFILE_HEADER);
        out.push('\n');
        out.push_str(&format!("name = {}\n", self.name));
        out.push_str(&format!("floor_share = {}\n", self.floor_share));
        out.push_str(&format!("floor_dwell_ticks = {}\n", self.floor_dwell_ticks));
        for c in &self.classes {
            out.push('\n');
            out.push_str(&format!("[class {}]\n", c.name));
            out.push_str(&format!("weight = {}\n", c.weight));
            out.push_str(&format!("dwell_ticks = {}\n", c.dwell_ticks));
            out.push_str(&format!("ramp_ticks = {}\n", c.ramp_ticks));
            out.push_str(&format!("duty = {} {}\n", c.duty.0, c.duty.1));
            let set: Vec<String> = PSTATE_SETS[c.pstate_set]
                .iter()
                .map(|p| p.to_string())
                .collect();
            out.push_str(&format!("pstates = {}\n", set.join(" ")));
        }
        out
    }

    /// Parses the text form, validating every invariant `apply`
    /// relies on. See [`ProfileError`] for the rejection catalogue.
    pub fn from_text(text: &str) -> Result<FleetProfile, ProfileError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == PROFILE_HEADER => {}
            _ => return Err(ProfileError::MissingHeader),
        }
        let mut profile = FleetProfile {
            name: String::new(),
            floor_share: f64::NAN,
            floor_dwell_ticks: f64::NAN,
            classes: Vec::new(),
        };
        let mut have = TopSeen::default();
        // None = top section; Some(i) = classes[i].
        let mut section: Option<usize> = None;
        let mut class_seen: Vec<ClassSeen> = Vec::new();
        for (idx, raw) in lines {
            let line = idx + 1;
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            if let Some(inner) = text.strip_prefix('[') {
                let inner = inner
                    .strip_suffix(']')
                    .ok_or_else(|| ProfileError::BadLine {
                        line,
                        text: text.to_string(),
                    })?
                    .trim();
                let name = inner
                    .strip_prefix("class ")
                    .ok_or_else(|| ProfileError::BadLine {
                        line,
                        text: text.to_string(),
                    })?
                    .trim();
                let (name, spec) = class_spec(name).ok_or_else(|| ProfileError::UnknownClass {
                    line,
                    name: name.to_string(),
                })?;
                if profile.classes.iter().any(|c| c.name == name) {
                    return Err(ProfileError::DuplicateClass {
                        name: name.to_string(),
                    });
                }
                profile.classes.push(ClassProfile {
                    name,
                    spec,
                    weight: f64::NAN,
                    dwell_ticks: f64::NAN,
                    ramp_ticks: 0,
                    duty: (f64::NAN, f64::NAN),
                    pstate_set: 0,
                });
                class_seen.push(ClassSeen::default());
                section = Some(profile.classes.len() - 1);
                continue;
            }
            let (key, value) = text.split_once('=').ok_or_else(|| ProfileError::BadLine {
                line,
                text: text.to_string(),
            })?;
            let key = key.trim();
            let value = value.trim();
            let bad = |k: &str, v: &str| ProfileError::BadValue {
                line,
                key: k.to_string(),
                value: v.to_string(),
            };
            match section {
                None => match key {
                    "name" => {
                        profile.name = value.to_string();
                        have.name = true;
                    }
                    "floor_share" => {
                        profile.floor_share = parse_f64(value).ok_or_else(|| bad(key, value))?;
                        have.floor_share = true;
                    }
                    "floor_dwell_ticks" => {
                        profile.floor_dwell_ticks =
                            parse_f64(value).ok_or_else(|| bad(key, value))?;
                        have.floor_dwell = true;
                    }
                    _ => {
                        return Err(ProfileError::UnknownKey {
                            line,
                            key: key.to_string(),
                        })
                    }
                },
                Some(i) => {
                    let c = &mut profile.classes[i];
                    let seen = &mut class_seen[i];
                    match key {
                        "weight" => {
                            c.weight = parse_f64(value).ok_or_else(|| bad(key, value))?;
                            seen.weight = true;
                        }
                        "dwell_ticks" => {
                            c.dwell_ticks = parse_f64(value).ok_or_else(|| bad(key, value))?;
                            seen.dwell = true;
                        }
                        "ramp_ticks" => {
                            c.ramp_ticks = value.parse::<u32>().map_err(|_| bad(key, value))?;
                            seen.ramp = true;
                        }
                        "duty" => {
                            let mut parts = value.split_whitespace();
                            let lo = parts
                                .next()
                                .and_then(parse_f64)
                                .ok_or_else(|| bad(key, value))?;
                            let hi = parts
                                .next()
                                .and_then(parse_f64)
                                .ok_or_else(|| bad(key, value))?;
                            if parts.next().is_some() {
                                return Err(bad(key, value));
                            }
                            c.duty = (lo, hi);
                            seen.duty = true;
                        }
                        "pstates" => {
                            let set: Option<Vec<usize>> = value
                                .split_whitespace()
                                .map(|p| p.parse::<usize>().ok())
                                .collect();
                            let set = set.ok_or_else(|| bad(key, value))?;
                            c.pstate_set = pstate_set_index(&set).ok_or_else(|| {
                                ProfileError::UnknownPstates {
                                    line,
                                    value: value.to_string(),
                                }
                            })?;
                            seen.pstates = true;
                        }
                        _ => {
                            return Err(ProfileError::UnknownKey {
                                line,
                                key: key.to_string(),
                            })
                        }
                    }
                }
            }
        }
        let top = "profile".to_string();
        let miss = |section: String, key: &'static str| ProfileError::MissingKey { section, key };
        if !have.name {
            return Err(miss(top, "name"));
        }
        if !have.floor_share {
            return Err(miss(top, "floor_share"));
        }
        if !have.floor_dwell {
            return Err(miss(top, "floor_dwell_ticks"));
        }
        for (c, seen) in profile.classes.iter().zip(&class_seen) {
            let sec = format!("class {}", c.name);
            if !seen.weight {
                return Err(miss(sec, "weight"));
            }
            if !seen.dwell {
                return Err(miss(sec, "dwell_ticks"));
            }
            if !seen.ramp {
                return Err(miss(sec, "ramp_ticks"));
            }
            if !seen.duty {
                return Err(miss(sec, "duty"));
            }
            if !seen.pstates {
                return Err(miss(sec, "pstates"));
            }
        }
        profile.validate()?;
        Ok(profile)
    }
}

#[derive(Default)]
struct TopSeen {
    name: bool,
    floor_share: bool,
    floor_dwell: bool,
}

#[derive(Default)]
struct ClassSeen {
    weight: bool,
    dwell: bool,
    ramp: bool,
    duty: bool,
    pstates: bool,
}

/// Finite-only float parsing: `NaN`/`inf` text is a format error, not
/// a smuggled value.
fn parse_f64(text: &str) -> Option<f64> {
    text.parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Index of a P-state set within [`PSTATE_SETS`].
pub fn pstate_set_index(set: &[usize]) -> Option<usize> {
    PSTATE_SETS.iter().position(|s| *s == set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_matches_hand_set_fleet() {
        let p = FleetProfile::taurus_haswell();
        p.validate().unwrap();
        let mix = p.to_mix();
        let want = JobMix::taurus_haswell();
        assert_eq!(mix.classes().len(), want.classes().len());
        for ((a, wa), (b, wb)) in mix.classes().iter().zip(want.classes()) {
            assert_eq!(a, b);
            assert_eq!(wa, wb);
        }
        let model = p.to_model(&mix);
        let want_model = EpisodeModel::taurus_haswell(&want);
        assert_eq!(model.state_names(), want_model.state_names());
        assert_eq!(model.mean_dwell_ticks(), want_model.mean_dwell_ticks());
        assert_eq!(model.ramp_ticks(), want_model.ramp_ticks());
        assert_eq!(model.transitions(), want_model.transitions());
    }

    #[test]
    fn text_round_trip_is_exact() {
        let p = FleetProfile::taurus_haswell();
        let text = p.to_text();
        let back = FleetProfile::from_text(&text).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_text(), text, "write → load → write must be stable");
    }

    #[test]
    fn apply_switches_config_to_the_profile() {
        let mut p = FleetProfile::taurus_haswell();
        p.floor_share = 0.25;
        p.classes[0].weight = 0.5;
        let mut cfg = FleetConfig::taurus_haswell_scaled(16);
        p.apply(&mut cfg);
        assert_eq!(cfg.temporal, TemporalMode::Episodes);
        assert!((cfg.episodes.stationary_time_shares()[0] - 0.25).abs() < 1e-12);
        assert_eq!(cfg.mix.classes()[0].1, 0.5);
    }

    #[test]
    fn rejections_are_typed() {
        let p = FleetProfile::taurus_haswell();
        let text = p.to_text();
        // No header.
        assert_eq!(
            FleetProfile::from_text("name = x\n"),
            Err(ProfileError::MissingHeader)
        );
        // Unknown key / class, bad lines.
        let with = |extra: &str| format!("{text}{extra}");
        assert!(matches!(
            FleetProfile::from_text(&with("wat = 1\n")),
            Err(ProfileError::UnknownKey { .. })
        ));
        assert!(matches!(
            FleetProfile::from_text(&with("[class warp]\n")),
            Err(ProfileError::UnknownClass { .. })
        ));
        assert!(matches!(
            FleetProfile::from_text(&with("[class idle]\n")),
            Err(ProfileError::DuplicateClass { .. })
        ));
        assert!(matches!(
            FleetProfile::from_text(&with("not a line\n")),
            Err(ProfileError::BadLine { .. })
        ));
        // NaN smuggling is a BadValue, not a parsed profile.
        let nan = text.replace("floor_share = 0.1", "floor_share = NaN");
        assert!(matches!(
            FleetProfile::from_text(&nan),
            Err(ProfileError::BadValue { .. })
        ));
        // Non-stochastic weights.
        let zeroed = text.replace("weight = 0.3\n", "weight = 0\n");
        let zeroed = zeroed.replace("weight = 0.25\n", "weight = 0\n");
        let zeroed = zeroed.replace("weight = 0.22\n", "weight = 0\n");
        let zeroed = zeroed.replace("weight = 0.2\n", "weight = 0\n");
        let zeroed = zeroed.replace("weight = 0.03\n", "weight = 0\n");
        assert_eq!(
            FleetProfile::from_text(&zeroed),
            Err(ProfileError::NonStochastic)
        );
        // Inverted duty band.
        let duty = text.replace("duty = 0.35 0.75", "duty = 0.75 0.35");
        assert!(matches!(
            FleetProfile::from_text(&duty),
            Err(ProfileError::BadDuty { .. })
        ));
        // Sub-tick dwell.
        let dwell = text.replace("dwell_ticks = 120", "dwell_ticks = 0.25");
        assert!(matches!(
            FleetProfile::from_text(&dwell),
            Err(ProfileError::BadDwell { .. })
        ));
        // Unsupported P-state set.
        let ps = text.replace("pstates = 1 2", "pstates = 2 0");
        assert!(matches!(
            FleetProfile::from_text(&ps),
            Err(ProfileError::UnknownPstates { .. })
        ));
        // Floor share at the boundary.
        let fs = text.replace("floor_share = 0.1", "floor_share = 1.0");
        assert_eq!(
            FleetProfile::from_text(&fs),
            Err(ProfileError::BadFloorShare { value: 1.0 })
        );
        // Missing keys: drop the name line.
        let headerless: String = text
            .lines()
            .filter(|l| !l.starts_with("name = "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            FleetProfile::from_text(&headerless),
            Err(ProfileError::MissingKey { key: "name", .. })
        ));
    }
}
