//! # fs2-baselines — comparator stress tests
//!
//! Table I of the paper compares FIRESTARTER against Prime95, Linpack,
//! stress-ng and eeMark. This crate provides:
//!
//! * [`registry`] — the qualitative feature matrix (stressed components,
//!   error checking, workload-definition mechanism, compiler
//!   independence) exactly as tabulated, and
//! * [`models`] — behavioural models of each tool: phase schedules of
//!   simulator kernels reproducing their characteristic power signatures
//!   (Prime95's varying consumption, Linpack's init/validate dips,
//!   stress-ng's unvectorized matrix kernel, eeMark's template phases,
//!   the sqrtsd low-power loop, idle), plus
//! * [`run`] — a phase-schedule executor on top of `fs2-core`'s runner,
//!   producing the power traces and means the Fig. 2 / Table I
//!   experiments consume.

pub mod models;
pub mod registry;
pub mod run;

pub use models::{Baseline, Phase};
pub use registry::{table1, FeatureRow};
pub use run::{run_baseline, BaselineReport};
