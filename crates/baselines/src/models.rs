//! Behavioural models of the comparator stress tests.
//!
//! Each baseline is a cyclic schedule of *phases*; each phase is a
//! simulator kernel run for a duration. The phase structure encodes the
//! power signature §II-B describes for every tool.

use fs2_arch::{MemLevel, Sku};
use fs2_core::groups::parse_groups;
use fs2_core::mix::InstructionMix;
use fs2_core::payload::{build_payload, default_unroll, PayloadConfig};
use fs2_isa::prelude::*;
use fs2_sim::kernel::TaggedInst;
use fs2_sim::Kernel;

/// One phase of a baseline's execution cycle.
#[derive(Debug, Clone)]
pub struct Phase {
    pub name: &'static str,
    /// `None` = idle (no workload running).
    pub kernel: Option<Kernel>,
    pub duration_s: f64,
}

/// The modelled tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// FIRESTARTER 1.x static per-SKU workload.
    Firestarter1,
    /// FIRESTARTER 2 with a representative tuned workload.
    Firestarter2,
    /// Prime95 torture test (Lucas–Lehmer / FFT phases).
    Prime95,
    /// High-Performance-Linpack-style solver with init/validate phases.
    Linpack,
    /// stress-ng `--matrix` (long-double product — not vectorizable).
    StressNgMatrix,
    /// eeMark template benchmark (compute + memory + communication).
    EeMark,
    /// The low-power `sqrtsd` loop of Fig. 2.
    SqrtLoop,
    /// Idle with C-states enabled.
    Idle,
}

impl Baseline {
    pub const ALL: [Baseline; 8] = [
        Baseline::Firestarter1,
        Baseline::Firestarter2,
        Baseline::Prime95,
        Baseline::Linpack,
        Baseline::StressNgMatrix,
        Baseline::EeMark,
        Baseline::SqrtLoop,
        Baseline::Idle,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            Baseline::Firestarter1 => "FIRESTARTER 1",
            Baseline::Firestarter2 => "FIRESTARTER 2",
            Baseline::Prime95 => "Prime95",
            Baseline::Linpack => "Linpack",
            Baseline::StressNgMatrix => "stress-ng (matrix)",
            Baseline::EeMark => "eeMark",
            Baseline::SqrtLoop => "sqrtsd loop",
            Baseline::Idle => "idle",
        }
    }

    /// The phase cycle of this tool on `sku`.
    pub fn phases(self, sku: &Sku) -> Vec<Phase> {
        match self {
            Baseline::Firestarter1 => {
                let w = fs2_core::legacy::LegacyWorkload::for_sku(sku);
                vec![Phase {
                    name: "stress",
                    kernel: Some(w.build(sku).kernel),
                    duration_s: 60.0,
                }]
            }
            Baseline::Firestarter2 => {
                // A representative tuned M per architecture (the benches
                // derive the real optimum via NSGA-II; these are the
                // converged shapes for each node).
                let spec = match sku.uarch {
                    fs2_arch::Microarch::Haswell => "REG:12,L1_2LS:16,L2_LS:1,L3_LS:1,RAM_LS:1",
                    _ => "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1",
                };
                let groups = parse_groups(spec).unwrap();
                let u = default_unroll(sku, InstructionMix::FMA, &groups);
                let p = build_payload(
                    sku,
                    &PayloadConfig {
                        mix: InstructionMix::FMA,
                        groups,
                        unroll: u,
                    },
                );
                vec![Phase {
                    name: "stress",
                    kernel: Some(p.kernel),
                    duration_s: 60.0,
                }]
            }
            Baseline::Prime95 => vec![
                Phase {
                    name: "fft",
                    kernel: Some(prime95_fft_kernel(sku)),
                    duration_s: 40.0,
                },
                Phase {
                    name: "carry",
                    kernel: Some(prime95_carry_kernel()),
                    duration_s: 8.0,
                },
            ],
            Baseline::Linpack => vec![
                Phase {
                    name: "init",
                    kernel: Some(linpack_init_kernel()),
                    duration_s: 15.0,
                },
                Phase {
                    name: "dgemm",
                    kernel: Some(linpack_dgemm_kernel(sku)),
                    duration_s: 120.0,
                },
                Phase {
                    name: "validate",
                    kernel: Some(linpack_validate_kernel()),
                    duration_s: 10.0,
                },
            ],
            Baseline::StressNgMatrix => vec![Phase {
                name: "matrix",
                kernel: Some(stressng_matrix_kernel()),
                duration_s: 60.0,
            }],
            Baseline::EeMark => vec![
                Phase {
                    name: "compute",
                    kernel: Some(eemark_compute_kernel(sku)),
                    duration_s: 30.0,
                },
                Phase {
                    name: "memory",
                    kernel: Some(eemark_memory_kernel(sku)),
                    duration_s: 20.0,
                },
                Phase {
                    name: "communicate",
                    kernel: Some(eemark_comm_kernel()),
                    duration_s: 10.0,
                },
            ],
            Baseline::SqrtLoop => {
                let p = build_payload(
                    sku,
                    &PayloadConfig {
                        mix: InstructionMix::SQRT,
                        groups: parse_groups("REG:1").unwrap(),
                        unroll: 64,
                    },
                );
                vec![Phase {
                    name: "sqrt",
                    kernel: Some(p.kernel),
                    duration_s: 60.0,
                }]
            }
            Baseline::Idle => vec![Phase {
                name: "idle",
                kernel: None,
                duration_s: 60.0,
            }],
        }
    }

    /// Whether the tool's power varies between phases (Prime95's
    /// "varying power consumption over time", Linpack's dips).
    pub fn has_phase_variation(self) -> bool {
        matches!(
            self,
            Baseline::Prime95 | Baseline::Linpack | Baseline::EeMark
        )
    }
}

fn finish(name: &str, mut body: Vec<TaggedInst>, groups: u32) -> Kernel {
    body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
    body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
    Kernel::new(name.to_string(), body, groups)
}

/// Prime95 FFT pass: FMA-dense with an L1/L2-resident working set — high
/// power, close to FIRESTARTER's core stress but with more loads.
fn prime95_fft_kernel(sku: &Sku) -> Kernel {
    let groups = parse_groups("REG:2,L1_LS:2,L2_L:1").unwrap();
    let u = default_unroll(sku, InstructionMix::FMA, &groups);
    build_payload(
        sku,
        &PayloadConfig {
            mix: InstructionMix::FMA,
            groups,
            unroll: u,
        },
    )
    .kernel
}

/// Prime95 carry propagation: serial, ALU- and L1-heavy, little FP.
fn prime95_carry_kernel() -> Kernel {
    let mut body = Vec::new();
    for g in 0..256u32 {
        body.push(TaggedInst::mem(
            Inst::VmovapdLoad {
                dst: Ymm::new(10),
                src: Mem::base(Gp::Rbx),
            },
            MemLevel::L1,
        ));
        body.push(TaggedInst::reg(Inst::AddGp {
            dst: Gp::Rax,
            src: Gp::R9,
        }));
        body.push(TaggedInst::reg(Inst::ShrImm {
            dst: Gp::Rax,
            imm: 13,
        }));
        body.push(TaggedInst::reg(Inst::XorGp {
            dst: Gp::R9,
            src: Gp::R10,
        }));
        body.push(TaggedInst::reg(Inst::AddImm {
            dst: Gp::Rbx,
            imm: 64,
        }));
        if g % 32 == 31 {
            body.push(TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rbx,
                imm: 0x10_0000,
            }));
        }
    }
    finish("prime95-carry", body, 256)
}

/// HPL panel initialization: memory copies, no arithmetic to speak of.
fn linpack_init_kernel() -> Kernel {
    let mut body = Vec::new();
    for g in 0..128u32 {
        body.push(TaggedInst::mem(
            Inst::VmovapdLoad {
                dst: Ymm::new(10),
                src: Mem::base(Gp::R8),
            },
            MemLevel::Ram,
        ));
        body.push(TaggedInst::mem(
            Inst::VmovapdStore {
                dst: Mem::base_disp(Gp::R8, 32),
                src: Ymm::new(10),
            },
            MemLevel::Ram,
        ));
        body.push(TaggedInst::reg(Inst::AddImm {
            dst: Gp::R8,
            imm: 64,
        }));
        if g % 64 == 63 {
            body.push(TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::R8,
                imm: 0x4000_0000,
            }));
        }
    }
    finish("linpack-init", body, 128)
}

/// HPL DGEMM update: FMA-dense, blocked working set through the caches
/// with panel streaming from RAM.
fn linpack_dgemm_kernel(sku: &Sku) -> Kernel {
    let groups = parse_groups("REG:4,L1_LS:2,L2_L:1,RAM_L:1").unwrap();
    let u = default_unroll(sku, InstructionMix::FMA, &groups);
    build_payload(
        sku,
        &PayloadConfig {
            mix: InstructionMix::FMA,
            groups,
            unroll: u,
        },
    )
    .kernel
}

/// HPL residual check: scalar math and reductions.
fn linpack_validate_kernel() -> Kernel {
    let mut body = Vec::new();
    for _ in 0..128u32 {
        body.push(TaggedInst::reg(Inst::Mulsd {
            dst: Xmm::new(0),
            src: Xmm::new(1),
        }));
        body.push(TaggedInst::reg(Inst::Addsd {
            dst: Xmm::new(2),
            src: Xmm::new(0),
        }));
        body.push(TaggedInst::mem(
            Inst::VmovapdLoad {
                dst: Ymm::new(10),
                src: Mem::base(Gp::Rbx),
            },
            MemLevel::L2,
        ));
        body.push(TaggedInst::reg(Inst::AddImm {
            dst: Gp::Rbx,
            imm: 64,
        }));
    }
    finish("linpack-validate", body, 128)
}

/// stress-ng matrix product with `long double`: "which are not supported
/// by SIMD extensions" — scalar multiply/add chains dominated by
/// ALU/address work; at best 1 FLOP per instruction pair.
fn stressng_matrix_kernel() -> Kernel {
    let mut body = Vec::new();
    for g in 0..256u32 {
        body.push(TaggedInst::reg(Inst::Mulsd {
            dst: Xmm::new((g % 8) as u8),
            src: Xmm::new(8 + (g % 4) as u8),
        }));
        body.push(TaggedInst::reg(Inst::Addsd {
            dst: Xmm::new(((g + 4) % 8) as u8),
            src: Xmm::new((g % 8) as u8),
        }));
        body.push(TaggedInst::reg(Inst::AddGp {
            dst: Gp::Rax,
            src: Gp::R9,
        }));
        if g % 4 == 0 {
            body.push(TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(10),
                    src: Mem::base(Gp::Rbx),
                },
                MemLevel::L1,
            ));
            body.push(TaggedInst::reg(Inst::AddImm {
                dst: Gp::Rbx,
                imm: 64,
            }));
        }
    }
    finish("stressng-matrix", body, 256)
}

/// eeMark compute routine: vectorized mul/add templates (no FMA).
fn eemark_compute_kernel(sku: &Sku) -> Kernel {
    let groups = parse_groups("REG:3,L1_LS:1").unwrap();
    let u = default_unroll(sku, InstructionMix::AVX, &groups);
    build_payload(
        sku,
        &PayloadConfig {
            mix: InstructionMix::AVX,
            groups,
            unroll: u,
        },
    )
    .kernel
}

/// eeMark memory routine: streaming RAM load/store.
fn eemark_memory_kernel(sku: &Sku) -> Kernel {
    let groups = parse_groups("REG:1,RAM_LS:2").unwrap();
    let u = default_unroll(sku, InstructionMix::AVX, &groups);
    build_payload(
        sku,
        &PayloadConfig {
            mix: InstructionMix::AVX,
            groups,
            unroll: u,
        },
    )
    .kernel
}

/// eeMark communication routine: the MPI stand-in — pointer chasing and
/// light copies, negligible FP.
fn eemark_comm_kernel() -> Kernel {
    let mut body = Vec::new();
    for g in 0..64u32 {
        body.push(TaggedInst::mem(
            Inst::VmovapdLoad {
                dst: Ymm::new(10),
                src: Mem::base(Gp::R8),
            },
            MemLevel::Ram,
        ));
        body.push(TaggedInst::reg(Inst::AddGp {
            dst: Gp::Rax,
            src: Gp::R9,
        }));
        body.push(TaggedInst::reg(Inst::AddImm {
            dst: Gp::R8,
            imm: 64,
        }));
        if g % 32 == 31 {
            body.push(TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::R8,
                imm: 0x4000_0000,
            }));
        }
    }
    finish("eemark-comm", body, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs2_sim::core::{steady_state, ActiveSet};

    fn rome() -> Sku {
        Sku::amd_epyc_7502()
    }

    #[test]
    fn all_baselines_produce_phases() {
        let sku = rome();
        for b in Baseline::ALL {
            let phases = b.phases(&sku);
            assert!(!phases.is_empty(), "{} has no phases", b.name());
            for p in &phases {
                assert!(p.duration_s > 0.0);
                if b != Baseline::Idle {
                    assert!(p.kernel.is_some(), "{}:{} missing kernel", b.name(), p.name);
                }
            }
        }
    }

    #[test]
    fn stressng_matrix_is_not_vectorized() {
        let k = stressng_matrix_kernel();
        // No 256-bit FP arithmetic at all.
        assert!(!k.body.iter().any(|t| matches!(
            t.inst,
            Inst::Vfmadd231pd { .. } | Inst::Vmulpd { .. } | Inst::Vaddpd { .. }
        )));
        // Scalar FLOPs only: far fewer FLOPs per instruction than FMA code.
        let flops_per_inst = k.meta.flops as f64 / k.meta.insts as f64;
        assert!(
            flops_per_inst < 1.0,
            "too many FLOPs/inst: {flops_per_inst}"
        );
    }

    #[test]
    fn linpack_phases_have_contrasting_intensity() {
        let sku = rome();
        let phases = Baseline::Linpack.phases(&sku);
        let ipc_of =
            |k: &Kernel| steady_state(&sku, k, 2000.0, ActiveSet::full(&sku)).fp_utilization;
        let init = phases.iter().find(|p| p.name == "init").unwrap();
        let dgemm = phases.iter().find(|p| p.name == "dgemm").unwrap();
        let fp_init = ipc_of(init.kernel.as_ref().unwrap());
        let fp_dgemm = ipc_of(dgemm.kernel.as_ref().unwrap());
        assert!(
            fp_dgemm > fp_init + 0.3,
            "dgemm {fp_dgemm:.2} vs init {fp_init:.2}"
        );
    }

    #[test]
    fn phase_variation_flags() {
        assert!(Baseline::Prime95.has_phase_variation());
        assert!(Baseline::Linpack.has_phase_variation());
        assert!(!Baseline::Firestarter2.has_phase_variation());
        assert!(!Baseline::Idle.has_phase_variation());
    }
}
