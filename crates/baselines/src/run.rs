//! Phase-schedule executor.

use crate::models::{Baseline, Phase};
use fs2_core::runner::{RunConfig, Runner};

/// Measured behaviour of one baseline over a window.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    pub name: &'static str,
    /// Mean power over the whole window, W.
    pub mean_w: f64,
    /// Minimum 50 ms sample (reveals Linpack/eeMark dips).
    pub min_w: f64,
    /// Maximum sample.
    pub max_w: f64,
    /// Mean power of each phase `(name, watts)`.
    pub phase_means: Vec<(&'static str, f64)>,
    /// Total simulated seconds.
    pub duration_s: f64,
}

/// Runs `baseline` for at least `duration_s` (whole phase cycles) at the
/// requested frequency, recording into the runner's session trace.
pub fn run_baseline(
    runner: &mut Runner,
    baseline: Baseline,
    duration_s: f64,
    freq_mhz: f64,
) -> BaselineReport {
    let sku = runner.sku().clone();
    let phases: Vec<Phase> = baseline.phases(&sku);
    let cycle_s: f64 = phases.iter().map(|p| p.duration_s).sum();
    let cycles = (duration_s / cycle_s).ceil().max(1.0) as u32;

    let t_begin = runner.clock().now_secs();
    let mut phase_acc: Vec<(&'static str, f64, u32)> =
        phases.iter().map(|p| (p.name, 0.0, 0u32)).collect();

    for _ in 0..cycles {
        for (i, phase) in phases.iter().enumerate() {
            match &phase.kernel {
                Some(kernel) => {
                    let cfg = RunConfig {
                        freq_mhz,
                        duration_s: phase.duration_s,
                        start_delta_s: 0.0,
                        stop_delta_s: 0.0,
                        functional_iters: 100,
                        ..RunConfig::default()
                    };
                    let r = runner.run_kernel(kernel, &cfg);
                    phase_acc[i].1 += r.power.mean;
                    phase_acc[i].2 += 1;
                }
                None => {
                    let t0 = runner.clock().now_secs();
                    runner.idle(phase.duration_s, 20.0);
                    let t1 = runner.clock().now_secs();
                    if let Some(mean) = runner.trace().mean_between(t0, t1) {
                        phase_acc[i].1 += mean;
                        phase_acc[i].2 += 1;
                    }
                }
            }
        }
    }

    let t_end = runner.clock().now_secs();
    let mean_w = runner
        .trace()
        .mean_between(t_begin, t_end)
        .unwrap_or_default();
    let (min_w, max_w) = runner
        .trace()
        .min_max_between(t_begin, t_end)
        .unwrap_or((mean_w, mean_w));

    BaselineReport {
        name: baseline.name(),
        mean_w,
        min_w,
        max_w,
        phase_means: phase_acc
            .into_iter()
            .map(|(n, sum, cnt)| (n, if cnt > 0 { sum / f64::from(cnt) } else { 0.0 }))
            .collect(),
        duration_s: t_end - t_begin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs2_arch::Sku;

    fn report(baseline: Baseline) -> BaselineReport {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        // Preheat so thermal transients don't blur the comparison.
        runner.hold_power(240.0, 20.0, 300.0);
        run_baseline(&mut runner, baseline, 120.0, 2000.0)
    }

    #[test]
    fn firestarter2_beats_every_other_tool() {
        // The headline claim: none of the comparators maximizes power.
        let fs2 = report(Baseline::Firestarter2);
        for other in [
            Baseline::Prime95,
            Baseline::Linpack,
            Baseline::StressNgMatrix,
            Baseline::EeMark,
            Baseline::SqrtLoop,
            Baseline::Idle,
        ] {
            let r = report(other);
            assert!(
                fs2.mean_w > r.mean_w,
                "{} ({:.1} W) >= FIRESTARTER 2 ({:.1} W)",
                r.name,
                r.mean_w,
                fs2.mean_w
            );
        }
    }

    #[test]
    fn ordering_of_the_power_ladder() {
        // idle < sqrt loop < stress-ng scalar < Prime95.
        let idle = report(Baseline::Idle);
        let sqrt = report(Baseline::SqrtLoop);
        let sng = report(Baseline::StressNgMatrix);
        let p95 = report(Baseline::Prime95);
        assert!(idle.mean_w < sqrt.mean_w);
        assert!(sqrt.mean_w < sng.mean_w);
        assert!(sng.mean_w < p95.mean_w);
    }

    #[test]
    fn linpack_shows_power_dips() {
        // "reoccurring initialization and finalization phases can
        // significantly lower power consumption."
        let r = report(Baseline::Linpack);
        let dgemm = r.phase_means.iter().find(|(n, _)| *n == "dgemm").unwrap().1;
        let init = r.phase_means.iter().find(|(n, _)| *n == "init").unwrap().1;
        assert!(
            dgemm > init + 30.0,
            "no dip: dgemm {dgemm:.1} W vs init {init:.1} W"
        );
        assert!(r.min_w < r.max_w - 30.0);
    }

    #[test]
    fn prime95_power_varies_over_time() {
        let r = report(Baseline::Prime95);
        let fft = r.phase_means.iter().find(|(n, _)| *n == "fft").unwrap().1;
        let carry = r.phase_means.iter().find(|(n, _)| *n == "carry").unwrap().1;
        assert!(fft > carry + 15.0, "fft {fft:.1} vs carry {carry:.1}");
    }

    #[test]
    fn report_duration_covers_whole_cycles() {
        let r = report(Baseline::Linpack);
        // One cycle = 145 s ≥ requested 120 s.
        assert!(r.duration_s >= 120.0);
        assert_eq!(r.phase_means.len(), 3);
    }
}
