//! The Table I feature matrix.

/// How a tool defines new workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadDefinition {
    /// Compile-time template expansion (FIRESTARTER 1, eeMark).
    Template,
    /// Runtime generation (FIRESTARTER 2).
    Runtime,
    /// Editing the source code (stress-ng).
    SourceCode,
    /// Not user-definable (Prime95, Linpack).
    Fixed,
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureRow {
    pub name: &'static str,
    pub workload: &'static str,
    pub stresses_processor: bool,
    pub stresses_memory: bool,
    pub stresses_gpu: bool,
    pub stresses_network: bool,
    /// Error check: `Some(true)` full, `Some(false)` none, `None` partial
    /// (footnotes 1/2/4 in the paper).
    pub error_check: Option<bool>,
    pub error_check_note: &'static str,
    pub define_new: WorkloadDefinition,
    /// Independent of compiler and compiler flags.
    pub compiler_independent: bool,
    pub compiler_note: &'static str,
}

/// The complete Table I.
pub fn table1() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            name: "FIRESTARTER 1",
            workload: "artificial workloads",
            stresses_processor: true,
            stresses_memory: true,
            stresses_gpu: true,
            stresses_network: false,
            error_check: Some(false),
            error_check_note: "",
            define_new: WorkloadDefinition::Template,
            compiler_independent: true,
            compiler_note: "",
        },
        FeatureRow {
            name: "Prime95",
            workload: "Mersenne prime hunting",
            stresses_processor: true,
            stresses_memory: true,
            stresses_gpu: false,
            stresses_network: false,
            error_check: Some(true),
            error_check_note: "",
            define_new: WorkloadDefinition::Fixed,
            compiler_independent: true,
            compiler_note: "",
        },
        FeatureRow {
            name: "Linpack",
            workload: "linear algebra",
            stresses_processor: true,
            stresses_memory: true,
            stresses_gpu: false,
            stresses_network: true,
            error_check: Some(true),
            error_check_note: "via MPI in High Performance Linpack (HPL)",
            define_new: WorkloadDefinition::Fixed,
            compiler_independent: false,
            compiler_note: "library-dependent (BLAS/LAPACK)",
        },
        FeatureRow {
            name: "stress-ng",
            workload: "various (e.g., search, sort)",
            stresses_processor: true,
            stresses_memory: true,
            stresses_gpu: false,
            stresses_network: true,
            error_check: None,
            error_check_note: "only for some workloads",
            define_new: WorkloadDefinition::SourceCode,
            compiler_independent: false,
            compiler_note: "",
        },
        FeatureRow {
            name: "eeMark",
            workload: "artificial workloads",
            stresses_processor: true,
            stresses_memory: true,
            stresses_gpu: false,
            stresses_network: true,
            error_check: None,
            error_check_note: "no check for bit-flips",
            define_new: WorkloadDefinition::Template,
            compiler_independent: false,
            compiler_note: "",
        },
        FeatureRow {
            name: "FIRESTARTER 2",
            workload: "artificial workloads",
            stresses_processor: true,
            stresses_memory: true,
            stresses_gpu: true,
            stresses_network: false,
            error_check: Some(true),
            error_check_note: "register-state comparison",
            define_new: WorkloadDefinition::Runtime,
            compiler_independent: true,
            compiler_note: "",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_matching_the_paper() {
        let t = table1();
        assert_eq!(t.len(), 6);
        let names: Vec<&str> = t.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "FIRESTARTER 1",
                "Prime95",
                "Linpack",
                "stress-ng",
                "eeMark",
                "FIRESTARTER 2"
            ]
        );
    }

    #[test]
    fn only_firestarter_stresses_gpus() {
        for r in table1() {
            assert_eq!(
                r.stresses_gpu,
                r.name.starts_with("FIRESTARTER"),
                "{}",
                r.name
            );
        }
    }

    #[test]
    fn firestarter2_gains_runtime_definition_and_error_check() {
        let t = table1();
        let fs1 = t.iter().find(|r| r.name == "FIRESTARTER 1").unwrap();
        let fs2 = t.iter().find(|r| r.name == "FIRESTARTER 2").unwrap();
        assert_eq!(fs1.define_new, WorkloadDefinition::Template);
        assert_eq!(fs2.define_new, WorkloadDefinition::Runtime);
        assert_eq!(fs1.error_check, Some(false));
        assert_eq!(fs2.error_check, Some(true));
        assert!(fs2.compiler_independent);
    }

    #[test]
    fn linpack_footnotes() {
        let t = table1();
        let hpl = t.iter().find(|r| r.name == "Linpack").unwrap();
        assert!(hpl.stresses_network);
        assert!(!hpl.compiler_independent);
        assert!(hpl.compiler_note.contains("BLAS"));
    }
}
