//! Functional (value-level) executor.
//!
//! §III-D of the paper: the *data* processed by the FMA units changes
//! power measurably. Intel's FMA clock-gating patent (Hickmann et al.)
//! gates parts of the unit when "an answer is either trivially known" —
//! operands of ±∞ or 0. FIRESTARTER 1.7.4 had an initialization bug that
//! let register values accumulate to ±∞, silently losing ~8.5 W of node
//! power; FIRESTARTER 2.0 fixes the initialization and gains it back.
//!
//! This executor runs the kernel's instruction stream over real `f64`
//! register state so that exactly this effect — and the register-dump /
//! error-detection features of §III-D — fall out of actual computation
//! rather than a hard-coded flag.

use crate::kernel::Kernel;
use fs2_arch::MemLevel;
use fs2_isa::inst::{Inst, RmYmm};
use fs2_isa::mem::Mem;
use std::fmt::Write as _;

/// Register/buffer initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitScheme {
    /// FIRESTARTER 2.0: products are tiny relative to the accumulator, so
    /// values stay finite and non-trivial for the life of the run.
    V2Safe,
    /// The 1.7.4 bug: initial magnitudes are so large that accumulators
    /// overflow to ±∞ within a few iterations, after which the FMA inputs
    /// are trivial and the unit clock-gates.
    V174Buggy,
}

/// Statistics accumulated during functional execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Executed FMA/MUL/ADD lane operations (one per f64 lane).
    pub fp_lane_ops: u64,
    /// Lane operations with at least one trivial (±∞/0/NaN) operand.
    pub trivial_lane_ops: u64,
    /// Completed loop iterations.
    pub iterations: u64,
}

impl ExecStats {
    /// Fraction of FP lane work that the FMA unit can clock-gate.
    pub fn trivial_fraction(&self) -> f64 {
        if self.fp_lane_ops == 0 {
            0.0
        } else {
            self.trivial_lane_ops as f64 / self.fp_lane_ops as f64
        }
    }
}

#[inline]
fn is_trivial(x: f64) -> bool {
    x == 0.0 || x.is_infinite() || x.is_nan()
}

/// Deterministic xorshift64* generator so the executor does not need the
/// `rand` dependency (and stays reproducible across the workspace).
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const LANES: usize = 4;
/// Per-level functional buffer length in 256-bit elements. Functional
/// behaviour only needs value storage, not real capacities.
const BUF_ELEMS: usize = 1024;

/// Pre-resolved memory operand: register numbers and the level's buffer
/// index extracted once so the hot loop does no `Option`/enum matching.
#[derive(Debug, Clone, Copy)]
struct MemOp {
    base: u8,
    /// Index register number; only read when `index_factor > 0`.
    index_reg: u8,
    /// Scale factor (1/2/4/8), or 0 when the operand has no index.
    index_factor: u8,
    disp: i32,
    /// `MemLevel::idx()` of the access stream's target.
    level: u8,
}

impl MemOp {
    fn new(mem: &Mem, level: MemLevel) -> MemOp {
        let (index_reg, index_factor) = match mem.index {
            Some((r, s)) => (r.num(), s.factor()),
            None => (0, 0),
        };
        MemOp {
            base: mem.base.num(),
            index_reg,
            index_factor,
            disp: mem.disp,
            level: level.idx() as u8,
        }
    }
}

/// One pre-decoded micro-operation. Control flow (`cmp`/`jnz`), hints
/// and `nop`/`ret` have no functional effect and are dropped at decode
/// time, so the replay loop touches only state-changing operations.
#[derive(Debug, Clone, Copy)]
enum MicroOp {
    Fma { dst: u8, a: u8, b: u8 },
    FmaMem { dst: u8, a: u8, mem: MemOp },
    Mul { dst: u8, a: u8, b: u8 },
    MulMem { dst: u8, a: u8, mem: MemOp },
    Add { dst: u8, a: u8, b: u8 },
    AddMem { dst: u8, a: u8, mem: MemOp },
    Xor { dst: u8, a: u8, b: u8 },
    Load { dst: u8, mem: MemOp },
    Store { src: u8, mem: MemOp },
    SqrtSd { dst: u8, src: u8 },
    MulSd { dst: u8, src: u8 },
    AddSd { dst: u8, src: u8 },
    GpXor { dst: u8, src: u8 },
    GpShl { dst: u8, imm: u8 },
    GpShr { dst: u8, imm: u8 },
    GpAddImm { dst: u8, imm: i32 },
    GpAdd { dst: u8, src: u8 },
    GpMovImm { dst: u8, imm: u64 },
    GpDec { dst: u8 },
}

/// A kernel pre-decoded into a flat micro-op table, built once and
/// replayed for every functional iteration (and shared between the two
/// executors of an error-detection run). Replay through
/// [`Executor::run_decoded`] is bit-identical to interpreting the raw
/// instruction stream.
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    ops: Vec<MicroOp>,
}

impl DecodedKernel {
    /// Decodes a kernel body. Panics if a memory-touching instruction has
    /// no level tag (same contract as [`Kernel::new`]).
    pub fn new(kernel: &Kernel) -> DecodedKernel {
        let mut ops = Vec::with_capacity(kernel.body.len());
        for t in &kernel.body {
            let level = |what: &str| {
                t.level
                    .unwrap_or_else(|| panic!("{what} needs a level tag in `{}`", kernel.name))
            };
            let op = match &t.inst {
                Inst::Vfmadd231pd { dst, src1, src2 } => match src2 {
                    RmYmm::Reg(b) => MicroOp::Fma {
                        dst: dst.num(),
                        a: src1.num(),
                        b: b.num(),
                    },
                    RmYmm::Mem(m) => MicroOp::FmaMem {
                        dst: dst.num(),
                        a: src1.num(),
                        mem: MemOp::new(m, level("memory operand")),
                    },
                },
                Inst::Vmulpd { dst, src1, src2 } => match src2 {
                    RmYmm::Reg(b) => MicroOp::Mul {
                        dst: dst.num(),
                        a: src1.num(),
                        b: b.num(),
                    },
                    RmYmm::Mem(m) => MicroOp::MulMem {
                        dst: dst.num(),
                        a: src1.num(),
                        mem: MemOp::new(m, level("memory operand")),
                    },
                },
                Inst::Vaddpd { dst, src1, src2 } => match src2 {
                    RmYmm::Reg(b) => MicroOp::Add {
                        dst: dst.num(),
                        a: src1.num(),
                        b: b.num(),
                    },
                    RmYmm::Mem(m) => MicroOp::AddMem {
                        dst: dst.num(),
                        a: src1.num(),
                        mem: MemOp::new(m, level("memory operand")),
                    },
                },
                Inst::Vxorps { dst, src1, src2 } => MicroOp::Xor {
                    dst: dst.num(),
                    a: src1.num(),
                    b: src2.num(),
                },
                Inst::VmovapdLoad { dst, src } => MicroOp::Load {
                    dst: dst.num(),
                    mem: MemOp::new(src, level("load")),
                },
                Inst::VmovapdStore { dst, src } => MicroOp::Store {
                    src: src.num(),
                    mem: MemOp::new(dst, level("store")),
                },
                Inst::Sqrtsd { dst, src } => MicroOp::SqrtSd {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::Mulsd { dst, src } => MicroOp::MulSd {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::Addsd { dst, src } => MicroOp::AddSd {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::XorGp { dst, src } => MicroOp::GpXor {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::ShlImm { dst, imm } => MicroOp::GpShl {
                    dst: dst.num(),
                    imm: *imm,
                },
                Inst::ShrImm { dst, imm } => MicroOp::GpShr {
                    dst: dst.num(),
                    imm: *imm,
                },
                Inst::AddImm { dst, imm } => MicroOp::GpAddImm {
                    dst: dst.num(),
                    imm: *imm,
                },
                Inst::AddGp { dst, src } => MicroOp::GpAdd {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::MovImm64 { dst, imm } => MicroOp::GpMovImm {
                    dst: dst.num(),
                    imm: *imm,
                },
                Inst::Dec(r) => MicroOp::GpDec { dst: r.num() },
                // No functional effect; dropped from the replay table.
                Inst::CmpGp { .. }
                | Inst::Jnz { .. }
                | Inst::Prefetch { .. }
                | Inst::Nop
                | Inst::Ret => continue,
            };
            ops.push(op);
        }
        DecodedKernel { ops }
    }

    /// Number of state-changing micro-ops per iteration.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the kernel has no state-changing operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Value-level executor for payload kernels.
#[derive(Debug, Clone)]
pub struct Executor {
    ymm: [[f64; LANES]; 16],
    gp: [u64; 16],
    buffers: [Vec<[f64; LANES]>; 4],
    stats: ExecStats,
    scheme: InitScheme,
}

impl Executor {
    /// Creates an executor with registers and buffers initialized per
    /// `scheme`, deterministically from `seed`.
    pub fn new(scheme: InitScheme, seed: u64) -> Executor {
        let mut rng = XorShift64::new(seed);
        let mut ymm = [[0.0; LANES]; 16];
        match scheme {
            InitScheme::V2Safe => {
                // Accumulators in [1, 2); multiplicand pairs whose products
                // are ~1e-12 with alternating sign: the accumulator drifts
                // by less than 1e-3 over 1e9 iterations.
                for (r, reg) in ymm.iter_mut().enumerate() {
                    for (l, lane) in reg.iter_mut().enumerate() {
                        let sign = if (r + l) % 2 == 0 { 1.0 } else { -1.0 };
                        *lane = match r {
                            12..=13 => sign * (1.0 + rng.next_f64()) * 1e-6,
                            14..=15 => sign * (1.0 + rng.next_f64()) * 1e-6,
                            _ => 1.0 + rng.next_f64(),
                        };
                    }
                }
            }
            InitScheme::V174Buggy => {
                // Multiplicands around 1e160: the very first FMA pushes the
                // accumulator past DBL_MAX.
                for (r, reg) in ymm.iter_mut().enumerate() {
                    for (l, lane) in reg.iter_mut().enumerate() {
                        let sign = if (r + l) % 2 == 0 { 1.0 } else { -1.0 };
                        *lane = match r {
                            12..=15 => sign * (1.0 + rng.next_f64()) * 1e160,
                            _ => 1.0 + rng.next_f64(),
                        };
                    }
                }
            }
        }
        let mut mk_buf = |scale: f64| {
            (0..BUF_ELEMS)
                .map(|_| {
                    let mut e = [0.0; LANES];
                    for lane in &mut e {
                        *lane = (0.5 + rng.next_f64()) * scale;
                    }
                    e
                })
                .collect::<Vec<_>>()
        };
        let buffers = [mk_buf(1.0), mk_buf(1.0), mk_buf(1.0), mk_buf(1.0)];
        Executor {
            ymm,
            gp: [0; 16],
            buffers,
            stats: ExecStats::default(),
            scheme,
        }
    }

    /// The initialization scheme in use.
    pub fn scheme(&self) -> InitScheme {
        self.scheme
    }

    /// Current vector register file.
    pub fn registers(&self) -> &[[f64; LANES]; 16] {
        &self.ymm
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn addr_of(&self, mem: &Mem) -> u64 {
        let base = self.gp[mem.base.num() as usize];
        let idx = mem
            .index
            .map(|(r, s)| self.gp[r.num() as usize].wrapping_mul(u64::from(s.factor())))
            .unwrap_or(0);
        base.wrapping_add(idx).wrapping_add(mem.disp as i64 as u64)
    }

    fn buf_slot(&self, level: MemLevel, mem: &Mem) -> usize {
        (self.addr_of(mem) / 32) as usize
            % BUF_ELEMS
                // Slot granularity matches the 32-byte vmovapd width; `level`
                // selects the buffer in the caller.
                .min(self.buffers[level.idx()].len() - 1)
    }

    fn count_fp(&mut self, operands: &[[f64; LANES]]) {
        for l in 0..LANES {
            self.stats.fp_lane_ops += 1;
            if operands.iter().any(|o| is_trivial(o[l])) {
                self.stats.trivial_lane_ops += 1;
            }
        }
    }

    fn read_rm(&self, src: &RmYmm, level: Option<MemLevel>) -> [f64; LANES] {
        match src {
            RmYmm::Reg(r) => self.ymm[r.num() as usize],
            RmYmm::Mem(m) => {
                let level = level.expect("memory operand needs a level tag");
                self.buffers[level.idx()][self.buf_slot(level, m)]
            }
        }
    }

    fn exec_inst(&mut self, inst: &Inst, level: Option<MemLevel>) {
        match inst {
            Inst::Vfmadd231pd { dst, src1, src2 } => {
                let d = self.ymm[dst.num() as usize];
                let a = self.ymm[src1.num() as usize];
                let b = self.read_rm(src2, level);
                self.count_fp(&[d, a, b]);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = a[l].mul_add(b[l], d[l]);
                }
                self.ymm[dst.num() as usize] = out;
            }
            Inst::Vmulpd { dst, src1, src2 } => {
                let a = self.ymm[src1.num() as usize];
                let b = self.read_rm(src2, level);
                self.count_fp(&[a, b]);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = a[l] * b[l];
                }
                self.ymm[dst.num() as usize] = out;
            }
            Inst::Vaddpd { dst, src1, src2 } => {
                let a = self.ymm[src1.num() as usize];
                let b = self.read_rm(src2, level);
                self.count_fp(&[a, b]);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = a[l] + b[l];
                }
                self.ymm[dst.num() as usize] = out;
            }
            Inst::Vxorps { dst, src1, src2 } => {
                let a = self.ymm[src1.num() as usize];
                let b = self.ymm[src2.num() as usize];
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = f64::from_bits(a[l].to_bits() ^ b[l].to_bits());
                }
                self.ymm[dst.num() as usize] = out;
            }
            Inst::VmovapdLoad { dst, src } => {
                let level = level.expect("load needs a level tag");
                let v = self.buffers[level.idx()][self.buf_slot(level, src)];
                self.ymm[dst.num() as usize] = v;
            }
            Inst::VmovapdStore { dst, src } => {
                let level = level.expect("store needs a level tag");
                let slot = self.buf_slot(level, dst);
                self.buffers[level.idx()][slot] = self.ymm[src.num() as usize];
            }
            Inst::Sqrtsd { dst, src } => {
                let s = self.ymm[src.num() as usize][0];
                self.ymm[dst.num() as usize][0] = s.sqrt();
            }
            Inst::Mulsd { dst, src } => {
                let s = self.ymm[src.num() as usize][0];
                let d = self.ymm[dst.num() as usize][0];
                self.stats.fp_lane_ops += 1;
                if is_trivial(s) || is_trivial(d) {
                    self.stats.trivial_lane_ops += 1;
                }
                self.ymm[dst.num() as usize][0] = d * s;
            }
            Inst::Addsd { dst, src } => {
                let s = self.ymm[src.num() as usize][0];
                let d = self.ymm[dst.num() as usize][0];
                self.stats.fp_lane_ops += 1;
                if is_trivial(s) || is_trivial(d) {
                    self.stats.trivial_lane_ops += 1;
                }
                self.ymm[dst.num() as usize][0] = d + s;
            }
            Inst::XorGp { dst, src } => {
                self.gp[dst.num() as usize] ^= self.gp[src.num() as usize];
            }
            Inst::ShlImm { dst, imm } => {
                let d = &mut self.gp[dst.num() as usize];
                *d = d.wrapping_shl(u32::from(*imm));
            }
            Inst::ShrImm { dst, imm } => {
                let d = &mut self.gp[dst.num() as usize];
                *d = d.wrapping_shr(u32::from(*imm));
            }
            Inst::AddImm { dst, imm } => {
                let d = &mut self.gp[dst.num() as usize];
                *d = d.wrapping_add(*imm as i64 as u64);
            }
            Inst::AddGp { dst, src } => {
                let s = self.gp[src.num() as usize];
                let d = &mut self.gp[dst.num() as usize];
                *d = d.wrapping_add(s);
            }
            Inst::MovImm64 { dst, imm } => {
                self.gp[dst.num() as usize] = *imm;
            }
            Inst::Dec(r) => {
                let d = &mut self.gp[r.num() as usize];
                *d = d.wrapping_sub(1);
            }
            // Control flow is driven by the caller; comparisons, branches
            // and hints have no functional effect here.
            Inst::CmpGp { .. }
            | Inst::Jnz { .. }
            | Inst::Prefetch { .. }
            | Inst::Nop
            | Inst::Ret => {}
        }
    }

    /// Executes `iterations` passes over the kernel body.
    ///
    /// Pre-decodes the instruction stream into a micro-op table once,
    /// then replays the table — repeated `functional_iters` loops stop
    /// re-matching the same `Inst` variants every iteration. Equivalent
    /// to [`Executor::run_interpreted`] bit for bit (state, stats).
    pub fn run(&mut self, kernel: &Kernel, iterations: u64) -> &ExecStats {
        let decoded = DecodedKernel::new(kernel);
        self.run_decoded(&decoded, iterations)
    }

    /// Executes `iterations` passes over a pre-decoded kernel. Decode the
    /// kernel once with [`DecodedKernel::new`] and reuse it across runs
    /// (e.g. the error-detection replay executes the same kernel twice).
    pub fn run_decoded(&mut self, decoded: &DecodedKernel, iterations: u64) -> &ExecStats {
        for _ in 0..iterations {
            for op in &decoded.ops {
                self.exec_op(op);
            }
            self.stats.iterations += 1;
        }
        &self.stats
    }

    /// Reference implementation: matches on the raw `Inst` stream every
    /// iteration. Kept for the micro-benchmark baseline and the
    /// decoded-vs-interpreted equivalence tests.
    pub fn run_interpreted(&mut self, kernel: &Kernel, iterations: u64) -> &ExecStats {
        for _ in 0..iterations {
            for t in &kernel.body {
                self.exec_inst(&t.inst, t.level);
            }
            self.stats.iterations += 1;
        }
        &self.stats
    }

    /// Lane accounting for two-operand FP ops; equivalent to
    /// [`Executor::count_fp`] over `[a, b]` without the slice walk.
    #[inline]
    fn tally2(&mut self, a: &[f64; LANES], b: &[f64; LANES]) {
        self.stats.fp_lane_ops += LANES as u64;
        let mut trivial = 0u64;
        for l in 0..LANES {
            trivial += u64::from(is_trivial(a[l]) || is_trivial(b[l]));
        }
        self.stats.trivial_lane_ops += trivial;
    }

    /// Lane accounting for three-operand FP ops (FMA).
    #[inline]
    fn tally3(&mut self, a: &[f64; LANES], b: &[f64; LANES], c: &[f64; LANES]) {
        self.stats.fp_lane_ops += LANES as u64;
        let mut trivial = 0u64;
        for l in 0..LANES {
            trivial += u64::from(is_trivial(a[l]) || is_trivial(b[l]) || is_trivial(c[l]));
        }
        self.stats.trivial_lane_ops += trivial;
    }

    fn slot_of(&self, mem: &MemOp) -> usize {
        let base = self.gp[mem.base as usize];
        let idx = if mem.index_factor > 0 {
            self.gp[mem.index_reg as usize].wrapping_mul(u64::from(mem.index_factor))
        } else {
            0
        };
        let addr = base.wrapping_add(idx).wrapping_add(mem.disp as i64 as u64);
        (addr / 32) as usize % BUF_ELEMS.min(self.buffers[mem.level as usize].len() - 1)
    }

    fn exec_op(&mut self, op: &MicroOp) {
        match *op {
            MicroOp::Fma { dst, a, b } => {
                let d = self.ymm[dst as usize];
                let x = self.ymm[a as usize];
                let y = self.ymm[b as usize];
                self.tally3(&d, &x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l].mul_add(y[l], d[l]);
                }
                self.ymm[dst as usize] = out;
            }
            MicroOp::FmaMem { dst, a, mem } => {
                let d = self.ymm[dst as usize];
                let x = self.ymm[a as usize];
                let y = self.buffers[mem.level as usize][self.slot_of(&mem)];
                self.tally3(&d, &x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l].mul_add(y[l], d[l]);
                }
                self.ymm[dst as usize] = out;
            }
            MicroOp::Mul { dst, a, b } => {
                let x = self.ymm[a as usize];
                let y = self.ymm[b as usize];
                self.tally2(&x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l] * y[l];
                }
                self.ymm[dst as usize] = out;
            }
            MicroOp::MulMem { dst, a, mem } => {
                let x = self.ymm[a as usize];
                let y = self.buffers[mem.level as usize][self.slot_of(&mem)];
                self.tally2(&x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l] * y[l];
                }
                self.ymm[dst as usize] = out;
            }
            MicroOp::Add { dst, a, b } => {
                let x = self.ymm[a as usize];
                let y = self.ymm[b as usize];
                self.tally2(&x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l] + y[l];
                }
                self.ymm[dst as usize] = out;
            }
            MicroOp::AddMem { dst, a, mem } => {
                let x = self.ymm[a as usize];
                let y = self.buffers[mem.level as usize][self.slot_of(&mem)];
                self.tally2(&x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l] + y[l];
                }
                self.ymm[dst as usize] = out;
            }
            MicroOp::Xor { dst, a, b } => {
                let x = self.ymm[a as usize];
                let y = self.ymm[b as usize];
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = f64::from_bits(x[l].to_bits() ^ y[l].to_bits());
                }
                self.ymm[dst as usize] = out;
            }
            MicroOp::Load { dst, mem } => {
                self.ymm[dst as usize] = self.buffers[mem.level as usize][self.slot_of(&mem)];
            }
            MicroOp::Store { src, mem } => {
                let slot = self.slot_of(&mem);
                self.buffers[mem.level as usize][slot] = self.ymm[src as usize];
            }
            MicroOp::SqrtSd { dst, src } => {
                let s = self.ymm[src as usize][0];
                self.ymm[dst as usize][0] = s.sqrt();
            }
            MicroOp::MulSd { dst, src } => {
                let s = self.ymm[src as usize][0];
                let d = self.ymm[dst as usize][0];
                self.stats.fp_lane_ops += 1;
                if is_trivial(s) || is_trivial(d) {
                    self.stats.trivial_lane_ops += 1;
                }
                self.ymm[dst as usize][0] = d * s;
            }
            MicroOp::AddSd { dst, src } => {
                let s = self.ymm[src as usize][0];
                let d = self.ymm[dst as usize][0];
                self.stats.fp_lane_ops += 1;
                if is_trivial(s) || is_trivial(d) {
                    self.stats.trivial_lane_ops += 1;
                }
                self.ymm[dst as usize][0] = d + s;
            }
            MicroOp::GpXor { dst, src } => {
                self.gp[dst as usize] ^= self.gp[src as usize];
            }
            MicroOp::GpShl { dst, imm } => {
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_shl(u32::from(imm));
            }
            MicroOp::GpShr { dst, imm } => {
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_shr(u32::from(imm));
            }
            MicroOp::GpAddImm { dst, imm } => {
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_add(imm as i64 as u64);
            }
            MicroOp::GpAdd { dst, src } => {
                let s = self.gp[src as usize];
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_add(s);
            }
            MicroOp::GpMovImm { dst, imm } => {
                self.gp[dst as usize] = imm;
            }
            MicroOp::GpDec { dst } => {
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_sub(1);
            }
        }
    }

    /// Writes all vector registers in hexadecimal + decimal form — the
    /// `--dump-registers` feature used to verify SIMD correctness in
    /// out-of-spec (overclocked) operation.
    pub fn dump_registers(&self, out: &mut String) {
        for (i, reg) in self.ymm.iter().enumerate() {
            let _ = write!(out, "ymm{i:<2}");
            for lane in reg {
                let _ = write!(out, " {:#018x}({:+.6e})", lane.to_bits(), lane);
            }
            let _ = writeln!(out);
        }
    }

    /// FNV-1a hash over the full vector state — two correct cores running
    /// the same workload from the same seed must agree (error detection).
    pub fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for reg in &self.ymm {
            for lane in reg {
                for byte in lane.to_bits().to_le_bytes() {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        h
    }

    /// Flips one mantissa/exponent/sign bit — fault injection for the
    /// error-detection tests (simulated silent data corruption).
    pub fn inject_bit_flip(&mut self, reg: usize, lane: usize, bit: u32) {
        let v = &mut self.ymm[reg % 16][lane % LANES];
        *v = f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64)));
    }

    /// True if any register lane has reached a trivial value.
    pub fn any_trivial_register(&self) -> bool {
        self.ymm.iter().flatten().any(|&x| is_trivial(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TaggedInst;
    use fs2_isa::prelude::*;

    /// dst ymm0..=11 accumulate via FMA from multiplier regs 12..=15.
    fn fma_kernel() -> Kernel {
        let mut body = Vec::new();
        for g in 0..12u8 {
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new(g),
                src1: Ymm::new(12 + g % 2),
                src2: RmYmm::Reg(Ymm::new(14 + g % 2)),
            }));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        Kernel::new("fma", body, 12)
    }

    #[test]
    fn v2_init_stays_finite_and_nontrivial() {
        let mut ex = Executor::new(InitScheme::V2Safe, 42);
        ex.run(&fma_kernel(), 10_000);
        assert!(!ex.any_trivial_register());
        assert_eq!(ex.stats().trivial_lane_ops, 0);
        assert!(ex.stats().fp_lane_ops > 0);
        assert!((ex.stats().trivial_fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn v174_bug_accumulates_to_infinity() {
        let mut ex = Executor::new(InitScheme::V174Buggy, 42);
        ex.run(&fma_kernel(), 1_000);
        assert!(ex.any_trivial_register());
        // Once saturated, nearly all subsequent FP work is trivial.
        assert!(
            ex.stats().trivial_fraction() > 0.5,
            "trivial fraction = {}",
            ex.stats().trivial_fraction()
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Executor::new(InitScheme::V2Safe, 7);
        let mut b = Executor::new(InitScheme::V2Safe, 7);
        let k = fma_kernel();
        a.run(&k, 500);
        b.run(&k, 500);
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a.registers(), b.registers());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Executor::new(InitScheme::V2Safe, 1);
        let mut b = Executor::new(InitScheme::V2Safe, 2);
        let k = fma_kernel();
        a.run(&k, 10);
        b.run(&k, 10);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn bit_flip_detected_by_hash() {
        let mut a = Executor::new(InitScheme::V2Safe, 7);
        let mut b = Executor::new(InitScheme::V2Safe, 7);
        let k = fma_kernel();
        a.run(&k, 100);
        b.run(&k, 100);
        assert_eq!(a.state_hash(), b.state_hash());
        b.inject_bit_flip(3, 1, 52);
        assert_ne!(a.state_hash(), b.state_hash());
        // Error is persistent: it stays detectable after more work.
        a.run(&k, 100);
        b.run(&k, 100);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn loads_and_stores_move_values() {
        let body = vec![
            TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rax,
                imm: 64,
            }),
            TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(0),
                    src: Mem::base(Gp::Rax),
                },
                MemLevel::L2,
            ),
            TaggedInst::mem(
                Inst::VmovapdStore {
                    dst: Mem::base_disp(Gp::Rax, 32),
                    src: Ymm::new(0),
                },
                MemLevel::L2,
            ),
            TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(1),
                    src: Mem::base_disp(Gp::Rax, 32),
                },
                MemLevel::L2,
            ),
        ];
        let k = Kernel::new("ls", body, 1);
        let mut ex = Executor::new(InitScheme::V2Safe, 3);
        ex.run(&k, 1);
        assert_eq!(ex.registers()[0], ex.registers()[1]);
    }

    #[test]
    fn gp_alu_semantics() {
        let body = vec![
            TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rax,
                imm: 0x5555_5555_5555_5555,
            }),
            TaggedInst::reg(Inst::ShlImm {
                dst: Gp::Rax,
                imm: 1,
            }),
            TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rbx,
                imm: 0xAAAA_AAAA_AAAA_AAAA,
            }),
            TaggedInst::reg(Inst::XorGp {
                dst: Gp::Rax,
                src: Gp::Rbx,
            }),
        ];
        let k = Kernel::new("alu", body, 1);
        let mut ex = Executor::new(InitScheme::V2Safe, 3);
        ex.run(&k, 1);
        // 0x5555… << 1 = 0xAAAA…AAAA; xor with 0xAAAA… = 0.
        // (State is internal; replay by hand through public effects.)
        // Execute a second kernel that stores rax-dependent address: easier
        // to just verify via a store address — instead check determinism.
        let mut ex2 = Executor::new(InitScheme::V2Safe, 3);
        ex2.run(&k, 1);
        assert_eq!(ex.state_hash(), ex2.state_hash());
    }

    #[test]
    fn register_dump_contains_all_registers() {
        let ex = Executor::new(InitScheme::V2Safe, 11);
        let mut s = String::new();
        ex.dump_registers(&mut s);
        for i in 0..16 {
            assert!(s.contains(&format!("ymm{i}")), "missing ymm{i} in dump");
        }
        assert_eq!(s.lines().count(), 16);
    }

    #[test]
    fn decoded_matches_interpreted_bit_for_bit() {
        // The pre-decoded fast path must be indistinguishable from the
        // reference interpreter: same registers, buffers, stats, hash.
        let k = fma_kernel();
        for seed in [1u64, 7, 42] {
            let mut fast = Executor::new(InitScheme::V2Safe, seed);
            let mut slow = Executor::new(InitScheme::V2Safe, seed);
            fast.run(&k, 500);
            slow.run_interpreted(&k, 500);
            assert_eq!(fast.state_hash(), slow.state_hash());
            assert_eq!(fast.registers(), slow.registers());
            assert_eq!(fast.stats(), slow.stats());
        }
    }

    #[test]
    fn decoded_matches_interpreted_with_memory_ops() {
        let body = vec![
            TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rax,
                imm: 64,
            }),
            TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(0),
                    src: Mem::base(Gp::Rax),
                },
                MemLevel::L1,
            ),
            TaggedInst::mem(
                Inst::Vfmadd231pd {
                    dst: Ymm::new(1),
                    src1: Ymm::new(0),
                    src2: RmYmm::Mem(Mem::base_disp(Gp::Rax, 32)),
                },
                MemLevel::L2,
            ),
            TaggedInst::mem(
                Inst::VmovapdStore {
                    dst: Mem::base_disp(Gp::Rax, 96),
                    src: Ymm::new(1),
                },
                MemLevel::Ram,
            ),
            TaggedInst::reg(Inst::AddImm {
                dst: Gp::Rax,
                imm: 32,
            }),
            TaggedInst::reg(Inst::Dec(Gp::Rdi)),
            TaggedInst::reg(Inst::Jnz { rel: 0 }),
        ];
        let k = Kernel::new("memmix", body, 1);
        let mut fast = Executor::new(InitScheme::V2Safe, 9);
        let mut slow = Executor::new(InitScheme::V2Safe, 9);
        fast.run(&k, 300);
        slow.run_interpreted(&k, 300);
        assert_eq!(fast.state_hash(), slow.state_hash());
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn decoded_kernel_drops_inert_instructions() {
        let k = fma_kernel(); // 12 FMAs + dec + jnz
        let d = DecodedKernel::new(&k);
        assert_eq!(d.len(), 13); // jnz dropped, dec kept
        assert!(!d.is_empty());
    }

    #[test]
    fn decoded_kernel_reuse_across_runs() {
        let k = fma_kernel();
        let d = DecodedKernel::new(&k);
        let mut a = Executor::new(InitScheme::V2Safe, 5);
        let mut b = Executor::new(InitScheme::V2Safe, 5);
        a.run_decoded(&d, 100);
        a.run_decoded(&d, 100);
        b.run(&k, 200);
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn sqrt_loop_converges_to_one() {
        // Repeated sqrtsd drives any positive value toward 1.0 — the
        // classic low-power loop has stable, boring data.
        let body = vec![TaggedInst::reg(Inst::Sqrtsd {
            dst: Xmm::new(0),
            src: Xmm::new(0),
        })];
        let k = Kernel::new("sqrt", body, 1);
        let mut ex = Executor::new(InitScheme::V2Safe, 5);
        ex.run(&k, 200);
        let v = ex.registers()[0][0];
        assert!((v - 1.0).abs() < 1e-9, "sqrt fixpoint = {v}");
    }
}
