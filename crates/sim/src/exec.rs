//! Functional (value-level) executor.
//!
//! §III-D of the paper: the *data* processed by the FMA units changes
//! power measurably. Intel's FMA clock-gating patent (Hickmann et al.)
//! gates parts of the unit when "an answer is either trivially known" —
//! operands of ±∞ or 0. FIRESTARTER 1.7.4 had an initialization bug that
//! let register values accumulate to ±∞, silently losing ~8.5 W of node
//! power; FIRESTARTER 2.0 fixes the initialization and gains it back.
//!
//! This executor runs the kernel's instruction stream over real `f64`
//! register state so that exactly this effect — and the register-dump /
//! error-detection features of §III-D — fall out of actual computation
//! rather than a hard-coded flag.
//!
//! Three replay tiers share one register state, from reference to fast:
//!
//! * [`Executor::run_interpreted`] — matches raw [`Inst`] variants every
//!   iteration (the reference semantics);
//! * [`Executor::run_predecoded`] — replays a flat [`DecodedKernel`]
//!   micro-op table with per-lane triviality checks on every operand
//!   (the first-generation fast path, kept as the benchmark baseline);
//! * [`Executor::run_decoded`] — the lane-vectorized path: registers
//!   live in a flat 16 × [`LANES`] lane array (one contiguous
//!   fixed-size lane slice per register), micro-ops carry masked
//!   register numbers that index it checked-free, FMA/MUL/ADD bodies
//!   iterate fixed-size lane slices the compiler auto-vectorizes, and
//!   triviality is a per-register lane bitmask updated once per
//!   destination write instead of per-lane `is_trivial` calls on
//!   every source operand.
//!
//! All three are bit-identical in results: same [`ExecStats`], same
//! [`Executor::state_hash`], same register dumps.

use crate::kernel::Kernel;
use fs2_arch::MemLevel;
use fs2_isa::inst::{Inst, RmYmm};
use fs2_isa::mem::Mem;
use std::fmt::Write as _;

/// Register/buffer initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitScheme {
    /// FIRESTARTER 2.0: products are tiny relative to the accumulator, so
    /// values stay finite and non-trivial for the life of the run.
    V2Safe,
    /// The 1.7.4 bug: initial magnitudes are so large that accumulators
    /// overflow to ±∞ within a few iterations, after which the FMA inputs
    /// are trivial and the unit clock-gates.
    V174Buggy,
}

/// Statistics accumulated during functional execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Executed FMA/MUL/ADD lane operations (one per f64 lane).
    pub fp_lane_ops: u64,
    /// Lane operations with at least one trivial (±∞/0/NaN) operand.
    pub trivial_lane_ops: u64,
    /// Completed loop iterations.
    pub iterations: u64,
}

impl ExecStats {
    /// Fraction of FP lane work that the FMA unit can clock-gate.
    pub fn trivial_fraction(&self) -> f64 {
        if self.fp_lane_ops == 0 {
            0.0
        } else {
            self.trivial_lane_ops as f64 / self.fp_lane_ops as f64
        }
    }
}

/// Branchless triviality test: ±0 (upper 63 bits clear once the sign is
/// shifted out) or an all-ones exponent (±∞/NaN). Equivalent to
/// `x == 0.0 || x.is_infinite() || x.is_nan()` but auto-vectorizable.
#[inline(always)]
fn is_trivial(x: f64) -> bool {
    let b = x.to_bits();
    (b << 1) == 0 || (b & 0x7FF0_0000_0000_0000) == 0x7FF0_0000_0000_0000
}

/// The first-generation triviality test, short-circuiting `||` chain
/// included — kept verbatim as the baseline tier's per-lane check so
/// `speedup_soa_vs_predecoded` measures against the shipped cost model.
/// Semantically identical to [`is_trivial`].
#[inline]
fn is_trivial_v1(x: f64) -> bool {
    x == 0.0 || x.is_infinite() || x.is_nan()
}

/// Triviality lane bitmask of one register value (bit `l` set ⇔ lane `l`
/// is ±∞/0/NaN). Only the low [`LANES`] bits are ever set.
///
/// This is the one operation the replay loop performs per destination
/// write, so on AVX hosts it is four vector instructions + a movemask:
/// `x == 0` catches ±0, `!(|x| < ∞)` (unordered compare) catches ±∞ and
/// NaN. The autovectorizer does not form `vmovmskpd` from the scalar
/// loop — it extracts every lane through GP registers, ~7× the
/// instructions — hence the explicit intrinsics. The portable arm below
/// is the same predicate, and the exec_parity suite pins both to the
/// interpreted tier's per-lane semantics.
#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[inline(always)]
fn mask4(v: &[f64; LANES]) -> u8 {
    use std::arch::x86_64::{
        _mm256_andnot_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_movemask_pd, _mm256_or_pd,
        _mm256_set1_pd, _mm256_setzero_pd, _CMP_EQ_OQ, _CMP_NLT_UQ,
    };
    const { assert!(LANES == 4, "AVX mask4 is 4-lane") };
    // SAFETY: this arm only compiles when AVX is statically enabled
    // (the workspace builds with `-C target-feature=+fma,+avx2`), and
    // `v` is a valid, readable `[f64; 4]`.
    unsafe {
        let x = _mm256_loadu_pd(v.as_ptr());
        let is_zero = _mm256_cmp_pd::<_CMP_EQ_OQ>(x, _mm256_setzero_pd());
        let abs = _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
        let not_finite = _mm256_cmp_pd::<_CMP_NLT_UQ>(abs, _mm256_set1_pd(f64::INFINITY));
        (_mm256_movemask_pd(_mm256_or_pd(is_zero, not_finite)) as u8) & 0xF
    }
}

/// Portable [`mask4`] for targets without statically-enabled AVX.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
#[inline(always)]
fn mask4(v: &[f64; LANES]) -> u8 {
    let mut m = 0u8;
    for (l, &x) in v.iter().enumerate() {
        m |= u8::from(is_trivial(x)) << l;
    }
    m
}

/// Deterministic xorshift64* generator so the executor does not need the
/// `rand` dependency (and stays reproducible across the workspace).
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// f64 lanes per 256-bit vector register.
pub const LANES: usize = 4;
/// Per-level functional buffer length in 256-bit elements. Functional
/// behaviour only needs value storage, not real capacities.
const BUF_ELEMS: usize = 1024;
/// Buffer slot modulus. Buffers always hold exactly [`BUF_ELEMS`]
/// elements, so the historical `BUF_ELEMS.min(len - 1)` divisor is the
/// compile-time constant `BUF_ELEMS - 1` — which lets the hot path use a
/// strength-reduced constant remainder instead of a runtime division.
const SLOT_MOD: usize = BUF_ELEMS - 1;

/// Pre-resolved memory operand: register numbers and the level's buffer
/// index extracted once so the hot loop does no `Option`/enum matching.
#[derive(Debug, Clone, Copy)]
struct MemOp {
    base: u8,
    /// Index register number; only read when `index_factor > 0`.
    index_reg: u8,
    /// Scale factor (1/2/4/8), or 0 when the operand has no index.
    index_factor: u8,
    disp: i32,
    /// `MemLevel::idx()` of the access stream's target.
    level: u8,
}

impl MemOp {
    fn new(mem: &Mem, level: MemLevel) -> MemOp {
        let (index_reg, index_factor) = match mem.index {
            Some((r, s)) => (r.num(), s.factor()),
            None => (0, 0),
        };
        MemOp {
            base: mem.base.num(),
            index_reg,
            index_factor,
            disp: mem.disp,
            level: level.idx() as u8,
        }
    }
}

/// Masked register index: `Ymm::num()` is always < 16, and the `& 15`
/// lets the compiler drop every bounds check in the replay loop (the
/// register file is `[[f64; LANES]; 16]`).
#[inline(always)]
fn ri(reg: u8) -> usize {
    (reg & 15) as usize
}
/// One pre-decoded micro-operation. Control flow (`cmp`/`jnz`), hints
/// and `nop`/`ret` have no functional effect and are dropped at decode
/// time, so the replay loop touches only state-changing operations.
/// Vector-register operands are plain register numbers (< 16), indexed
/// through [`ri`] so lane loads compile to unchecked 256-bit moves.
#[derive(Debug, Clone, Copy)]
enum MicroOp {
    Fma { dst: u8, a: u8, b: u8 },
    FmaMem { dst: u8, a: u8, mem: MemOp },
    Mul { dst: u8, a: u8, b: u8 },
    MulMem { dst: u8, a: u8, mem: MemOp },
    Add { dst: u8, a: u8, b: u8 },
    AddMem { dst: u8, a: u8, mem: MemOp },
    Xor { dst: u8, a: u8, b: u8 },
    Load { dst: u8, mem: MemOp },
    Store { src: u8, mem: MemOp },
    SqrtSd { dst: u8, src: u8 },
    MulSd { dst: u8, src: u8 },
    AddSd { dst: u8, src: u8 },
    GpXor { dst: u8, src: u8 },
    GpShl { dst: u8, imm: u8 },
    GpShr { dst: u8, imm: u8 },
    GpAddImm { dst: u8, imm: i32 },
    GpAdd { dst: u8, src: u8 },
    GpMovImm { dst: u8, imm: u64 },
    GpDec { dst: u8 },
}

/// A kernel pre-decoded into a flat micro-op table, built once and
/// replayed for every functional iteration (and shared between the two
/// executors of an error-detection run). Replay through
/// [`Executor::run_decoded`] is bit-identical to interpreting the raw
/// instruction stream.
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    ops: Vec<MicroOp>,
}

impl DecodedKernel {
    /// Decodes a kernel body. Panics if a memory-touching instruction has
    /// no level tag (same contract as [`Kernel::new`]).
    pub fn new(kernel: &Kernel) -> DecodedKernel {
        let mut ops = Vec::with_capacity(kernel.body.len());
        for t in &kernel.body {
            let level = |what: &str| {
                t.level
                    .unwrap_or_else(|| panic!("{what} needs a level tag in `{}`", kernel.name))
            };
            let op = match &t.inst {
                Inst::Vfmadd231pd { dst, src1, src2 } => match src2 {
                    RmYmm::Reg(b) => MicroOp::Fma {
                        dst: dst.num(),
                        a: src1.num(),
                        b: b.num(),
                    },
                    RmYmm::Mem(m) => MicroOp::FmaMem {
                        dst: dst.num(),
                        a: src1.num(),
                        mem: MemOp::new(m, level("memory operand")),
                    },
                },
                Inst::Vmulpd { dst, src1, src2 } => match src2 {
                    RmYmm::Reg(b) => MicroOp::Mul {
                        dst: dst.num(),
                        a: src1.num(),
                        b: b.num(),
                    },
                    RmYmm::Mem(m) => MicroOp::MulMem {
                        dst: dst.num(),
                        a: src1.num(),
                        mem: MemOp::new(m, level("memory operand")),
                    },
                },
                Inst::Vaddpd { dst, src1, src2 } => match src2 {
                    RmYmm::Reg(b) => MicroOp::Add {
                        dst: dst.num(),
                        a: src1.num(),
                        b: b.num(),
                    },
                    RmYmm::Mem(m) => MicroOp::AddMem {
                        dst: dst.num(),
                        a: src1.num(),
                        mem: MemOp::new(m, level("memory operand")),
                    },
                },
                Inst::Vxorps { dst, src1, src2 } => MicroOp::Xor {
                    dst: dst.num(),
                    a: src1.num(),
                    b: src2.num(),
                },
                Inst::VmovapdLoad { dst, src } => MicroOp::Load {
                    dst: dst.num(),
                    mem: MemOp::new(src, level("load")),
                },
                Inst::VmovapdStore { dst, src } => MicroOp::Store {
                    src: src.num(),
                    mem: MemOp::new(dst, level("store")),
                },
                Inst::Sqrtsd { dst, src } => MicroOp::SqrtSd {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::Mulsd { dst, src } => MicroOp::MulSd {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::Addsd { dst, src } => MicroOp::AddSd {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::XorGp { dst, src } => MicroOp::GpXor {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::ShlImm { dst, imm } => MicroOp::GpShl {
                    dst: dst.num(),
                    imm: *imm,
                },
                Inst::ShrImm { dst, imm } => MicroOp::GpShr {
                    dst: dst.num(),
                    imm: *imm,
                },
                Inst::AddImm { dst, imm } => MicroOp::GpAddImm {
                    dst: dst.num(),
                    imm: *imm,
                },
                Inst::AddGp { dst, src } => MicroOp::GpAdd {
                    dst: dst.num(),
                    src: src.num(),
                },
                Inst::MovImm64 { dst, imm } => MicroOp::GpMovImm {
                    dst: dst.num(),
                    imm: *imm,
                },
                Inst::Dec(r) => MicroOp::GpDec { dst: r.num() },
                // No functional effect; dropped from the replay table.
                Inst::CmpGp { .. }
                | Inst::Jnz { .. }
                | Inst::Prefetch { .. }
                | Inst::Nop
                | Inst::Ret => continue,
            };
            ops.push(op);
        }
        DecodedKernel { ops }
    }

    /// Number of state-changing micro-ops per iteration.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the kernel has no state-changing operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Everything a functional pass produces: [`ExecStats`], the
/// error-detection state hash, and the final vector register file (from
/// which the `--dump-registers` text is a pure formatting step). A
/// `FunctionalOutcome` is a pure function of
/// `(kernel, InitScheme, seed, iterations)`, which is what makes the
/// engine-level ExecStats cache sound.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalOutcome {
    /// Lane-op statistics of the pass.
    pub stats: ExecStats,
    /// FNV-1a hash over the final vector state ([`Executor::state_hash`]).
    pub state_hash: u64,
    /// Final vector register file.
    pub registers: [[f64; LANES]; 16],
}

impl FunctionalOutcome {
    /// Formats the register dump of the final state
    /// (see [`format_register_dump`]).
    pub fn register_dump(&self) -> String {
        let mut s = String::new();
        format_register_dump(&self.registers, &mut s);
        s
    }
}

/// Runs one complete functional pass: a fresh executor initialized per
/// `(scheme, seed)`, `iterations` replays of `decoded`, and the packaged
/// [`FunctionalOutcome`].
pub fn run_functional(
    decoded: &DecodedKernel,
    scheme: InitScheme,
    seed: u64,
    iterations: u64,
) -> FunctionalOutcome {
    let mut ex = Executor::new(scheme, seed);
    ex.run_decoded(decoded, iterations);
    ex.outcome()
}

/// Writes a register file in hexadecimal + decimal form — the
/// `--dump-registers` feature used to verify SIMD correctness in
/// out-of-spec (overclocked) operation.
pub fn format_register_dump(regs: &[[f64; LANES]; 16], out: &mut String) {
    for (i, reg) in regs.iter().enumerate() {
        let _ = write!(out, "ymm{i:<2}");
        for lane in reg {
            let _ = write!(out, " {:#018x}({:+.6e})", lane.to_bits(), lane);
        }
        let _ = writeln!(out);
    }
}

/// One memory level's functional buffer: a fixed-size boxed slot array.
/// The compile-time length is what lets the replay loop's slot indexing
/// (`addr % SLOT_MOD < BUF_ELEMS`) drop its bounds checks.
type Buffer = Box<[[f64; LANES]; BUF_ELEMS]>;

/// Value-level executor for payload kernels.
///
/// Register and buffer state is stored structure-of-arrays style: the
/// vector file is a flat `16 × LANES` lane array (each register one
/// contiguous, fixed-size lane slice) and each memory level one flat
/// fixed-size slot array, so the vectorized replay loop indexes lanes
/// directly with the micro-ops' masked register numbers — no slicing,
/// no bounds checks, bodies the compiler auto-vectorizes.
#[derive(Debug, Clone)]
pub struct Executor {
    /// Vector register file, register-major: `ymm[N]` is the LANES-wide
    /// lane slice of `ymmN`.
    ymm: [[f64; LANES]; 16],
    gp: [u64; 16],
    /// Per-register triviality lane bitmask (bit `l` ⇔ lane `l` trivial).
    /// Maintained by [`Executor::run_decoded`] (refreshed from values on
    /// entry), so the other replay tiers and fault injection never need
    /// to keep it coherent.
    ymm_mask: [u8; 16],
    /// Per-level functional buffers, [`BUF_ELEMS`] 256-bit slots each.
    buffers: [Buffer; 4],
    /// Per-slot triviality masks mirroring `buffers`.
    buf_mask: [Box<[u8; BUF_ELEMS]>; 4],
    stats: ExecStats,
    scheme: InitScheme,
}

impl Executor {
    /// Creates an executor with registers and buffers initialized per
    /// `scheme`, deterministically from `seed`.
    pub fn new(scheme: InitScheme, seed: u64) -> Executor {
        let mut rng = XorShift64::new(seed);
        let mut ymm = [[0.0; LANES]; 16];
        match scheme {
            InitScheme::V2Safe => {
                // Accumulators in [1, 2); multiplicand pairs whose products
                // are ~1e-12 with alternating sign: the accumulator drifts
                // by less than 1e-3 over 1e9 iterations.
                for (r, reg) in ymm.iter_mut().enumerate() {
                    for (l, lane) in reg.iter_mut().enumerate() {
                        let sign = if (r + l) % 2 == 0 { 1.0 } else { -1.0 };
                        *lane = match r {
                            12..=13 => sign * (1.0 + rng.next_f64()) * 1e-6,
                            14..=15 => sign * (1.0 + rng.next_f64()) * 1e-6,
                            _ => 1.0 + rng.next_f64(),
                        };
                    }
                }
            }
            InitScheme::V174Buggy => {
                // Multiplicands around 1e160: the very first FMA pushes the
                // accumulator past DBL_MAX.
                for (r, reg) in ymm.iter_mut().enumerate() {
                    for (l, lane) in reg.iter_mut().enumerate() {
                        let sign = if (r + l) % 2 == 0 { 1.0 } else { -1.0 };
                        *lane = match r {
                            12..=15 => sign * (1.0 + rng.next_f64()) * 1e160,
                            _ => 1.0 + rng.next_f64(),
                        };
                    }
                }
            }
        }
        // Draw order matches the historical flat layout (slot-major,
        // lane within slot), so buffer contents — and every downstream
        // hash — are unchanged.
        let mut mk_buf = |scale: f64| -> Buffer {
            let mut buf: Buffer = vec![[0.0; LANES]; BUF_ELEMS]
                .into_boxed_slice()
                .try_into()
                .expect("BUF_ELEMS slots");
            for slot in buf.iter_mut() {
                for lane in slot.iter_mut() {
                    *lane = (0.5 + rng.next_f64()) * scale;
                }
            }
            buf
        };
        let buffers = [mk_buf(1.0), mk_buf(1.0), mk_buf(1.0), mk_buf(1.0)];
        let mk_mask = || -> Box<[u8; BUF_ELEMS]> {
            vec![0u8; BUF_ELEMS]
                .into_boxed_slice()
                .try_into()
                .expect("BUF_ELEMS masks")
        };
        let buf_mask = [mk_mask(), mk_mask(), mk_mask(), mk_mask()];
        // All-zero masks are the correct initial state: both schemes
        // initialize every register and buffer lane to a nonzero finite
        // value, and `run_decoded` refreshes masks on entry anyway (the
        // replay tiers and fault injection keep them current afterwards).
        Executor {
            ymm,
            gp: [0; 16],
            ymm_mask: [0; 16],
            buffers,
            buf_mask,
            stats: ExecStats::default(),
            scheme,
        }
    }

    /// The initialization scheme in use.
    pub fn scheme(&self) -> InitScheme {
        self.scheme
    }

    /// Current vector register file.
    pub fn registers(&self) -> [[f64; LANES]; 16] {
        self.ymm
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Packages the current state as a [`FunctionalOutcome`].
    pub fn outcome(&self) -> FunctionalOutcome {
        FunctionalOutcome {
            stats: self.stats,
            state_hash: self.state_hash(),
            registers: self.registers(),
        }
    }

    /// Recomputes every triviality mask from the current values. Called
    /// on entry to [`Executor::run_decoded`] so that state mutated by the
    /// reference tiers or [`Executor::inject_bit_flip`] never leaves the
    /// masks stale.
    fn refresh_masks(&mut self) {
        for (r, reg) in self.ymm.iter().enumerate() {
            self.ymm_mask[r] = mask4(reg);
        }
        for (masks, buf) in self.buf_mask.iter_mut().zip(&self.buffers) {
            for (m, slot) in masks.iter_mut().zip(buf.iter()) {
                *m = mask4(slot);
            }
        }
    }

    /// Slots are always produced modulo the buffer modulus (<
    /// [`BUF_ELEMS`]); the `&` masks restate that bound so the indexing
    /// is checked-free.
    #[inline(always)]
    fn buf_write(&mut self, level: usize, slot: usize, v: [f64; LANES]) {
        self.buffers[level & 3][slot & (BUF_ELEMS - 1)] = v;
    }

    fn addr_of(&self, mem: &Mem) -> u64 {
        let base = self.gp[mem.base.num() as usize];
        let idx = mem
            .index
            .map(|(r, s)| self.gp[r.num() as usize].wrapping_mul(u64::from(s.factor())))
            .unwrap_or(0);
        base.wrapping_add(idx).wrapping_add(mem.disp as i64 as u64)
    }

    fn buf_slot(&self, level: MemLevel, mem: &Mem) -> usize {
        let elems = self.buffers[level.idx()].len();
        // Slot granularity matches the 32-byte vmovapd width; `level`
        // selects the buffer in the caller.
        (self.addr_of(mem) / 32) as usize % BUF_ELEMS.min(elems - 1)
    }

    /// Micro-op address resolution with the historical runtime-derived
    /// modulus — the baseline tier's cost model.
    fn slot_of(&self, mem: &MemOp) -> usize {
        let base = self.gp[mem.base as usize];
        let idx = if mem.index_factor > 0 {
            self.gp[mem.index_reg as usize].wrapping_mul(u64::from(mem.index_factor))
        } else {
            0
        };
        let addr = base.wrapping_add(idx).wrapping_add(mem.disp as i64 as u64);
        let elems = self.buffers[(mem.level & 3) as usize].len();
        (addr / 32) as usize % BUF_ELEMS.min(elems - 1)
    }

    /// Vectorized-tier address resolution: same address arithmetic, but
    /// the modulus is the compile-time [`SLOT_MOD`] (buffers always hold
    /// exactly [`BUF_ELEMS`] slots, so `BUF_ELEMS.min(len - 1)` is
    /// constant).
    #[inline(always)]
    fn slot_fast(&self, mem: &MemOp) -> usize {
        let base = self.gp[mem.base as usize];
        let idx = if mem.index_factor > 0 {
            self.gp[mem.index_reg as usize].wrapping_mul(u64::from(mem.index_factor))
        } else {
            0
        };
        let addr = base.wrapping_add(idx).wrapping_add(mem.disp as i64 as u64);
        // `% SLOT_MOD` already bounds the slot below BUF_ELEMS; the `&`
        // restates it as a mask so every fixed-size-array index downstream
        // is provably in range (no bounds checks in the replay loop).
        ((addr / 32) as usize % SLOT_MOD) & (BUF_ELEMS - 1)
    }

    fn count_fp(&mut self, operands: &[[f64; LANES]]) {
        for l in 0..LANES {
            self.stats.fp_lane_ops += 1;
            if operands.iter().any(|o| is_trivial_v1(o[l])) {
                self.stats.trivial_lane_ops += 1;
            }
        }
    }

    fn read_rm(&self, src: &RmYmm, level: Option<MemLevel>) -> [f64; LANES] {
        match src {
            RmYmm::Reg(r) => self.vload_v1(r.num()),
            RmYmm::Mem(m) => {
                let level = level.expect("memory operand needs a level tag");
                self.buf_read_v1(level.idx(), self.buf_slot(level, m))
            }
        }
    }

    fn exec_inst(&mut self, inst: &Inst, level: Option<MemLevel>) {
        match inst {
            Inst::Vfmadd231pd { dst, src1, src2 } => {
                let di = dst.num();
                let d = self.vload_v1(di);
                let a = self.vload_v1(src1.num());
                let b = self.read_rm(src2, level);
                self.count_fp(&[d, a, b]);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = a[l].mul_add(b[l], d[l]);
                }
                self.vstore_v1(di, out);
            }
            Inst::Vmulpd { dst, src1, src2 } => {
                let a = self.vload_v1(src1.num());
                let b = self.read_rm(src2, level);
                self.count_fp(&[a, b]);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = a[l] * b[l];
                }
                self.vstore_v1(dst.num(), out);
            }
            Inst::Vaddpd { dst, src1, src2 } => {
                let a = self.vload_v1(src1.num());
                let b = self.read_rm(src2, level);
                self.count_fp(&[a, b]);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = a[l] + b[l];
                }
                self.vstore_v1(dst.num(), out);
            }
            Inst::Vxorps { dst, src1, src2 } => {
                let a = self.vload_v1(src1.num());
                let b = self.vload_v1(src2.num());
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = f64::from_bits(a[l].to_bits() ^ b[l].to_bits());
                }
                self.vstore_v1(dst.num(), out);
            }
            Inst::VmovapdLoad { dst, src } => {
                let level = level.expect("load needs a level tag");
                let v = self.buf_read_v1(level.idx(), self.buf_slot(level, src));
                self.vstore_v1(dst.num(), v);
            }
            Inst::VmovapdStore { dst, src } => {
                let level = level.expect("store needs a level tag");
                let slot = self.buf_slot(level, dst);
                let v = self.vload_v1(src.num());
                self.buf_write(level.idx(), slot, v);
            }
            Inst::Sqrtsd { dst, src } => {
                let s = self.ymm[ri(src.num())][0];
                self.ymm[ri(dst.num())][0] = s.sqrt();
            }
            Inst::Mulsd { dst, src } => {
                let s = self.ymm[ri(src.num())][0];
                let di = ri(dst.num());
                let d = self.ymm[di][0];
                self.stats.fp_lane_ops += 1;
                if is_trivial_v1(s) || is_trivial_v1(d) {
                    self.stats.trivial_lane_ops += 1;
                }
                self.ymm[di][0] = d * s;
            }
            Inst::Addsd { dst, src } => {
                let s = self.ymm[ri(src.num())][0];
                let di = ri(dst.num());
                let d = self.ymm[di][0];
                self.stats.fp_lane_ops += 1;
                if is_trivial_v1(s) || is_trivial_v1(d) {
                    self.stats.trivial_lane_ops += 1;
                }
                self.ymm[di][0] = d + s;
            }
            Inst::XorGp { dst, src } => {
                self.gp[dst.num() as usize] ^= self.gp[src.num() as usize];
            }
            Inst::ShlImm { dst, imm } => {
                let d = &mut self.gp[dst.num() as usize];
                *d = d.wrapping_shl(u32::from(*imm));
            }
            Inst::ShrImm { dst, imm } => {
                let d = &mut self.gp[dst.num() as usize];
                *d = d.wrapping_shr(u32::from(*imm));
            }
            Inst::AddImm { dst, imm } => {
                let d = &mut self.gp[dst.num() as usize];
                *d = d.wrapping_add(*imm as i64 as u64);
            }
            Inst::AddGp { dst, src } => {
                let s = self.gp[src.num() as usize];
                let d = &mut self.gp[dst.num() as usize];
                *d = d.wrapping_add(s);
            }
            Inst::MovImm64 { dst, imm } => {
                self.gp[dst.num() as usize] = *imm;
            }
            Inst::Dec(r) => {
                let d = &mut self.gp[r.num() as usize];
                *d = d.wrapping_sub(1);
            }
            // Control flow is driven by the caller; comparisons, branches
            // and hints have no functional effect here.
            Inst::CmpGp { .. }
            | Inst::Jnz { .. }
            | Inst::Prefetch { .. }
            | Inst::Nop
            | Inst::Ret => {}
        }
    }

    /// Executes `iterations` passes over the kernel body.
    ///
    /// Pre-decodes the instruction stream into a micro-op table once,
    /// then replays it through the lane-vectorized fast path. Equivalent
    /// to [`Executor::run_interpreted`] bit for bit (state, stats).
    pub fn run(&mut self, kernel: &Kernel, iterations: u64) -> &ExecStats {
        let decoded = DecodedKernel::new(kernel);
        self.run_decoded(&decoded, iterations)
    }

    /// Executes `iterations` passes over a pre-decoded kernel through the
    /// lane-vectorized fast path. Decode the kernel once with
    /// [`DecodedKernel::new`] and reuse it across runs (e.g. the
    /// error-detection replay executes the same kernel twice).
    ///
    /// FP-op bodies iterate fixed-size `[f64; LANES]` slices of the flat
    /// lane array (auto-vectorizable), and the per-lane triviality test
    /// of the baseline tiers collapses to a bitmask OR + popcount per op:
    /// each destination write refreshes its register's mask once, and
    /// source operands reuse the masks instead of re-testing every lane.
    pub fn run_decoded(&mut self, decoded: &DecodedKernel, iterations: u64) -> &ExecStats {
        self.refresh_masks();
        let mut fp_ops: u64 = 0;
        let mut trivial: u64 = 0;
        for _ in 0..iterations {
            for op in &decoded.ops {
                match *op {
                    MicroOp::Fma { dst, a, b } => {
                        let di = ri(dst);
                        let d = self.ymm[di];
                        let x = self.ymm[ri(a)];
                        let y = self.ymm[ri(b)];
                        let tm = self.ymm_mask[di] | self.ymm_mask[ri(a)] | self.ymm_mask[ri(b)];
                        fp_ops += LANES as u64;
                        trivial += u64::from(tm.count_ones());
                        let mut out = [0.0; LANES];
                        for l in 0..LANES {
                            out[l] = x[l].mul_add(y[l], d[l]);
                        }
                        self.ymm_mask[di] = mask4(&out);
                        self.ymm[di] = out;
                    }
                    MicroOp::FmaMem { dst, a, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        let di = ri(dst);
                        let d = self.ymm[di];
                        let x = self.ymm[ri(a)];
                        let y = self.buffers[lvl][slot];
                        let tm =
                            self.ymm_mask[di] | self.ymm_mask[ri(a)] | self.buf_mask[lvl][slot];
                        fp_ops += LANES as u64;
                        trivial += u64::from(tm.count_ones());
                        let mut out = [0.0; LANES];
                        for l in 0..LANES {
                            out[l] = x[l].mul_add(y[l], d[l]);
                        }
                        self.ymm_mask[di] = mask4(&out);
                        self.ymm[di] = out;
                    }
                    MicroOp::Mul { dst, a, b } => {
                        let x = self.ymm[ri(a)];
                        let y = self.ymm[ri(b)];
                        let tm = self.ymm_mask[ri(a)] | self.ymm_mask[ri(b)];
                        fp_ops += LANES as u64;
                        trivial += u64::from(tm.count_ones());
                        let mut out = [0.0; LANES];
                        for l in 0..LANES {
                            out[l] = x[l] * y[l];
                        }
                        self.ymm_mask[ri(dst)] = mask4(&out);
                        self.ymm[ri(dst)] = out;
                    }
                    MicroOp::MulMem { dst, a, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        let x = self.ymm[ri(a)];
                        let y = self.buffers[lvl][slot];
                        let tm = self.ymm_mask[ri(a)] | self.buf_mask[lvl][slot];
                        fp_ops += LANES as u64;
                        trivial += u64::from(tm.count_ones());
                        let mut out = [0.0; LANES];
                        for l in 0..LANES {
                            out[l] = x[l] * y[l];
                        }
                        self.ymm_mask[ri(dst)] = mask4(&out);
                        self.ymm[ri(dst)] = out;
                    }
                    MicroOp::Add { dst, a, b } => {
                        let x = self.ymm[ri(a)];
                        let y = self.ymm[ri(b)];
                        let tm = self.ymm_mask[ri(a)] | self.ymm_mask[ri(b)];
                        fp_ops += LANES as u64;
                        trivial += u64::from(tm.count_ones());
                        let mut out = [0.0; LANES];
                        for l in 0..LANES {
                            out[l] = x[l] + y[l];
                        }
                        self.ymm_mask[ri(dst)] = mask4(&out);
                        self.ymm[ri(dst)] = out;
                    }
                    MicroOp::AddMem { dst, a, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        let x = self.ymm[ri(a)];
                        let y = self.buffers[lvl][slot];
                        let tm = self.ymm_mask[ri(a)] | self.buf_mask[lvl][slot];
                        fp_ops += LANES as u64;
                        trivial += u64::from(tm.count_ones());
                        let mut out = [0.0; LANES];
                        for l in 0..LANES {
                            out[l] = x[l] + y[l];
                        }
                        self.ymm_mask[ri(dst)] = mask4(&out);
                        self.ymm[ri(dst)] = out;
                    }
                    MicroOp::Xor { dst, a, b } => {
                        let x = self.ymm[ri(a)];
                        let y = self.ymm[ri(b)];
                        let mut out = [0.0; LANES];
                        for l in 0..LANES {
                            out[l] = f64::from_bits(x[l].to_bits() ^ y[l].to_bits());
                        }
                        self.ymm_mask[ri(dst)] = mask4(&out);
                        self.ymm[ri(dst)] = out;
                    }
                    MicroOp::Load { dst, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        self.ymm_mask[ri(dst)] = self.buf_mask[lvl][slot];
                        self.ymm[ri(dst)] = self.buffers[lvl][slot];
                    }
                    MicroOp::Store { src, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        self.buf_mask[lvl][slot] = self.ymm_mask[ri(src)];
                        self.buffers[lvl][slot] = self.ymm[ri(src)];
                    }
                    MicroOp::SqrtSd { dst, src } => {
                        let s = self.ymm[ri(src)][0];
                        let out = s.sqrt();
                        let di = ri(dst);
                        self.ymm_mask[di] = (self.ymm_mask[di] & !1) | u8::from(is_trivial(out));
                        self.ymm[di][0] = out;
                    }
                    MicroOp::MulSd { dst, src } => {
                        let s = self.ymm[ri(src)][0];
                        let di = ri(dst);
                        let d = self.ymm[di][0];
                        fp_ops += 1;
                        trivial += u64::from((self.ymm_mask[di] | self.ymm_mask[ri(src)]) & 1);
                        let out = d * s;
                        self.ymm_mask[di] = (self.ymm_mask[di] & !1) | u8::from(is_trivial(out));
                        self.ymm[di][0] = out;
                    }
                    MicroOp::AddSd { dst, src } => {
                        let s = self.ymm[ri(src)][0];
                        let di = ri(dst);
                        let d = self.ymm[di][0];
                        fp_ops += 1;
                        trivial += u64::from((self.ymm_mask[di] | self.ymm_mask[ri(src)]) & 1);
                        let out = d + s;
                        self.ymm_mask[di] = (self.ymm_mask[di] & !1) | u8::from(is_trivial(out));
                        self.ymm[di][0] = out;
                    }
                    MicroOp::GpXor { dst, src } => {
                        self.gp[ri(dst)] ^= self.gp[ri(src)];
                    }
                    MicroOp::GpShl { dst, imm } => {
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_shl(u32::from(imm));
                    }
                    MicroOp::GpShr { dst, imm } => {
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_shr(u32::from(imm));
                    }
                    MicroOp::GpAddImm { dst, imm } => {
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_add(imm as i64 as u64);
                    }
                    MicroOp::GpAdd { dst, src } => {
                        let s = self.gp[ri(src)];
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_add(s);
                    }
                    MicroOp::GpMovImm { dst, imm } => {
                        self.gp[ri(dst)] = imm;
                    }
                    MicroOp::GpDec { dst } => {
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_sub(1);
                    }
                }
            }
        }
        self.stats.iterations += iterations;
        self.stats.fp_lane_ops += fp_ops;
        self.stats.trivial_lane_ops += trivial;
        &self.stats
    }

    /// Reference implementation: matches on the raw `Inst` stream every
    /// iteration. Kept for the micro-benchmark baseline and the
    /// decoded-vs-interpreted equivalence tests.
    pub fn run_interpreted(&mut self, kernel: &Kernel, iterations: u64) -> &ExecStats {
        for _ in 0..iterations {
            for t in &kernel.body {
                self.exec_inst(&t.inst, t.level);
            }
            self.stats.iterations += 1;
        }
        &self.stats
    }

    /// First-generation replay tier: the flat micro-op table with
    /// per-lane triviality checks on every source operand and the
    /// runtime-derived buffer modulus — exactly the cost model the
    /// lane-vectorized [`Executor::run_decoded`] replaced. Kept as the
    /// `speedup_soa_vs_predecoded` benchmark baseline and as a third
    /// independent implementation for the parity suite.
    ///
    /// The tier deliberately replicates the original implementation's
    /// access idiom — bounds-checked flat-slice register loads
    /// (`Executor::vload_v1`) and the short-circuiting triviality
    /// test (`is_trivial_v1`) — so the published speedup measures the
    /// vectorized path against what actually shipped, not against a
    /// baseline that silently inherits this PR's layout improvements.
    pub fn run_predecoded(&mut self, decoded: &DecodedKernel, iterations: u64) -> &ExecStats {
        for _ in 0..iterations {
            for op in &decoded.ops {
                self.exec_op_baseline(op);
            }
            self.stats.iterations += 1;
        }
        &self.stats
    }

    /// Gen-1 register load: a flat-slice view with runtime bounds
    /// checks, as the original pre-decoded executor performed it.
    #[inline]
    fn vload_v1(&self, reg: u8) -> [f64; LANES] {
        let i = reg as usize * LANES;
        let flat = self.ymm.as_flattened();
        flat[i..i + LANES].try_into().expect("flat ymm index")
    }

    /// Gen-1 register store (flat-slice `copy_from_slice`).
    #[inline]
    fn vstore_v1(&mut self, reg: u8, v: [f64; LANES]) {
        let i = reg as usize * LANES;
        self.ymm.as_flattened_mut()[i..i + LANES].copy_from_slice(&v);
    }

    /// Gen-1 buffer read through a flat lane view.
    #[inline]
    fn buf_read_v1(&self, level: usize, slot: usize) -> [f64; LANES] {
        let base = slot * LANES;
        let flat = self.buffers[level].as_flattened();
        flat[base..base + LANES]
            .try_into()
            .expect("flat buffer slot")
    }

    /// Lane accounting for two-operand FP ops; equivalent to
    /// [`Executor::count_fp`] over `[a, b]` without the slice walk.
    #[inline]
    fn tally2(&mut self, a: &[f64; LANES], b: &[f64; LANES]) {
        self.stats.fp_lane_ops += LANES as u64;
        let mut trivial = 0u64;
        for l in 0..LANES {
            trivial += u64::from(is_trivial_v1(a[l]) || is_trivial_v1(b[l]));
        }
        self.stats.trivial_lane_ops += trivial;
    }

    /// Lane accounting for three-operand FP ops (FMA).
    #[inline]
    fn tally3(&mut self, a: &[f64; LANES], b: &[f64; LANES], c: &[f64; LANES]) {
        self.stats.fp_lane_ops += LANES as u64;
        let mut trivial = 0u64;
        for l in 0..LANES {
            trivial += u64::from(is_trivial_v1(a[l]) || is_trivial_v1(b[l]) || is_trivial_v1(c[l]));
        }
        self.stats.trivial_lane_ops += trivial;
    }

    fn exec_op_baseline(&mut self, op: &MicroOp) {
        match *op {
            MicroOp::Fma { dst, a, b } => {
                let d = self.vload_v1(dst);
                let x = self.vload_v1(a);
                let y = self.vload_v1(b);
                self.tally3(&d, &x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l].mul_add(y[l], d[l]);
                }
                self.vstore_v1(dst, out);
            }
            MicroOp::FmaMem { dst, a, mem } => {
                let d = self.vload_v1(dst);
                let x = self.vload_v1(a);
                let y = self.buf_read_v1(mem.level as usize, self.slot_of(&mem));
                self.tally3(&d, &x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l].mul_add(y[l], d[l]);
                }
                self.vstore_v1(dst, out);
            }
            MicroOp::Mul { dst, a, b } => {
                let x = self.vload_v1(a);
                let y = self.vload_v1(b);
                self.tally2(&x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l] * y[l];
                }
                self.vstore_v1(dst, out);
            }
            MicroOp::MulMem { dst, a, mem } => {
                let x = self.vload_v1(a);
                let y = self.buf_read_v1(mem.level as usize, self.slot_of(&mem));
                self.tally2(&x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l] * y[l];
                }
                self.vstore_v1(dst, out);
            }
            MicroOp::Add { dst, a, b } => {
                let x = self.vload_v1(a);
                let y = self.vload_v1(b);
                self.tally2(&x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l] + y[l];
                }
                self.vstore_v1(dst, out);
            }
            MicroOp::AddMem { dst, a, mem } => {
                let x = self.vload_v1(a);
                let y = self.buf_read_v1(mem.level as usize, self.slot_of(&mem));
                self.tally2(&x, &y);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = x[l] + y[l];
                }
                self.vstore_v1(dst, out);
            }
            MicroOp::Xor { dst, a, b } => {
                let x = self.vload_v1(a);
                let y = self.vload_v1(b);
                let mut out = [0.0; LANES];
                for l in 0..LANES {
                    out[l] = f64::from_bits(x[l].to_bits() ^ y[l].to_bits());
                }
                self.vstore_v1(dst, out);
            }
            MicroOp::Load { dst, mem } => {
                let v = self.buf_read_v1(mem.level as usize, self.slot_of(&mem));
                self.vstore_v1(dst, v);
            }
            MicroOp::Store { src, mem } => {
                let slot = self.slot_of(&mem);
                let v = self.vload_v1(src);
                self.buf_write(mem.level as usize, slot, v);
            }
            MicroOp::SqrtSd { dst, src } => {
                let s = self.ymm[ri(src)][0];
                self.ymm[ri(dst)][0] = s.sqrt();
            }
            MicroOp::MulSd { dst, src } => {
                let s = self.ymm[ri(src)][0];
                let d = self.ymm[ri(dst)][0];
                self.stats.fp_lane_ops += 1;
                if is_trivial(s) || is_trivial(d) {
                    self.stats.trivial_lane_ops += 1;
                }
                self.ymm[ri(dst)][0] = d * s;
            }
            MicroOp::AddSd { dst, src } => {
                let s = self.ymm[ri(src)][0];
                let d = self.ymm[ri(dst)][0];
                self.stats.fp_lane_ops += 1;
                if is_trivial(s) || is_trivial(d) {
                    self.stats.trivial_lane_ops += 1;
                }
                self.ymm[ri(dst)][0] = d + s;
            }
            MicroOp::GpXor { dst, src } => {
                self.gp[dst as usize] ^= self.gp[src as usize];
            }
            MicroOp::GpShl { dst, imm } => {
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_shl(u32::from(imm));
            }
            MicroOp::GpShr { dst, imm } => {
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_shr(u32::from(imm));
            }
            MicroOp::GpAddImm { dst, imm } => {
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_add(imm as i64 as u64);
            }
            MicroOp::GpAdd { dst, src } => {
                let s = self.gp[src as usize];
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_add(s);
            }
            MicroOp::GpMovImm { dst, imm } => {
                self.gp[dst as usize] = imm;
            }
            MicroOp::GpDec { dst } => {
                let d = &mut self.gp[dst as usize];
                *d = d.wrapping_sub(1);
            }
        }
    }

    /// Writes all vector registers in hexadecimal + decimal form — the
    /// `--dump-registers` feature used to verify SIMD correctness in
    /// out-of-spec (overclocked) operation.
    pub fn dump_registers(&self, out: &mut String) {
        format_register_dump(&self.registers(), out);
    }

    /// FNV-1a hash over the full vector state — two correct cores running
    /// the same workload from the same seed must agree (error detection).
    /// Byte order is register-major, lane within register — unchanged
    /// from the historical flat layout, so hashes are stable.
    pub fn state_hash(&self) -> u64 {
        state_hash_of(&self.ymm)
    }

    /// Flips one mantissa/exponent/sign bit — fault injection for the
    /// error-detection tests (simulated silent data corruption).
    pub fn inject_bit_flip(&mut self, reg: usize, lane: usize, bit: u32) {
        let v = &mut self.ymm[reg % 16][lane % LANES];
        *v = f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64)));
        // The vectorized tier re-derives masks on entry, but keep the
        // register's mask coherent for callers inspecting state directly.
        self.ymm_mask[reg % 16] = mask4(&self.ymm[reg % 16]);
    }

    /// True if any register lane has reached a trivial value.
    pub fn any_trivial_register(&self) -> bool {
        self.ymm.iter().flatten().any(|&x| is_trivial(x))
    }
}

/// FNV-1a hash over a vector register file — the free-function form of
/// [`Executor::state_hash`], usable on registers extracted from a
/// [`FunctionalOutcome`] (e.g. after post-run fault injection re-hashes
/// the corrupted file). Byte order is register-major, lane within
/// register — unchanged from the historical flat layout, so hashes are
/// stable across executor generations.
pub fn state_hash_of(regs: &[[f64; LANES]; 16]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for reg in regs {
        for lane in reg {
            for byte in lane.to_bits().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    h
}

/// f64 lanes per 512-bit vector register: the wide tier packs two
/// [`LANES`]-lane execution contexts into one register file (lanes
/// `0..LANES` context A, `LANES..2*LANES` context B).
#[cfg(feature = "wide-lanes")]
pub const WIDE_LANES: usize = 2 * LANES;

/// 8-lane triviality bitmask via one 512-bit compare pair (bit `l` set ⇔
/// lane `l` is ±∞/0/NaN) — same predicate as [`mask4`], one register.
#[cfg(all(
    feature = "wide-lanes",
    target_arch = "x86_64",
    target_feature = "avx512f"
))]
#[inline(always)]
fn mask8(v: &[f64; WIDE_LANES]) -> u8 {
    use std::arch::x86_64::{
        _mm512_abs_pd, _mm512_cmp_pd_mask, _mm512_loadu_pd, _mm512_set1_pd, _mm512_setzero_pd,
        _CMP_EQ_OQ, _CMP_NLT_UQ,
    };
    // SAFETY: this arm only compiles when AVX-512F is statically
    // enabled, and `v` is a valid, readable `[f64; 8]`.
    unsafe {
        let x = _mm512_loadu_pd(v.as_ptr());
        let is_zero = _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(x, _mm512_setzero_pd());
        let not_finite =
            _mm512_cmp_pd_mask::<_CMP_NLT_UQ>(_mm512_abs_pd(x), _mm512_set1_pd(f64::INFINITY));
        is_zero | not_finite
    }
}

/// Portable 8-lane mask for targets without statically-enabled AVX-512:
/// two [`mask4`] halves (each of which still uses the 256-bit intrinsic
/// arm where available) composed nibble-wise.
#[cfg(all(
    feature = "wide-lanes",
    not(all(target_arch = "x86_64", target_feature = "avx512f"))
))]
#[inline(always)]
fn mask8(v: &[f64; WIDE_LANES]) -> u8 {
    let lo: &[f64; LANES] = v[..LANES].try_into().expect("low half");
    let hi: &[f64; LANES] = v[LANES..].try_into().expect("high half");
    mask4(lo) | (mask4(hi) << LANES)
}

/// One memory level's wide functional buffer: each slot holds the two
/// contexts' [`LANES`]-lane values side by side.
#[cfg(feature = "wide-lanes")]
type WideBuffer = Box<[[f64; WIDE_LANES]; BUF_ELEMS]>;

/// 8-lane wide replay tier: two same-kernel execution contexts packed
/// into one `16 × 8` SoA register file, so each micro-op's FP body is a
/// single 512-bit-wide lane loop (one `zmm` operation on AVX-512 hosts,
/// two fused 256-bit halves elsewhere) serving both contexts at once.
///
/// The packing is sound because the two contexts run the *same* decoded
/// kernel and general-purpose state is seed-independent: GP registers
/// start at zero and are only ever updated by GP micro-ops whose inputs
/// are GP state and immediates (no FP→GP data flow exists in
/// [`MicroOp`]), so both contexts compute identical addresses on every
/// instruction and one shared `gp` file + one shared slot computation
/// serves both lane halves. FP lanes never cross the half boundary —
/// every body is element-wise — so each half is bit-identical to the
/// narrow [`Executor`] run it replaces; the exec_parity suite pins this.
///
/// The natural consumer is the §III-D error-detection replay
/// ([`run_functional_pair`]): the two redundant passes of one run become
/// a single wide pass at roughly half the replay cost.
#[cfg(feature = "wide-lanes")]
#[derive(Debug, Clone)]
pub struct WideExecutor {
    /// Packed vector register file: `wymm[N][..LANES]` is context A's
    /// `ymmN`, `wymm[N][LANES..]` context B's.
    wymm: [[f64; WIDE_LANES]; 16],
    /// Shared GP file (identical across contexts; see type docs).
    gp: [u64; 16],
    /// Per-register 8-bit triviality mask: low nibble context A, high
    /// nibble context B.
    wmask: [u8; 16],
    buffers: [WideBuffer; 4],
    buf_mask: [Box<[u8; BUF_ELEMS]>; 4],
    stats_a: ExecStats,
    stats_b: ExecStats,
    scheme: InitScheme,
}

#[cfg(feature = "wide-lanes")]
impl WideExecutor {
    /// Packs two freshly initialized narrow executors — context A from
    /// `seed_a`, context B from `seed_b` — into one wide register file.
    /// Initialization draws are delegated to [`Executor::new`] so the
    /// per-context state (and everything downstream of it) is bitwise
    /// the state a narrow run would start from.
    pub fn new(scheme: InitScheme, seed_a: u64, seed_b: u64) -> WideExecutor {
        let a = Executor::new(scheme, seed_a);
        let b = Executor::new(scheme, seed_b);
        let mut wymm = [[0.0; WIDE_LANES]; 16];
        for (r, reg) in wymm.iter_mut().enumerate() {
            reg[..LANES].copy_from_slice(&a.ymm[r]);
            reg[LANES..].copy_from_slice(&b.ymm[r]);
        }
        let mut buffers: [WideBuffer; 4] = std::array::from_fn(|_| {
            vec![[0.0; WIDE_LANES]; BUF_ELEMS]
                .into_boxed_slice()
                .try_into()
                .expect("BUF_ELEMS wide slots")
        });
        for (lvl, buf) in buffers.iter_mut().enumerate() {
            for (s, slot) in buf.iter_mut().enumerate() {
                slot[..LANES].copy_from_slice(&a.buffers[lvl][s]);
                slot[LANES..].copy_from_slice(&b.buffers[lvl][s]);
            }
        }
        let buf_mask = std::array::from_fn(|_| {
            vec![0u8; BUF_ELEMS]
                .into_boxed_slice()
                .try_into()
                .expect("BUF_ELEMS wide masks")
        });
        WideExecutor {
            wymm,
            gp: [0; 16],
            wmask: [0; 16],
            buffers,
            buf_mask,
            stats_a: ExecStats::default(),
            stats_b: ExecStats::default(),
            scheme,
        }
    }

    /// The initialization scheme in use.
    pub fn scheme(&self) -> InitScheme {
        self.scheme
    }

    /// Per-context statistics so far: `(context A, context B)`.
    pub fn stats_pair(&self) -> (&ExecStats, &ExecStats) {
        (&self.stats_a, &self.stats_b)
    }

    /// Unpacks the wide file into the two contexts' register files.
    pub fn registers_pair(&self) -> ([[f64; LANES]; 16], [[f64; LANES]; 16]) {
        let mut a = [[0.0; LANES]; 16];
        let mut b = [[0.0; LANES]; 16];
        for r in 0..16 {
            a[r].copy_from_slice(&self.wymm[r][..LANES]);
            b[r].copy_from_slice(&self.wymm[r][LANES..]);
        }
        (a, b)
    }

    /// Packages the current state as two per-context
    /// [`FunctionalOutcome`]s — each bitwise what the corresponding
    /// narrow pass would produce.
    pub fn outcome_pair(&self) -> (FunctionalOutcome, FunctionalOutcome) {
        let (a, b) = self.registers_pair();
        (
            FunctionalOutcome {
                stats: self.stats_a,
                state_hash: state_hash_of(&a),
                registers: a,
            },
            FunctionalOutcome {
                stats: self.stats_b,
                state_hash: state_hash_of(&b),
                registers: b,
            },
        )
    }

    /// Flips one bit of one lane in context `ctx` (0 = A, 1 = B) —
    /// fault injection matching [`Executor::inject_bit_flip`] on the
    /// selected context, leaving the other untouched.
    pub fn inject_bit_flip(&mut self, ctx: usize, reg: usize, lane: usize, bit: u32) {
        let l = (ctx & 1) * LANES + lane % LANES;
        let v = &mut self.wymm[reg % 16][l];
        *v = f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64)));
        self.wmask[reg % 16] = mask8(&self.wymm[reg % 16]);
    }

    fn refresh_masks(&mut self) {
        for (r, reg) in self.wymm.iter().enumerate() {
            self.wmask[r] = mask8(reg);
        }
        for (masks, buf) in self.buf_mask.iter_mut().zip(&self.buffers) {
            for (m, slot) in masks.iter_mut().zip(buf.iter()) {
                *m = mask8(slot);
            }
        }
    }

    /// Shared-address slot resolution; identical arithmetic to
    /// [`Executor::slot_fast`] over the shared GP file.
    #[inline(always)]
    fn slot_fast(&self, mem: &MemOp) -> usize {
        let base = self.gp[mem.base as usize];
        let idx = if mem.index_factor > 0 {
            self.gp[mem.index_reg as usize].wrapping_mul(u64::from(mem.index_factor))
        } else {
            0
        };
        let addr = base.wrapping_add(idx).wrapping_add(mem.disp as i64 as u64);
        ((addr / 32) as usize % SLOT_MOD) & (BUF_ELEMS - 1)
    }

    /// Replays a pre-decoded kernel over both packed contexts.
    ///
    /// Structure mirrors [`Executor::run_decoded`] with every FP body
    /// widened from [`LANES`] to [`WIDE_LANES`] elements; per-op FP lane
    /// accounting stays [`LANES`] per *context* (each context is one
    /// narrow run), with triviality popcounts split nibble-wise.
    pub fn run_decoded(&mut self, decoded: &DecodedKernel, iterations: u64) {
        self.refresh_masks();
        let mut fp_ops: u64 = 0;
        let mut trivial_a: u64 = 0;
        let mut trivial_b: u64 = 0;
        for _ in 0..iterations {
            for op in &decoded.ops {
                match *op {
                    MicroOp::Fma { dst, a, b } => {
                        let di = ri(dst);
                        let d = self.wymm[di];
                        let x = self.wymm[ri(a)];
                        let y = self.wymm[ri(b)];
                        let tm = self.wmask[di] | self.wmask[ri(a)] | self.wmask[ri(b)];
                        fp_ops += LANES as u64;
                        trivial_a += u64::from((tm & 0xF).count_ones());
                        trivial_b += u64::from((tm >> LANES).count_ones());
                        let mut out = [0.0; WIDE_LANES];
                        for l in 0..WIDE_LANES {
                            out[l] = x[l].mul_add(y[l], d[l]);
                        }
                        self.wmask[di] = mask8(&out);
                        self.wymm[di] = out;
                    }
                    MicroOp::FmaMem { dst, a, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        let di = ri(dst);
                        let d = self.wymm[di];
                        let x = self.wymm[ri(a)];
                        let y = self.buffers[lvl][slot];
                        let tm = self.wmask[di] | self.wmask[ri(a)] | self.buf_mask[lvl][slot];
                        fp_ops += LANES as u64;
                        trivial_a += u64::from((tm & 0xF).count_ones());
                        trivial_b += u64::from((tm >> LANES).count_ones());
                        let mut out = [0.0; WIDE_LANES];
                        for l in 0..WIDE_LANES {
                            out[l] = x[l].mul_add(y[l], d[l]);
                        }
                        self.wmask[di] = mask8(&out);
                        self.wymm[di] = out;
                    }
                    MicroOp::Mul { dst, a, b } => {
                        let x = self.wymm[ri(a)];
                        let y = self.wymm[ri(b)];
                        let tm = self.wmask[ri(a)] | self.wmask[ri(b)];
                        fp_ops += LANES as u64;
                        trivial_a += u64::from((tm & 0xF).count_ones());
                        trivial_b += u64::from((tm >> LANES).count_ones());
                        let mut out = [0.0; WIDE_LANES];
                        for l in 0..WIDE_LANES {
                            out[l] = x[l] * y[l];
                        }
                        self.wmask[ri(dst)] = mask8(&out);
                        self.wymm[ri(dst)] = out;
                    }
                    MicroOp::MulMem { dst, a, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        let x = self.wymm[ri(a)];
                        let y = self.buffers[lvl][slot];
                        let tm = self.wmask[ri(a)] | self.buf_mask[lvl][slot];
                        fp_ops += LANES as u64;
                        trivial_a += u64::from((tm & 0xF).count_ones());
                        trivial_b += u64::from((tm >> LANES).count_ones());
                        let mut out = [0.0; WIDE_LANES];
                        for l in 0..WIDE_LANES {
                            out[l] = x[l] * y[l];
                        }
                        self.wmask[ri(dst)] = mask8(&out);
                        self.wymm[ri(dst)] = out;
                    }
                    MicroOp::Add { dst, a, b } => {
                        let x = self.wymm[ri(a)];
                        let y = self.wymm[ri(b)];
                        let tm = self.wmask[ri(a)] | self.wmask[ri(b)];
                        fp_ops += LANES as u64;
                        trivial_a += u64::from((tm & 0xF).count_ones());
                        trivial_b += u64::from((tm >> LANES).count_ones());
                        let mut out = [0.0; WIDE_LANES];
                        for l in 0..WIDE_LANES {
                            out[l] = x[l] + y[l];
                        }
                        self.wmask[ri(dst)] = mask8(&out);
                        self.wymm[ri(dst)] = out;
                    }
                    MicroOp::AddMem { dst, a, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        let x = self.wymm[ri(a)];
                        let y = self.buffers[lvl][slot];
                        let tm = self.wmask[ri(a)] | self.buf_mask[lvl][slot];
                        fp_ops += LANES as u64;
                        trivial_a += u64::from((tm & 0xF).count_ones());
                        trivial_b += u64::from((tm >> LANES).count_ones());
                        let mut out = [0.0; WIDE_LANES];
                        for l in 0..WIDE_LANES {
                            out[l] = x[l] + y[l];
                        }
                        self.wmask[ri(dst)] = mask8(&out);
                        self.wymm[ri(dst)] = out;
                    }
                    MicroOp::Xor { dst, a, b } => {
                        let x = self.wymm[ri(a)];
                        let y = self.wymm[ri(b)];
                        let mut out = [0.0; WIDE_LANES];
                        for l in 0..WIDE_LANES {
                            out[l] = f64::from_bits(x[l].to_bits() ^ y[l].to_bits());
                        }
                        self.wmask[ri(dst)] = mask8(&out);
                        self.wymm[ri(dst)] = out;
                    }
                    MicroOp::Load { dst, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        self.wmask[ri(dst)] = self.buf_mask[lvl][slot];
                        self.wymm[ri(dst)] = self.buffers[lvl][slot];
                    }
                    MicroOp::Store { src, mem } => {
                        let slot = self.slot_fast(&mem);
                        let lvl = (mem.level & 3) as usize;
                        self.buf_mask[lvl][slot] = self.wmask[ri(src)];
                        self.buffers[lvl][slot] = self.wymm[ri(src)];
                    }
                    MicroOp::SqrtSd { dst, src } => {
                        let si = ri(src);
                        let di = ri(dst);
                        let out_a = self.wymm[si][0].sqrt();
                        let out_b = self.wymm[si][LANES].sqrt();
                        self.wmask[di] = (self.wmask[di] & !0x11)
                            | u8::from(is_trivial(out_a))
                            | (u8::from(is_trivial(out_b)) << LANES);
                        self.wymm[di][0] = out_a;
                        self.wymm[di][LANES] = out_b;
                    }
                    MicroOp::MulSd { dst, src } => {
                        let si = ri(src);
                        let di = ri(dst);
                        let tm = self.wmask[di] | self.wmask[si];
                        fp_ops += 1;
                        trivial_a += u64::from(tm & 1);
                        trivial_b += u64::from((tm >> LANES) & 1);
                        let out_a = self.wymm[di][0] * self.wymm[si][0];
                        let out_b = self.wymm[di][LANES] * self.wymm[si][LANES];
                        self.wmask[di] = (self.wmask[di] & !0x11)
                            | u8::from(is_trivial(out_a))
                            | (u8::from(is_trivial(out_b)) << LANES);
                        self.wymm[di][0] = out_a;
                        self.wymm[di][LANES] = out_b;
                    }
                    MicroOp::AddSd { dst, src } => {
                        let si = ri(src);
                        let di = ri(dst);
                        let tm = self.wmask[di] | self.wmask[si];
                        fp_ops += 1;
                        trivial_a += u64::from(tm & 1);
                        trivial_b += u64::from((tm >> LANES) & 1);
                        let out_a = self.wymm[di][0] + self.wymm[si][0];
                        let out_b = self.wymm[di][LANES] + self.wymm[si][LANES];
                        self.wmask[di] = (self.wmask[di] & !0x11)
                            | u8::from(is_trivial(out_a))
                            | (u8::from(is_trivial(out_b)) << LANES);
                        self.wymm[di][0] = out_a;
                        self.wymm[di][LANES] = out_b;
                    }
                    MicroOp::GpXor { dst, src } => {
                        self.gp[ri(dst)] ^= self.gp[ri(src)];
                    }
                    MicroOp::GpShl { dst, imm } => {
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_shl(u32::from(imm));
                    }
                    MicroOp::GpShr { dst, imm } => {
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_shr(u32::from(imm));
                    }
                    MicroOp::GpAddImm { dst, imm } => {
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_add(imm as i64 as u64);
                    }
                    MicroOp::GpAdd { dst, src } => {
                        let s = self.gp[ri(src)];
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_add(s);
                    }
                    MicroOp::GpMovImm { dst, imm } => {
                        self.gp[ri(dst)] = imm;
                    }
                    MicroOp::GpDec { dst } => {
                        let d = &mut self.gp[ri(dst)];
                        *d = d.wrapping_sub(1);
                    }
                }
            }
        }
        self.stats_a.iterations += iterations;
        self.stats_a.fp_lane_ops += fp_ops;
        self.stats_a.trivial_lane_ops += trivial_a;
        self.stats_b.iterations += iterations;
        self.stats_b.fp_lane_ops += fp_ops;
        self.stats_b.trivial_lane_ops += trivial_b;
    }
}

/// Runs two complete functional passes of the same kernel — context A
/// from `seed_a`, context B from `seed_b` — as one wide replay, and
/// packages both [`FunctionalOutcome`]s. Each outcome is bitwise what
/// [`run_functional`] would produce for the corresponding seed; the
/// error-detection replay uses this to fold its two redundant passes
/// into one loop over the micro-op table.
#[cfg(feature = "wide-lanes")]
pub fn run_functional_pair(
    decoded: &DecodedKernel,
    scheme: InitScheme,
    seed_a: u64,
    seed_b: u64,
    iterations: u64,
) -> (FunctionalOutcome, FunctionalOutcome) {
    let mut ex = WideExecutor::new(scheme, seed_a, seed_b);
    ex.run_decoded(decoded, iterations);
    ex.outcome_pair()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TaggedInst;
    use fs2_isa::prelude::*;

    /// dst ymm0..=11 accumulate via FMA from multiplier regs 12..=15.
    fn fma_kernel() -> Kernel {
        let mut body = Vec::new();
        for g in 0..12u8 {
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new(g),
                src1: Ymm::new(12 + g % 2),
                src2: RmYmm::Reg(Ymm::new(14 + g % 2)),
            }));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        Kernel::new("fma", body, 12)
    }

    #[test]
    fn v2_init_stays_finite_and_nontrivial() {
        let mut ex = Executor::new(InitScheme::V2Safe, 42);
        ex.run(&fma_kernel(), 10_000);
        assert!(!ex.any_trivial_register());
        assert_eq!(ex.stats().trivial_lane_ops, 0);
        assert!(ex.stats().fp_lane_ops > 0);
        assert!((ex.stats().trivial_fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn v174_bug_accumulates_to_infinity() {
        let mut ex = Executor::new(InitScheme::V174Buggy, 42);
        ex.run(&fma_kernel(), 1_000);
        assert!(ex.any_trivial_register());
        // Once saturated, nearly all subsequent FP work is trivial.
        assert!(
            ex.stats().trivial_fraction() > 0.5,
            "trivial fraction = {}",
            ex.stats().trivial_fraction()
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Executor::new(InitScheme::V2Safe, 7);
        let mut b = Executor::new(InitScheme::V2Safe, 7);
        let k = fma_kernel();
        a.run(&k, 500);
        b.run(&k, 500);
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a.registers(), b.registers());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Executor::new(InitScheme::V2Safe, 1);
        let mut b = Executor::new(InitScheme::V2Safe, 2);
        let k = fma_kernel();
        a.run(&k, 10);
        b.run(&k, 10);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn bit_flip_detected_by_hash() {
        let mut a = Executor::new(InitScheme::V2Safe, 7);
        let mut b = Executor::new(InitScheme::V2Safe, 7);
        let k = fma_kernel();
        a.run(&k, 100);
        b.run(&k, 100);
        assert_eq!(a.state_hash(), b.state_hash());
        b.inject_bit_flip(3, 1, 52);
        assert_ne!(a.state_hash(), b.state_hash());
        // Error is persistent: it stays detectable after more work.
        a.run(&k, 100);
        b.run(&k, 100);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn loads_and_stores_move_values() {
        let body = vec![
            TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rax,
                imm: 64,
            }),
            TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(0),
                    src: Mem::base(Gp::Rax),
                },
                MemLevel::L2,
            ),
            TaggedInst::mem(
                Inst::VmovapdStore {
                    dst: Mem::base_disp(Gp::Rax, 32),
                    src: Ymm::new(0),
                },
                MemLevel::L2,
            ),
            TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(1),
                    src: Mem::base_disp(Gp::Rax, 32),
                },
                MemLevel::L2,
            ),
        ];
        let k = Kernel::new("ls", body, 1);
        let mut ex = Executor::new(InitScheme::V2Safe, 3);
        ex.run(&k, 1);
        assert_eq!(ex.registers()[0], ex.registers()[1]);
    }

    #[test]
    fn gp_alu_semantics() {
        let body = vec![
            TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rax,
                imm: 0x5555_5555_5555_5555,
            }),
            TaggedInst::reg(Inst::ShlImm {
                dst: Gp::Rax,
                imm: 1,
            }),
            TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rbx,
                imm: 0xAAAA_AAAA_AAAA_AAAA,
            }),
            TaggedInst::reg(Inst::XorGp {
                dst: Gp::Rax,
                src: Gp::Rbx,
            }),
        ];
        let k = Kernel::new("alu", body, 1);
        let mut ex = Executor::new(InitScheme::V2Safe, 3);
        ex.run(&k, 1);
        // 0x5555… << 1 = 0xAAAA…AAAA; xor with 0xAAAA… = 0.
        // (State is internal; replay by hand through public effects.)
        // Execute a second kernel that stores rax-dependent address: easier
        // to just verify via a store address — instead check determinism.
        let mut ex2 = Executor::new(InitScheme::V2Safe, 3);
        ex2.run(&k, 1);
        assert_eq!(ex.state_hash(), ex2.state_hash());
    }

    #[test]
    fn register_dump_contains_all_registers() {
        let ex = Executor::new(InitScheme::V2Safe, 11);
        let mut s = String::new();
        ex.dump_registers(&mut s);
        for i in 0..16 {
            assert!(s.contains(&format!("ymm{i}")), "missing ymm{i} in dump");
        }
        assert_eq!(s.lines().count(), 16);
    }

    #[test]
    fn decoded_matches_interpreted_bit_for_bit() {
        // The lane-vectorized fast path must be indistinguishable from
        // the reference interpreter: same registers, buffers, stats, hash.
        let k = fma_kernel();
        for seed in [1u64, 7, 42] {
            let mut fast = Executor::new(InitScheme::V2Safe, seed);
            let mut slow = Executor::new(InitScheme::V2Safe, seed);
            fast.run(&k, 500);
            slow.run_interpreted(&k, 500);
            assert_eq!(fast.state_hash(), slow.state_hash());
            assert_eq!(fast.registers(), slow.registers());
            assert_eq!(fast.stats(), slow.stats());
        }
    }

    #[test]
    fn all_three_tiers_agree_bit_for_bit() {
        let k = fma_kernel();
        let d = DecodedKernel::new(&k);
        for scheme in [InitScheme::V2Safe, InitScheme::V174Buggy] {
            let mut soa = Executor::new(scheme, 9);
            let mut base = Executor::new(scheme, 9);
            let mut interp = Executor::new(scheme, 9);
            soa.run_decoded(&d, 400);
            base.run_predecoded(&d, 400);
            interp.run_interpreted(&k, 400);
            assert_eq!(soa.state_hash(), base.state_hash());
            assert_eq!(soa.state_hash(), interp.state_hash());
            assert_eq!(soa.stats(), base.stats());
            assert_eq!(soa.stats(), interp.stats());
            assert_eq!(soa.registers(), interp.registers());
        }
    }

    #[test]
    fn decoded_matches_interpreted_with_memory_ops() {
        let body = vec![
            TaggedInst::reg(Inst::MovImm64 {
                dst: Gp::Rax,
                imm: 64,
            }),
            TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(0),
                    src: Mem::base(Gp::Rax),
                },
                MemLevel::L1,
            ),
            TaggedInst::mem(
                Inst::Vfmadd231pd {
                    dst: Ymm::new(1),
                    src1: Ymm::new(0),
                    src2: RmYmm::Mem(Mem::base_disp(Gp::Rax, 32)),
                },
                MemLevel::L2,
            ),
            TaggedInst::mem(
                Inst::VmovapdStore {
                    dst: Mem::base_disp(Gp::Rax, 96),
                    src: Ymm::new(1),
                },
                MemLevel::Ram,
            ),
            TaggedInst::reg(Inst::AddImm {
                dst: Gp::Rax,
                imm: 32,
            }),
            TaggedInst::reg(Inst::Dec(Gp::Rdi)),
            TaggedInst::reg(Inst::Jnz { rel: 0 }),
        ];
        let k = Kernel::new("memmix", body, 1);
        let mut fast = Executor::new(InitScheme::V2Safe, 9);
        let mut slow = Executor::new(InitScheme::V2Safe, 9);
        fast.run(&k, 300);
        slow.run_interpreted(&k, 300);
        assert_eq!(fast.state_hash(), slow.state_hash());
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn decoded_kernel_drops_inert_instructions() {
        let k = fma_kernel(); // 12 FMAs + dec + jnz
        let d = DecodedKernel::new(&k);
        assert_eq!(d.len(), 13); // jnz dropped, dec kept
        assert!(!d.is_empty());
    }

    #[test]
    fn decoded_kernel_reuse_across_runs() {
        let k = fma_kernel();
        let d = DecodedKernel::new(&k);
        let mut a = Executor::new(InitScheme::V2Safe, 5);
        let mut b = Executor::new(InitScheme::V2Safe, 5);
        a.run_decoded(&d, 100);
        a.run_decoded(&d, 100);
        b.run(&k, 200);
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn functional_outcome_is_a_pure_summary() {
        let k = fma_kernel();
        let d = DecodedKernel::new(&k);
        let via_fn = run_functional(&d, InitScheme::V2Safe, 5, 200);
        let mut ex = Executor::new(InitScheme::V2Safe, 5);
        ex.run_decoded(&d, 200);
        assert_eq!(via_fn, ex.outcome());
        assert_eq!(via_fn.state_hash, ex.state_hash());
        let mut dump = String::new();
        ex.dump_registers(&mut dump);
        assert_eq!(via_fn.register_dump(), dump);
    }

    #[test]
    fn sqrt_loop_converges_to_one() {
        // Repeated sqrtsd drives any positive value toward 1.0 — the
        // classic low-power loop has stable, boring data.
        let body = vec![TaggedInst::reg(Inst::Sqrtsd {
            dst: Xmm::new(0),
            src: Xmm::new(0),
        })];
        let k = Kernel::new("sqrt", body, 1);
        let mut ex = Executor::new(InitScheme::V2Safe, 5);
        ex.run(&k, 200);
        let v = ex.registers()[0][0];
        assert!((v - 1.0).abs() < 1e-9, "sqrt fixpoint = {v}");
    }
}
