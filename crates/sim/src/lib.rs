//! # fs2-sim — analytic processor simulator
//!
//! The paper evaluates FIRESTARTER 2 on physical AMD Rome and Intel
//! Haswell nodes. This crate is the reproduction's hardware substitute: a
//! deterministic, steady-state model of exactly the mechanisms the paper's
//! experiments exercise (see DESIGN.md §2):
//!
//! * [`kernel`] — the executable form of a generated payload: the
//!   instruction sequence of one loop iteration plus which memory level
//!   each access targets.
//! * [`core`] — per-core steady-state pipeline model: front-end fetch
//!   source and width, back-end port pressure, per-level memory
//!   throughput with MLP/latency limits and shared-resource contention.
//!   Produces cycles-per-iteration, IPC and the bottleneck.
//! * [`exec`] — functional (value-level) executor over real `f64` register
//!   state. Tracks operand triviality (±∞, 0, NaN) for the
//!   data-dependent-power effect of §III-D, and provides register dump +
//!   error-check hashing.
//! * [`events`] — hardware-event counters equivalent to those the paper
//!   reads (instructions, cycles, µops by fetch source, data-cache
//!   accesses).
//! * [`system`] — whole-node symmetric execution: every active core runs
//!   the same kernel; shared L3/DRAM bandwidth is divided among them.
//! * [`clock`] — simulated nanosecond clock used by the runner and the
//!   metric infrastructure.
//!
//! The model is *analytic*: one evaluation is O(kernel length), which is
//! what makes embedding it inside an NSGA-II loop with thousands of
//! candidate evaluations practical.

pub mod clock;
pub mod core;
pub mod events;
pub mod exec;
pub mod kernel;
pub mod system;

pub use crate::core::{Bottleneck, CoreSteadyState};
pub use clock::SimClock;
pub use events::HwEvents;
pub use exec::{
    format_register_dump, run_functional, state_hash_of, DecodedKernel, ExecStats, Executor,
    FunctionalOutcome, InitScheme, LANES,
};
#[cfg(feature = "wide-lanes")]
pub use exec::{run_functional_pair, WideExecutor, WIDE_LANES};
pub use kernel::{Kernel, TaggedInst};
pub use system::{NodeSteadyState, SystemSim};
