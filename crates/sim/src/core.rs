//! Per-core steady-state pipeline model.
//!
//! One evaluation answers: *for this kernel, at this core frequency, with
//! this many neighbours sharing L3/DRAM — how many cycles does one loop
//! iteration take, and which resource binds?* All of the paper's
//! performance phenomena reduce to movements of that binding constraint:
//!
//! * Fig. 8: the binding constraint moves from µop-cache width to decoder
//!   width to L2 code fetch as the unroll factor grows.
//! * Fig. 9: adding slower memory levels moves it from the FP pipes to
//!   per-level sustainable bandwidth, reducing IPC from 4.0 to ~3.4.
//! * Fig. 12: DRAM latency is fixed in nanoseconds, so the per-cycle
//!   sustainable RAM throughput shrinks as frequency rises — the same `M`
//!   that is optimal at 1500 MHz over-subscribes memory at 2500 MHz.

use crate::kernel::Kernel;
use fs2_arch::pipeline::FetchSource;
use fs2_arch::{MemLevel, Sku};
use std::fmt;

/// How many cores are active (competing for shared resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSet {
    /// Active cores per CCX (L3 sharing domain).
    pub cores_per_ccx: u32,
    /// Active cores per socket (DRAM sharing domain).
    pub cores_per_socket: u32,
}

impl ActiveSet {
    /// Every core of the SKU active (the stress-test default).
    pub fn full(sku: &Sku) -> ActiveSet {
        ActiveSet {
            cores_per_ccx: sku.topology.cores_per_ccx,
            cores_per_socket: sku.topology.cores_per_socket(),
        }
    }

    /// A single active core.
    pub fn solo() -> ActiveSet {
        ActiveSet {
            cores_per_ccx: 1,
            cores_per_socket: 1,
        }
    }

    fn in_domain(&self, level: MemLevel) -> u32 {
        match level {
            MemLevel::L1 | MemLevel::L2 => 1,
            MemLevel::L3 => self.cores_per_ccx,
            MemLevel::Ram => self.cores_per_socket,
        }
    }
}

/// The resource that bounds steady-state throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bottleneck {
    /// Instruction delivery (with the structure that serves the loop).
    FrontEnd(FetchSource),
    /// FP pipe pressure (the desired state for a stress test).
    FpPipes,
    /// Scalar ALU pipes.
    Alu,
    /// Load-issue ports.
    LoadPorts,
    /// Store-issue port.
    StorePort,
    /// Address-generation units.
    Agu,
    /// Retirement width.
    Retire,
    /// The unpipelined square-root unit (Fig. 2's low-power loop).
    Sqrt,
    /// Sustainable throughput of a memory level.
    Mem(MemLevel),
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::FrontEnd(s) => write!(f, "front-end ({})", s.name()),
            Bottleneck::FpPipes => f.write_str("fp-pipes"),
            Bottleneck::Alu => f.write_str("alu"),
            Bottleneck::LoadPorts => f.write_str("load-ports"),
            Bottleneck::StorePort => f.write_str("store-port"),
            Bottleneck::Agu => f.write_str("agu"),
            Bottleneck::Retire => f.write_str("retire"),
            Bottleneck::Sqrt => f.write_str("sqrt-unit"),
            Bottleneck::Mem(l) => write!(f, "memory ({l})"),
        }
    }
}

/// Steady-state result for one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSteadyState {
    /// Core frequency used for the evaluation, MHz.
    pub freq_mhz: f64,
    /// Cycles per loop iteration.
    pub cycles_per_iter: f64,
    /// Which structure delivers the loop's instructions.
    pub fetch_source: FetchSource,
    /// The binding resource.
    pub bottleneck: Bottleneck,
    /// Compute-side (front-end + ports) cycles per iteration.
    pub compute_cycles: f64,
    /// Per-level memory cycles per iteration, indexed by `MemLevel::idx`.
    pub mem_cycles: [f64; 4],
    /// Stall cycles per iteration: time the core waits on memory beyond
    /// what overlaps with compute.
    pub stall_cycles: f64,
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// Fused-domain µops per cycle.
    pub upc: f64,
    /// Data-cache accesses per cycle (the Fig. 9 companion metric).
    pub dc_accesses_per_cycle: f64,
    /// FP-pipe utilization (0..=1): fraction of FMA-pipe capacity used.
    pub fp_utilization: f64,
    /// Iterations per second at `freq_mhz`.
    pub iters_per_sec: f64,
}

impl CoreSteadyState {
    /// Instructions per second.
    pub fn insts_per_sec(&self, kernel: &Kernel) -> f64 {
        self.iters_per_sec * kernel.meta.insts as f64
    }
}

/// Evaluates the steady state of `kernel` on one core of `sku`.
pub fn steady_state(
    sku: &Sku,
    kernel: &Kernel,
    freq_mhz: f64,
    active: ActiveSet,
) -> CoreSteadyState {
    assert!(freq_mhz > 0.0, "frequency must be positive");
    let m = &kernel.meta;
    let fe_spec = &sku.frontend;
    let be = &sku.backend;

    let source = fe_spec.fetch_source(m.uops, kernel.code_bytes, sku.l1i_bytes);
    let fe_cycles = fe_spec.cycles_per_iteration(source, m.uops, kernel.code_bytes);

    // Back-end port pressure (cycles per iteration per resource).
    let fma = m.fp_fma as f64 / f64::from(be.fp_fma_pipes);
    let fadd = m.fp_add as f64 / f64::from(be.fp_add_pipes);
    let fp_total = (m.fp_fma + m.fp_add + m.fp_any) as f64 / f64::from(be.fp_total_pipes());
    let fp = fma.max(fadd).max(fp_total);
    let alu = m.alu as f64 / f64::from(be.alu_pipes);
    let loads = m.load as f64 / f64::from(be.loads_per_cycle);
    let stores = m.store as f64 / f64::from(be.stores_per_cycle);
    let agu = (m.load + m.store) as f64 / f64::from(be.agu_pipes);
    let retire = m.uops as f64 / f64::from(be.retire_width);
    let sqrt = m.sqrt as f64 * be.sqrtsd_rtpt_cycles;

    let mut candidates: Vec<(f64, Bottleneck)> = vec![
        (fe_cycles, Bottleneck::FrontEnd(source)),
        (fp, Bottleneck::FpPipes),
        (alu, Bottleneck::Alu),
        (loads, Bottleneck::LoadPorts),
        (stores, Bottleneck::StorePort),
        (agu, Bottleneck::Agu),
        (retire, Bottleneck::Retire),
        (sqrt, Bottleneck::Sqrt),
    ];
    let compute_cycles = candidates.iter().map(|(c, _)| *c).fold(0.0f64, f64::max);

    // Memory-level sustainable-throughput constraints.
    let mut mem_cycles = [0.0f64; 4];
    for level in MemLevel::ALL {
        let bytes = kernel.traffic.bytes(level);
        if bytes == 0 {
            continue;
        }
        let spec = sku.mem_level(level);
        let bw = spec.sustainable_bytes_per_cycle(freq_mhz, active.in_domain(level));
        let cycles = bytes as f64 / bw.max(1e-9);
        mem_cycles[level.idx()] = cycles;
        candidates.push((cycles, Bottleneck::Mem(level)));
    }

    // Cross-level interference: concurrent access streams to several
    // levels share MSHRs, TLB ports and DRAM banks, so they overlap only
    // partially. A single-level stream is unaffected; each additional
    // stream's demand bleeds through at `CROSS_LEVEL_OVERLAP` — this is
    // why the measured optimum of Fig. 9 stalls slightly (IPC ≈ 3.4)
    // instead of sitting exactly at the no-stall knee.
    const CROSS_LEVEL_OVERLAP: f64 = 0.35;
    let mem_sum: f64 = mem_cycles.iter().sum();
    let mem_max = mem_cycles.iter().copied().fold(0.0f64, f64::max);
    if mem_sum > mem_max && mem_max > 0.0 {
        let worst = MemLevel::ALL
            .into_iter()
            .max_by(|a, b| mem_cycles[a.idx()].total_cmp(&mem_cycles[b.idx()]))
            .expect("non-empty level list");
        let combined = mem_max + CROSS_LEVEL_OVERLAP * (mem_sum - mem_max);
        candidates.push((combined, Bottleneck::Mem(worst)));
    }

    let (cycles_per_iter, bottleneck) = candidates
        .into_iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty candidate list");
    let cycles_per_iter = cycles_per_iter.max(1e-9);

    let stall_cycles = (cycles_per_iter - compute_cycles).max(0.0);
    let ipc = m.insts as f64 / cycles_per_iter;
    let upc = m.uops as f64 / cycles_per_iter;
    let dc_accesses_per_cycle = kernel.traffic.total_accesses() as f64 / cycles_per_iter;
    let fp_utilization = if m.fp_fma + m.fp_add + m.fp_any == 0 {
        0.0
    } else {
        (fp / cycles_per_iter).min(1.0)
    };
    let iters_per_sec = freq_mhz * 1e6 / cycles_per_iter;

    CoreSteadyState {
        freq_mhz,
        cycles_per_iter,
        fetch_source: source,
        bottleneck,
        compute_cycles,
        mem_cycles,
        stall_cycles,
        ipc,
        upc,
        dc_accesses_per_cycle,
        fp_utilization,
        iters_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TaggedInst;
    use fs2_isa::prelude::*;

    fn fma_reg(dst: u8) -> TaggedInst {
        TaggedInst::reg(Inst::Vfmadd231pd {
            dst: Ymm::new(dst),
            src1: Ymm::new(12),
            src2: RmYmm::Reg(Ymm::new(13)),
        })
    }

    fn alu_xor() -> TaggedInst {
        TaggedInst::reg(Inst::XorGp {
            dst: Gp::Rax,
            src: Gp::Rbx,
        })
    }

    fn load_l1(dst: u8) -> TaggedInst {
        TaggedInst::mem(
            Inst::VmovapdLoad {
                dst: Ymm::new(dst),
                src: Mem::base(Gp::Rax),
            },
            fs2_arch::MemLevel::L1,
        )
    }

    /// The Haswell instruction mix the paper uses on Zen 2 (§IV-B): two
    /// FMA + two ALU per group, four instructions per cycle.
    fn haswell_mix_kernel(groups: u32) -> Kernel {
        let mut body = Vec::new();
        for g in 0..groups {
            body.push(fma_reg((g % 10) as u8));
            body.push(alu_xor());
            body.push(fma_reg(((g + 5) % 10) as u8));
            body.push(TaggedInst::reg(Inst::ShlImm {
                dst: Gp::Rdx,
                imm: 4,
            }));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        Kernel::new("haswell-mix", body, groups)
    }

    fn rome() -> Sku {
        Sku::amd_epyc_7502()
    }

    #[test]
    fn fma_mix_is_fp_bound_at_four_ipc() {
        let sku = rome();
        let k = haswell_mix_kernel(64);
        let ss = steady_state(&sku, &k, 2500.0, ActiveSet::full(&sku));
        // 2 FMA / 2 pipes = 1 cycle per group; 4 insts per group ⇒ IPC ≈ 4.
        assert_eq!(ss.bottleneck, Bottleneck::FpPipes);
        assert!(ss.ipc > 3.8 && ss.ipc <= 4.1, "ipc = {}", ss.ipc);
        assert!(ss.fp_utilization > 0.99);
    }

    #[test]
    fn small_loop_served_from_opcache_large_from_decoder() {
        let sku = rome();
        let small = haswell_mix_kernel(64); // 258 µops < 4096
        let ss = steady_state(&sku, &small, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.fetch_source, FetchSource::OpCache);

        let large = haswell_mix_kernel(1100); // 4402 µops > 4096
        let ss = steady_state(&sku, &large, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.fetch_source, FetchSource::L1i);

        // ~2100 groups × ~16 B/group ≈ 34 KB > 32 KiB L1I.
        let huge = haswell_mix_kernel(2200);
        let ss = steady_state(&sku, &huge, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.fetch_source, FetchSource::L2);
    }

    #[test]
    fn l1_loads_do_not_break_fp_bound() {
        // Fig. 8's L1_L:1 workload: streaming loads are absorbed.
        let sku = rome();
        let mut body = Vec::new();
        for g in 0..64u8 {
            body.push(fma_reg(g % 10));
            body.push(alu_xor());
            body.push(fma_reg((g + 5) % 10));
            body.push(load_l1(10));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        let k = Kernel::new("l1-load", body, 64);
        let ss = steady_state(&sku, &k, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.bottleneck, Bottleneck::FpPipes);
        assert!(ss.ipc > 3.8);
    }

    #[test]
    fn ram_heavy_kernel_is_memory_bound_and_stalls() {
        let sku = rome();
        let mut body = Vec::new();
        for g in 0..64u8 {
            body.push(fma_reg(g % 10));
            body.push(TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(11),
                    src: Mem::base(Gp::Rbx),
                },
                fs2_arch::MemLevel::Ram,
            ));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        let k = Kernel::new("ram-heavy", body, 64);
        let ss = steady_state(&sku, &k, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.bottleneck, Bottleneck::Mem(fs2_arch::MemLevel::Ram));
        assert!(ss.stall_cycles > 0.0);
        assert!(ss.ipc < 2.0, "ipc = {}", ss.ipc);
    }

    #[test]
    fn ram_costs_more_cycles_at_higher_frequency() {
        // The Fig. 12 mechanism: same kernel, same traffic, but the
        // per-cycle DRAM share shrinks at 2500 MHz vs 1500 MHz.
        let sku = rome();
        let mut body = Vec::new();
        for g in 0..64u8 {
            body.push(fma_reg(g % 10));
            body.push(TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(11),
                    src: Mem::base(Gp::Rbx),
                },
                fs2_arch::MemLevel::Ram,
            ));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        let k = Kernel::new("ram", body, 64);
        let slow = steady_state(&sku, &k, 1500.0, ActiveSet::full(&sku));
        let fast = steady_state(&sku, &k, 2500.0, ActiveSet::full(&sku));
        assert!(fast.cycles_per_iter > slow.cycles_per_iter);
        // IPC is higher at the lower clock (fewer stall cycles per access).
        assert!(slow.ipc > fast.ipc);
        // Throughput in time is capped by DRAM either way.
        let slow_ips = slow.iters_per_sec;
        let fast_ips = fast.iters_per_sec;
        assert!((slow_ips - fast_ips).abs() / slow_ips < 0.05);
    }

    #[test]
    fn sqrt_loop_is_sqrt_bound_with_low_ipc() {
        let sku = rome();
        let mut body = Vec::new();
        for _ in 0..16 {
            body.push(TaggedInst::reg(Inst::Sqrtsd {
                dst: Xmm::new(0),
                src: Xmm::new(0),
            }));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        let k = Kernel::new("sqrt", body, 16);
        let ss = steady_state(&sku, &k, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.bottleneck, Bottleneck::Sqrt);
        assert!(ss.ipc < 0.5, "ipc = {}", ss.ipc);
    }

    #[test]
    fn contention_reduces_shared_level_throughput() {
        let sku = rome();
        let mut body = Vec::new();
        for g in 0..32u8 {
            body.push(fma_reg(g % 10));
            body.push(TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(11),
                    src: Mem::base(Gp::Rbx),
                },
                fs2_arch::MemLevel::Ram,
            ));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        let k = Kernel::new("ram", body, 32);
        let solo = steady_state(&sku, &k, 2500.0, ActiveSet::solo());
        let full = steady_state(&sku, &k, 2500.0, ActiveSet::full(&sku));
        assert!(full.cycles_per_iter > solo.cycles_per_iter * 2.0);
    }

    #[test]
    fn dc_access_rate_counts_loads_and_stores() {
        let sku = rome();
        let mut body = Vec::new();
        for _ in 0..16 {
            body.push(load_l1(1));
            body.push(TaggedInst::mem(
                Inst::VmovapdStore {
                    dst: Mem::base(Gp::Rax),
                    src: Ymm::new(1),
                },
                fs2_arch::MemLevel::L1,
            ));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        let k = Kernel::new("ls", body, 16);
        let ss = steady_state(&sku, &k, 2500.0, ActiveSet::full(&sku));
        assert!(ss.dc_accesses_per_cycle > 0.5);
        // 32 accesses per iteration.
        let expected = 32.0 / ss.cycles_per_iter;
        assert!((ss.dc_accesses_per_cycle - expected).abs() < 1e-9);
    }
}
