//! Executable payload representation.
//!
//! A [`Kernel`] is one iteration of the generated inner loop: the
//! instruction sequence plus, for every memory-touching instruction, the
//! hierarchy level its access stream targets. The payload builder in
//! `fs2-core` knows the level (it sized the buffer the address walk stays
//! inside); the simulator only needs the resulting per-level traffic.

use fs2_arch::MemLevel;
use fs2_isa::encoder::sequence_len;
use fs2_isa::meta::{sequence_meta, SeqMeta};
use fs2_isa::Inst;

/// An instruction plus the memory level its (optional) access targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaggedInst {
    pub inst: Inst,
    /// `None` for register-only instructions; `Some(level)` for loads,
    /// stores and prefetches.
    pub level: Option<MemLevel>,
}

impl TaggedInst {
    pub fn reg(inst: Inst) -> TaggedInst {
        TaggedInst { inst, level: None }
    }

    pub fn mem(inst: Inst, level: MemLevel) -> TaggedInst {
        TaggedInst {
            inst,
            level: Some(level),
        }
    }
}

/// Per-level traffic of one loop iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelTraffic {
    /// Bytes read per iteration, indexed by [`MemLevel::idx`].
    pub load_bytes: [u64; 4],
    /// Bytes written per iteration.
    pub store_bytes: [u64; 4],
    /// Bytes prefetched per iteration.
    pub prefetch_bytes: [u64; 4],
    /// Number of load/store instructions per iteration (data-cache access
    /// count — the Fig. 9 access-rate metric), indexed by level.
    pub accesses: [u64; 4],
}

impl LevelTraffic {
    /// Total bytes hitting `level` per iteration.
    pub fn bytes(&self, level: MemLevel) -> u64 {
        let i = level.idx();
        self.load_bytes[i] + self.store_bytes[i] + self.prefetch_bytes[i]
    }

    /// Total data-cache accesses (all levels).
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }
}

/// One iteration of a generated stress loop, ready for simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Human-readable workload description (e.g. the group string).
    pub name: String,
    /// The loop body, including the `dec`/`jnz` tail.
    pub body: Vec<TaggedInst>,
    /// Aggregate instruction metadata for one iteration.
    pub meta: SeqMeta,
    /// Encoded size of the loop body in bytes (decides the fetch source).
    pub code_bytes: u64,
    /// Per-level memory traffic of one iteration.
    pub traffic: LevelTraffic,
    /// Number of instruction-set groups unrolled into this iteration
    /// (the paper's `u`).
    pub unrolled_groups: u32,
}

impl Kernel {
    /// Builds a kernel from a tagged instruction sequence, deriving all
    /// aggregate properties. Panics if a memory-touching instruction has
    /// no level tag (a payload-builder bug).
    pub fn new(name: impl Into<String>, body: Vec<TaggedInst>, unrolled_groups: u32) -> Kernel {
        let insts: Vec<Inst> = body.iter().map(|t| t.inst).collect();
        let meta = sequence_meta(&insts);
        let code_bytes = sequence_len(&insts) as u64;
        let mut traffic = LevelTraffic::default();
        for t in &body {
            let m = fs2_isa::meta::meta(&t.inst);
            if m.mem_bytes == 0 {
                continue;
            }
            let level = t
                .level
                .unwrap_or_else(|| panic!("memory instruction `{}` lacks a level tag", t.inst));
            let i = level.idx();
            let bytes = u64::from(m.mem_bytes);
            if t.inst.is_prefetch() {
                traffic.prefetch_bytes[i] += bytes;
            } else if t.inst.is_store() {
                traffic.store_bytes[i] += bytes;
                traffic.accesses[i] += 1;
            } else {
                traffic.load_bytes[i] += bytes;
                traffic.accesses[i] += 1;
            }
        }
        Kernel {
            name: name.into(),
            body,
            meta,
            code_bytes,
            traffic,
            unrolled_groups,
        }
    }

    /// Fused-domain µops per iteration.
    pub fn uops(&self) -> u64 {
        self.meta.uops
    }

    /// Instructions per iteration.
    pub fn insts(&self) -> u64 {
        self.meta.insts
    }

    /// The raw instruction stream of one iteration.
    pub fn insts_iter(&self) -> impl Iterator<Item = &Inst> {
        self.body.iter().map(|t| &t.inst)
    }

    /// Encodes the loop body to machine code (the AsmJit-equivalent
    /// output; see `fs2-core::payload` for the full function with
    /// prologue/epilogue).
    pub fn encode(&self) -> Vec<u8> {
        let insts: Vec<Inst> = self.insts_iter().copied().collect();
        fs2_isa::encoder::encode_sequence(&insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs2_isa::prelude::*;

    fn fma(dst: u8) -> Inst {
        Inst::Vfmadd231pd {
            dst: Ymm::new(dst),
            src1: Ymm::new(14),
            src2: RmYmm::Reg(Ymm::new(15)),
        }
    }

    #[test]
    fn kernel_aggregates_traffic_by_level() {
        let body = vec![
            TaggedInst::reg(fma(0)),
            TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(1),
                    src: Mem::base(Gp::Rax),
                },
                MemLevel::L1,
            ),
            TaggedInst::mem(
                Inst::VmovapdStore {
                    dst: Mem::base(Gp::Rax),
                    src: Ymm::new(1),
                },
                MemLevel::L1,
            ),
            TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(2),
                    src: Mem::base(Gp::Rbx),
                },
                MemLevel::Ram,
            ),
            TaggedInst::mem(
                Inst::Prefetch {
                    hint: PrefetchHint::T2,
                    mem: Mem::base(Gp::Rcx),
                },
                MemLevel::Ram,
            ),
            TaggedInst::reg(Inst::Dec(Gp::Rdi)),
            TaggedInst::reg(Inst::Jnz { rel: 0 }),
        ];
        let k = Kernel::new("test", body, 1);
        assert_eq!(k.traffic.load_bytes[MemLevel::L1.idx()], 32);
        assert_eq!(k.traffic.store_bytes[MemLevel::L1.idx()], 32);
        assert_eq!(k.traffic.load_bytes[MemLevel::Ram.idx()], 32);
        assert_eq!(k.traffic.prefetch_bytes[MemLevel::Ram.idx()], 64);
        assert_eq!(k.traffic.bytes(MemLevel::L1), 64);
        assert_eq!(k.traffic.bytes(MemLevel::Ram), 96);
        assert_eq!(k.traffic.bytes(MemLevel::L2), 0);
        // Prefetches do not count as data-cache accesses.
        assert_eq!(k.traffic.accesses[MemLevel::Ram.idx()], 1);
        assert_eq!(k.traffic.total_accesses(), 3);
        assert_eq!(k.insts(), 7);
        assert!(k.code_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "lacks a level tag")]
    fn untagged_memory_instruction_panics() {
        let body = vec![TaggedInst::reg(Inst::VmovapdLoad {
            dst: Ymm::new(0),
            src: Mem::base(Gp::Rax),
        })];
        let _ = Kernel::new("bad", body, 1);
    }

    #[test]
    fn encode_matches_code_bytes() {
        let body = vec![
            TaggedInst::reg(fma(0)),
            TaggedInst::reg(Inst::Dec(Gp::Rdi)),
            TaggedInst::reg(Inst::Jnz { rel: -14 }),
        ];
        let k = Kernel::new("enc", body, 1);
        assert_eq!(k.encode().len() as u64, k.code_bytes);
    }
}
