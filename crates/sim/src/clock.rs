//! Simulated wall-clock time.
//!
//! Everything in the reproduction runs against simulated time: the runner
//! "executes" a workload for `-t` seconds by advancing this clock, metric
//! sources are sampled on its timeline (the LMG95 power meter samples at
//! 20 Sa/s), and the tuning traces of Fig. 6/7 are series over it. Using
//! simulated time makes a 240 s preheat cost microseconds of host time and
//! keeps every experiment bit-for-bit reproducible.

/// A monotonically advancing simulated clock with nanosecond resolution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    now_ns: f64,
}

impl SimClock {
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns * 1e-9
    }

    /// Advances the clock. Panics on negative deltas (time is monotonic).
    pub fn advance_ns(&mut self, delta_ns: f64) {
        assert!(delta_ns >= 0.0, "clock cannot go backwards");
        self.now_ns += delta_ns;
    }

    /// Advances the clock by seconds.
    pub fn advance_secs(&mut self, delta_s: f64) {
        self.advance_ns(delta_s * 1e9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ns(), 0.0);
        c.advance_ns(1500.0);
        assert_eq!(c.now_ns(), 1500.0);
        c.advance_secs(2.0);
        assert!((c.now_secs() - 2.0000015).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_advance_panics() {
        let mut c = SimClock::new();
        c.advance_ns(-1.0);
    }
}
