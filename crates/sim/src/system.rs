//! Whole-node simulation: symmetric multi-core execution.
//!
//! FIRESTARTER runs the identical loop on every hardware thread, so the
//! node model is symmetric: evaluate one core under full contention and
//! scale. Shared-resource division (L3 per CCX, DRAM per socket) happens
//! inside the per-core model via [`ActiveSet`].

use crate::core::{steady_state, ActiveSet, CoreSteadyState};
use crate::events::HwEvents;
use crate::kernel::Kernel;
use fs2_arch::{MemLevel, Sku};

/// Node-level steady state for a kernel at a frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSteadyState {
    /// Per-core result (all active cores are identical).
    pub core: CoreSteadyState,
    /// Number of active physical cores.
    pub active_cores: u32,
    /// Node-aggregate retired instructions per second.
    pub node_insts_per_sec: f64,
    /// Node-aggregate loop iterations per second.
    pub node_iters_per_sec: f64,
    /// Node-aggregate double-precision FLOP/s.
    pub node_flops_per_sec: f64,
    /// Node-aggregate bytes/s served by each memory level
    /// (indexed by [`MemLevel::idx`]); drives the per-access energy model.
    pub node_level_bytes_per_sec: [f64; 4],
    /// Node-aggregate data-cache accesses per second.
    pub node_dc_accesses_per_sec: f64,
}

/// Simulator for one node of a given SKU.
#[derive(Debug, Clone)]
pub struct SystemSim {
    sku: Sku,
}

impl SystemSim {
    pub fn new(sku: Sku) -> SystemSim {
        SystemSim { sku }
    }

    pub fn sku(&self) -> &Sku {
        &self.sku
    }

    fn active_set(&self, active_cores: u32) -> ActiveSet {
        let total = self.sku.topology.total_cores();
        let active = active_cores.min(total).max(1);
        // Active cores spread evenly over sockets and CCXs (the runner
        // pins one worker per core in machine order; for the symmetric
        // full-load case this is exact).
        let frac = f64::from(active) / f64::from(total);
        let per_ccx = (f64::from(self.sku.topology.cores_per_ccx) * frac).ceil() as u32;
        let per_socket = (f64::from(self.sku.topology.cores_per_socket()) * frac).ceil() as u32;
        ActiveSet {
            cores_per_ccx: per_ccx.max(1),
            cores_per_socket: per_socket.max(1),
        }
    }

    /// Steady-state evaluation with `active_cores` running the kernel
    /// (defaults to all cores when `None`).
    pub fn evaluate(
        &self,
        kernel: &Kernel,
        freq_mhz: f64,
        active_cores: Option<u32>,
    ) -> NodeSteadyState {
        let total = self.sku.topology.total_cores();
        let active = active_cores.unwrap_or(total).min(total).max(1);
        let core = steady_state(&self.sku, kernel, freq_mhz, self.active_set(active));
        let iters = core.iters_per_sec * f64::from(active);
        let mut node_level_bytes_per_sec = [0.0; 4];
        for level in MemLevel::ALL {
            node_level_bytes_per_sec[level.idx()] = kernel.traffic.bytes(level) as f64 * iters;
        }
        NodeSteadyState {
            node_insts_per_sec: kernel.meta.insts as f64 * iters,
            node_flops_per_sec: kernel.meta.flops as f64 * iters,
            node_dc_accesses_per_sec: kernel.traffic.total_accesses() as f64 * iters,
            node_iters_per_sec: iters,
            node_level_bytes_per_sec,
            active_cores: active,
            core,
        }
    }

    /// Runs the kernel for `duration_ns` of simulated time and returns the
    /// node steady state plus the per-core hardware-event sample.
    pub fn run(
        &self,
        kernel: &Kernel,
        freq_mhz: f64,
        duration_ns: f64,
        active_cores: Option<u32>,
    ) -> (NodeSteadyState, HwEvents) {
        assert!(duration_ns >= 0.0);
        let node = self.evaluate(kernel, freq_mhz, active_cores);
        let iters = (node.core.iters_per_sec * duration_ns * 1e-9).floor() as u64;
        let cycles = (iters as f64 * node.core.cycles_per_iter).round() as u64;
        let (dec, opc) = HwEvents::attribute_uops(node.core.fetch_source, kernel.meta.uops * iters);
        let events = HwEvents {
            instructions: kernel.meta.insts * iters,
            cycles,
            uops_from_decoder: dec,
            uops_from_opcache: opc,
            dc_accesses: kernel.traffic.total_accesses() * iters,
            stall_cycles: (iters as f64 * node.core.stall_cycles).round() as u64,
            iterations: iters,
            elapsed_ns: duration_ns.round() as u64,
        };
        (node, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TaggedInst;
    use fs2_isa::prelude::*;

    fn fma_kernel(groups: u32) -> Kernel {
        let mut body = Vec::new();
        for g in 0..groups {
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new((g % 12) as u8),
                src1: Ymm::new(12),
                src2: RmYmm::Reg(Ymm::new(14)),
            }));
            body.push(TaggedInst::reg(Inst::XorGp {
                dst: Gp::Rax,
                src: Gp::Rbx,
            }));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        Kernel::new("fma", body, groups)
    }

    #[test]
    fn node_scales_with_active_cores() {
        let sim = SystemSim::new(Sku::amd_epyc_7502());
        let k = fma_kernel(64);
        let full = sim.evaluate(&k, 2500.0, None);
        let half = sim.evaluate(&k, 2500.0, Some(32));
        assert_eq!(full.active_cores, 64);
        assert_eq!(half.active_cores, 32);
        // Register-only kernel: no shared contention, linear scaling.
        let ratio = full.node_insts_per_sec / half.node_insts_per_sec;
        assert!((ratio - 2.0).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn flops_accounting() {
        let sim = SystemSim::new(Sku::amd_epyc_7502());
        let k = fma_kernel(64);
        let node = sim.evaluate(&k, 2500.0, None);
        // Each group has one 8-FLOP FMA; two pipes ⇒ 2 FMA/cycle max but
        // only 1 FMA per group here, ALU pairs with it.
        assert!(node.node_flops_per_sec > 0.0);
        let per_core = node.node_flops_per_sec / 64.0;
        // Upper bound: 2 FMA/cycle × 8 FLOP × 2.5 GHz = 40 GFLOP/s/core.
        assert!(per_core <= 40.0e9 * 1.001);
    }

    #[test]
    fn run_produces_consistent_events() {
        let sim = SystemSim::new(Sku::amd_epyc_7502());
        let k = fma_kernel(64);
        let (node, ev) = sim.run(&k, 2500.0, 1e9, None); // 1 second
        assert!(ev.iterations > 0);
        assert_eq!(ev.instructions, k.meta.insts * ev.iterations);
        // IPC from events matches the steady-state IPC.
        assert!((ev.ipc() - node.core.ipc).abs() < 0.01);
        // Applied frequency ≈ 2500 MHz (no throttle model at this layer).
        assert!((ev.applied_freq_mhz() - 2500.0).abs() < 25.0);
        // Register-only loop is served by the µop cache: no decoder µops.
        assert_eq!(ev.uops_from_decoder, 0);
        assert!(ev.uops_from_opcache > 0);
    }

    #[test]
    fn zero_duration_run_is_empty() {
        let sim = SystemSim::new(Sku::amd_epyc_7502());
        let k = fma_kernel(8);
        let (_, ev) = sim.run(&k, 2500.0, 0.0, None);
        assert_eq!(ev.iterations, 0);
        assert_eq!(ev.instructions, 0);
        assert_eq!(ev.ipc(), 0.0);
    }

    #[test]
    fn level_rates_zero_for_untouched_levels() {
        let sim = SystemSim::new(Sku::amd_epyc_7502());
        let k = fma_kernel(16);
        let node = sim.evaluate(&k, 1500.0, None);
        assert_eq!(node.node_level_bytes_per_sec, [0.0; 4]);
        assert_eq!(node.node_dc_accesses_per_sec, 0.0);
    }
}
