//! Hardware event counters.
//!
//! The paper validates its front-end claims with AMD PMC event 0xAA
//! ("UOps Dispatched From Decoder") and measures applied frequency via
//! 0x76 ("Cycles not in Halt"). These counters are the simulator's
//! equivalents, and `fs2-metrics::perf_ipc` reads them exactly like the
//! real tool reads `perf_event_open`.

use fs2_arch::pipeline::FetchSource;

/// Event counters accumulated over a simulated run of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HwEvents {
    /// Retired instructions.
    pub instructions: u64,
    /// Core clock cycles while running (event 0x76, "Cycles not in Halt").
    pub cycles: u64,
    /// µops delivered by the legacy decode pipeline (event 0xAA source:
    /// decoder). Non-zero only when the loop spills out of the µop cache.
    pub uops_from_decoder: u64,
    /// µops delivered from the µop cache (event 0xAA source: op cache).
    pub uops_from_opcache: u64,
    /// Data-cache accesses (loads + stores issued).
    pub dc_accesses: u64,
    /// Cycles spent stalled on memory beyond compute overlap.
    pub stall_cycles: u64,
    /// Completed loop iterations (the ipc-estimate metric counts these).
    pub iterations: u64,
    /// Wall-clock nanoseconds covered by this sample.
    pub elapsed_ns: u64,
}

impl HwEvents {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Average applied frequency in MHz over the sample (cycles / time) —
    /// how the paper derives Fig. 12c.
    pub fn applied_freq_mhz(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.cycles as f64 * 1000.0 / self.elapsed_ns as f64
        }
    }

    /// Accumulates another sample.
    pub fn merge(&mut self, other: &HwEvents) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.uops_from_decoder += other.uops_from_decoder;
        self.uops_from_opcache += other.uops_from_opcache;
        self.dc_accesses += other.dc_accesses;
        self.stall_cycles += other.stall_cycles;
        self.iterations += other.iterations;
        self.elapsed_ns += other.elapsed_ns;
    }

    /// Splits total dispatched µops between decoder and op-cache paths
    /// according to the fetch source.
    pub fn attribute_uops(source: FetchSource, uops: u64) -> (u64, u64) {
        match source {
            FetchSource::LoopBuffer | FetchSource::OpCache => (0, uops),
            FetchSource::L1i | FetchSource::L2 => (uops, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_frequency() {
        let e = HwEvents {
            instructions: 4_000,
            cycles: 1_000,
            elapsed_ns: 400, // 1000 cycles in 400 ns = 2500 MHz
            ..Default::default()
        };
        assert!((e.ipc() - 4.0).abs() < 1e-12);
        assert!((e.applied_freq_mhz() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let e = HwEvents::default();
        assert_eq!(e.ipc(), 0.0);
        assert_eq!(e.applied_freq_mhz(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HwEvents {
            instructions: 10,
            cycles: 5,
            iterations: 1,
            elapsed_ns: 2,
            ..Default::default()
        };
        let b = HwEvents {
            instructions: 30,
            cycles: 15,
            iterations: 3,
            elapsed_ns: 6,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 40);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.iterations, 4);
        assert_eq!(a.elapsed_ns, 8);
    }

    #[test]
    fn uop_attribution_by_source() {
        assert_eq!(
            HwEvents::attribute_uops(FetchSource::OpCache, 100),
            (0, 100)
        );
        assert_eq!(HwEvents::attribute_uops(FetchSource::L1i, 100), (100, 0));
        assert_eq!(HwEvents::attribute_uops(FetchSource::L2, 100), (100, 0));
        assert_eq!(
            HwEvents::attribute_uops(FetchSource::LoopBuffer, 100),
            (0, 100)
        );
    }
}
