//! Decode/replay parity suite: the SoA lane-vectorized fast path
//! ([`Executor::run_decoded`]), the first-generation micro-op baseline
//! ([`Executor::run_predecoded`]) and the reference interpreter
//! ([`Executor::run_interpreted`]) must be indistinguishable — same
//! [`ExecStats`], same state hash, same register dumps — across every
//! instruction variant, both init schemes, and fault injection.
//!
//! This is the golden gate for the §III-D executor: any future change
//! to the vectorized replay loop that drifts from the interpreted
//! semantics (triviality accounting included) fails here.

use fs2_arch::MemLevel;
use fs2_isa::prelude::*;
use fs2_sim::{
    format_register_dump, run_functional, DecodedKernel, Executor, InitScheme, Kernel, TaggedInst,
};

/// Exercises every functional `Inst` variant: packed FMA/MUL/ADD with
/// register and memory operands across all four levels, XOR clears,
/// loads/stores, the scalar lane-0 sqrt/mul/add ops, the full GP ALU,
/// and the inert control-flow/hint instructions the decoder drops.
fn all_variants_kernel() -> Kernel {
    let body = vec![
        // GP setup: buffer base + a moving index.
        TaggedInst::reg(Inst::MovImm64 {
            dst: Gp::Rax,
            imm: 0x1000,
        }),
        TaggedInst::reg(Inst::MovImm64 {
            dst: Gp::Rbx,
            imm: 3,
        }),
        // Packed FP, register operands.
        TaggedInst::reg(Inst::Vfmadd231pd {
            dst: Ymm::new(0),
            src1: Ymm::new(12),
            src2: RmYmm::Reg(Ymm::new(14)),
        }),
        TaggedInst::reg(Inst::Vmulpd {
            dst: Ymm::new(1),
            src1: Ymm::new(2),
            src2: RmYmm::Reg(Ymm::new(13)),
        }),
        TaggedInst::reg(Inst::Vaddpd {
            dst: Ymm::new(3),
            src1: Ymm::new(4),
            src2: RmYmm::Reg(Ymm::new(5)),
        }),
        // Packed FP, memory operands on three different levels.
        TaggedInst::mem(
            Inst::Vfmadd231pd {
                dst: Ymm::new(6),
                src1: Ymm::new(12),
                src2: RmYmm::Mem(Mem::base(Gp::Rax)),
            },
            MemLevel::L1,
        ),
        TaggedInst::mem(
            Inst::Vmulpd {
                dst: Ymm::new(7),
                src1: Ymm::new(8),
                src2: RmYmm::Mem(Mem::base_disp(Gp::Rax, 64)),
            },
            MemLevel::L2,
        ),
        TaggedInst::mem(
            Inst::Vaddpd {
                dst: Ymm::new(9),
                src1: Ymm::new(10),
                src2: RmYmm::Mem(Mem::base_index(Gp::Rax, Gp::Rbx, Scale::X8, 32)),
            },
            MemLevel::L3,
        ),
        // XOR (bitwise, no FP accounting), load, store.
        TaggedInst::reg(Inst::Vxorps {
            dst: Ymm::new(11),
            src1: Ymm::new(11),
            src2: Ymm::new(2),
        }),
        TaggedInst::mem(
            Inst::VmovapdLoad {
                dst: Ymm::new(2),
                src: Mem::base_disp(Gp::Rax, 96),
            },
            MemLevel::Ram,
        ),
        TaggedInst::mem(
            Inst::VmovapdStore {
                dst: Mem::base_disp(Gp::Rax, 128),
                src: Ymm::new(0),
            },
            MemLevel::L2,
        ),
        // Scalar lane-0 ops (sqrtsd has no triviality accounting;
        // mulsd/addsd count exactly one lane op each).
        TaggedInst::reg(Inst::Sqrtsd {
            dst: Xmm::new(4),
            src: Xmm::new(5),
        }),
        TaggedInst::reg(Inst::Mulsd {
            dst: Xmm::new(6),
            src: Xmm::new(7),
        }),
        TaggedInst::reg(Inst::Addsd {
            dst: Xmm::new(8),
            src: Xmm::new(9),
        }),
        // GP ALU.
        TaggedInst::reg(Inst::ShlImm {
            dst: Gp::Rbx,
            imm: 2,
        }),
        TaggedInst::reg(Inst::ShrImm {
            dst: Gp::Rbx,
            imm: 1,
        }),
        TaggedInst::reg(Inst::AddImm {
            dst: Gp::Rax,
            imm: 32,
        }),
        TaggedInst::reg(Inst::AddGp {
            dst: Gp::Rbx,
            src: Gp::Rax,
        }),
        TaggedInst::reg(Inst::XorGp {
            dst: Gp::Rcx,
            src: Gp::Rbx,
        }),
        // Inert instructions: dropped by the decoder, no-ops when
        // interpreted — parity depends on both agreeing on that.
        TaggedInst::mem(
            Inst::Prefetch {
                hint: PrefetchHint::T0,
                mem: Mem::base(Gp::Rax),
            },
            MemLevel::Ram,
        ),
        TaggedInst::reg(Inst::CmpGp {
            a: Gp::Rdi,
            b: Gp::Rcx,
        }),
        TaggedInst::reg(Inst::Nop),
        TaggedInst::reg(Inst::Dec(Gp::Rdi)),
        TaggedInst::reg(Inst::Jnz { rel: 0 }),
        TaggedInst::reg(Inst::Ret),
    ];
    Kernel::new("all-variants", body, 1)
}

/// Everything observable after a run.
fn observe(ex: &Executor) -> (u64, [[f64; fs2_sim::LANES]; 16], String, u64, u64, u64) {
    let mut dump = String::new();
    ex.dump_registers(&mut dump);
    (
        ex.state_hash(),
        ex.registers(),
        dump,
        ex.stats().fp_lane_ops,
        ex.stats().trivial_lane_ops,
        ex.stats().iterations,
    )
}

#[test]
fn three_tiers_agree_on_every_inst_variant() {
    let k = all_variants_kernel();
    let d = DecodedKernel::new(&k);
    for scheme in [InitScheme::V2Safe, InitScheme::V174Buggy] {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let mut soa = Executor::new(scheme, seed);
            let mut base = Executor::new(scheme, seed);
            let mut interp = Executor::new(scheme, seed);
            soa.run_decoded(&d, 257);
            base.run_predecoded(&d, 257);
            interp.run_interpreted(&k, 257);
            assert_eq!(
                observe(&soa),
                observe(&interp),
                "SoA vs interpreted diverged ({scheme:?}, seed {seed})"
            );
            assert_eq!(
                observe(&base),
                observe(&interp),
                "predecoded vs interpreted diverged ({scheme:?}, seed {seed})"
            );
        }
    }
}

/// FMA-accumulate kernel (the workload shape where the 1.7.4 bug
/// saturates the accumulators): dst ymm0..=11 from multipliers 12..=15.
fn fma_accumulate_kernel() -> Kernel {
    let mut body = Vec::new();
    for g in 0..12u8 {
        body.push(TaggedInst::reg(Inst::Vfmadd231pd {
            dst: Ymm::new(g),
            src1: Ymm::new(12 + g % 2),
            src2: RmYmm::Reg(Ymm::new(14 + g % 2)),
        }));
    }
    body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
    body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
    Kernel::new("fma-acc", body, 12)
}

#[test]
fn v174_trivial_fraction_survives_the_soa_path() {
    // The ±∞ clock-gating story (§III-D): the vectorized bitmask
    // accounting must report the same saturation as per-lane checks —
    // on the mixed kernel (partial saturation: loads keep refreshing
    // some registers with finite buffer values) and on the pure FMA
    // accumulation shape where the bug drives nearly all work trivial.
    for k in [all_variants_kernel(), fma_accumulate_kernel()] {
        let d = DecodedKernel::new(&k);
        let mut soa = Executor::new(InitScheme::V174Buggy, 7);
        let mut interp = Executor::new(InitScheme::V174Buggy, 7);
        soa.run_decoded(&d, 2000);
        interp.run_interpreted(&k, 2000);
        assert_eq!(soa.stats(), interp.stats(), "{}", k.name);
        assert!(
            soa.stats().trivial_fraction() > 0.1,
            "{}: clock-gating effect lost: {}",
            k.name,
            soa.stats().trivial_fraction()
        );
        // The safe scheme must agree across tiers too (its fraction is
        // kernel-dependent; bit-equality is the property under test).
        let mut soa2 = Executor::new(InitScheme::V2Safe, 7);
        let mut interp2 = Executor::new(InitScheme::V2Safe, 7);
        soa2.run_decoded(&d, 2000);
        interp2.run_interpreted(&k, 2000);
        assert_eq!(soa2.stats(), interp2.stats(), "{}", k.name);
    }
    // On the accumulating shape the saturation is near-total.
    let k = fma_accumulate_kernel();
    let mut ex = Executor::new(InitScheme::V174Buggy, 7);
    ex.run_decoded(&DecodedKernel::new(&k), 2000);
    assert!(
        ex.stats().trivial_fraction() > 0.5,
        "accumulators must saturate: {}",
        ex.stats().trivial_fraction()
    );
}

#[test]
fn bit_flip_injection_keeps_tiers_in_lockstep() {
    // Fault injection mid-run: masks are refreshed on entry, so the SoA
    // path must absorb externally corrupted state exactly like the
    // reference interpreter (including the corrupted lane turning
    // trivial when the flip lands in the exponent).
    let k = all_variants_kernel();
    let d = DecodedKernel::new(&k);
    // (3, 1, 62) lands in a pure-output register (vaddpd dst) that the
    // next iteration overwrites: the tiers must stay in lockstep, but
    // the flip itself is erased, so only the persistent-state flips
    // (the ymm0 FMA accumulator, untouched ymm15) assert visibility.
    for (reg, lane, bit) in [(3usize, 1usize, 62u32), (0, 0, 52), (15, 3, 11)] {
        let mut soa = Executor::new(InitScheme::V2Safe, 9);
        let mut interp = Executor::new(InitScheme::V2Safe, 9);
        soa.run_decoded(&d, 100);
        interp.run_interpreted(&k, 100);
        soa.inject_bit_flip(reg, lane, bit);
        interp.inject_bit_flip(reg, lane, bit);
        assert_eq!(soa.state_hash(), interp.state_hash());
        soa.run_decoded(&d, 100);
        interp.run_interpreted(&k, 100);
        assert_eq!(
            observe(&soa),
            observe(&interp),
            "post-flip divergence at ({reg}, {lane}, {bit})"
        );
        // Flips in persistent state stay visible against a clean twin.
        if reg != 3 {
            let mut clean = Executor::new(InitScheme::V2Safe, 9);
            clean.run_decoded(&d, 200);
            assert_ne!(
                clean.state_hash(),
                soa.state_hash(),
                "flip at ({reg}, {lane}, {bit}) vanished"
            );
        }
    }
}

#[test]
fn run_functional_equals_manual_replay() {
    let k = all_variants_kernel();
    let d = DecodedKernel::new(&k);
    for scheme in [InitScheme::V2Safe, InitScheme::V174Buggy] {
        let outcome = run_functional(&d, scheme, 5, 300);
        let mut ex = Executor::new(scheme, 5);
        ex.run_interpreted(&k, 300);
        assert_eq!(outcome.stats, *ex.stats());
        assert_eq!(outcome.state_hash, ex.state_hash());
        assert_eq!(
            outcome.state_hash,
            fs2_sim::state_hash_of(&outcome.registers)
        );
        assert_eq!(outcome.registers, ex.registers());
        let mut dump = String::new();
        format_register_dump(&outcome.registers, &mut dump);
        assert_eq!(outcome.register_dump(), dump);
    }
}

#[test]
fn scalar_ops_count_single_lane_triviality() {
    // A kernel of only scalar ops: fp_lane_ops must advance by exactly
    // 2 per iteration (mulsd + addsd; sqrtsd is uncounted), identically
    // across tiers.
    let body = vec![
        TaggedInst::reg(Inst::Sqrtsd {
            dst: Xmm::new(0),
            src: Xmm::new(1),
        }),
        TaggedInst::reg(Inst::Mulsd {
            dst: Xmm::new(2),
            src: Xmm::new(3),
        }),
        TaggedInst::reg(Inst::Addsd {
            dst: Xmm::new(4),
            src: Xmm::new(5),
        }),
    ];
    let k = Kernel::new("scalar", body, 1);
    let d = DecodedKernel::new(&k);
    let mut soa = Executor::new(InitScheme::V2Safe, 3);
    let mut interp = Executor::new(InitScheme::V2Safe, 3);
    soa.run_decoded(&d, 50);
    interp.run_interpreted(&k, 50);
    assert_eq!(soa.stats(), interp.stats());
    assert_eq!(soa.stats().fp_lane_ops, 100);
    assert_eq!(soa.state_hash(), interp.state_hash());
}
