//! Wide-tier parity suite (`--features wide-lanes`): the 8-lane
//! [`WideExecutor`] packs two narrow execution contexts into one
//! `16 × 8` register file, and each packed context must be bitwise
//! indistinguishable from the narrow [`Executor`] run it replaces —
//! same [`fs2_sim::ExecStats`], same state hash, same register file —
//! under both init schemes, distinct per-context seeds, and bit-flip
//! fault injection into either context mid-run.
#![cfg(feature = "wide-lanes")]

use fs2_arch::MemLevel;
use fs2_isa::prelude::*;
use fs2_sim::{
    run_functional, run_functional_pair, state_hash_of, DecodedKernel, Executor, InitScheme,
    Kernel, TaggedInst, WideExecutor, LANES, WIDE_LANES,
};

/// Same instruction coverage as exec_parity's all-variants kernel:
/// packed FMA/MUL/ADD with register and memory operands across levels,
/// XOR, load/store, scalar lane-0 ops, the GP ALU, and the inert
/// control-flow instructions the decoder drops.
fn all_variants_kernel() -> Kernel {
    let body = vec![
        TaggedInst::reg(Inst::MovImm64 {
            dst: Gp::Rax,
            imm: 0x1000,
        }),
        TaggedInst::reg(Inst::MovImm64 {
            dst: Gp::Rbx,
            imm: 3,
        }),
        TaggedInst::reg(Inst::Vfmadd231pd {
            dst: Ymm::new(0),
            src1: Ymm::new(12),
            src2: RmYmm::Reg(Ymm::new(14)),
        }),
        TaggedInst::reg(Inst::Vmulpd {
            dst: Ymm::new(1),
            src1: Ymm::new(2),
            src2: RmYmm::Reg(Ymm::new(13)),
        }),
        TaggedInst::reg(Inst::Vaddpd {
            dst: Ymm::new(3),
            src1: Ymm::new(4),
            src2: RmYmm::Reg(Ymm::new(5)),
        }),
        TaggedInst::mem(
            Inst::Vfmadd231pd {
                dst: Ymm::new(6),
                src1: Ymm::new(12),
                src2: RmYmm::Mem(Mem::base(Gp::Rax)),
            },
            MemLevel::L1,
        ),
        TaggedInst::mem(
            Inst::Vmulpd {
                dst: Ymm::new(7),
                src1: Ymm::new(8),
                src2: RmYmm::Mem(Mem::base_disp(Gp::Rax, 64)),
            },
            MemLevel::L2,
        ),
        TaggedInst::mem(
            Inst::Vaddpd {
                dst: Ymm::new(9),
                src1: Ymm::new(10),
                src2: RmYmm::Mem(Mem::base_index(Gp::Rax, Gp::Rbx, Scale::X8, 32)),
            },
            MemLevel::L3,
        ),
        TaggedInst::reg(Inst::Vxorps {
            dst: Ymm::new(11),
            src1: Ymm::new(11),
            src2: Ymm::new(2),
        }),
        TaggedInst::mem(
            Inst::VmovapdLoad {
                dst: Ymm::new(2),
                src: Mem::base_disp(Gp::Rax, 96),
            },
            MemLevel::Ram,
        ),
        TaggedInst::mem(
            Inst::VmovapdStore {
                dst: Mem::base_disp(Gp::Rax, 128),
                src: Ymm::new(0),
            },
            MemLevel::L2,
        ),
        TaggedInst::reg(Inst::Sqrtsd {
            dst: Xmm::new(4),
            src: Xmm::new(5),
        }),
        TaggedInst::reg(Inst::Mulsd {
            dst: Xmm::new(6),
            src: Xmm::new(7),
        }),
        TaggedInst::reg(Inst::Addsd {
            dst: Xmm::new(8),
            src: Xmm::new(9),
        }),
        TaggedInst::reg(Inst::ShlImm {
            dst: Gp::Rbx,
            imm: 2,
        }),
        TaggedInst::reg(Inst::ShrImm {
            dst: Gp::Rbx,
            imm: 1,
        }),
        TaggedInst::reg(Inst::AddImm {
            dst: Gp::Rax,
            imm: 32,
        }),
        TaggedInst::reg(Inst::AddGp {
            dst: Gp::Rbx,
            src: Gp::Rax,
        }),
        TaggedInst::reg(Inst::XorGp {
            dst: Gp::Rcx,
            src: Gp::Rbx,
        }),
        TaggedInst::reg(Inst::CmpGp {
            a: Gp::Rdi,
            b: Gp::Rcx,
        }),
        TaggedInst::reg(Inst::Nop),
        TaggedInst::reg(Inst::Dec(Gp::Rdi)),
        TaggedInst::reg(Inst::Jnz { rel: 0 }),
        TaggedInst::reg(Inst::Ret),
    ];
    Kernel::new("all-variants-wide", body, 1)
}

/// FMA-accumulate shape where the 1.7.4 bug saturates accumulators.
fn fma_accumulate_kernel() -> Kernel {
    let mut body = Vec::new();
    for g in 0..12u8 {
        body.push(TaggedInst::reg(Inst::Vfmadd231pd {
            dst: Ymm::new(g),
            src1: Ymm::new(12 + g % 2),
            src2: RmYmm::Reg(Ymm::new(14 + g % 2)),
        }));
    }
    body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
    body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
    Kernel::new("fma-acc-wide", body, 12)
}

#[test]
fn wide_pair_matches_two_narrow_passes_bitwise() {
    assert_eq!(WIDE_LANES, 2 * LANES);
    for k in [all_variants_kernel(), fma_accumulate_kernel()] {
        let d = DecodedKernel::new(&k);
        for scheme in [InitScheme::V2Safe, InitScheme::V174Buggy] {
            for (seed_a, seed_b) in [(1u64, 2u64), (42, 42), (0xDEAD_BEEF, 7)] {
                let (wa, wb) = run_functional_pair(&d, scheme, seed_a, seed_b, 257);
                let na = run_functional(&d, scheme, seed_a, 257);
                let nb = run_functional(&d, scheme, seed_b, 257);
                assert_eq!(
                    wa, na,
                    "{}: context A diverged ({scheme:?}, seeds {seed_a}/{seed_b})",
                    k.name
                );
                assert_eq!(
                    wb, nb,
                    "{}: context B diverged ({scheme:?}, seeds {seed_a}/{seed_b})",
                    k.name
                );
                assert_eq!(wa.register_dump(), na.register_dump());
                assert_eq!(wb.register_dump(), nb.register_dump());
            }
        }
    }
}

#[test]
fn equal_seeds_make_the_contexts_identical() {
    // The error-detection use case: both contexts from the same seed
    // must agree with each other (the clean-run hash comparison).
    let d = DecodedKernel::new(&all_variants_kernel());
    for scheme in [InitScheme::V2Safe, InitScheme::V174Buggy] {
        let (a, b) = run_functional_pair(&d, scheme, 9, 9, 300);
        assert_eq!(a, b, "{scheme:?}");
        assert_eq!(a.state_hash, state_hash_of(&b.registers));
    }
}

#[test]
fn v174_saturation_survives_the_wide_path() {
    let d = DecodedKernel::new(&fma_accumulate_kernel());
    let (a, b) = run_functional_pair(&d, InitScheme::V174Buggy, 7, 8, 2000);
    for (label, out) in [("A", &a), ("B", &b)] {
        assert!(
            out.stats.trivial_fraction() > 0.5,
            "context {label}: accumulators must saturate: {}",
            out.stats.trivial_fraction()
        );
    }
}

#[test]
fn bit_flips_in_either_context_keep_lockstep_with_narrow() {
    // Mid-run fault injection into one packed context: that context
    // must track a narrow executor given the same flip, while the
    // sibling context stays untouched.
    let k = all_variants_kernel();
    let d = DecodedKernel::new(&k);
    for (ctx, reg, lane, bit) in [(0usize, 0usize, 0usize, 52u32), (1, 15, 3, 11)] {
        let mut wide = WideExecutor::new(InitScheme::V2Safe, 9, 10);
        let mut narrow_a = Executor::new(InitScheme::V2Safe, 9);
        let mut narrow_b = Executor::new(InitScheme::V2Safe, 10);
        wide.run_decoded(&d, 100);
        narrow_a.run_decoded(&d, 100);
        narrow_b.run_decoded(&d, 100);
        wide.inject_bit_flip(ctx, reg, lane, bit);
        let flipped = if ctx == 0 {
            &mut narrow_a
        } else {
            &mut narrow_b
        };
        flipped.inject_bit_flip(reg, lane, bit);
        wide.run_decoded(&d, 100);
        narrow_a.run_decoded(&d, 100);
        narrow_b.run_decoded(&d, 100);
        let (wa, wb) = wide.outcome_pair();
        assert_eq!(wa, narrow_a.outcome(), "ctx A after flip into ctx {ctx}");
        assert_eq!(wb, narrow_b.outcome(), "ctx B after flip into ctx {ctx}");
        // The flip stays visible against a clean twin of that context.
        let clean_seed = if ctx == 0 { 9 } else { 10 };
        let clean = run_functional(&d, InitScheme::V2Safe, clean_seed, 200);
        let corrupted = if ctx == 0 { &wa } else { &wb };
        assert_ne!(
            clean.state_hash, corrupted.state_hash,
            "flip at ctx {ctx} ({reg}, {lane}, {bit}) vanished"
        );
        // ...and the sibling context matches its clean twin exactly.
        let sibling_seed = if ctx == 0 { 10 } else { 9 };
        let sibling = if ctx == 0 { &wb } else { &wa };
        let clean_sibling = run_functional(&d, InitScheme::V2Safe, sibling_seed, 200);
        assert_eq!(*sibling, clean_sibling, "sibling context perturbed");
    }
}

#[test]
fn wide_stats_accumulate_across_runs() {
    let d = DecodedKernel::new(&all_variants_kernel());
    let mut wide = WideExecutor::new(InitScheme::V2Safe, 3, 4);
    wide.run_decoded(&d, 40);
    wide.run_decoded(&d, 60);
    let mut narrow = Executor::new(InitScheme::V2Safe, 3);
    narrow.run_decoded(&d, 40);
    narrow.run_decoded(&d, 60);
    let (sa, sb) = wide.stats_pair();
    assert_eq!(sa, narrow.stats());
    assert_eq!(sa.iterations, 100);
    assert_eq!(sb.iterations, 100);
    assert_eq!(sa.fp_lane_ops, sb.fp_lane_ops);
}
