//! Memory-hierarchy level specifications.

use std::fmt;

/// A data-holding level of the memory hierarchy.
///
/// The access-group grammar of FIRESTARTER (`L1_L`, `RAM_P`, …) targets
/// these levels; register-only work (`REG`) is not a memory level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemLevel {
    L1,
    L2,
    L3,
    Ram,
}

impl MemLevel {
    pub const ALL: [MemLevel; 4] = [MemLevel::L1, MemLevel::L2, MemLevel::L3, MemLevel::Ram];

    /// The canonical name used in the group grammar.
    pub const fn name(self) -> &'static str {
        match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Ram => "RAM",
        }
    }

    /// Index into per-level arrays.
    pub const fn idx(self) -> usize {
        match self {
            MemLevel::L1 => 0,
            MemLevel::L2 => 1,
            MemLevel::L3 => 2,
            MemLevel::Ram => 3,
        }
    }

    pub fn from_idx(i: usize) -> Option<MemLevel> {
        MemLevel::ALL.get(i).copied()
    }

    /// Levels up to and including `self`, nearest first (used by the
    /// Fig. 2/9 "access of the cache hierarchy up to X" ladder).
    pub fn up_to(self) -> &'static [MemLevel] {
        match self {
            MemLevel::L1 => &[MemLevel::L1],
            MemLevel::L2 => &[MemLevel::L1, MemLevel::L2],
            MemLevel::L3 => &[MemLevel::L1, MemLevel::L2, MemLevel::L3],
            MemLevel::Ram => &MemLevel::ALL,
        }
    }
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Access latency, either clock-domain-relative or absolute.
///
/// L1/L2 latencies are fixed in *core cycles* (they scale with DVFS); DRAM
/// latency is fixed in *nanoseconds*. This distinction is what makes the
/// optimal access mix frequency-dependent (§IV-E): at a higher core clock
/// the same DRAM latency costs more cycles, so fewer RAM accesses fit
/// before the out-of-order window stalls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Latency {
    /// Latency in core clock cycles.
    CoreCycles(f64),
    /// Latency in nanoseconds (clock-independent).
    Nanos(f64),
}

impl Latency {
    /// Converts to cycles at the given core frequency.
    pub fn cycles_at(self, core_freq_mhz: f64) -> f64 {
        match self {
            Latency::CoreCycles(c) => c,
            Latency::Nanos(ns) => ns * core_freq_mhz / 1000.0,
        }
    }

    /// Converts to nanoseconds at the given core frequency.
    pub fn nanos_at(self, core_freq_mhz: f64) -> f64 {
        match self {
            Latency::CoreCycles(c) => c * 1000.0 / core_freq_mhz,
            Latency::Nanos(ns) => ns,
        }
    }
}

/// Specification of one memory level as seen by a single core.
#[derive(Debug, Clone, PartialEq)]
pub struct MemLevelSpec {
    pub level: MemLevel,
    /// Capacity of one sharing domain in bytes (e.g. 32 KiB L1d per core,
    /// 16 MiB L3 per CCX). `u64::MAX` for RAM.
    pub size_bytes: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
    /// Load-to-use latency.
    pub latency: Latency,
    /// Peak per-core bandwidth in bytes per core cycle (L1: 2×32 B loads;
    /// L2: 32 B; L3: 32 B burst).
    pub per_core_bytes_per_cycle: f64,
    /// Aggregate bandwidth of one sharing domain in bytes per nanosecond,
    /// if the level is shared (L3 per CCX, RAM per socket). `None` for
    /// private levels.
    pub shared_bytes_per_ns: Option<f64>,
    /// Number of cores sharing one domain of this level.
    pub shared_by_cores: u32,
    /// Outstanding misses one core can have in flight to this level
    /// (MSHR count); bounds memory-level parallelism.
    pub mshrs: u32,
}

impl MemLevelSpec {
    /// Maximum per-core sustainable throughput to this level in bytes per
    /// core cycle, considering both bandwidth and latency×MLP limits.
    pub fn sustainable_bytes_per_cycle(
        &self,
        core_freq_mhz: f64,
        cores_active_in_domain: u32,
    ) -> f64 {
        let lat_cycles = self.latency.cycles_at(core_freq_mhz).max(1.0);
        // Little's law: outstanding lines / latency.
        let mlp_limit = f64::from(self.mshrs) * f64::from(self.line_bytes) / lat_cycles;
        let mut bw = self.per_core_bytes_per_cycle.min(mlp_limit);
        if let Some(shared) = self.shared_bytes_per_ns {
            let per_core_share_per_ns = shared / f64::from(cores_active_in_domain.max(1));
            let per_core_share_per_cycle = per_core_share_per_ns * 1000.0 / core_freq_mhz;
            bw = bw.min(per_core_share_per_cycle);
        }
        bw
    }
}

/// DRAM configuration of one socket.
///
/// §III-A: "Depending on the installed memory modules, memory bandwidth
/// and latency can significantly differ" — this struct is what varies
/// between two machines of the same SKU.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Memory channels per socket.
    pub channels: u32,
    /// DRAM interface clock in MHz (Table II: 1600 MHz ⇒ DDR4-3200).
    pub mem_clock_mhz: u32,
    /// Idle (unloaded) access latency in nanoseconds.
    pub latency_ns: f64,
    /// Fraction of theoretical peak bandwidth that is sustainable.
    pub efficiency: f64,
}

impl DramConfig {
    /// Theoretical peak bandwidth per socket in bytes/ns (GB/s):
    /// channels × 8 B × 2 (DDR) × clock.
    pub fn peak_bytes_per_ns(&self) -> f64 {
        f64::from(self.channels) * 8.0 * 2.0 * f64::from(self.mem_clock_mhz) / 1000.0
    }

    /// Sustainable bandwidth per socket in bytes/ns.
    pub fn sustained_bytes_per_ns(&self) -> f64 {
        self.peak_bytes_per_ns() * self.efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_and_indices() {
        assert_eq!(MemLevel::L1.name(), "L1");
        assert_eq!(MemLevel::Ram.name(), "RAM");
        for (i, l) in MemLevel::ALL.iter().enumerate() {
            assert_eq!(l.idx(), i);
            assert_eq!(MemLevel::from_idx(i), Some(*l));
        }
        assert_eq!(MemLevel::from_idx(4), None);
    }

    #[test]
    fn up_to_ladders() {
        assert_eq!(MemLevel::L1.up_to(), &[MemLevel::L1]);
        assert_eq!(MemLevel::Ram.up_to().len(), 4);
        assert_eq!(MemLevel::L3.up_to().last(), Some(&MemLevel::L3));
    }

    #[test]
    fn latency_conversion() {
        // 40 core cycles at 2000 MHz = 20 ns.
        let l = Latency::CoreCycles(40.0);
        assert!((l.nanos_at(2000.0) - 20.0).abs() < 1e-12);
        assert!((l.cycles_at(2000.0) - 40.0).abs() < 1e-12);
        // 100 ns at 2500 MHz = 250 cycles.
        let d = Latency::Nanos(100.0);
        assert!((d.cycles_at(2500.0) - 250.0).abs() < 1e-12);
        assert!((d.nanos_at(123.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn dram_latency_costs_more_cycles_at_higher_clock() {
        let d = Latency::Nanos(95.0);
        assert!(d.cycles_at(2500.0) > d.cycles_at(1500.0));
    }

    #[test]
    fn dram_bandwidth() {
        // 8 channels of DDR4-3200: 8 × 8 B × 2 × 1600 MHz = 204.8 GB/s.
        let cfg = DramConfig {
            channels: 8,
            mem_clock_mhz: 1600,
            latency_ns: 95.0,
            efficiency: 0.7,
        };
        assert!((cfg.peak_bytes_per_ns() - 204.8).abs() < 1e-9);
        assert!((cfg.sustained_bytes_per_ns() - 143.36).abs() < 1e-9);
    }

    fn l2_spec() -> MemLevelSpec {
        MemLevelSpec {
            level: MemLevel::L2,
            size_bytes: 512 * 1024,
            line_bytes: 64,
            latency: Latency::CoreCycles(12.0),
            per_core_bytes_per_cycle: 32.0,
            shared_bytes_per_ns: None,
            shared_by_cores: 1,
            mshrs: 24,
        }
    }

    #[test]
    fn sustainable_bw_private_level_is_bandwidth_bound() {
        // MLP limit: 24 × 64 / 12 = 128 B/cyc ≫ 32 B/cyc cap.
        let spec = l2_spec();
        let bw = spec.sustainable_bytes_per_cycle(2500.0, 1);
        assert!((bw - 32.0).abs() < 1e-12);
    }

    #[test]
    fn sustainable_bw_latency_bound_when_mshrs_scarce() {
        let mut spec = l2_spec();
        spec.mshrs = 2;
        // 2 × 64 / 12 ≈ 10.7 B/cyc < 32.
        let bw = spec.sustainable_bytes_per_cycle(2500.0, 1);
        assert!(bw < 11.0 && bw > 10.0, "bw = {bw}");
    }

    #[test]
    fn shared_level_divides_bandwidth() {
        let spec = MemLevelSpec {
            level: MemLevel::Ram,
            size_bytes: u64::MAX,
            line_bytes: 64,
            latency: Latency::Nanos(95.0),
            per_core_bytes_per_cycle: 32.0,
            shared_bytes_per_ns: Some(143.0),
            shared_by_cores: 32,
            mshrs: 48,
        };
        let solo = spec.sustainable_bytes_per_cycle(1500.0, 1);
        let full = spec.sustainable_bytes_per_cycle(1500.0, 32);
        // Solo the core is MLP-bound (~21.6 B/cyc); fully contended it gets
        // a 1/32 share of socket bandwidth (~3 B/cyc).
        assert!(solo > full * 5.0, "solo {solo} vs contended {full}");
        assert!(full < 4.0, "contended share too generous: {full}");
    }

    #[test]
    fn ram_throughput_drops_with_core_frequency() {
        // The frequency-dependent stall mechanism behind Fig. 12.
        let spec = MemLevelSpec {
            level: MemLevel::Ram,
            size_bytes: u64::MAX,
            line_bytes: 64,
            latency: Latency::Nanos(95.0),
            per_core_bytes_per_cycle: 32.0,
            shared_bytes_per_ns: Some(143.0),
            shared_by_cores: 32,
            mshrs: 48,
        };
        let at_1500 = spec.sustainable_bytes_per_cycle(1500.0, 32);
        let at_2500 = spec.sustainable_bytes_per_cycle(2500.0, 32);
        // Per-cycle share shrinks as the core clock rises.
        assert!(at_1500 > at_2500);
    }
}
