//! SKU database and CPUID-style detection.
//!
//! FIRESTARTER 1.x shipped one pre-compiled workload per SKU and selected
//! it by CPU vendor/family/model at startup; FIRESTARTER 2 keeps the
//! detection but generates the workload at runtime. [`detect`] reproduces
//! the selection logic against this crate's database.

use crate::cache::{DramConfig, Latency, MemLevel, MemLevelSpec};
use crate::pipeline::{Backend, FrontEnd};
use crate::pstate::{PState, PStateTable};
use crate::topo::Topology;

/// CPU vendor as reported by CPUID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    Amd,
    Intel,
    Unknown,
}

/// Microarchitecture family, keyed by the instruction-mix definitions
/// (`fs2-core::mix`) and the power-model coefficient tables (`fs2-power`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Microarch {
    /// AMD Zen 2 ("Rome") — §IV of the paper.
    Zen2,
    /// Intel Haswell-EP — the Fig. 1/2 Taurus nodes.
    Haswell,
    /// Conservative SSE2-era fallback.
    Generic,
}

impl Microarch {
    pub const fn name(self) -> &'static str {
        match self {
            Microarch::Zen2 => "zen2",
            Microarch::Haswell => "haswell",
            Microarch::Generic => "generic",
        }
    }
}

/// Simulated CPUID identification of the current system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuId {
    pub vendor: Vendor,
    pub family: u32,
    pub model: u32,
    pub brand: String,
}

impl CpuId {
    /// The Table II test system.
    pub fn amd_rome() -> CpuId {
        CpuId {
            vendor: Vendor::Amd,
            family: 0x17,
            model: 0x31,
            brand: "AMD EPYC 7502 32-Core Processor".to_string(),
        }
    }

    /// The Taurus Haswell partition nodes.
    pub fn intel_haswell() -> CpuId {
        CpuId {
            vendor: Vendor::Intel,
            family: 6,
            model: 0x3F,
            brand: "Intel(R) Xeon(R) CPU E5-2680 v3 @ 2.50GHz".to_string(),
        }
    }
}

/// A complete node description: processor SKU plus board-level
/// configuration (socket count, DRAM population).
#[derive(Debug, Clone, PartialEq)]
pub struct Sku {
    pub name: &'static str,
    pub vendor: Vendor,
    pub family: u32,
    pub model: u32,
    pub uarch: Microarch,
    pub topology: Topology,
    pub frontend: FrontEnd,
    pub backend: Backend,
    pub pstates: PStateTable,
    /// L1 instruction-cache capacity per core, in bytes.
    pub l1i_bytes: u64,
    /// Data-side hierarchy, indexed by [`MemLevel::idx`].
    pub mem_levels: [MemLevelSpec; 4],
    pub dram: DramConfig,
    /// Electrical design current limit per socket, in amperes. Exceeding
    /// it triggers the fine-grained frequency throttling of §IV-E
    /// (high-IPC, cache-saturating code — the Fig. 8 L2-code dip).
    pub edc_amps_per_socket: f64,
    /// Package power target per socket, watts. Max-power workloads exceed
    /// it at the higher P-states (the Fig. 12c sub-nominal frequencies).
    pub ppt_w_per_socket: f64,
}

impl Sku {
    /// Specification of one data memory level.
    pub fn mem_level(&self, level: MemLevel) -> &MemLevelSpec {
        &self.mem_levels[level.idx()]
    }

    /// Nominal frequency in MHz.
    pub fn nominal_mhz(&self) -> u32 {
        self.pstates.nominal().freq_mhz
    }

    /// Returns a copy configured with a different socket count.
    pub fn with_sockets(mut self, sockets: u32) -> Sku {
        self.topology.sockets = sockets;
        self
    }

    /// Returns a copy with different DRAM (the §III-A "same SKU, different
    /// memory modules" scenario).
    pub fn with_dram(mut self, dram: DramConfig) -> Sku {
        let ram = &mut self.mem_levels[MemLevel::Ram.idx()];
        ram.latency = Latency::Nanos(dram.latency_ns);
        ram.shared_bytes_per_ns = Some(dram.sustained_bytes_per_ns());
        self.dram = dram;
        self
    }

    /// The dual-socket AMD EPYC 7502 node of Table II.
    pub fn amd_epyc_7502() -> Sku {
        let topology = Topology {
            sockets: 2,
            ccds_per_socket: 8,
            ccxs_per_ccd: 1,
            cores_per_ccx: 4,
            threads_per_core: 2,
        };
        let dram = DramConfig {
            channels: 8,
            mem_clock_mhz: 1600,
            latency_ns: 95.0,
            efficiency: 0.70,
        };
        Sku {
            name: "AMD EPYC 7502 (2S)",
            vendor: Vendor::Amd,
            family: 0x17,
            model: 0x31,
            uarch: Microarch::Zen2,
            topology,
            frontend: FrontEnd {
                decode_width: 4,
                opcache_width: 8,
                opcache_capacity_uops: 4096,
                loop_buffer_uops: 0,
                l1i_fetch_bytes_per_cycle: 32.0,
                l2_fetch_bytes_per_cycle: 32.0,
            },
            backend: Backend {
                fp_fma_pipes: 2,
                fp_add_pipes: 2,
                alu_pipes: 4,
                agu_pipes: 3,
                loads_per_cycle: 2,
                stores_per_cycle: 1,
                retire_width: 8,
                rob_uops: 224,
                sqrtsd_rtpt_cycles: 4.5,
            },
            pstates: PStateTable {
                states: vec![
                    PState {
                        freq_mhz: 2500,
                        voltage: 1.10,
                    },
                    PState {
                        freq_mhz: 2200,
                        voltage: 1.00,
                    },
                    PState {
                        freq_mhz: 1500,
                        voltage: 0.85,
                    },
                ],
                throttle_step_mhz: 25,
                min_throttle_mhz: 400,
            },
            l1i_bytes: 32 * 1024,
            mem_levels: [
                MemLevelSpec {
                    level: MemLevel::L1,
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    latency: Latency::CoreCycles(5.0),
                    per_core_bytes_per_cycle: 96.0,
                    shared_bytes_per_ns: None,
                    shared_by_cores: 1,
                    mshrs: 64,
                },
                MemLevelSpec {
                    level: MemLevel::L2,
                    size_bytes: 512 * 1024,
                    line_bytes: 64,
                    latency: Latency::CoreCycles(12.0),
                    per_core_bytes_per_cycle: 32.0,
                    shared_bytes_per_ns: None,
                    shared_by_cores: 1,
                    mshrs: 24,
                },
                MemLevelSpec {
                    level: MemLevel::L3,
                    size_bytes: 16 * 1024 * 1024,
                    line_bytes: 64,
                    // L3 runs at the CCX core clock on Zen 2.
                    latency: Latency::CoreCycles(38.0),
                    per_core_bytes_per_cycle: 16.0,
                    shared_bytes_per_ns: Some(96.0),
                    shared_by_cores: 4,
                    mshrs: 32,
                },
                MemLevelSpec {
                    level: MemLevel::Ram,
                    size_bytes: u64::MAX,
                    line_bytes: 64,
                    latency: Latency::Nanos(dram.latency_ns),
                    per_core_bytes_per_cycle: 32.0,
                    shared_bytes_per_ns: Some(dram.sustained_bytes_per_ns()),
                    shared_by_cores: 32,
                    mshrs: 44,
                },
            ],
            dram,
            edc_amps_per_socket: 111.0,
            ppt_w_per_socket: 200.0,
        }
    }

    /// A 16-core Rome SKU (EPYC 7302-like): same family/model, different
    /// core count — the §III-A argument for runtime generation.
    pub fn amd_epyc_7302() -> Sku {
        let mut sku = Sku::amd_epyc_7502();
        sku.name = "AMD EPYC 7302 (2S)";
        sku.topology.ccds_per_socket = 4;
        sku.ppt_w_per_socket = 170.0;
        // Fewer cores share the same socket DRAM bandwidth.
        sku.mem_levels[MemLevel::Ram.idx()].shared_by_cores = 16;
        sku
    }

    /// The dual-socket Intel Xeon E5-2680 v3 node of Fig. 1/2 (Taurus
    /// Haswell partition).
    pub fn intel_xeon_e5_2680_v3() -> Sku {
        let topology = Topology {
            sockets: 2,
            ccds_per_socket: 1,
            ccxs_per_ccd: 1,
            cores_per_ccx: 12,
            threads_per_core: 2,
        };
        let dram = DramConfig {
            channels: 4,
            mem_clock_mhz: 1066,
            latency_ns: 90.0,
            efficiency: 0.72,
        };
        Sku {
            name: "Intel Xeon E5-2680 v3 (2S)",
            vendor: Vendor::Intel,
            family: 6,
            model: 0x3F,
            uarch: Microarch::Haswell,
            topology,
            frontend: FrontEnd {
                decode_width: 4,
                opcache_width: 4,
                opcache_capacity_uops: 1536,
                loop_buffer_uops: 56,
                l1i_fetch_bytes_per_cycle: 16.0,
                l2_fetch_bytes_per_cycle: 16.0,
            },
            backend: Backend {
                fp_fma_pipes: 2,
                fp_add_pipes: 1,
                alu_pipes: 4,
                agu_pipes: 3,
                loads_per_cycle: 2,
                stores_per_cycle: 1,
                retire_width: 4,
                rob_uops: 192,
                sqrtsd_rtpt_cycles: 8.0,
            },
            pstates: PStateTable {
                states: vec![
                    PState {
                        freq_mhz: 2500,
                        voltage: 1.05,
                    },
                    PState {
                        freq_mhz: 2000,
                        voltage: 0.95,
                    },
                    PState {
                        freq_mhz: 1200,
                        voltage: 0.80,
                    },
                ],
                throttle_step_mhz: 100,
                min_throttle_mhz: 800,
            },
            l1i_bytes: 32 * 1024,
            mem_levels: [
                MemLevelSpec {
                    level: MemLevel::L1,
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    latency: Latency::CoreCycles(4.0),
                    per_core_bytes_per_cycle: 96.0,
                    shared_bytes_per_ns: None,
                    shared_by_cores: 1,
                    mshrs: 64,
                },
                MemLevelSpec {
                    level: MemLevel::L2,
                    size_bytes: 256 * 1024,
                    line_bytes: 64,
                    latency: Latency::CoreCycles(12.0),
                    per_core_bytes_per_cycle: 32.0,
                    shared_bytes_per_ns: None,
                    shared_by_cores: 1,
                    mshrs: 16,
                },
                MemLevelSpec {
                    level: MemLevel::L3,
                    size_bytes: 30 * 1024 * 1024,
                    line_bytes: 64,
                    // Haswell L3 sits on the uncore clock domain; the
                    // ring sustains well over 100 GB/s per socket.
                    latency: Latency::Nanos(14.0),
                    per_core_bytes_per_cycle: 16.0,
                    shared_bytes_per_ns: Some(150.0),
                    shared_by_cores: 12,
                    mshrs: 24,
                },
                MemLevelSpec {
                    level: MemLevel::Ram,
                    size_bytes: u64::MAX,
                    line_bytes: 64,
                    latency: Latency::Nanos(dram.latency_ns),
                    per_core_bytes_per_cycle: 32.0,
                    shared_bytes_per_ns: Some(dram.sustained_bytes_per_ns()),
                    shared_by_cores: 12,
                    mshrs: 32,
                },
            ],
            dram,
            edc_amps_per_socket: 115.0,
            ppt_w_per_socket: 165.0,
        }
    }

    /// The 14-core Haswell sibling (E5-2695 v3): same family/model as
    /// the E5-2680 v3, two more cores per socket, a bigger L3 slice and
    /// a lower base clock — the second SKU of the heterogeneous Taurus
    /// fleet simulation.
    pub fn intel_xeon_e5_2695_v3() -> Sku {
        let mut sku = Sku::intel_xeon_e5_2680_v3();
        sku.name = "Intel Xeon E5-2695 v3 (2S)";
        sku.topology.cores_per_ccx = 14;
        // 14 x 2.5 MiB L3 slices on the ring.
        sku.mem_levels[MemLevel::L3.idx()].size_bytes = 35 * 1024 * 1024;
        sku.mem_levels[MemLevel::L3.idx()].shared_by_cores = 14;
        sku.mem_levels[MemLevel::Ram.idx()].shared_by_cores = 14;
        // 2.3 GHz base; same 120 W TDP stretched over more cores.
        sku.pstates.states = vec![
            PState {
                freq_mhz: 2300,
                voltage: 1.00,
            },
            PState {
                freq_mhz: 1900,
                voltage: 0.92,
            },
            PState {
                freq_mhz: 1200,
                voltage: 0.80,
            },
        ];
        sku.ppt_w_per_socket = 160.0;
        sku
    }

    /// Conservative fallback for unknown processors.
    pub fn generic() -> Sku {
        let mut sku = Sku::intel_xeon_e5_2680_v3();
        sku.name = "generic x86_64 (2S)";
        sku.vendor = Vendor::Unknown;
        sku.family = 0;
        sku.model = 0;
        sku.uarch = Microarch::Generic;
        sku
    }

    /// All database entries.
    pub fn database() -> Vec<Sku> {
        vec![
            Sku::amd_epyc_7502(),
            Sku::amd_epyc_7302(),
            Sku::intel_xeon_e5_2680_v3(),
            Sku::intel_xeon_e5_2695_v3(),
        ]
    }
}

/// Vendor/family/model matching against the SKU database, with the
/// generic fallback FIRESTARTER uses for unknown processors.
pub fn detect(id: &CpuId) -> Sku {
    let db = Sku::database();
    // Exact vendor+family+model match first, preferring entries whose
    // brand-derived name appears in the CPUID brand string.
    let mut candidates: Vec<&Sku> = db
        .iter()
        .filter(|s| s.vendor == id.vendor && s.family == id.family && s.model == id.model)
        .collect();
    if candidates.is_empty() {
        return Sku::generic();
    }
    candidates.sort_by_key(|s| {
        // Prefer the SKU whose marketing number appears in the brand
        // string. The number is the longest digit run in the database
        // name ("E5-2680" → "2680", "EPYC 7302" → "7302"); collecting
        // *all* digits used to splice the bus suffix in and never match.
        let sku_number = longest_digit_run(s.name);
        sku_number.is_empty() || !id.brand.contains(sku_number)
    });
    candidates[0].clone()
}

/// The longest contiguous run of ASCII digits in `s` (first on ties).
fn longest_digit_run(s: &str) -> &str {
    let bytes = s.as_bytes();
    let (mut best, mut best_len) = (0usize, 0usize);
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i - start > best_len {
                best = start;
                best_len = i - start;
            }
        } else {
            i += 1;
        }
    }
    &s[best..best + best_len]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_inventory() {
        let sku = Sku::amd_epyc_7502();
        // 2x 32 cores.
        assert_eq!(sku.topology.total_cores(), 64);
        // 64x 32 KiB + 32 KiB L1.
        assert_eq!(sku.mem_level(MemLevel::L1).size_bytes, 32 * 1024);
        assert_eq!(sku.l1i_bytes, 32 * 1024);
        // 64x 512 KiB L2.
        assert_eq!(sku.mem_level(MemLevel::L2).size_bytes, 512 * 1024);
        // 16x 16 MiB L3.
        assert_eq!(sku.topology.total_ccxs(), 16);
        assert_eq!(sku.mem_level(MemLevel::L3).size_bytes, 16 * 1024 * 1024);
        // 1500/2200/2500 MHz P-states.
        let freqs: Vec<u32> = sku.pstates.states.iter().map(|s| s.freq_mhz).collect();
        assert_eq!(freqs, vec![2500, 2200, 1500]);
        // DDR4-3200 on 8 channels.
        assert_eq!(sku.dram.mem_clock_mhz, 1600);
    }

    #[test]
    fn detect_rome() {
        let sku = detect(&CpuId::amd_rome());
        assert_eq!(sku.uarch, Microarch::Zen2);
        assert_eq!(sku.name, "AMD EPYC 7502 (2S)");
    }

    #[test]
    fn detect_haswell() {
        let sku = detect(&CpuId::intel_haswell());
        assert_eq!(sku.uarch, Microarch::Haswell);
        assert_eq!(sku.topology.total_cores(), 24);
    }

    #[test]
    fn e5_2695_v3_inventory() {
        let sku = Sku::intel_xeon_e5_2695_v3();
        assert_eq!(sku.topology.total_cores(), 28);
        assert_eq!(sku.mem_level(MemLevel::L3).size_bytes, 35 * 1024 * 1024);
        assert_eq!(sku.pstates.nominal().freq_mhz, 2300);
        assert_eq!(sku.uarch, Microarch::Haswell);
    }

    #[test]
    fn detect_distinguishes_haswell_siblings_by_brand() {
        // E5-2680 v3 and E5-2695 v3 share vendor/family/model; only the
        // brand string separates them.
        let id = CpuId {
            vendor: Vendor::Intel,
            family: 6,
            model: 0x3F,
            brand: "Intel(R) Xeon(R) CPU E5-2695 v3 @ 2.30GHz".to_string(),
        };
        let sku = detect(&id);
        assert_eq!(sku.name, "Intel Xeon E5-2695 v3 (2S)");
        assert_eq!(sku.topology.total_cores(), 28);
        // The stock Taurus brand still resolves to the 12-core part.
        assert_eq!(detect(&CpuId::intel_haswell()).topology.total_cores(), 24);
    }

    #[test]
    fn detect_unknown_falls_back_to_generic() {
        let id = CpuId {
            vendor: Vendor::Amd,
            family: 0x19,
            model: 0x01,
            brand: "AMD EPYC 7763 64-Core Processor".to_string(),
        };
        let sku = detect(&id);
        assert_eq!(sku.uarch, Microarch::Generic);
    }

    #[test]
    fn detect_distinguishes_same_family_skus_by_brand() {
        let id = CpuId {
            vendor: Vendor::Amd,
            family: 0x17,
            model: 0x31,
            brand: "AMD EPYC 7302 16-Core Processor".to_string(),
        };
        let sku = detect(&id);
        assert_eq!(sku.name, "AMD EPYC 7302 (2S)");
        assert_eq!(sku.topology.total_cores(), 32);
    }

    #[test]
    fn with_dram_rewires_ram_level() {
        let slow = DramConfig {
            channels: 4,
            mem_clock_mhz: 1200,
            latency_ns: 110.0,
            efficiency: 0.65,
        };
        let sku = Sku::amd_epyc_7502().with_dram(slow.clone());
        let ram = sku.mem_level(MemLevel::Ram);
        assert_eq!(ram.latency, Latency::Nanos(110.0));
        let expected = slow.sustained_bytes_per_ns();
        assert!((ram.shared_bytes_per_ns.unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn with_sockets_scales_core_count() {
        let one = Sku::amd_epyc_7502().with_sockets(1);
        assert_eq!(one.topology.total_cores(), 32);
    }

    #[test]
    fn database_entries_are_internally_consistent() {
        for sku in Sku::database() {
            assert!(sku.topology.total_cores() > 0);
            assert!(!sku.pstates.states.is_empty());
            for level in MemLevel::ALL {
                let spec = sku.mem_level(level);
                assert_eq!(spec.level, level, "level array misordered in {}", sku.name);
                assert!(spec.line_bytes == 64);
                assert!(spec.per_core_bytes_per_cycle > 0.0);
                assert!(spec.mshrs > 0);
            }
            // Sizes strictly increase up the hierarchy.
            for w in sku.mem_levels.windows(2) {
                assert!(w[0].size_bytes < w[1].size_bytes);
            }
            assert!(sku.edc_amps_per_socket > 0.0);
            assert!(sku.ppt_w_per_socket > 0.0);
        }
    }
}
