//! Package topology: sockets, core complexes, cores, hardware threads.

/// Physical layout of the machine.
///
/// Zen 2 (§IV-A): up to eight Core Complex Dies (CCDs) per socket attach
/// to an I/O die; each CCD holds up to two Core Complexes (CCXs); each CCX
/// has four cores sharing an L3 slice. On the paper's test system each CCD
/// holds one CCX (footnote 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    pub sockets: u32,
    /// Core-complex dies per socket (monolithic designs: 1).
    pub ccds_per_socket: u32,
    /// Core complexes (L3 sharing domains) per CCD.
    pub ccxs_per_ccd: u32,
    /// Cores per CCX.
    pub cores_per_ccx: u32,
    /// Hardware threads per core (SMT).
    pub threads_per_core: u32,
}

impl Topology {
    /// Physical cores per socket.
    pub const fn cores_per_socket(&self) -> u32 {
        self.ccds_per_socket * self.ccxs_per_ccd * self.cores_per_ccx
    }

    /// Physical cores in the whole machine.
    pub const fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket()
    }

    /// Hardware threads in the whole machine.
    pub const fn total_threads(&self) -> u32 {
        self.total_cores() * self.threads_per_core
    }

    /// L3 sharing domains (CCXs) in the whole machine.
    pub const fn total_ccxs(&self) -> u32 {
        self.sockets * self.ccds_per_socket * self.ccxs_per_ccd
    }

    /// Socket index owning a given core (cores numbered socket-major).
    pub const fn socket_of_core(&self, core: u32) -> u32 {
        core / self.cores_per_socket()
    }

    /// CCX index (machine-global) owning a given core.
    pub const fn ccx_of_core(&self, core: u32) -> u32 {
        core / self.cores_per_ccx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table II system: 2 × EPYC 7502 = 2 × 32 cores, 64 threads each.
    fn rome() -> Topology {
        Topology {
            sockets: 2,
            ccds_per_socket: 8,
            ccxs_per_ccd: 1,
            cores_per_ccx: 4,
            threads_per_core: 2,
        }
    }

    #[test]
    fn rome_counts_match_table_ii() {
        let t = rome();
        assert_eq!(t.cores_per_socket(), 32);
        assert_eq!(t.total_cores(), 64);
        assert_eq!(t.total_threads(), 128);
        // 64x L1+L2 (per core), 16x L3 slices (Table II).
        assert_eq!(t.total_ccxs(), 16);
    }

    #[test]
    fn core_to_domain_mapping() {
        let t = rome();
        assert_eq!(t.socket_of_core(0), 0);
        assert_eq!(t.socket_of_core(31), 0);
        assert_eq!(t.socket_of_core(32), 1);
        assert_eq!(t.socket_of_core(63), 1);
        assert_eq!(t.ccx_of_core(0), 0);
        assert_eq!(t.ccx_of_core(3), 0);
        assert_eq!(t.ccx_of_core(4), 1);
        assert_eq!(t.ccx_of_core(63), 15);
    }

    #[test]
    fn haswell_monolithic() {
        let t = Topology {
            sockets: 2,
            ccds_per_socket: 1,
            ccxs_per_ccd: 1,
            cores_per_ccx: 12,
            threads_per_core: 2,
        };
        assert_eq!(t.total_cores(), 24);
        assert_eq!(t.total_ccxs(), 2);
        assert_eq!(t.ccx_of_core(13), 1);
    }
}
