//! Core pipeline descriptors: front-end and back-end.

/// Instruction-delivery structures of one core.
///
/// The paper's unroll-factor tuning (§III, §IV-C) is entirely about which
/// of these structures serves the loop: the loop buffer and µop cache are
/// power-efficient (and therefore *undesirable* for a stress test), the
/// decoders burn more power, and L2-resident code adds cache traffic but
/// risks stalls when L2 also serves data.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEnd {
    /// Legacy-decoder width in instructions per cycle.
    pub decode_width: u32,
    /// µops deliverable per cycle from the µop cache.
    pub opcache_width: u32,
    /// µop-cache capacity in µops (0 = no µop cache).
    pub opcache_capacity_uops: u32,
    /// Loop-stream-buffer capacity in µops (0 = none; Zen 2 has none,
    /// Haswell's LSD holds 56).
    pub loop_buffer_uops: u32,
    /// Instruction-fetch bandwidth from L1I in bytes per cycle.
    pub l1i_fetch_bytes_per_cycle: f64,
    /// Instruction-fetch bandwidth from L2 in bytes per cycle (code larger
    /// than L1I streams from L2 — the "large" regime of Fig. 8).
    pub l2_fetch_bytes_per_cycle: f64,
}

/// Which structure feeds the pipeline for a loop of a given size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FetchSource {
    /// Loop-stream buffer (smallest loops; clock-gates fetch+decode).
    LoopBuffer,
    /// µop cache (decoded µops; clock-gates the decoders).
    OpCache,
    /// L1 instruction cache through the legacy decoders.
    L1i,
    /// Code streams from L2 (exceeds L1I).
    L2,
}

impl FetchSource {
    pub const fn name(self) -> &'static str {
        match self {
            FetchSource::LoopBuffer => "loop-buffer",
            FetchSource::OpCache => "op-cache",
            FetchSource::L1i => "L1I+decoder",
            FetchSource::L2 => "L2+decoder",
        }
    }
}

impl FrontEnd {
    /// Classifies a loop by µop count and code bytes.
    pub fn fetch_source(&self, loop_uops: u64, loop_bytes: u64, l1i_bytes: u64) -> FetchSource {
        if self.loop_buffer_uops > 0 && loop_uops <= u64::from(self.loop_buffer_uops) {
            FetchSource::LoopBuffer
        } else if self.opcache_capacity_uops > 0
            && loop_uops <= u64::from(self.opcache_capacity_uops)
        {
            FetchSource::OpCache
        } else if loop_bytes <= l1i_bytes {
            FetchSource::L1i
        } else {
            FetchSource::L2
        }
    }

    /// Front-end-limited cycles per iteration for a loop with the given
    /// µop count, average instruction length and fetch source.
    pub fn cycles_per_iteration(
        &self,
        source: FetchSource,
        loop_uops: u64,
        loop_bytes: u64,
    ) -> f64 {
        let uops = loop_uops as f64;
        match source {
            FetchSource::LoopBuffer => uops / f64::from(self.opcache_width.max(self.decode_width)),
            FetchSource::OpCache => uops / f64::from(self.opcache_width),
            FetchSource::L1i => {
                let decode = uops / f64::from(self.decode_width);
                let fetch = loop_bytes as f64 / self.l1i_fetch_bytes_per_cycle;
                decode.max(fetch)
            }
            FetchSource::L2 => {
                let decode = uops / f64::from(self.decode_width);
                let fetch = loop_bytes as f64 / self.l2_fetch_bytes_per_cycle;
                decode.max(fetch)
            }
        }
    }
}

/// Execution resources of one core.
#[derive(Debug, Clone, PartialEq)]
pub struct Backend {
    /// 256-bit FMA-capable FP pipes (Zen 2: 2× fma/mul).
    pub fp_fma_pipes: u32,
    /// 256-bit FP add pipes (Zen 2: 2× add).
    pub fp_add_pipes: u32,
    /// Scalar ALU pipes (Zen 2: 4).
    pub alu_pipes: u32,
    /// Address-generation pipes (Zen 2: 3).
    pub agu_pipes: u32,
    /// Loads issued per cycle (Zen 2: 2×256-bit).
    pub loads_per_cycle: u32,
    /// Stores issued per cycle (Zen 2: 1×256-bit).
    pub stores_per_cycle: u32,
    /// Retire width in µops per cycle.
    pub retire_width: u32,
    /// Reorder-buffer capacity in µops (bounds how much latency the
    /// out-of-order engine can cover).
    pub rob_uops: u32,
    /// Reciprocal throughput of `sqrtsd` in cycles (the Fig. 2 low-power
    /// loop spends most cycles waiting on the unpipelined divider).
    pub sqrtsd_rtpt_cycles: f64,
}

impl Backend {
    /// Total FP pipes usable by "any-pipe" vector-logic µops.
    pub fn fp_total_pipes(&self) -> u32 {
        self.fp_fma_pipes + self.fp_add_pipes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zen2_fe() -> FrontEnd {
        FrontEnd {
            decode_width: 4,
            opcache_width: 8,
            opcache_capacity_uops: 4096,
            loop_buffer_uops: 0,
            l1i_fetch_bytes_per_cycle: 32.0,
            l2_fetch_bytes_per_cycle: 32.0,
        }
    }

    fn haswell_fe() -> FrontEnd {
        FrontEnd {
            decode_width: 4,
            opcache_width: 4,
            opcache_capacity_uops: 1536,
            loop_buffer_uops: 56,
            l1i_fetch_bytes_per_cycle: 16.0,
            l2_fetch_bytes_per_cycle: 16.0,
        }
    }

    #[test]
    fn fetch_source_transitions_zen2() {
        let fe = zen2_fe();
        let l1i = 32 * 1024;
        // Tiny loop: Zen 2 has no LSD, so µop cache.
        assert_eq!(fe.fetch_source(64, 300, l1i), FetchSource::OpCache);
        // Beyond 4096 µops: decoder from L1I (paper: u ≈ 1000 × 4-inst sets).
        assert_eq!(fe.fetch_source(4500, 20_000, l1i), FetchSource::L1i);
        // Beyond 32 KiB of code: L2 streaming (u ≈ 2000).
        assert_eq!(fe.fetch_source(9000, 40_000, l1i), FetchSource::L2);
    }

    #[test]
    fn fetch_source_uses_lsd_on_haswell() {
        let fe = haswell_fe();
        assert_eq!(fe.fetch_source(40, 200, 32 * 1024), FetchSource::LoopBuffer);
        assert_eq!(fe.fetch_source(100, 500, 32 * 1024), FetchSource::OpCache);
    }

    #[test]
    fn front_end_cycles_decode_bound() {
        let fe = zen2_fe();
        // 4000 µops, 4-wide decode ⇒ 1000 cycles if fetch keeps up.
        let c = fe.cycles_per_iteration(FetchSource::L1i, 4000, 16_000);
        assert!((c - 1000.0).abs() < 1e-9);
        // µop cache is 8-wide ⇒ 500 cycles.
        let c = fe.cycles_per_iteration(FetchSource::OpCache, 4000, 16_000);
        assert!((c - 500.0).abs() < 1e-9);
    }

    #[test]
    fn front_end_cycles_fetch_bound_from_l2() {
        let fe = zen2_fe();
        // 1000 µops but 64 KB of code: fetch 64k/32 = 2000 cycles dominates.
        let c = fe.cycles_per_iteration(FetchSource::L2, 1000, 64_000);
        assert!((c - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn backend_totals() {
        let be = Backend {
            fp_fma_pipes: 2,
            fp_add_pipes: 2,
            alu_pipes: 4,
            agu_pipes: 3,
            loads_per_cycle: 2,
            stores_per_cycle: 1,
            retire_width: 8,
            rob_uops: 224,
            sqrtsd_rtpt_cycles: 4.5,
        };
        assert_eq!(be.fp_total_pipes(), 4);
    }
}
