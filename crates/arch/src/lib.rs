//! # fs2-arch — processor architecture descriptors
//!
//! FIRESTARTER's whole premise is that the optimal stress workload depends
//! on the microarchitecture *and* the concrete SKU configuration (core
//! count, frequencies, DRAM timings — §III-A of the paper). This crate is
//! the single place where those facts live:
//!
//! * [`cache`] — memory-hierarchy level specifications (size, latency,
//!   bandwidth, miss-handling capacity) and DRAM configuration,
//! * [`pipeline`] — front-end (decoder, µop cache, loop buffer) and
//!   back-end (FP/ALU/AGU port) descriptors,
//! * [`topo`] — socket/CCD/CCX/core/SMT topology,
//! * [`pstate`] — performance states (frequency/voltage pairs) and the
//!   electrical design current (EDC) limit that triggers the throttling
//!   observed in Fig. 8/12,
//! * [`sku`] — the SKU database (AMD EPYC 7502 from Table II, the Intel
//!   Xeon E5-2680 v3 Haswell node of Fig. 1/2, plus variants) and the
//!   CPUID-style [`sku::detect`] used for workload selection.
//!
//! The simulator (`fs2-sim`) and the power model (`fs2-power`) consume
//! these descriptors; nothing else in the workspace hard-codes hardware
//! numbers.

pub mod cache;
pub mod pipeline;
pub mod pstate;
pub mod sku;
pub mod topo;

pub use cache::{DramConfig, Latency, MemLevel, MemLevelSpec};
pub use pipeline::{Backend, FrontEnd};
pub use pstate::{PState, PStateTable};
pub use sku::{detect, CpuId, Microarch, Sku, Vendor};
pub use topo::Topology;
