//! Performance states and electrical limits.

/// One performance state: a frequency/voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    pub freq_mhz: u32,
    /// Core voltage at this operating point, in volts.
    pub voltage: f64,
}

/// Table of selectable P-states plus the dynamic-throttle granularity.
///
/// §IV-E: Zen 2 decreases core frequency dynamically (in fine-grained
/// steps) to keep peaks within the electrical design current (EDC)
/// specification — the mechanism behind Fig. 12c's 2200/2500 MHz rows.
#[derive(Debug, Clone, PartialEq)]
pub struct PStateTable {
    /// Selectable states, highest frequency first. The paper's test system
    /// exposes 2500 (nominal), 2200 and 1500 MHz.
    pub states: Vec<PState>,
    /// Throttle step granularity in MHz (Zen 2: 25 MHz).
    pub throttle_step_mhz: u32,
    /// Lowest frequency throttling may reach.
    pub min_throttle_mhz: u32,
}

impl PStateTable {
    /// The nominal (highest selectable) state.
    pub fn nominal(&self) -> PState {
        self.states[0]
    }

    /// Finds the state for a requested frequency (exact match).
    pub fn by_freq(&self, freq_mhz: u32) -> Option<PState> {
        self.states.iter().copied().find(|s| s.freq_mhz == freq_mhz)
    }

    /// Voltage at an arbitrary (possibly throttled) frequency, linearly
    /// interpolated between table entries and clamped at the ends.
    pub fn voltage_at(&self, freq_mhz: f64) -> f64 {
        let mut states: Vec<PState> = self.states.clone();
        states.sort_by_key(|s| s.freq_mhz);
        let first = states.first().expect("non-empty P-state table");
        let last = states.last().expect("non-empty P-state table");
        if freq_mhz <= f64::from(first.freq_mhz) {
            return first.voltage;
        }
        if freq_mhz >= f64::from(last.freq_mhz) {
            return last.voltage;
        }
        for w in states.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if freq_mhz >= f64::from(lo.freq_mhz) && freq_mhz <= f64::from(hi.freq_mhz) {
                let t = (freq_mhz - f64::from(lo.freq_mhz)) / f64::from(hi.freq_mhz - lo.freq_mhz);
                return lo.voltage + t * (hi.voltage - lo.voltage);
            }
        }
        last.voltage
    }

    /// Quantizes a throttled frequency down to the step granularity.
    pub fn quantize_down(&self, freq_mhz: f64) -> f64 {
        let step = f64::from(self.throttle_step_mhz.max(1));
        let q = (freq_mhz / step).floor() * step;
        q.max(f64::from(self.min_throttle_mhz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rome_table() -> PStateTable {
        PStateTable {
            states: vec![
                PState {
                    freq_mhz: 2500,
                    voltage: 1.10,
                },
                PState {
                    freq_mhz: 2200,
                    voltage: 1.00,
                },
                PState {
                    freq_mhz: 1500,
                    voltage: 0.85,
                },
            ],
            throttle_step_mhz: 25,
            min_throttle_mhz: 400,
        }
    }

    #[test]
    fn nominal_and_lookup() {
        let t = rome_table();
        assert_eq!(t.nominal().freq_mhz, 2500);
        assert_eq!(t.by_freq(2200).unwrap().voltage, 1.00);
        assert!(t.by_freq(2000).is_none());
    }

    #[test]
    fn voltage_interpolation() {
        let t = rome_table();
        assert!((t.voltage_at(2500.0) - 1.10).abs() < 1e-12);
        assert!((t.voltage_at(1500.0) - 0.85).abs() < 1e-12);
        // midpoint of 2200..2500
        let v = t.voltage_at(2350.0);
        assert!((v - 1.05).abs() < 1e-9, "v = {v}");
        // clamped outside the table
        assert!((t.voltage_at(1000.0) - 0.85).abs() < 1e-12);
        assert!((t.voltage_at(3000.0) - 1.10).abs() < 1e-12);
    }

    #[test]
    fn voltage_is_monotonic_in_frequency() {
        let t = rome_table();
        let mut prev = 0.0;
        for f in (1500..=2500).step_by(100) {
            let v = t.voltage_at(f64::from(f));
            assert!(v >= prev, "voltage not monotonic at {f} MHz");
            prev = v;
        }
    }

    #[test]
    fn quantization_is_downward_and_clamped() {
        let t = rome_table();
        assert!((t.quantize_down(2437.3) - 2425.0).abs() < 1e-12);
        assert!((t.quantize_down(2500.0) - 2500.0).abs() < 1e-12);
        assert!((t.quantize_down(100.0) - 400.0).abs() < 1e-12);
    }
}
