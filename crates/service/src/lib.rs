//! # fs2-service — fleet-as-a-service
//!
//! The paper's Fig. 1 fleet pipeline as a long-running, multi-tenant
//! service instead of a one-shot CLI action. Four layers, many callers:
//!
//! * [`proto`] — the request layer: [`proto::FleetRequest`] /
//!   [`proto::FleetReply`] with dependency-free JSON-lines framing
//!   ([`json`]); 64-bit seeds and `f64` samples round-trip exactly, so
//!   a served reply is byte-comparable to a local run.
//! * [`admission`] — the control layer: per-request node·sample cost
//!   estimates, a bounded wait queue, and a queue/shed/reject policy
//!   so floods of requests degrade gracefully instead of OOMing.
//! * [`pool`] + the scheduler inside [`service::FleetService`] — the
//!   shard layer: each request's node range splits across a persistent
//!   worker pool via `FleetSim::run_shard`, and merges back
//!   bitwise-identically to the serial result.
//! * the engine layer stays `fs2-core`'s [`fs2_core::EngineRegistry`],
//!   shared: all per-seed registries share one `EngineCaches` tier, and
//!   the cross-request hit rates surface in every reply.
//!
//! Two transports expose the stack: [`broker`] (in-process, built on
//! the `fs2-metrics` channel seam — the CLI's `--fleet` path) and
//! [`tcp`] (plain TCP JSON-lines, the CLI's `--serve`/`--connect`).
//!
//! A fault-tolerance layer cuts across all of it: the pool supervises
//! its workers (panics caught, dead workers respawned, shard panics
//! typed as [`pool::ShardError`]), requests carry optional deadlines
//! checked at admission and between shards ([`timing`] is the lone
//! clock seam), the TCP transport bounds line length / read stalls /
//! connection count and drains connections on shutdown, clients
//! reconnect-and-retry on a deterministic backoff schedule, and a
//! seeded [`chaos`] harness injects worker panics, worker deaths, and
//! dropped replies at reproducible points to prove all of the above.

pub mod admission;
pub mod broker;
pub mod chaos;
pub mod json;
pub mod pool;
pub mod proto;
pub mod service;
pub mod tcp;
pub mod timing;

pub use admission::{AdmissionConfig, AdmissionError, AdmissionStats, Gate, Permit};
pub use broker::{Broker, BrokerJob};
pub use chaos::{ChaosConfig, ChaosState};
pub use json::{Json, JsonError};
pub use pool::{PoolStats, ShardError, WorkerPool};
pub use proto::{
    BudgetWire, CdfWire, EpisodeWire, FleetReply, FleetRequest, PoolWire, ProtoError, RegistryWire,
};
pub use service::{FleetService, ServiceConfig};
pub use tcp::{
    call, call_with_retry, serve, serve_with, Client, ClientError, RetryPolicy, Server,
    TransportConfig,
};
pub use timing::{Clock, ManualClock, WallClock};
