//! # fs2-service — fleet-as-a-service
//!
//! The paper's Fig. 1 fleet pipeline as a long-running, multi-tenant
//! service instead of a one-shot CLI action. Four layers, many callers:
//!
//! * [`proto`] — the request layer: [`proto::FleetRequest`] /
//!   [`proto::FleetReply`] with dependency-free JSON-lines framing
//!   ([`json`]); 64-bit seeds and `f64` samples round-trip exactly, so
//!   a served reply is byte-comparable to a local run.
//! * [`admission`] — the control layer: per-request node·sample cost
//!   estimates, a bounded wait queue, and a queue/shed/reject policy
//!   so floods of requests degrade gracefully instead of OOMing.
//! * [`pool`] + the scheduler inside [`service::FleetService`] — the
//!   shard layer: each request's node range splits across a persistent
//!   worker pool via `FleetSim::run_shard`, and merges back
//!   bitwise-identically to the serial result.
//! * the engine layer stays `fs2-core`'s [`fs2_core::EngineRegistry`],
//!   shared: all per-seed registries share one `EngineCaches` tier, and
//!   the cross-request hit rates surface in every reply.
//!
//! Two transports expose the stack: [`broker`] (in-process, built on
//! the `fs2-metrics` channel seam — the CLI's `--fleet` path) and
//! [`tcp`] (plain TCP JSON-lines, the CLI's `--serve`/`--connect`).

pub mod admission;
pub mod broker;
pub mod json;
pub mod pool;
pub mod proto;
pub mod service;
pub mod tcp;

pub use admission::{AdmissionConfig, AdmissionError, AdmissionStats, Gate, Permit};
pub use broker::{Broker, BrokerJob};
pub use json::{Json, JsonError};
pub use pool::WorkerPool;
pub use proto::{
    BudgetWire, CdfWire, EpisodeWire, FleetReply, FleetRequest, ProtoError, RegistryWire,
};
pub use service::{FleetService, ServiceConfig};
pub use tcp::{call, serve, Client, Server};
