//! Minimal JSON value model for the fleet-service wire protocol.
//!
//! The workspace is offline (no serde), and the protocol has two
//! bit-exactness requirements a float-backed parser would break:
//!
//! * 64-bit seeds must round-trip exactly, so numbers are stored as
//!   their **raw token** ([`Json::Num`]) and only converted at the
//!   accessor, never through an intermediate `f64`.
//! * power samples must round-trip to the same bits; finite `f64`s are
//!   encoded with Rust's shortest round-trip formatting and decoded
//!   with its correctly-rounded parser, which is an exact inverse.
//!
//! Only what the protocol needs is implemented: UTF-8 text, the JSON
//! value kinds, `\uXXXX` escapes (including surrogate pairs), and a
//! recursive-descent parser with a depth limit.

use std::fmt;

/// A parsed JSON value. Numbers keep their source token.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number as it appeared on the wire (or as formatted for it).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset and a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

impl Json {
    pub fn of_bool(v: bool) -> Json {
        Json::Bool(v)
    }

    pub fn of_str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    pub fn of_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    pub fn of_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// Shortest round-trip encoding; non-finite values (never produced
    /// by the simulator) degrade to `null` rather than invalid JSON.
    pub fn of_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    pub fn of_f64s(vs: &[f64]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::of_f64(v)).collect())
    }

    pub fn of_u64s(vs: &[u64]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::of_u64(v)).collect())
    }

    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects: the
    /// builders below only ever call it on [`Json::obj`]).
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            // fs2-lint: allow(no-panic-service) -- encode-side builder invariant: every caller chains off Json::obj(), wire input never reaches set()
            _ => panic!("set() on a non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact integer view of a number token (no float detour).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn f64s(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_f64).collect()
    }

    pub fn u64s(&self) -> Option<Vec<u64>> {
        self.as_arr()?.iter().map(Json::as_u64).collect()
    }

    /// Serializes without any whitespace (one request per line).
    pub fn encode(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(t) => out.push_str(t),
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode(out);
                }
                out.push('}');
            }
        }
    }

    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.encode(&mut out);
        out
    }

    /// Parses one JSON document; trailing whitespace is allowed,
    /// trailing garbage is not.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            reason,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str, reason: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null", "expected null").map(|()| Json::Null),
            Some(b't') => self.eat("true", "expected true").map(|()| Json::Bool(true)),
            Some(b'f') => self
                .eat("false", "expected false")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser<'a>| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("malformed number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("malformed fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("malformed exponent"));
            }
        }
        // The scanned range is ASCII by construction, but this is peer
        // input: a logic slip above must surface as a parse error on
        // the connection, never as a worker panic.
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number token"))?
            .to_string();
        Ok(Json::Num(token))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.eat("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is valid UTF-8 by
                    // construction: we parse &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex \\u digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected :"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for line in ["null", "true", "false", "0", "-12", "3.5", "1e300"] {
            assert_eq!(Json::parse(line).unwrap().to_line(), line);
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        for v in [0u64, 1, u64::MAX, 0xF1EE7, (1 << 53) + 1] {
            let wire = Json::of_u64(v).to_line();
            assert_eq!(Json::parse(&wire).unwrap().as_u64(), Some(v));
        }
    }

    #[test]
    fn f64_samples_round_trip_bitwise() {
        let values = [
            0.0,
            -0.0,
            359.9,
            83.125,
            f64::MIN_POSITIVE,
            f64::MAX,
            1.0 / 3.0,
            f64::from_bits(0x405526E41CAD1777),
        ];
        let wire = Json::of_f64s(&values).to_line();
        let back = Json::parse(&wire).unwrap().f64s().unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a:?} diverged");
        }
    }

    #[test]
    fn objects_nest_and_index() {
        let v = Json::obj()
            .set("a", Json::of_u64(7))
            .set("b", Json::Arr(vec![Json::Null, Json::of_str("x\n\"y")]));
        let parsed = Json::parse(&v.to_line()).unwrap();
        assert_eq!(parsed.get("a").unwrap().as_u64(), Some(7));
        let arr = parsed.get("b").unwrap().as_arr().unwrap();
        assert!(arr[0].is_null());
        assert_eq!(arr[1].as_str(), Some("x\n\"y"));
    }

    #[test]
    fn escapes_and_unicode() {
        let parsed = Json::parse(r#""\u0041\u00e9\ud83d\ude00\t""#).unwrap();
        assert_eq!(parsed.as_str(), Some("Aé😀\t"));
        // Encoding control characters stays ASCII-clean.
        assert_eq!(Json::of_str("a\u{1}b").to_line(), r#""a\u0001b""#);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.",
            "1e",
            "\"\\q\"",
            "01x",
            "{}b",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }
}
