//! The fleet service core: admission gate in front, persistent worker
//! pool underneath, one shared engine-cache tier across everything.
//!
//! A request travels the full stack: decode → cost estimate →
//! [`Gate::admit`] (which also screens unmeetable deadlines) →
//! per-seed [`EngineRegistry`] (all registries share one
//! [`EngineCaches`] tier, so repeated configurations re-serve payloads
//! and functional passes across requests) → plan → shards scattered on
//! the [`WorkerPool`] → bitwise-identical merge → reply.
//!
//! Every fault on that path degrades to a *typed* failure reply
//! instead of a hung or crashed connection: a panicking shard task is
//! contained by the pool and surfaces as [`kind::SHARD_PANIC`], a
//! deadline that expires between shards as
//! [`kind::DEADLINE_EXCEEDED`], and a shard set that fails to tile as
//! [`kind::SHARD_MERGE`]. Supervision counters (panics caught, workers
//! respawned) ride every reply that reached the shard layer, and the
//! seeded [`ChaosState`] — off unless [`ServiceConfig::chaos`] enables
//! it — injects those faults at deterministic points.

use crate::admission::{AdmissionConfig, AdmissionError, AdmissionStats, Gate};
use crate::chaos::{ChaosConfig, ChaosState};
use crate::pool::{PoolStats, ShardError, WorkerPool};
use crate::proto::{
    kind, BudgetWire, CdfWire, EpisodeWire, FleetReply, FleetRequest, PoolWire, RegistryWire,
};
use crate::timing::{Clock, WallClock};
use fs2_cluster::{shard_ranges, FleetShard, FleetSim, PowerCdf};
use fs2_core::{EngineCaches, EngineRegistry, RegistryStats};
use std::sync::{Arc, Mutex};

/// Service-level knobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the shard pool (0 = one per host core).
    pub workers: usize,
    /// Default shards per request (0 = one per worker); requests may
    /// override via [`FleetRequest::shards`].
    pub default_shards: usize,
    pub admission: AdmissionConfig,
    /// Fault-injection schedule; [`ChaosConfig::default`] is off.
    pub chaos: ChaosConfig,
}

impl ServiceConfig {
    /// A deliberately small footprint for tests and examples.
    pub fn small() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            default_shards: 2,
            admission: AdmissionConfig::default(),
            chaos: ChaosConfig::default(),
        }
    }
}

/// A long-running fleet-simulation service.
pub struct FleetService {
    gate: Gate,
    pool: WorkerPool,
    caches: Arc<EngineCaches>,
    /// One registry per engine seed (the seed keys cached functional
    /// passes); all of them share `caches`, so cross-seed requests
    /// still reuse payload builds.
    registries: Mutex<Vec<(u64, Arc<EngineRegistry>)>>,
    default_shards: usize,
    clock: Arc<dyn Clock>,
    chaos: Option<Arc<ChaosState>>,
}

impl FleetService {
    pub fn new(cfg: ServiceConfig) -> FleetService {
        FleetService::with_clock(cfg, Arc::new(WallClock::new()))
    }

    /// Builds the service on an explicit clock — the deterministic
    /// entry point for deadline tests ([`crate::timing::ManualClock`]).
    pub fn with_clock(cfg: ServiceConfig, clock: Arc<dyn Clock>) -> FleetService {
        FleetService {
            gate: Gate::new(cfg.admission),
            pool: WorkerPool::new(cfg.workers),
            caches: Arc::new(EngineCaches::new()),
            registries: Mutex::new(Vec::new()),
            default_shards: cfg.default_shards,
            clock,
            chaos: cfg
                .chaos
                .enabled()
                .then(|| Arc::new(ChaosState::new(cfg.chaos))),
        }
    }

    pub fn admission_config(&self) -> AdmissionConfig {
        self.gate.config()
    }

    pub fn admission_stats(&self) -> AdmissionStats {
        self.gate.stats()
    }

    /// Supervision counters of the shard pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The live chaos state, when fault injection is enabled. The TCP
    /// layer consults it for reply drops; tests for counters.
    pub fn chaos(&self) -> Option<&Arc<ChaosState>> {
        self.chaos.as_ref()
    }

    /// Counters of the registry serving `seed`, if any request used it.
    pub fn registry_stats(&self, seed: u64) -> Option<RegistryStats> {
        // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input: the table only pairs seeds with Arc handles
        let registries = self.registries.lock().expect("registry table poisoned");
        registries
            .iter()
            .find(|(s, _)| *s == seed)
            .map(|(_, r)| r.stats())
    }

    fn registry_for(&self, seed: u64) -> Arc<EngineRegistry> {
        // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input
        let mut registries = self.registries.lock().expect("registry table poisoned");
        if let Some((_, r)) = registries.iter().find(|(s, _)| *s == seed) {
            return Arc::clone(r);
        }
        let r = Arc::new(EngineRegistry::with_caches(seed, Arc::clone(&self.caches)));
        registries.push((seed, Arc::clone(&r)));
        r
    }

    fn pool_wire(&self) -> PoolWire {
        let s = self.pool.stats();
        PoolWire {
            panics_caught: s.panics_caught,
            workers_respawned: s.workers_respawned,
        }
    }

    /// Serves one request through the full stack.
    pub fn handle(&self, req: &FleetRequest) -> FleetReply {
        let cfg = req.to_config();
        // node·samples in 128-bit: an address-space overflow becomes an
        // oversize cost, not a wrap (FleetSizeError carries the total).
        let cost = match cfg.try_total_samples() {
            Ok(n) => n as u128,
            Err(e) => e.total,
        };
        let permit = match self.gate.admit(cost, req.deadline_ms) {
            Ok(p) => p,
            Err(e) => {
                let k = match e {
                    AdmissionError::Busy { .. } => kind::ADMISSION_BUSY,
                    AdmissionError::Oversize { .. } => kind::ADMISSION_OVERSIZE,
                    AdmissionError::DeadlineUnmeetable { .. } => kind::ADMISSION_DEADLINE,
                };
                return FleetReply::failure_kind(k, e.to_string());
            }
        };

        let registry = self.registry_for(cfg.seed);
        let shards = match req.shards.unwrap_or(self.default_shards) {
            0 => self.pool.workers(),
            n => n,
        };
        let sim = Arc::new(FleetSim::new(cfg));
        let plan = Arc::new(sim.plan(&registry));
        let ranges = shard_ranges(plan.total_nodes(), shards);

        // Fault injection: claim this request's slot in the chaos
        // schedule (a no-op when chaos is off).
        let chaos_idx = self.chaos.as_ref().map(|c| c.next_request());
        let mut panic_shard = None;
        let mut chaos_shard_ms = 0;
        if let (Some(c), Some(idx)) = (self.chaos.as_ref(), chaos_idx) {
            if c.take_kill(idx) {
                self.pool.condemn(1);
            }
            panic_shard = c.take_panic_shard(idx, ranges.len());
            chaos_shard_ms = c.shard_ms();
        }

        let deadline_at = req
            .deadline_ms
            .map(|d| self.clock.now_ms().saturating_add(d));
        let tasks: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(k, &(lo, hi))| {
                let sim = Arc::clone(&sim);
                let plan = Arc::clone(&plan);
                let clock = Arc::clone(&self.clock);
                let boom = panic_shard == Some(k);
                // Each task checks the deadline *before* proposing its
                // shard: an expired request degrades to a typed reply
                // instead of burning workers on doomed work. The Err
                // payload is the overshoot in ms.
                move || -> Result<FleetShard, u64> {
                    if chaos_shard_ms > 0 {
                        clock.advance_ms(chaos_shard_ms);
                    }
                    if let Some(deadline) = deadline_at {
                        let now = clock.now_ms();
                        if now > deadline {
                            return Err(now - deadline);
                        }
                    }
                    if boom {
                        // fs2-lint: allow(no-panic-service) -- chaos injection: this panic IS the fault under test; the pool's catch_unwind contains it
                        panic!("chaos: injected panic in shard task {k}");
                    }
                    Ok(sim.run_shard(&plan, lo, hi))
                }
            })
            .collect();
        let outcomes = self.pool.try_scatter(tasks);
        // Reap any worker the scatter (or chaos) killed before the
        // next request needs full capacity.
        self.pool.supervise();

        let mut parts = Vec::with_capacity(outcomes.len());
        let mut first_panic: Option<ShardError> = None;
        let mut worst_overshoot: Option<u64> = None;
        for outcome in outcomes {
            match outcome {
                Ok(Ok(shard)) => parts.push(shard),
                Ok(Err(over)) => {
                    worst_overshoot = Some(worst_overshoot.map_or(over, |w| w.max(over)));
                }
                Err(e) => {
                    if first_panic.is_none() {
                        first_panic = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_panic {
            permit.fail();
            drop(permit);
            let mut reply = FleetReply::failure_kind(kind::SHARD_PANIC, e.to_string());
            reply.pool = Some(self.pool_wire());
            return reply;
        }
        if let Some(over) = worst_overshoot {
            permit.fail();
            drop(permit);
            let mut reply = FleetReply::failure_kind(
                kind::DEADLINE_EXCEEDED,
                format!("deadline exceeded mid-flight by {over} ms"),
            );
            reply.pool = Some(self.pool_wire());
            return reply;
        }
        let run = match sim.try_merge_shards(&registry, &plan, parts) {
            Ok(run) => run,
            Err(e) => {
                permit.fail();
                drop(permit);
                let mut reply = FleetReply::failure_kind(kind::SHARD_MERGE, e.to_string());
                reply.pool = Some(self.pool_wire());
                return reply;
            }
        };
        drop(permit);

        let cdf = req.want_cdf.then(|| {
            let c = PowerCdf::from_samples(&run.samples, 0.1);
            CdfWire {
                bins: c.bins.clone(),
                min_w: c.min_w,
                max_w: c.max_w,
                samples: c.samples,
            }
        });
        let budget = run.budget.as_ref().map(|b| BudgetWire {
            budget_w: b.budget_w,
            policy: b.policy.name().to_string(),
            ticks: b.ticks,
            peak_fleet_w: b.peak_fleet_w,
            mean_fleet_w: b.mean_fleet_w,
            shed_ticks: b.shed_ticks.clone(),
            deferred_ticks: b.deferred_ticks.clone(),
            truncated_proposals: b.truncated_proposals,
            infeasible_floor_ticks: b.infeasible_floor_ticks,
            util_p95: b.utilization.quantile(0.95),
            states: b.states.iter().map(|s| s.to_string()).collect(),
        });
        let episodes = run.episodes.as_ref().map(|e| EpisodeWire {
            states: e.states.iter().map(|s| s.to_string()).collect(),
            empirical_shares: e.empirical_shares.clone(),
            model_shares: e.model_shares.clone(),
            mean_dwell_ticks: e.mean_dwell_ticks.clone(),
            lag1_autocorr: e.lag1_autocorr,
        });
        FleetReply {
            ok: true,
            error: None,
            error_kind: None,
            pool: Some(self.pool_wire()),
            samples: if req.want_samples {
                run.samples
            } else {
                Vec::new()
            },
            cdf,
            registry: RegistryWire::from_stats(&run.registry),
            power_points: run.power_table.len(),
            capped_points: run.capped_points,
            capped_samples: run.capped_samples,
            infeasible_points: run.infeasible_points,
            budget,
            episodes,
            shards: ranges.len(),
        }
    }

    /// Wire entry point: one request line in, one reply line out.
    /// Never panics on malformed input — decode failures become
    /// failure replies.
    pub fn handle_line(&self, line: &str) -> String {
        match FleetRequest::from_line(line) {
            Ok(req) => self.handle(&req).to_line(),
            Err(e) => FleetReply::failure_kind(kind::BAD_REQUEST, e.to_string()).to_line(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::ManualClock;
    use fs2_cluster::TemporalMode;

    fn bits(samples: &[f64]) -> Vec<u64> {
        samples.iter().map(|s| s.to_bits()).collect()
    }

    fn request(seed: u64) -> FleetRequest {
        FleetRequest {
            nodes: 24,
            samples_per_node: 120,
            seed: Some(seed),
            ..FleetRequest::fig1()
        }
    }

    #[test]
    fn served_samples_match_the_one_shot_path_bitwise() {
        let service = FleetService::new(ServiceConfig::small());
        for req in [
            request(41),
            FleetRequest {
                temporal: TemporalMode::Episodes,
                budget_w: Some(24.0 * 170.0),
                shards: Some(5),
                ..request(41)
            },
        ] {
            let direct = FleetSim::new(req.to_config()).run();
            let reply = service.handle(&req);
            assert!(reply.ok, "{:?}", reply.error);
            assert_eq!(
                bits(&direct.samples),
                bits(&reply.samples),
                "served bytes diverged from the one-shot run"
            );
            assert_eq!(reply.capped_samples, direct.capped_samples);
            assert_eq!(reply.power_points, direct.power_table.len());
            let pool = reply.pool.expect("successful replies carry pool counters");
            assert_eq!(pool.panics_caught, 0);
        }
    }

    #[test]
    fn profiled_request_serves_the_calibrated_fleet() {
        use fs2_calib::FleetProfile;
        let service = FleetService::new(ServiceConfig::small());
        let req = FleetRequest {
            profile: Some(FleetProfile::exemplar()),
            ..request(41)
        };
        // The wire round trip loses nothing: serve the decoded line.
        let decoded = FleetRequest::from_line(&req.to_line()).unwrap();
        let direct = FleetSim::new(req.to_config()).run();
        let reply = service.handle(&decoded);
        assert!(reply.ok, "{:?}", reply.error);
        assert_eq!(
            bits(&direct.samples),
            bits(&reply.samples),
            "served profiled fleet diverged from the one-shot run"
        );
        // Episode telemetry reflects the profile's floor share, not
        // the Taurus default of 0.10.
        let episodes = reply.episodes.expect("profile forces episode mode");
        assert!((episodes.model_shares[0] - 0.15).abs() < 1e-9);
        // Malformed profile text on the wire becomes a failure reply.
        let bad = r##"{"type":"fleet","profile":"# not a profile\n"}"##;
        let line = service.handle_line(bad);
        let failure = FleetReply::from_line(&line).unwrap();
        assert!(!failure.ok);
        assert!(failure.error.as_deref().unwrap().contains("bad `profile`"));
        assert_eq!(failure.error_kind.as_deref(), Some(kind::BAD_REQUEST));
    }

    #[test]
    fn identical_requests_hit_the_cross_request_caches() {
        let service = FleetService::new(ServiceConfig::small());
        let req = request(7);
        let first = service.handle(&req);
        assert_eq!(first.registry.requests, 1);
        assert_eq!(first.registry.cross_payload_lookups, 0);
        let second = service.handle(&req);
        assert_eq!(bits(&first.samples), bits(&second.samples));
        assert_eq!(second.registry.requests, 2);
        assert!(
            second.registry.cross_payload_hit_rate() > 0.99,
            "identical config must re-serve every payload: {:?}",
            second.registry
        );
        assert!(second.registry.cross_exec_hit_rate() > 0.99);
        // A near-identical request (new cap) still reuses the payload
        // tier even though its operating points differ.
        let capped = service.handle(&FleetRequest {
            power_cap_w: Some(260.0),
            ..request(7)
        });
        assert!(capped.ok);
        assert!(capped.registry.cross_payload_hit_rate() > 0.99);
    }

    #[test]
    fn distinct_seeds_share_the_payload_tier_across_registries() {
        let service = FleetService::new(ServiceConfig::small());
        let a = service.handle(&request(1));
        assert!(a.registry.payload_misses > 0);
        let b = service.handle(&request(2));
        // Seed 2 runs on its own registry, but the cache tier is
        // shared service-wide, so part of the payload work re-serves
        // (the seed-keyed entries still build fresh).
        assert!(
            b.registry.payload_hits > 0,
            "second seed saw none of the shared tier: {:?}",
            b.registry
        );
    }

    #[test]
    fn oversize_and_overflowing_requests_are_rejected_cleanly() {
        let service = FleetService::new(ServiceConfig {
            admission: AdmissionConfig {
                max_request_cost: 10_000,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::small()
        });
        let reply = service.handle(&FleetRequest {
            nodes: 1000,
            samples_per_node: 1000,
            ..FleetRequest::fig1()
        });
        assert!(!reply.ok);
        assert!(reply.error.as_deref().unwrap().contains("rejected"));
        assert_eq!(reply.error_kind.as_deref(), Some(kind::ADMISSION_OVERSIZE));
        // u32::MAX × u32::MAX nodes·samples overflows usize on every
        // target; the checked total feeds admission, nothing wraps.
        let reply = service.handle(&FleetRequest {
            nodes: u32::MAX,
            samples_per_node: u32::MAX,
            ..FleetRequest::fig1()
        });
        assert!(!reply.ok, "address-space bomb was admitted");
        assert_eq!(service.admission_stats().rejected_oversize, 2);
        assert_eq!(service.admission_stats().admitted, 0);
    }

    #[test]
    fn unmeetable_deadline_is_rejected_at_admission() {
        let service = FleetService::new(ServiceConfig {
            admission: AdmissionConfig {
                // 24 nodes × 120 samples = 2880 cost → 288 ms of work.
                cost_per_ms: 10,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::small()
        });
        let reply = service.handle(&FleetRequest {
            deadline_ms: Some(100),
            ..request(5)
        });
        assert!(!reply.ok);
        assert_eq!(reply.error_kind.as_deref(), Some(kind::ADMISSION_DEADLINE));
        assert_eq!(service.admission_stats().rejected_deadline, 1);
        // A meetable deadline sails through.
        let reply = service.handle(&FleetRequest {
            deadline_ms: Some(500),
            ..request(5)
        });
        assert!(reply.ok, "{:?}", reply.error);
    }

    #[test]
    fn mid_flight_deadline_degrades_to_a_typed_reply() {
        // Manual clock + chaos shard latency: each shard task "takes"
        // 40 ms, so a 50 ms deadline dies between shards while a lax
        // one survives — deterministically.
        let clock = Arc::new(ManualClock::new());
        let service = FleetService::with_clock(
            ServiceConfig {
                chaos: ChaosConfig {
                    shard_ms: 40,
                    ..ChaosConfig::default()
                },
                ..ServiceConfig::small()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let reply = service.handle(&FleetRequest {
            deadline_ms: Some(50),
            ..request(9)
        });
        assert!(!reply.ok);
        assert_eq!(reply.error_kind.as_deref(), Some(kind::DEADLINE_EXCEEDED));
        assert!(
            reply.error.as_deref().unwrap().contains("mid-flight"),
            "{:?}",
            reply.error
        );
        let stats = service.admission_stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.failed, 1, "the permit must book as failed");
        // Plenty of headroom → the same request succeeds.
        let reply = service.handle(&FleetRequest {
            deadline_ms: Some(10_000),
            ..request(9)
        });
        assert!(reply.ok, "{:?}", reply.error);
        assert_eq!(service.admission_stats().completed, 1);
    }

    #[test]
    fn injected_shard_panic_becomes_a_typed_reply_and_the_pool_recovers() {
        let service = FleetService::new(ServiceConfig {
            chaos: ChaosConfig {
                seed: 11,
                panic_every: 2,
                ..ChaosConfig::default()
            },
            ..ServiceConfig::small()
        });
        let baseline = FleetService::new(ServiceConfig::small());
        let req = request(33);
        // Request 1: schedule leaves it alone.
        let first = service.handle(&req);
        assert!(first.ok, "{:?}", first.error);
        // Request 2: one shard panics; the reply is typed, not a hang.
        let second = service.handle(&req);
        assert!(!second.ok);
        assert_eq!(second.error_kind.as_deref(), Some(kind::SHARD_PANIC));
        assert!(
            second.error.as_deref().unwrap().contains("injected panic"),
            "{:?}",
            second.error
        );
        assert_eq!(second.pool.unwrap().panics_caught, 1);
        // Request 3 (the "retry"): bitwise-identical to an undisturbed
        // service run of the same request.
        let third = service.handle(&req);
        assert!(third.ok, "{:?}", third.error);
        let undisturbed = baseline.handle(&req);
        assert_eq!(bits(&third.samples), bits(&undisturbed.samples));
        // Accounting: 3 admitted = 2 completed + 1 failed.
        let stats = service.admission_stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(service.chaos().unwrap().panics_injected(), 1);
    }

    #[test]
    fn shard_count_and_worker_count_do_not_change_the_bytes() {
        let req = request(13);
        let reference = FleetSim::new(req.to_config()).run();
        for (workers, shards) in [(1, 1), (2, 7), (4, 24), (3, 64)] {
            let service = FleetService::new(ServiceConfig {
                workers,
                default_shards: shards,
                ..ServiceConfig::small()
            });
            let reply = service.handle(&req);
            assert!(reply.ok);
            assert_eq!(
                bits(&reference.samples),
                bits(&reply.samples),
                "{workers} workers / {shards} shards diverged"
            );
        }
    }
}
