//! Admission control: the layer between the request front-ends and
//! the scheduler.
//!
//! Every request carries a cost estimate (total node·samples). The
//! gate admits up to `max_active` requests at once, queues up to
//! `max_queue` more (blocking the submitting connection — natural
//! backpressure for line-oriented clients), and *sheds* everything
//! beyond that instead of letting thousands of simultaneous requests
//! allocate fleets concurrently and OOM the host. Oversize requests —
//! including ones whose sample count overflows the address space —
//! are rejected outright before any allocation happens, and when the
//! gate knows its throughput ([`AdmissionConfig::cost_per_ms`]) it
//! also rejects requests whose deadline the cost estimate cannot meet.
//!
//! Accounting closes over every path: each submission ends in exactly
//! one of `admitted`, `shed_busy`, `rejected_oversize`, or
//! `rejected_deadline`, and each admitted permit ends in exactly one
//! of `completed` or `failed` (see [`Permit::fail`]) — the identities
//! [`AdmissionStats::submitted`] and the chaos suite pin.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Gate policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Requests simulated concurrently.
    pub max_active: usize,
    /// Requests parked behind them before the gate starts shedding.
    pub max_queue: usize,
    /// Largest admissible node·sample cost per request.
    pub max_request_cost: u64,
    /// Estimated node·samples served per millisecond, used to screen
    /// request deadlines at admission (0 disables the screen: every
    /// deadline is then checked only between shards, mid-flight).
    pub cost_per_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_active: 4,
            max_queue: 64,
            // The Fig. 1 fleet is ~1.2 M node·samples; a thousand of
            // those still fits, an address-space bomb does not.
            max_request_cost: 1 << 30,
            cost_per_ms: 0,
        }
    }
}

/// Why the gate turned a request away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Estimated cost above [`AdmissionConfig::max_request_cost`]
    /// (or not even representable).
    Oversize { cost: u128, limit: u64 },
    /// Active slots and the wait queue are both full.
    Busy { active: usize, queued: usize },
    /// The cost estimate cannot finish inside the request's deadline
    /// at the gate's configured throughput.
    DeadlineUnmeetable {
        cost: u128,
        deadline_ms: u64,
        estimated_ms: u64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Oversize { cost, limit } => write!(
                f,
                "rejected: request cost {cost} node-samples exceeds the {limit} limit"
            ),
            AdmissionError::Busy { active, queued } => {
                write!(f, "shed: service busy ({active} active, {queued} queued)")
            }
            AdmissionError::DeadlineUnmeetable {
                cost,
                deadline_ms,
                estimated_ms,
            } => write!(
                f,
                "rejected: cost {cost} needs ~{estimated_ms} ms, past the {deadline_ms} ms deadline"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Lifetime counters of one gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests that got an active slot (immediately or after queuing).
    pub admitted: u64,
    /// Requests that had to queue before admission.
    pub queued: u64,
    /// Requests shed because the queue was full.
    pub shed_busy: u64,
    /// Requests rejected for size before touching the queue.
    pub rejected_oversize: u64,
    /// Requests rejected because their deadline was unmeetable.
    pub rejected_deadline: u64,
    /// Admitted requests whose permit was released cleanly.
    pub completed: u64,
    /// Admitted requests whose permit was marked failed (shard panic,
    /// mid-flight deadline, …) before release.
    pub failed: u64,
    /// Deepest the wait queue ever got.
    pub peak_queue_depth: usize,
    /// Currently running requests.
    pub active: usize,
    /// Currently parked requests.
    pub queue_depth: usize,
}

impl AdmissionStats {
    /// Every request the gate ever saw: each submission lands in
    /// exactly one of the four buckets.
    pub fn submitted(&self) -> u64 {
        self.admitted + self.shed_busy + self.rejected_oversize + self.rejected_deadline
    }
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    queued: usize,
}

/// The admission gate. An admitted request holds a [`Permit`]; the
/// slot frees when the permit drops.
#[derive(Debug)]
pub struct Gate {
    cfg: AdmissionConfig,
    state: Mutex<GateState>,
    freed: Condvar,
    admitted: AtomicU64,
    queued_total: AtomicU64,
    shed_busy: AtomicU64,
    rejected_oversize: AtomicU64,
    rejected_deadline: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    peak_queue_depth: AtomicUsize,
}

/// An occupied active slot; dropping it releases the slot and wakes
/// one queued request. Call [`Permit::fail`] before the drop to book
/// the request as failed rather than completed.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
    failed: AtomicBool,
}

impl Permit<'_> {
    /// Books this request as failed (shard panic, mid-flight deadline,
    /// merge error) when the permit drops. Idempotent.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if self.failed.load(Ordering::SeqCst) {
            self.gate.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.gate.completed.fetch_add(1, Ordering::Relaxed);
        }
        // fs2-lint: allow(no-panic-service) -- lock poisoning means a holder already panicked; propagating is the least-bad option in a Drop
        let mut st = self.gate.state.lock().expect("gate state poisoned");
        st.active -= 1;
        drop(st);
        self.gate.freed.notify_one();
    }
}

impl Gate {
    pub fn new(cfg: AdmissionConfig) -> Gate {
        assert!(cfg.max_active > 0, "gate needs at least one active slot");
        Gate {
            cfg,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            queued_total: AtomicU64::new(0),
            shed_busy: AtomicU64::new(0),
            rejected_oversize: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            peak_queue_depth: AtomicUsize::new(0),
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Admits, queues, or rejects a request of the given estimated
    /// cost. Blocks while queued; costs beyond `u64` (address-space
    /// overflow upstream) are always oversize. A `deadline_ms` the
    /// configured throughput cannot meet is rejected up front rather
    /// than admitted to fail mid-flight.
    pub fn admit(
        &self,
        cost: u128,
        deadline_ms: Option<u64>,
    ) -> Result<Permit<'_>, AdmissionError> {
        if cost > u128::from(self.cfg.max_request_cost) {
            self.rejected_oversize.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::Oversize {
                cost,
                limit: self.cfg.max_request_cost,
            });
        }
        if let Some(deadline) = deadline_ms {
            if self.cfg.cost_per_ms > 0 {
                let estimated_ms = cost.div_ceil(u128::from(self.cfg.cost_per_ms));
                if estimated_ms > u128::from(deadline) {
                    self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    return Err(AdmissionError::DeadlineUnmeetable {
                        cost,
                        deadline_ms: deadline,
                        estimated_ms: u64::try_from(estimated_ms).unwrap_or(u64::MAX),
                    });
                }
            }
        }
        // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input: the critical sections below only touch two counters
        let mut st = self.state.lock().expect("gate state poisoned");
        if st.active >= self.cfg.max_active {
            if st.queued >= self.cfg.max_queue {
                self.shed_busy.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::Busy {
                    active: st.active,
                    queued: st.queued,
                });
            }
            st.queued += 1;
            self.queued_total.fetch_add(1, Ordering::Relaxed);
            self.peak_queue_depth
                .fetch_max(st.queued, Ordering::Relaxed);
            while st.active >= self.cfg.max_active {
                // fs2-lint: allow(no-panic-service) -- Condvar::wait fails only on lock poisoning (see above)
                st = self.freed.wait(st).expect("gate state poisoned");
            }
            st.queued -= 1;
        }
        st.active += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit {
            gate: self,
            failed: AtomicBool::new(false),
        })
    }

    pub fn stats(&self) -> AdmissionStats {
        // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input
        let st = self.state.lock().expect("gate state poisoned");
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued_total.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            rejected_oversize: self.rejected_oversize.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            active: st.active,
            queue_depth: st.queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn oversize_requests_never_enter_the_queue() {
        let gate = Gate::new(AdmissionConfig {
            max_request_cost: 100,
            ..AdmissionConfig::default()
        });
        let err = gate.admit(101, None).unwrap_err();
        assert!(matches!(err, AdmissionError::Oversize { .. }));
        // Even u64-overflowing costs are a clean reject.
        let err = gate.admit(u128::MAX, None).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
        let stats = gate.stats();
        assert_eq!(stats.rejected_oversize, 2);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.admitted, 0);
        assert_eq!(stats.submitted(), 2);
    }

    #[test]
    fn permits_free_slots_on_drop() {
        let gate = Gate::new(AdmissionConfig {
            max_active: 1,
            max_queue: 0,
            ..AdmissionConfig::default()
        });
        let permit = gate.admit(1, None).unwrap();
        assert!(matches!(
            gate.admit(1, None),
            Err(AdmissionError::Busy { .. })
        ));
        drop(permit);
        assert!(gate.admit(1, None).is_ok());
        assert_eq!(gate.stats().shed_busy, 1);
    }

    #[test]
    fn unmeetable_deadlines_are_rejected_up_front() {
        let gate = Gate::new(AdmissionConfig {
            cost_per_ms: 10,
            ..AdmissionConfig::default()
        });
        // 1000 cost units / 10 per ms = 100 ms of work.
        assert!(gate.admit(1000, Some(100)).is_ok());
        let err = gate.admit(1000, Some(99)).unwrap_err();
        assert!(
            matches!(
                err,
                AdmissionError::DeadlineUnmeetable {
                    estimated_ms: 100,
                    deadline_ms: 99,
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("deadline"), "{err}");
        // No throughput estimate → no up-front screen.
        let lax = Gate::new(AdmissionConfig::default());
        assert!(lax.admit(1000, Some(1)).is_ok());
        let stats = gate.stats();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.submitted(), 2);
    }

    #[test]
    fn permits_book_completed_or_failed_exactly_once() {
        let gate = Gate::new(AdmissionConfig::default());
        drop(gate.admit(1, None).unwrap());
        let failing = gate.admit(1, None).unwrap();
        failing.fail();
        failing.fail(); // idempotent
        drop(failing);
        let stats = gate.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.admitted, stats.completed + stats.failed);
    }

    #[test]
    fn overload_queues_up_to_the_bound_and_sheds_the_rest() {
        // 1 active slot, 2 queue slots, 16 threads storming the gate:
        // the queue depth must never exceed the bound, nobody panics,
        // and every request is accounted admitted or shed.
        let gate = Arc::new(Gate::new(AdmissionConfig {
            max_active: 1,
            max_queue: 2,
            max_request_cost: 1 << 20,
            cost_per_ms: 0,
        }));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        match gate.admit(10, None) {
                            Ok(_permit) => std::thread::yield_now(),
                            Err(AdmissionError::Busy { queued, .. }) => {
                                assert!(queued <= 2, "queue ran past its bound: {queued}");
                            }
                            Err(e) => panic!("unexpected verdict: {e}"),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = gate.stats();
        assert_eq!(stats.active, 0);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.peak_queue_depth <= 2);
        assert_eq!(stats.admitted + stats.shed_busy, 16 * 20);
        assert_eq!(stats.submitted(), 16 * 20);
        assert_eq!(stats.admitted, stats.completed + stats.failed);
        assert_eq!(stats.failed, 0, "nobody marked a permit failed");
        assert!(stats.admitted > 0, "somebody must get through");
    }
}
