//! Wire protocol of the fleet service: [`FleetRequest`] in,
//! [`FleetReply`] out, one JSON object per line.
//!
//! The request mirrors the CLI's `--fleet` knobs (node count, samples
//! per node, seed, temporal mode, caps, budget) plus service-side
//! controls (shard count, which artifacts to return). The reply
//! carries everything the CLI printer shows for a one-shot run —
//! samples, registry counters, cap/budget/episode telemetry — so a
//! remote client renders byte-identical output to the local path.
//!
//! Floats and 64-bit seeds round-trip exactly (see [`crate::json`]),
//! which is what makes the CI smoke diff of served-vs-local samples
//! meaningful.

use crate::json::Json;
use fs2_calib::FleetProfile;
use fs2_cluster::{BudgetPolicy, FleetConfig, TemporalMode};
use std::fmt;

/// A malformed or unsupported request/reply line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtoError {}

fn perr(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// One fleet-simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRequest {
    /// Total fleet size; expanded via the Taurus SKU ratio like the
    /// CLI's `--nodes`.
    pub nodes: u32,
    pub samples_per_node: u32,
    /// `None` uses the Fig. 1 seed, like the CLI without `--seed`.
    pub seed: Option<u64>,
    pub temporal: TemporalMode,
    /// Sweep threads for the plan/apply phases (0 = host cores).
    pub threads: usize,
    pub power_cap_w: Option<f64>,
    pub budget_w: Option<f64>,
    pub budget_policy: BudgetPolicy,
    /// Shard count override; `None` leaves it to the service.
    pub shards: Option<usize>,
    /// Optional completion deadline, in milliseconds from admission.
    /// The gate rejects deadlines its throughput estimate cannot meet
    /// ([`kind::ADMISSION_DEADLINE`]); an admitted request that still
    /// overruns degrades to a typed [`kind::DEADLINE_EXCEEDED`] reply
    /// at the next between-shards check.
    pub deadline_ms: Option<u64>,
    /// Return the raw 60 s-mean samples (the big artifact).
    pub want_samples: bool,
    /// Return the binned 0.1 W CDF.
    pub want_cdf: bool,
    /// Calibrated fleet profile to drive the run (forces episode
    /// mode). Travels on the wire as the canonical profile text, so
    /// a `--calibrate` artifact can be served verbatim; malformed
    /// profile text is rejected at decode time with the
    /// `ProfileError` message.
    pub profile: Option<FleetProfile>,
}

impl FleetRequest {
    /// The Fig. 1 pipeline as a request (612 nodes, default seed).
    pub fn fig1() -> FleetRequest {
        FleetRequest {
            nodes: 612,
            samples_per_node: 2000,
            seed: None,
            temporal: TemporalMode::Iid,
            threads: 0,
            power_cap_w: None,
            budget_w: None,
            budget_policy: BudgetPolicy::default(),
            shards: None,
            deadline_ms: None,
            want_samples: true,
            want_cdf: false,
            profile: None,
        }
    }

    /// Expands the request into the simulator configuration, exactly
    /// like the CLI builds one from its flags.
    pub fn to_config(&self) -> FleetConfig {
        let mut cfg = FleetConfig::taurus_haswell_scaled(self.nodes);
        cfg.samples_per_node = self.samples_per_node;
        cfg.threads = self.threads;
        cfg.temporal = self.temporal;
        cfg.power_cap_w = self.power_cap_w;
        cfg.budget_w = self.budget_w;
        cfg.budget_policy = self.budget_policy;
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        if let Some(profile) = &self.profile {
            profile.apply(&mut cfg);
        }
        cfg
    }

    pub fn to_json(&self) -> Json {
        let opt_f64 = |v: Option<f64>| v.map(Json::of_f64).unwrap_or(Json::Null);
        Json::obj()
            .set("type", Json::of_str("fleet"))
            .set("nodes", Json::of_u64(u64::from(self.nodes)))
            .set(
                "samples_per_node",
                Json::of_u64(u64::from(self.samples_per_node)),
            )
            .set("seed", self.seed.map(Json::of_u64).unwrap_or(Json::Null))
            .set(
                "temporal",
                Json::of_str(match self.temporal {
                    TemporalMode::Iid => "iid",
                    TemporalMode::Episodes => "episodes",
                }),
            )
            .set("threads", Json::of_usize(self.threads))
            .set("cap_w", opt_f64(self.power_cap_w))
            .set("budget_w", opt_f64(self.budget_w))
            .set(
                "budget_policy",
                Json::of_str(match self.budget_policy {
                    BudgetPolicy::ShedToFloor => "shed",
                    BudgetPolicy::Defer => "defer",
                }),
            )
            .set(
                "shards",
                self.shards.map(Json::of_usize).unwrap_or(Json::Null),
            )
            .set(
                "deadline_ms",
                self.deadline_ms.map(Json::of_u64).unwrap_or(Json::Null),
            )
            .set("want_samples", Json::of_bool(self.want_samples))
            .set("want_cdf", Json::of_bool(self.want_cdf))
            .set(
                "profile",
                self.profile
                    .as_ref()
                    .map(|p| Json::of_str(&p.to_text()))
                    .unwrap_or(Json::Null),
            )
    }

    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    pub fn from_json(v: &Json) -> Result<FleetRequest, ProtoError> {
        match v.get("type").and_then(Json::as_str) {
            Some("fleet") => {}
            Some(other) => return Err(perr(format!("unknown request type `{other}`"))),
            None => return Err(perr("missing request type")),
        }
        let u32_field = |key: &str, default: u32| -> Result<u32, ProtoError> {
            match v.get(key) {
                None => Ok(default),
                Some(j) => j
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| perr(format!("`{key}` must be a u32"))),
            }
        };
        let opt_f64 = |key: &str| -> Result<Option<f64>, ProtoError> {
            match v.get(key) {
                None => Ok(None),
                Some(Json::Null) => Ok(None),
                Some(j) => {
                    let w = j
                        .as_f64()
                        .ok_or_else(|| perr(format!("`{key}` must be a number")))?;
                    if !w.is_finite() || w <= 0.0 {
                        return Err(perr(format!("`{key}` must be a positive wattage")));
                    }
                    Ok(Some(w))
                }
            }
        };
        let nodes = u32_field("nodes", 612)?;
        if nodes == 0 {
            return Err(perr("`nodes` must be at least 1"));
        }
        let samples_per_node = u32_field("samples_per_node", 2000)?;
        if samples_per_node == 0 {
            return Err(perr("`samples_per_node` must be at least 1"));
        }
        let seed = match v.get("seed") {
            None | Some(Json::Null) => None,
            Some(j) => Some(j.as_u64().ok_or_else(|| perr("`seed` must be a u64"))?),
        };
        let temporal = match v.get("temporal").and_then(Json::as_str) {
            None | Some("iid") => TemporalMode::Iid,
            Some("episodes") => TemporalMode::Episodes,
            Some(other) => return Err(perr(format!("unknown temporal mode `{other}`"))),
        };
        let budget_policy = match v.get("budget_policy").and_then(Json::as_str) {
            None | Some("shed") | Some("shed-to-floor") => BudgetPolicy::ShedToFloor,
            Some("defer") => BudgetPolicy::Defer,
            Some(other) => return Err(perr(format!("unknown budget policy `{other}`"))),
        };
        let threads = match v.get("threads") {
            None | Some(Json::Null) => 0,
            Some(j) => j
                .as_usize()
                .ok_or_else(|| perr("`threads` must be an integer"))?,
        };
        let shards = match v.get("shards") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_usize()
                    .filter(|&s| s > 0)
                    .ok_or_else(|| perr("`shards` must be a positive integer"))?,
            ),
        };
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_u64()
                    .filter(|&d| d > 0)
                    .ok_or_else(|| perr("`deadline_ms` must be a positive integer"))?,
            ),
        };
        let profile = match v.get("profile") {
            None | Some(Json::Null) => None,
            Some(j) => {
                let text = j
                    .as_str()
                    .ok_or_else(|| perr("`profile` must be a profile-text string"))?;
                Some(
                    FleetProfile::from_text(text)
                        .map_err(|e| perr(format!("bad `profile`: {e}")))?,
                )
            }
        };
        Ok(FleetRequest {
            nodes,
            samples_per_node,
            seed,
            temporal,
            threads,
            power_cap_w: opt_f64("cap_w")?,
            budget_w: opt_f64("budget_w")?,
            budget_policy,
            shards,
            deadline_ms,
            want_samples: v
                .get("want_samples")
                .and_then(Json::as_bool)
                .unwrap_or(true),
            want_cdf: v.get("want_cdf").and_then(Json::as_bool).unwrap_or(false),
            profile,
        })
    }

    pub fn from_line(line: &str) -> Result<FleetRequest, ProtoError> {
        let v = Json::parse(line).map_err(|e| perr(e.to_string()))?;
        FleetRequest::from_json(&v)
    }
}

/// Engine-registry counters on the wire (the subset the CLI prints
/// plus the cross-request cache telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryWire {
    pub engines: usize,
    pub payload_hits: u64,
    pub payload_misses: u64,
    pub decoded_hits: u64,
    pub decoded_misses: u64,
    pub exec_hits: u64,
    pub exec_misses: u64,
    pub prescreen_evals: u64,
    pub prescreen_pruned: u64,
    pub requests: u64,
    pub cross_payload_hits: u64,
    pub cross_payload_lookups: u64,
    pub cross_exec_hits: u64,
    pub cross_exec_lookups: u64,
}

impl RegistryWire {
    pub fn from_stats(s: &fs2_core::RegistryStats) -> RegistryWire {
        RegistryWire {
            engines: s.engines,
            payload_hits: s.payload_hits,
            payload_misses: s.payload_misses,
            decoded_hits: s.decoded_hits,
            decoded_misses: s.decoded_misses,
            exec_hits: s.exec_hits,
            exec_misses: s.exec_misses,
            prescreen_evals: s.prescreen_evals,
            prescreen_pruned: s.prescreen_pruned,
            requests: s.requests,
            cross_payload_hits: s.cross_payload_hits,
            cross_payload_lookups: s.cross_payload_lookups,
            cross_exec_hits: s.cross_exec_hits,
            cross_exec_lookups: s.cross_exec_lookups,
        }
    }

    /// Mirror of `RegistryStats::prescreen_prune_rate`.
    pub fn prescreen_prune_rate(&self) -> f64 {
        if self.prescreen_evals == 0 {
            0.0
        } else {
            self.prescreen_pruned as f64 / self.prescreen_evals as f64
        }
    }

    pub fn cross_payload_hit_rate(&self) -> f64 {
        rate(self.cross_payload_hits, self.cross_payload_lookups)
    }

    pub fn cross_exec_hit_rate(&self) -> f64 {
        rate(self.cross_exec_hits, self.cross_exec_lookups)
    }

    fn to_json(self) -> Json {
        Json::obj()
            .set("engines", Json::of_usize(self.engines))
            .set("payload_hits", Json::of_u64(self.payload_hits))
            .set("payload_misses", Json::of_u64(self.payload_misses))
            .set("decoded_hits", Json::of_u64(self.decoded_hits))
            .set("decoded_misses", Json::of_u64(self.decoded_misses))
            .set("exec_hits", Json::of_u64(self.exec_hits))
            .set("exec_misses", Json::of_u64(self.exec_misses))
            .set("prescreen_evals", Json::of_u64(self.prescreen_evals))
            .set("prescreen_pruned", Json::of_u64(self.prescreen_pruned))
            .set("requests", Json::of_u64(self.requests))
            .set("cross_payload_hits", Json::of_u64(self.cross_payload_hits))
            .set(
                "cross_payload_lookups",
                Json::of_u64(self.cross_payload_lookups),
            )
            .set("cross_exec_hits", Json::of_u64(self.cross_exec_hits))
            .set("cross_exec_lookups", Json::of_u64(self.cross_exec_lookups))
    }

    fn from_json(v: &Json) -> RegistryWire {
        let u = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        RegistryWire {
            engines: v.get("engines").and_then(Json::as_usize).unwrap_or(0),
            payload_hits: u("payload_hits"),
            payload_misses: u("payload_misses"),
            decoded_hits: u("decoded_hits"),
            decoded_misses: u("decoded_misses"),
            exec_hits: u("exec_hits"),
            exec_misses: u("exec_misses"),
            prescreen_evals: u("prescreen_evals"),
            prescreen_pruned: u("prescreen_pruned"),
            requests: u("requests"),
            cross_payload_hits: u("cross_payload_hits"),
            cross_payload_lookups: u("cross_payload_lookups"),
            cross_exec_hits: u("cross_exec_hits"),
            cross_exec_lookups: u("cross_exec_lookups"),
        }
    }
}

fn rate(hits: u64, lookups: u64) -> f64 {
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

/// Budget-arbitration telemetry on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetWire {
    pub budget_w: f64,
    /// `BudgetPolicy::name()` of the policy that ran.
    pub policy: String,
    pub ticks: usize,
    pub peak_fleet_w: f64,
    pub mean_fleet_w: f64,
    pub shed_ticks: Vec<u64>,
    pub deferred_ticks: Vec<u64>,
    pub truncated_proposals: u64,
    pub infeasible_floor_ticks: u64,
    /// 95th percentile of per-tick budget utilization.
    pub util_p95: f64,
    pub states: Vec<String>,
}

/// Episode-statistics telemetry on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeWire {
    pub states: Vec<String>,
    pub empirical_shares: Vec<f64>,
    pub model_shares: Vec<f64>,
    pub mean_dwell_ticks: Vec<f64>,
    pub lag1_autocorr: f64,
}

/// The 0.1 W-binned CDF on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfWire {
    /// `(bin_upper_edge_w, cumulative_fraction)` pairs, ascending.
    pub bins: Vec<(f64, f64)>,
    pub min_w: f64,
    pub max_w: f64,
    pub samples: usize,
}

/// Machine-readable failure kinds carried in
/// [`FleetReply::error_kind`], so clients and the CLI can branch on
/// *why* a request failed without parsing prose.
pub mod kind {
    /// The request line failed to decode or validate.
    pub const BAD_REQUEST: &str = "bad-request";
    /// Shed at the gate: active slots and queue both full.
    pub const ADMISSION_BUSY: &str = "admission-busy";
    /// Rejected at the gate: cost above the per-request limit.
    pub const ADMISSION_OVERSIZE: &str = "admission-oversize";
    /// Rejected at the gate: deadline unmeetable at estimated cost.
    pub const ADMISSION_DEADLINE: &str = "admission-deadline";
    /// Admitted, but the deadline expired between shards.
    pub const DEADLINE_EXCEEDED: &str = "deadline-exceeded";
    /// A shard task panicked; supervision contained it.
    pub const SHARD_PANIC: &str = "shard-panic";
    /// The shard set failed to merge (should never happen; typed so
    /// it degrades to a reply instead of a crashed thread if it does).
    pub const SHARD_MERGE: &str = "shard-merge";
    /// Transport: a request line exceeded the length bound.
    pub const LINE_TOO_LONG: &str = "transport-line-too-long";
    /// Transport: the peer stalled past the read-timeout budget.
    pub const PEER_STALLED: &str = "transport-peer-stalled";
    /// Transport: the server is at its connection cap.
    pub const OVER_CAPACITY: &str = "transport-over-capacity";
}

/// Worker-pool supervision counters on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolWire {
    /// Job/task panics contained by the pool's `catch_unwind`.
    pub panics_caught: u64,
    /// Dead workers replaced by supervision.
    pub workers_respawned: u64,
}

impl PoolWire {
    fn to_json(self) -> Json {
        Json::obj()
            .set("panics_caught", Json::of_u64(self.panics_caught))
            .set("workers_respawned", Json::of_u64(self.workers_respawned))
    }

    fn from_json(v: &Json) -> PoolWire {
        let u = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        PoolWire {
            panics_caught: u("panics_caught"),
            workers_respawned: u("workers_respawned"),
        }
    }
}

/// One fleet-simulation reply (or a service-side rejection).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReply {
    pub ok: bool,
    /// Rejection/failure reason when `ok` is false.
    pub error: Option<String>,
    /// Machine-readable failure kind (one of the [`kind`] constants)
    /// when `ok` is false and the failure is typed.
    pub error_kind: Option<String>,
    /// Pool supervision counters at reply time (present whenever the
    /// request reached the shard layer).
    pub pool: Option<PoolWire>,
    /// Raw 60 s-mean samples (empty unless requested).
    pub samples: Vec<f64>,
    pub cdf: Option<CdfWire>,
    pub registry: RegistryWire,
    /// Operating points in the request's power table.
    pub power_points: usize,
    pub capped_points: usize,
    pub capped_samples: usize,
    pub infeasible_points: usize,
    pub budget: Option<BudgetWire>,
    pub episodes: Option<EpisodeWire>,
    /// Shards the request was actually split into.
    pub shards: usize,
}

impl FleetReply {
    pub fn failure(error: impl Into<String>) -> FleetReply {
        FleetReply {
            ok: false,
            error: Some(error.into()),
            error_kind: None,
            pool: None,
            samples: Vec::new(),
            cdf: None,
            registry: RegistryWire::default(),
            power_points: 0,
            capped_points: 0,
            capped_samples: 0,
            infeasible_points: 0,
            budget: None,
            episodes: None,
            shards: 0,
        }
    }

    /// A typed failure: like [`FleetReply::failure`] plus one of the
    /// [`kind`] constants for machine-readable branching.
    pub fn failure_kind(kind: &str, error: impl Into<String>) -> FleetReply {
        FleetReply {
            error_kind: Some(kind.to_string()),
            ..FleetReply::failure(error)
        }
    }

    pub fn to_json(&self) -> Json {
        let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::of_str(s)).collect());
        let mut out = Json::obj()
            .set("type", Json::of_str("reply"))
            .set("ok", Json::of_bool(self.ok));
        if let Some(e) = &self.error {
            out = out.set("error", Json::of_str(e));
        }
        if let Some(k) = &self.error_kind {
            out = out.set("error_kind", Json::of_str(k));
        }
        if let Some(p) = &self.pool {
            out = out.set("pool", p.to_json());
        }
        out = out
            .set("samples", Json::of_f64s(&self.samples))
            .set("registry", self.registry.to_json())
            .set("power_points", Json::of_usize(self.power_points))
            .set("capped_points", Json::of_usize(self.capped_points))
            .set("capped_samples", Json::of_usize(self.capped_samples))
            .set("infeasible_points", Json::of_usize(self.infeasible_points))
            .set("shards", Json::of_usize(self.shards));
        if let Some(c) = &self.cdf {
            let bins = c
                .bins
                .iter()
                .map(|&(w, f)| Json::Arr(vec![Json::of_f64(w), Json::of_f64(f)]))
                .collect();
            out = out.set(
                "cdf",
                Json::obj()
                    .set("bins", Json::Arr(bins))
                    .set("min_w", Json::of_f64(c.min_w))
                    .set("max_w", Json::of_f64(c.max_w))
                    .set("samples", Json::of_usize(c.samples)),
            );
        }
        if let Some(b) = &self.budget {
            out = out.set(
                "budget",
                Json::obj()
                    .set("budget_w", Json::of_f64(b.budget_w))
                    .set("policy", Json::of_str(&b.policy))
                    .set("ticks", Json::of_usize(b.ticks))
                    .set("peak_fleet_w", Json::of_f64(b.peak_fleet_w))
                    .set("mean_fleet_w", Json::of_f64(b.mean_fleet_w))
                    .set("shed_ticks", Json::of_u64s(&b.shed_ticks))
                    .set("deferred_ticks", Json::of_u64s(&b.deferred_ticks))
                    .set("truncated_proposals", Json::of_u64(b.truncated_proposals))
                    .set(
                        "infeasible_floor_ticks",
                        Json::of_u64(b.infeasible_floor_ticks),
                    )
                    .set("util_p95", Json::of_f64(b.util_p95))
                    .set("states", strs(&b.states)),
            );
        }
        if let Some(e) = &self.episodes {
            out = out.set(
                "episodes",
                Json::obj()
                    .set("states", strs(&e.states))
                    .set("empirical_shares", Json::of_f64s(&e.empirical_shares))
                    .set("model_shares", Json::of_f64s(&e.model_shares))
                    .set("mean_dwell_ticks", Json::of_f64s(&e.mean_dwell_ticks))
                    .set("lag1_autocorr", Json::of_f64(e.lag1_autocorr)),
            );
        }
        out
    }

    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    pub fn from_line(line: &str) -> Result<FleetReply, ProtoError> {
        let v = Json::parse(line).map_err(|e| perr(e.to_string()))?;
        match v.get("type").and_then(Json::as_str) {
            Some("reply") => {}
            _ => return Err(perr("not a reply line")),
        }
        let strs = |j: &Json| -> Vec<String> {
            j.as_arr()
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default()
        };
        let cdf = v.get("cdf").map(|c| {
            let bins = c
                .get("bins")
                .and_then(Json::as_arr)
                .map(|pairs| {
                    pairs
                        .iter()
                        .filter_map(|p| {
                            let p = p.as_arr()?;
                            Some((p.first()?.as_f64()?, p.get(1)?.as_f64()?))
                        })
                        .collect()
                })
                .unwrap_or_default();
            CdfWire {
                bins,
                min_w: c.get("min_w").and_then(Json::as_f64).unwrap_or(0.0),
                max_w: c.get("max_w").and_then(Json::as_f64).unwrap_or(0.0),
                samples: c.get("samples").and_then(Json::as_usize).unwrap_or(0),
            }
        });
        let budget = v.get("budget").map(|b| {
            let u64s = |k: &str| b.get(k).and_then(Json::u64s).unwrap_or_default();
            let f = |k: &str| b.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            BudgetWire {
                budget_w: f("budget_w"),
                policy: b
                    .get("policy")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                ticks: b.get("ticks").and_then(Json::as_usize).unwrap_or(0),
                peak_fleet_w: f("peak_fleet_w"),
                mean_fleet_w: f("mean_fleet_w"),
                shed_ticks: u64s("shed_ticks"),
                deferred_ticks: u64s("deferred_ticks"),
                truncated_proposals: b
                    .get("truncated_proposals")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                infeasible_floor_ticks: b
                    .get("infeasible_floor_ticks")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                util_p95: f("util_p95"),
                states: strs(b.get("states").unwrap_or(&Json::Null)),
            }
        });
        let episodes = v.get("episodes").map(|e| {
            let f64s = |k: &str| e.get(k).and_then(Json::f64s).unwrap_or_default();
            EpisodeWire {
                states: strs(e.get("states").unwrap_or(&Json::Null)),
                empirical_shares: f64s("empirical_shares"),
                model_shares: f64s("model_shares"),
                mean_dwell_ticks: f64s("mean_dwell_ticks"),
                lag1_autocorr: e.get("lag1_autocorr").and_then(Json::as_f64).unwrap_or(0.0),
            }
        });
        Ok(FleetReply {
            ok: v.get("ok").and_then(Json::as_bool).unwrap_or(false),
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
            error_kind: v
                .get("error_kind")
                .and_then(Json::as_str)
                .map(str::to_string),
            pool: v.get("pool").map(PoolWire::from_json),
            samples: v
                .get("samples")
                .and_then(Json::f64s)
                .ok_or_else(|| perr("reply carries no samples array"))?,
            cdf,
            registry: v
                .get("registry")
                .map(RegistryWire::from_json)
                .unwrap_or_default(),
            power_points: v.get("power_points").and_then(Json::as_usize).unwrap_or(0),
            capped_points: v.get("capped_points").and_then(Json::as_usize).unwrap_or(0),
            capped_samples: v
                .get("capped_samples")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            infeasible_points: v
                .get("infeasible_points")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            budget,
            episodes,
            shards: v.get("shards").and_then(Json::as_usize).unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_exactly() {
        let req = FleetRequest {
            nodes: 63,
            samples_per_node: 321,
            seed: Some(u64::MAX - 7),
            temporal: TemporalMode::Episodes,
            threads: 3,
            power_cap_w: Some(250.5),
            budget_w: Some(9000.25),
            budget_policy: BudgetPolicy::Defer,
            shards: Some(7),
            deadline_ms: Some(1500),
            want_samples: false,
            want_cdf: true,
            profile: Some(FleetProfile::exemplar()),
        };
        let back = FleetRequest::from_line(&req.to_line()).unwrap();
        assert_eq!(req, back);
        // The profile survives the JSON string escaping byte-exactly.
        assert_eq!(
            back.profile.as_ref().unwrap().to_text(),
            FleetProfile::exemplar().to_text()
        );
        // Defaults: a minimal request is the Fig. 1 shape.
        let minimal = FleetRequest::from_line(r#"{"type":"fleet"}"#).unwrap();
        assert_eq!(minimal, FleetRequest::fig1());
    }

    #[test]
    fn request_validation_rejects_nonsense() {
        for bad in [
            r#"{"type":"quote"}"#,
            r#"{"type":"fleet","nodes":0}"#,
            r#"{"type":"fleet","samples_per_node":0}"#,
            r#"{"type":"fleet","temporal":"markov"}"#,
            r#"{"type":"fleet","cap_w":-3}"#,
            r#"{"type":"fleet","budget_w":0}"#,
            r#"{"type":"fleet","budget_policy":"auction"}"#,
            r#"{"type":"fleet","shards":0}"#,
            r#"{"type":"fleet","deadline_ms":0}"#,
            r#"{"type":"fleet","deadline_ms":-5}"#,
            r#"{"type":"fleet","seed":-1}"#,
            r#"{"type":"fleet","profile":7}"#,
            r##"{"type":"fleet","profile":"# wrong header\n"}"##,
            "not json",
        ] {
            assert!(FleetRequest::from_line(bad).is_err(), "accepted {bad}");
        }
        // The decode error names the profile parser's complaint.
        let err =
            FleetRequest::from_line(r##"{"type":"fleet","profile":"# wrong\n"}"##).unwrap_err();
        assert!(err.to_string().contains("bad `profile`"), "{err}");
    }

    #[test]
    fn profiled_request_forces_episode_mode() {
        let req = FleetRequest {
            temporal: TemporalMode::Iid,
            profile: Some(FleetProfile::exemplar()),
            ..FleetRequest::fig1()
        };
        let cfg = req.to_config();
        assert_eq!(cfg.temporal, TemporalMode::Episodes);
        // The episode model is the profile's, not the Taurus default.
        assert!((cfg.episodes.stationary_time_shares()[0] - 0.15).abs() < 1e-9);
    }

    #[test]
    fn reply_round_trips_sample_bits() {
        let reply = FleetReply {
            ok: true,
            error: None,
            error_kind: None,
            pool: Some(PoolWire {
                panics_caught: 3,
                workers_respawned: 1,
            }),
            samples: vec![83.25, 359.9, f64::from_bits(0x405526E41CAD1777)],
            cdf: Some(CdfWire {
                bins: vec![(100.0, 0.25), (360.0, 1.0)],
                min_w: 83.25,
                max_w: 359.9,
                samples: 3,
            }),
            registry: RegistryWire {
                engines: 2,
                payload_misses: 10,
                exec_hits: 5,
                cross_payload_hits: 3,
                cross_payload_lookups: 4,
                ..RegistryWire::default()
            },
            power_points: 40,
            capped_points: 1,
            capped_samples: 2,
            infeasible_points: 0,
            budget: Some(BudgetWire {
                budget_w: 1500.0,
                policy: "shed-to-floor".into(),
                ticks: 200,
                peak_fleet_w: 1499.5,
                mean_fleet_w: 1200.25,
                shed_ticks: vec![0, 4, 5],
                deferred_ticks: vec![0, 0, 0],
                truncated_proposals: 1,
                infeasible_floor_ticks: 0,
                util_p95: 0.99,
                states: vec!["floor".into(), "hpl".into()],
            }),
            episodes: Some(EpisodeWire {
                states: vec!["floor".into(), "hpl".into()],
                empirical_shares: vec![0.5, 0.5],
                model_shares: vec![0.4, 0.6],
                mean_dwell_ticks: vec![3.5, 7.25],
                lag1_autocorr: 0.42,
            }),
            shards: 7,
        };
        let back = FleetReply::from_line(&reply.to_line()).unwrap();
        assert_eq!(reply, back);
        assert_eq!(
            back.samples[2].to_bits(),
            0x405526E41CAD1777,
            "sample bits must survive the wire"
        );
        assert!((back.registry.cross_payload_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn failure_replies_carry_the_reason() {
        let line = FleetReply::failure("rejected: queue full").to_line();
        let back = FleetReply::from_line(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("rejected: queue full"));
        assert_eq!(back.error_kind, None, "untyped failures stay untyped");
    }

    #[test]
    fn typed_failures_round_trip_kind_and_pool_counters() {
        let mut reply = FleetReply::failure_kind(kind::SHARD_PANIC, "shard task 2 panicked: boom");
        reply.pool = Some(PoolWire {
            panics_caught: 1,
            workers_respawned: 0,
        });
        let back = FleetReply::from_line(&reply.to_line()).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error_kind.as_deref(), Some(kind::SHARD_PANIC));
        assert_eq!(back.pool.unwrap().panics_caught, 1);
        // An old-style reply without the new fields still decodes.
        let legacy = r#"{"type":"reply","ok":false,"error":"shed","samples":[]}"#;
        let old = FleetReply::from_line(legacy).unwrap();
        assert_eq!(old.error_kind, None);
        assert_eq!(old.pool, None);
    }
}
