//! Deterministic fault injection for the fleet service.
//!
//! Chaos is **off by default** ([`ChaosConfig::default`] injects
//! nothing) and entirely seeded: which request gets hit is a pure
//! function of the request counter and the configured periods, and
//! which shard of that request panics is drawn from an RNG seeded by
//! `(seed, request index)`. Re-running the same request sequence under
//! the same config reproduces the same faults — which is what lets
//! `tests/fleet_chaos.rs` assert that a *retried* request produces
//! samples bitwise-identical to an undisturbed run: the retry lands on
//! the next request index, which the schedule leaves alone, and
//! samples are pure in `(seed, config)`.
//!
//! Faults injected, each gated by its own period knob:
//! * worker panics — one shard task of every `panic_every`-th request
//!   panics mid-scatter (exercises supervision + typed shard replies),
//! * worker death — every `kill_every`-th request condemns one pool
//!   worker after its next job (exercises respawn),
//! * dropped replies — the TCP layer closes every
//!   `drop_reply_every`-th connection-reply without writing it
//!   (exercises client retry),
//! * shard latency — every shard task advances the service clock by
//!   `shard_ms` before its deadline check (exercises
//!   `deadline-exceeded` degradation under a [`ManualClock`]).
//!
//! [`ManualClock`]: crate::timing::ManualClock

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Injection schedule. All periods count from 1: `panic_every: 3`
/// hits requests 3, 6, 9, … A period of 0 disables that fault.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seeds the per-request draw of *which* shard panics.
    pub seed: u64,
    /// Panic one shard task of every Nth request (0 = never).
    pub panic_every: u64,
    /// Condemn one pool worker on every Nth request (0 = never).
    pub kill_every: u64,
    /// Drop (close without writing) every Nth TCP reply (0 = never).
    pub drop_reply_every: u64,
    /// Milliseconds each shard task adds to the service clock before
    /// its deadline check (0 = none). Only observable under a manual
    /// clock; the wall clock ignores advances.
    pub shard_ms: u64,
}

impl ChaosConfig {
    pub fn enabled(&self) -> bool {
        self.panic_every > 0
            || self.kill_every > 0
            || self.drop_reply_every > 0
            || self.shard_ms > 0
    }
}

/// Live injection state: the schedule plus counters of what actually
/// fired, for test assertions and telemetry.
#[derive(Debug)]
pub struct ChaosState {
    cfg: ChaosConfig,
    requests: AtomicU64,
    replies: AtomicU64,
    panics_injected: AtomicU64,
    kills_injected: AtomicU64,
    drops_injected: AtomicU64,
}

impl ChaosState {
    pub fn new(cfg: ChaosConfig) -> ChaosState {
        ChaosState {
            cfg,
            requests: AtomicU64::new(0),
            replies: AtomicU64::new(0),
            panics_injected: AtomicU64::new(0),
            kills_injected: AtomicU64::new(0),
            drops_injected: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> ChaosConfig {
        self.cfg
    }

    /// Claims the next request index (1-based) in the schedule.
    pub fn next_request(&self) -> u64 {
        self.requests.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Whether request `idx` should kill a worker; counts the kill.
    pub fn take_kill(&self, idx: u64) -> bool {
        let hit = self.cfg.kill_every > 0 && idx.is_multiple_of(self.cfg.kill_every);
        if hit {
            self.kills_injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Which shard (if any) of request `idx` panics, drawn
    /// deterministically from `(seed, idx)`; counts the panic.
    pub fn take_panic_shard(&self, idx: u64, shards: usize) -> Option<usize> {
        if self.cfg.panic_every == 0 || shards == 0 || !idx.is_multiple_of(self.cfg.panic_every) {
            return None;
        }
        self.panics_injected.fetch_add(1, Ordering::Relaxed);
        let mut rng =
            StdRng::seed_from_u64(self.cfg.seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Some(rng.gen_range(0..shards))
    }

    /// Whether the transport should drop the reply it is about to
    /// write; counts the drop.
    pub fn take_drop_reply(&self) -> bool {
        if self.cfg.drop_reply_every == 0 {
            return false;
        }
        let idx = self.replies.fetch_add(1, Ordering::SeqCst) + 1;
        let hit = idx.is_multiple_of(self.cfg.drop_reply_every);
        if hit {
            self.drops_injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    pub fn shard_ms(&self) -> u64 {
        self.cfg.shard_ms
    }

    pub fn panics_injected(&self) -> u64 {
        self.panics_injected.load(Ordering::Relaxed)
    }

    pub fn kills_injected(&self) -> u64 {
        self.kills_injected.load(Ordering::Relaxed)
    }

    pub fn drops_injected(&self) -> u64 {
        self.drops_injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_injects_nothing() {
        let state = ChaosState::new(ChaosConfig::default());
        assert!(!state.config().enabled());
        for _ in 0..100 {
            let idx = state.next_request();
            assert!(state.take_panic_shard(idx, 8).is_none());
            assert!(!state.take_kill(idx));
            assert!(!state.take_drop_reply());
        }
        assert_eq!(state.panics_injected(), 0);
        assert_eq!(state.drops_injected(), 0);
    }

    #[test]
    fn schedule_is_periodic_and_seed_deterministic() {
        let cfg = ChaosConfig {
            seed: 42,
            panic_every: 3,
            kill_every: 4,
            drop_reply_every: 2,
            shard_ms: 0,
        };
        let a = ChaosState::new(cfg);
        let b = ChaosState::new(cfg);
        let mut hits = Vec::new();
        for _ in 0..12 {
            let ia = a.next_request();
            let ib = b.next_request();
            assert_eq!(ia, ib);
            let sa = a.take_panic_shard(ia, 5);
            assert_eq!(
                sa,
                b.take_panic_shard(ib, 5),
                "draw must be pure in (seed, idx)"
            );
            assert_eq!(a.take_kill(ia), ib.is_multiple_of(4));
            if let Some(s) = sa {
                assert!(s < 5);
                hits.push(ia);
            }
        }
        assert_eq!(hits, vec![3, 6, 9, 12]);
        assert_eq!(a.panics_injected(), 4);
        assert_eq!(a.kills_injected(), 3);
        let drops: Vec<bool> = (0..6).map(|_| a.take_drop_reply()).collect();
        assert_eq!(drops, vec![false, true, false, true, false, true]);
        // A different seed may pick different shards but the same
        // request indices.
        let c = ChaosState::new(ChaosConfig { seed: 43, ..cfg });
        for _ in 0..12 {
            let ic = c.next_request();
            assert_eq!(c.take_panic_shard(ic, 5).is_some(), ic.is_multiple_of(3));
        }
    }
}
