//! In-process request broker.
//!
//! The broker is the local transport of the service stack: callers
//! push a JSON request line plus a private reply queue onto a shared
//! [`MetricQueue`] (the `fs2-metrics` channel seam), and dispatcher
//! threads feed the lines through [`FleetService::handle_line`]. The
//! CLI's `--fleet` action is a thin client of this broker; the TCP
//! front-end is the same loop with a socket instead of a queue.

use crate::proto::{kind, FleetReply};
use crate::service::FleetService;
use fs2_metrics::MetricQueue;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One in-flight brokered request: the wire line and where to push
/// the reply line.
#[derive(Debug)]
pub struct BrokerJob {
    pub line: String,
    pub reply_to: Arc<MetricQueue<String>>,
}

/// A broker bound to one [`FleetService`].
#[derive(Debug)]
pub struct Broker {
    requests: Arc<MetricQueue<BrokerJob>>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl Broker {
    /// Starts `dispatchers` threads feeding the service (0 = one per
    /// active-request slot, so the broker never starves the gate).
    pub fn new(service: Arc<FleetService>, dispatchers: usize) -> Broker {
        let n = if dispatchers == 0 {
            service.admission_config().max_active
        } else {
            dispatchers
        };
        let requests: Arc<MetricQueue<BrokerJob>> = Arc::new(MetricQueue::unbounded());
        let handles = (0..n)
            .map(|_| {
                let requests = Arc::clone(&requests);
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    while let Some(job) = requests.pop_wait() {
                        // A panicking handler must not take the
                        // dispatcher thread down — and, worse, leave
                        // the caller parked on its reply queue forever.
                        let reply =
                            catch_unwind(AssertUnwindSafe(|| service.handle_line(&job.line)))
                                .unwrap_or_else(|_| {
                                    FleetReply::failure_kind(
                                        kind::SHARD_PANIC,
                                        "internal error: request handler panicked",
                                    )
                                    .to_line()
                                });
                        // A vanished caller is not an error.
                        let _ = job.reply_to.try_push(reply);
                    }
                })
            })
            .collect();
        Broker {
            requests,
            dispatchers: handles,
        }
    }

    /// Submits one request line and blocks for the reply line.
    /// Returns `None` only when the broker is shutting down.
    pub fn call(&self, line: impl Into<String>) -> Option<String> {
        let reply_to: Arc<MetricQueue<String>> = Arc::new(MetricQueue::bounded(1));
        self.requests
            .push_wait(BrokerJob {
                line: line.into(),
                reply_to: Arc::clone(&reply_to),
            })
            .ok()?;
        reply_to.pop_wait()
    }

    /// Submits without waiting; the caller drains `reply_to` later.
    pub fn post(&self, line: impl Into<String>, reply_to: Arc<MetricQueue<String>>) -> bool {
        self.requests
            .push_wait(BrokerJob {
                line: line.into(),
                reply_to,
            })
            .is_ok()
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.requests.close();
        for d in self.dispatchers.drain(..) {
            let _ = d.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FleetReply, FleetRequest};
    use crate::service::ServiceConfig;

    fn tiny_request(seed: u64) -> FleetRequest {
        FleetRequest {
            nodes: 6,
            samples_per_node: 30,
            seed: Some(seed),
            ..FleetRequest::fig1()
        }
    }

    #[test]
    fn brokered_call_round_trips_a_request() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let broker = Broker::new(Arc::clone(&service), 2);
        let reply_line = broker.call(tiny_request(9).to_line()).unwrap();
        let reply = FleetReply::from_line(&reply_line).unwrap();
        assert!(reply.ok, "reply failed: {:?}", reply.error);
        assert_eq!(reply.samples.len(), 6 * 30);
    }

    #[test]
    fn malformed_lines_get_failure_replies_not_hangs() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let broker = Broker::new(service, 1);
        let reply = FleetReply::from_line(&broker.call("{oops").unwrap()).unwrap();
        assert!(!reply.ok);
        assert!(reply.error.unwrap().contains("invalid JSON"));
    }

    #[test]
    fn concurrent_callers_each_get_their_own_reply() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let broker = Arc::new(Broker::new(service, 0));
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let broker = Arc::clone(&broker);
                std::thread::spawn(move || {
                    let line = broker.call(tiny_request(i).to_line()).unwrap();
                    FleetReply::from_line(&line).unwrap()
                })
            })
            .collect();
        let replies: Vec<FleetReply> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert!(replies.iter().all(|r| r.ok));
        // Distinct seeds produce distinct streams; same-seed calls
        // would collide if replies were cross-wired.
        for (i, a) in replies.iter().enumerate() {
            for b in replies.iter().skip(i + 1) {
                assert_ne!(a.samples, b.samples);
            }
        }
    }
}
