//! The service's only window onto wall time.
//!
//! Deadline enforcement needs *some* notion of elapsed time, but the
//! rest of the workspace is (seed, config)-pure and the `wall-clock`
//! lint bans `Instant` outside bench/CLI/`::timing` modules. This
//! module is that sanctioned seam: everything else handles time as a
//! [`Clock`] trait object, so tests drive deadlines with a
//! [`ManualClock`] and production uses [`WallClock`] — the decision
//! paths themselves never read a clock directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Milliseconds since some fixed epoch. Implementations must be
/// monotonic; absolute values are meaningless across clocks.
pub trait Clock: Send + Sync + std::fmt::Debug {
    fn now_ms(&self) -> u64;

    /// Moves a controllable clock forward. The wall clock advances on
    /// its own and ignores this; [`ManualClock`] honours it, which is
    /// how the chaos harness makes shard work "take time"
    /// deterministically.
    fn advance_ms(&self, _ms: u64) {}
}

/// Real elapsed time, measured from construction.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A clock that only moves when told to — the deterministic stand-in
/// for tests and the chaos harness.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    pub fn new() -> ManualClock {
        ManualClock::default()
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }

    fn advance_ms(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }
}

/// `Duration` constructor for socket timeouts and backoff sleeps, kept
/// here so callers state intervals in the same unit the clocks tick.
pub fn millis(ms: u64) -> Duration {
    Duration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(5);
        c.advance_ms(7);
        assert_eq!(c.now_ms(), 12);
    }

    #[test]
    fn wall_clock_is_monotonic_and_ignores_advance() {
        let c = WallClock::new();
        let a = c.now_ms();
        c.advance_ms(1_000_000);
        let b = c.now_ms();
        assert!(b < 1_000_000, "advance_ms must be a no-op on WallClock");
        assert!(b >= a);
    }
}
