//! Plain-TCP front-end: JSON lines over a socket, with bounded reads
//! and typed failure replies.
//!
//! The framing is the broker's, byte for byte — one request object per
//! line in, one reply object per line out — so `nc` works as a client:
//!
//! ```text
//! $ echo '{"type":"fleet","nodes":12,"samples_per_node":60}' | nc 127.0.0.1 7171
//! {"type":"reply","ok":true,"samples":[...],...}
//! ```
//!
//! Each connection gets a reader thread; requests from one connection
//! are served in order, connections are independent, and admission
//! control (not the socket layer) decides what queues or sheds.
//!
//! The socket layer *does* enforce its own hygiene
//! ([`TransportConfig`]): reads poll on a timeout so a stalled peer is
//! cut off with a typed [`kind::PEER_STALLED`] reply after a bounded
//! idle budget, a line that outgrows [`TransportConfig::max_line_bytes`]
//! gets [`kind::LINE_TOO_LONG`] and a disconnect instead of unbounded
//! buffering, connections beyond [`TransportConfig::max_connections`]
//! are turned away with [`kind::OVER_CAPACITY`], and
//! [`Server::shutdown`] drains live connections (finish the current
//! line, then close) instead of abandoning their threads.
//!
//! On the client side, [`Client::request`] bounds its reply read and
//! distinguishes a silent server ([`ClientError::Timeout`]) from a
//! vanished one ([`ClientError::Eof`]); [`call_with_retry`] layers a
//! deterministic, attempt-indexed backoff schedule ([`RetryPolicy`],
//! seeded — no wall-clock reads in the decision path) on top, which is
//! what turns a chaos-dropped reply into a bitwise-identical retry.

use crate::proto::{kind, FleetReply};
use crate::service::FleetService;
use crate::timing::millis;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Socket-layer bounds. Defaults are server-oriented; clients waiting
/// on big fleet computations use [`TransportConfig::client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Socket read timeout per poll tick, in milliseconds.
    pub poll_ms: u64,
    /// Dataless poll ticks tolerated before the peer counts as
    /// stalled; the idle budget is `poll_ms × stall_polls`.
    pub stall_polls: u32,
    /// Longest accepted line, in bytes (replies carrying full Fig. 1
    /// sample sets run to tens of MB, hence the generous default).
    pub max_line_bytes: usize,
    /// Simultaneous connections served before new ones are rejected.
    pub max_connections: usize,
}

impl Default for TransportConfig {
    fn default() -> TransportConfig {
        TransportConfig {
            poll_ms: 50,
            stall_polls: 200, // 10 s idle budget
            max_line_bytes: 64 << 20,
            max_connections: 64,
        }
    }
}

impl TransportConfig {
    /// Client-side defaults: same bounds, but a far longer stall
    /// budget, because "the server is still simulating my fleet" is
    /// not a stall.
    pub fn client() -> TransportConfig {
        TransportConfig {
            stall_polls: 2400, // 120 s reply budget
            ..TransportConfig::default()
        }
    }
}

/// Why a client call failed, separated so callers (and the CLI's
/// `--connect`) can report a silent server differently from a
/// vanished one.
#[derive(Debug)]
pub enum ClientError {
    /// Connect or write failed outright.
    Io(std::io::Error),
    /// The reply did not arrive inside the stall budget.
    Timeout { waited_ms: u64 },
    /// The server closed the connection before a full reply line.
    Eof,
    /// The reply outgrew the line bound.
    TooLong { limit_bytes: usize },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Timeout { waited_ms } => {
                write!(f, "timed out after ~{waited_ms} ms waiting for the reply")
            }
            ClientError::Eof => {
                f.write_str("connection closed before a reply arrived (unexpected eof)")
            }
            ClientError::TooLong { limit_bytes } => {
                write!(f, "reply exceeded the {limit_bytes}-byte line bound")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// What one bounded line read produced.
enum LineRead {
    Line(String),
    Eof,
    Stalled,
    TooLong,
    Stopped,
    Failed(std::io::Error),
}

/// A newline-framed reader with a length bound and a poll-counted
/// stall budget — no wall-clock reads, only counted timeouts.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    scanned: usize,
    cfg: TransportConfig,
}

impl LineReader {
    fn new(stream: TcpStream, cfg: TransportConfig) -> std::io::Result<LineReader> {
        stream.set_read_timeout(Some(millis(cfg.poll_ms.max(1))))?;
        Ok(LineReader {
            stream,
            buf: Vec::new(),
            scanned: 0,
            cfg,
        })
    }

    /// Reads one `\n`-terminated line. `stop` (the server's shutdown
    /// flag) is checked between polls so draining never waits out the
    /// whole stall budget.
    fn read_line(&mut self, stop: Option<&AtomicBool>) -> LineRead {
        let mut idle_polls = 0u32;
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(nl) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let end = self.scanned + nl;
                if end > self.cfg.max_line_bytes {
                    return LineRead::TooLong;
                }
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                self.scanned = 0;
                while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                    line.pop();
                }
                return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.cfg.max_line_bytes {
                return LineRead::TooLong;
            }
            if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                return LineRead::Stopped;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineRead::Eof,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    idle_polls = 0;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    idle_polls += 1;
                    if idle_polls >= self.cfg.stall_polls.max(1) {
                        return LineRead::Stalled;
                    }
                }
                Err(e) => return LineRead::Failed(e),
            }
        }
    }
}

/// A running TCP server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Binds `addr` with default transport bounds. See [`serve_with`].
pub fn serve(service: Arc<FleetService>, addr: &str) -> std::io::Result<Server> {
    serve_with(service, addr, TransportConfig::default())
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// `service` until [`Server::shutdown`] or drop, under the given
/// transport bounds.
pub fn serve_with(
    service: Arc<FleetService>,
    addr: &str,
    cfg: TransportConfig,
) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let active = Arc::new(AtomicUsize::new(0));
    let accept_stop = Arc::clone(&stop);
    let accept_conns = Arc::clone(&conns);
    let accept_loop = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = conn else { continue };
            // Reap finished connection threads so the handle list and
            // the thread count stay bounded by max_connections.
            {
                // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input: the list only holds join handles
                let mut held = accept_conns.lock().expect("connection list poisoned");
                let mut live = Vec::with_capacity(held.len());
                for h in held.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                *held = live;
            }
            if active.load(Ordering::SeqCst) >= cfg.max_connections {
                // Typed over-capacity rejection, then disconnect.
                let line = FleetReply::failure_kind(
                    kind::OVER_CAPACITY,
                    format!(
                        "rejected: server already serving {} connections",
                        cfg.max_connections
                    ),
                )
                .to_line();
                let _ = stream
                    .write_all(line.as_bytes())
                    .and_then(|()| stream.write_all(b"\n"));
                continue;
            }
            active.fetch_add(1, Ordering::SeqCst);
            let service = Arc::clone(&service);
            let conn_stop = Arc::clone(&accept_stop);
            let conn_active = Arc::clone(&active);
            let handle = std::thread::spawn(move || {
                serve_connection(&service, stream, cfg, &conn_stop);
                conn_active.fetch_sub(1, Ordering::SeqCst);
            });
            // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input
            let mut held = accept_conns.lock().expect("connection list poisoned");
            held.push(handle);
        }
    });
    Ok(Server {
        addr,
        stop,
        accept_loop: Some(accept_loop),
        conns,
    })
}

fn write_line(writer: &mut impl Write, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn serve_connection(
    service: &FleetService,
    stream: TcpStream,
    cfg: TransportConfig,
    stop: &AtomicBool,
) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(writer);
    let Ok(mut reader) = LineReader::new(stream, cfg) else {
        return;
    };
    loop {
        match reader.read_line(Some(stop)) {
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let reply = service.handle_line(&line);
                // Chaos: a scheduled mid-stream disconnect drops the
                // reply on the floor and closes the connection — the
                // client's retry path has to absorb it.
                if service.chaos().is_some_and(|c| c.take_drop_reply()) {
                    return;
                }
                if write_line(&mut writer, &reply).is_err() {
                    return;
                }
            }
            // A truncated final frame (bytes, no newline, then close)
            // is an Eof: never served, never hangs.
            LineRead::Eof | LineRead::Stopped | LineRead::Failed(_) => return,
            LineRead::Stalled => {
                let budget = cfg.poll_ms.saturating_mul(u64::from(cfg.stall_polls));
                let _ = write_line(
                    &mut writer,
                    &FleetReply::failure_kind(
                        kind::PEER_STALLED,
                        format!("disconnected: no complete request line in {budget} ms"),
                    )
                    .to_line(),
                );
                return;
            }
            LineRead::TooLong => {
                let _ = write_line(
                    &mut writer,
                    &FleetReply::failure_kind(
                        kind::LINE_TOO_LONG,
                        format!(
                            "disconnected: request line exceeded {} bytes",
                            cfg.max_line_bytes
                        ),
                    )
                    .to_line(),
                );
                return;
            }
        }
    }
}

impl Server {
    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, joins the accept loop, and drains live
    /// connections: each finishes the line it is serving, then closes.
    pub fn shutdown(mut self) {
        self.stop_and_drain();
    }

    fn stop_and_drain(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on a connection;
        // poke it so it wakes up and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
        // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input
        let mut conns = self.conns.lock().expect("connection list poisoned");
        for h in conns.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_loop.is_some() {
            self.stop_and_drain();
        }
    }
}

/// A persistent client connection with bounded reply reads.
pub struct Client {
    reader: LineReader,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::connect_with(addr, TransportConfig::client())
    }

    pub fn connect_with(addr: &str, cfg: TransportConfig) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: LineReader::new(stream, cfg)?,
            writer,
        })
    }

    /// Sends one request line and blocks — boundedly — for the reply
    /// line. A stalled server is [`ClientError::Timeout`]; a closed
    /// connection is [`ClientError::Eof`]; the two are deliberately
    /// distinct so retry loops and the CLI can say which happened.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        match self.reader.read_line(None) {
            LineRead::Line(reply) => Ok(reply),
            LineRead::Eof | LineRead::Stopped => Err(ClientError::Eof),
            LineRead::Stalled => Err(ClientError::Timeout {
                waited_ms: self
                    .reader
                    .cfg
                    .poll_ms
                    .saturating_mul(u64::from(self.reader.cfg.stall_polls)),
            }),
            LineRead::TooLong => Err(ClientError::TooLong {
                limit_bytes: self.reader.cfg.max_line_bytes,
            }),
            LineRead::Failed(e) => Err(ClientError::Io(e)),
        }
    }
}

/// Reconnect-and-retry schedule for [`call_with_retry`]. The backoff
/// for attempt `i` is a pure function of `(seed, i)` — exponential
/// growth with seeded jitter, no wall-clock in the decision path — so
/// a retry sequence is exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (min 1).
    pub attempts: u32,
    /// Backoff before the first retry, in ms; doubles per attempt.
    pub base_ms: u64,
    /// Ceiling on any single backoff, in ms.
    pub cap_ms: u64,
    /// Seeds the jitter draw.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_ms: 25,
            cap_ms: 400,
            seed: 0xF1EE7,
        }
    }
}

impl RetryPolicy {
    /// Milliseconds to wait after failed attempt `attempt` (0-based).
    /// Deterministic: same `(seed, attempt)` → same delay, drawn from
    /// `[ceiling/2, ceiling]` where the ceiling doubles per attempt up
    /// to `cap_ms`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let ceiling = self
            .base_ms
            .max(1)
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_ms.max(1));
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        rng.gen_range(ceiling / 2..=ceiling)
    }
}

/// One-shot convenience: connect, send, receive, disconnect.
pub fn call(addr: &str, line: &str) -> Result<String, ClientError> {
    Client::connect(addr)?.request(line)
}

/// [`call`], retried on a fresh connection per [`RetryPolicy`]: the
/// resilient client path. Timeouts, eofs (dropped replies, mid-stream
/// disconnects), and connect errors all retry; the last error is
/// returned if every attempt fails.
pub fn call_with_retry(addr: &str, line: &str, policy: RetryPolicy) -> Result<String, ClientError> {
    let mut last = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(millis(policy.backoff_ms(attempt - 1)));
        }
        match Client::connect(addr).and_then(|mut c| c.request(line)) {
            Ok(reply) => return Ok(reply),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or(ClientError::Eof))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FleetReply, FleetRequest};
    use crate::service::ServiceConfig;

    fn small_req(seed: u64) -> FleetRequest {
        FleetRequest {
            nodes: 6,
            samples_per_node: 25,
            seed: Some(seed),
            ..FleetRequest::fig1()
        }
    }

    #[test]
    fn tcp_round_trip_serves_requests() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let server = serve(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let req = small_req(3);
        let reply = FleetReply::from_line(&call(&addr, &req.to_line()).unwrap()).unwrap();
        assert!(reply.ok, "{:?}", reply.error);
        assert_eq!(reply.samples.len(), 6 * 25);
        // A persistent client can pipeline several requests.
        let mut client = Client::connect(&addr).unwrap();
        for _ in 0..3 {
            let line = client.request(&req.to_line()).unwrap();
            assert!(FleetReply::from_line(&line).unwrap().ok);
        }
        server.shutdown();
    }

    #[test]
    fn garbage_lines_do_not_kill_the_connection() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let server = serve(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let reply = FleetReply::from_line(&client.request("{broken").unwrap()).unwrap();
        assert!(!reply.ok);
        // Same connection still serves a valid request afterwards.
        let reply =
            FleetReply::from_line(&client.request(&small_req(1).to_line()).unwrap()).unwrap();
        assert!(reply.ok);
        server.shutdown();
    }

    #[test]
    fn oversized_lines_get_a_typed_reply_then_disconnect() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let server = serve_with(
            service,
            "127.0.0.1:0",
            TransportConfig {
                max_line_bytes: 1024,
                ..TransportConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let huge = "x".repeat(4096);
        let reply = FleetReply::from_line(&client.request(&huge).unwrap()).unwrap();
        assert!(!reply.ok);
        assert_eq!(reply.error_kind.as_deref(), Some(kind::LINE_TOO_LONG));
        // The server hung up afterwards: the next request fails typed
        // (eof on read, or a broken pipe if the write loses the race).
        assert!(matches!(
            client.request(&small_req(1).to_line()),
            Err(ClientError::Eof | ClientError::Io(_))
        ));
        server.shutdown();
    }

    #[test]
    fn stalled_peers_are_disconnected_with_a_typed_reply() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let server = serve_with(
            service,
            "127.0.0.1:0",
            TransportConfig {
                poll_ms: 5,
                stall_polls: 4, // ~20 ms idle budget
                ..TransportConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        // Send half a frame and then go quiet: the server must cut us
        // off instead of pinning the connection thread forever.
        let mut client = Client::connect(&addr).unwrap();
        client.writer.write_all(b"{\"type\":\"fl").unwrap();
        client.writer.flush().unwrap();
        let reply = match client.reader.read_line(None) {
            LineRead::Line(l) => FleetReply::from_line(&l).unwrap(),
            other => panic!(
                "expected a stall reply, got {:?}",
                std::mem::discriminant(&other)
            ),
        };
        assert!(!reply.ok);
        assert_eq!(reply.error_kind.as_deref(), Some(kind::PEER_STALLED));
        server.shutdown();
    }

    #[test]
    fn connections_beyond_the_cap_are_rejected_typed() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let server = serve_with(
            service,
            "127.0.0.1:0",
            TransportConfig {
                max_connections: 1,
                ..TransportConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut first = Client::connect(&addr).unwrap();
        // One full round trip guarantees the server accepted us (TCP
        // connect alone can succeed from the backlog).
        assert!(
            FleetReply::from_line(&first.request(&small_req(2).to_line()).unwrap())
                .unwrap()
                .ok
        );
        let mut second = Client::connect(&addr).unwrap();
        let reply =
            FleetReply::from_line(&second.request(&small_req(2).to_line()).unwrap()).unwrap();
        assert!(!reply.ok);
        assert_eq!(reply.error_kind.as_deref(), Some(kind::OVER_CAPACITY));
        // The first connection is unaffected.
        assert!(
            FleetReply::from_line(&first.request(&small_req(2).to_line()).unwrap())
                .unwrap()
                .ok
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_live_connections_and_clients_see_eof() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let server = serve(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        assert!(
            FleetReply::from_line(&client.request(&small_req(4).to_line()).unwrap())
                .unwrap()
                .ok
        );
        // Shutdown with the connection still open must return (the
        // connection thread observes the stop flag within one poll)…
        server.shutdown();
        // …and the next request fails typed — eof, or a broken pipe if
        // the write loses the race — never a hang.
        assert!(matches!(
            client.request(&small_req(4).to_line()),
            Err(ClientError::Eof | ClientError::Io(_))
        ));
    }

    #[test]
    fn backoff_schedule_is_deterministic_bounded_and_growing() {
        let policy = RetryPolicy::default();
        let again = RetryPolicy::default();
        let mut ceiling = policy.base_ms;
        for attempt in 0..8 {
            let d = policy.backoff_ms(attempt);
            assert_eq!(d, again.backoff_ms(attempt), "attempt {attempt} not pure");
            let cap = ceiling.min(policy.cap_ms);
            assert!(
                d >= cap / 2 && d <= cap,
                "attempt {attempt}: {d} outside [{}, {cap}]",
                cap / 2
            );
            ceiling = ceiling.saturating_mul(2);
        }
        // Different seeds → (almost surely) different jitter.
        let other = RetryPolicy {
            seed: 9,
            ..RetryPolicy::default()
        };
        assert!((0..8).any(|a| other.backoff_ms(a) != policy.backoff_ms(a)));
    }

    #[test]
    fn client_errors_name_their_cause() {
        let timeout = ClientError::Timeout { waited_ms: 500 };
        assert!(timeout.to_string().contains("timed out"));
        assert!(ClientError::Eof.to_string().contains("eof"));
        let long = ClientError::TooLong { limit_bytes: 64 };
        assert!(long.to_string().contains("64"));
    }
}
