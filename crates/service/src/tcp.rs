//! Plain-TCP front-end: JSON lines over a socket.
//!
//! The framing is the broker's, byte for byte — one request object per
//! line in, one reply object per line out — so `nc` works as a client:
//!
//! ```text
//! $ echo '{"type":"fleet","nodes":12,"samples_per_node":60}' | nc 127.0.0.1 7171
//! {"type":"reply","ok":true,"samples":[...],...}
//! ```
//!
//! Each connection gets a reader thread; requests from one connection
//! are served in order, connections are independent, and admission
//! control (not the socket layer) decides what queues or sheds.

use crate::service::FleetService;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// `service` until [`Server::shutdown`] or drop.
pub fn serve(service: Arc<FleetService>, addr: &str) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_loop = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_connection(&service, stream));
        }
    });
    Ok(Server {
        addr,
        stop,
        accept_loop: Some(accept_loop),
    })
}

fn serve_connection(service: &FleetService, stream: TcpStream) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(writer);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = service.handle_line(&line);
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

impl Server {
    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// being served finish their current line independently.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on a connection;
        // poke it so it wakes up and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_loop.is_some() {
            self.stop_accepting();
        }
    }
}

/// A persistent client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line, blocks for the reply line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

/// One-shot convenience: connect, send, receive, disconnect.
pub fn call(addr: &str, line: &str) -> std::io::Result<String> {
    Client::connect(addr)?.request(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FleetReply, FleetRequest};
    use crate::service::ServiceConfig;

    #[test]
    fn tcp_round_trip_serves_requests() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let server = serve(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let req = FleetRequest {
            nodes: 6,
            samples_per_node: 25,
            seed: Some(3),
            ..FleetRequest::fig1()
        };
        let reply = FleetReply::from_line(&call(&addr, &req.to_line()).unwrap()).unwrap();
        assert!(reply.ok, "{:?}", reply.error);
        assert_eq!(reply.samples.len(), 6 * 25);
        // A persistent client can pipeline several requests.
        let mut client = Client::connect(&addr).unwrap();
        for _ in 0..3 {
            let line = client.request(&req.to_line()).unwrap();
            assert!(FleetReply::from_line(&line).unwrap().ok);
        }
        server.shutdown();
    }

    #[test]
    fn garbage_lines_do_not_kill_the_connection() {
        let service = Arc::new(FleetService::new(ServiceConfig::small()));
        let server = serve(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let reply = FleetReply::from_line(&client.request("{broken").unwrap()).unwrap();
        assert!(!reply.ok);
        // Same connection still serves a valid request afterwards.
        let req = FleetRequest {
            nodes: 4,
            samples_per_node: 10,
            seed: Some(1),
            ..FleetRequest::fig1()
        };
        let reply = FleetReply::from_line(&client.request(&req.to_line()).unwrap()).unwrap();
        assert!(reply.ok);
        server.shutdown();
    }
}
