//! The persistent, *supervised* worker pool behind the scheduler/shard
//! layer.
//!
//! Workers live for the service's lifetime and pull boxed jobs from a
//! shared [`MetricQueue`] — the same channel seam the metric stack
//! uses (Fig. 10's buffered out-of-band source), reused here as the
//! job conduit. [`WorkerPool::scatter`] fans a batch of closures out
//! and gathers their results *in submission order*, which is what
//! keeps sharded fleet runs bitwise-identical to serial ones.
//!
//! Fault tolerance: every job runs under `catch_unwind`, so a
//! panicking task can neither kill a worker thread nor hang a scatter;
//! [`WorkerPool::try_scatter`] surfaces per-task panics as typed
//! [`ShardError`]s, [`WorkerPool::supervise`] respawns workers that
//! died anyway (the chaos harness kills them via
//! [`WorkerPool::condemn`]), and [`WorkerPool::stats`] reports the
//! panics-caught / workers-respawned counters that ride into reply
//! telemetry.

use fs2_metrics::MetricQueue;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A scatter task that panicked instead of returning: the typed shape
/// the service layer turns into a `shard-panic` failure reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Task index within the scatter (== shard index in the service).
    pub index: usize,
    /// Stringified panic payload.
    pub message: String,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ShardError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Lifetime supervision counters of one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Job/task panics contained by `catch_unwind`.
    pub panics_caught: u64,
    /// Dead workers replaced by [`WorkerPool::supervise`].
    pub workers_respawned: u64,
    /// Worker threads currently alive (== configured size unless a
    /// worker died since the last `supervise`).
    pub live_workers: usize,
}

/// State shared between the pool handle and its worker threads.
#[derive(Debug, Default)]
struct PoolShared {
    panics_caught: AtomicU64,
    workers_respawned: AtomicU64,
    /// Pending death sentences: a worker that finishes a job while
    /// this is positive decrements it and exits. The chaos harness
    /// uses this to simulate worker crashes that `catch_unwind`
    /// cannot contain (e.g. stack-overflow aborts in the real world).
    condemned: AtomicU64,
}

impl PoolShared {
    /// Claims one pending death sentence, if any.
    fn take_condemnation(&self) -> bool {
        self.condemned
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// Fixed-size pool of long-lived, supervised worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    jobs: Arc<MetricQueue<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shared: Arc<PoolShared>,
    size: usize,
}

fn spawn_worker(jobs: Arc<MetricQueue<Job>>, shared: Arc<PoolShared>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // pop_wait returns None once the queue is closed and drained —
        // the pool's shutdown signal.
        while let Some(job) = jobs.pop_wait() {
            // A panicking fire-and-forget job must not take the worker
            // down with it; scatter tasks carry their own catch so the
            // payload can travel to the caller, and this outer catch
            // covers everything else.
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared.panics_caught.fetch_add(1, Ordering::Relaxed);
            }
            if shared.take_condemnation() {
                return;
            }
        }
    })
}

impl WorkerPool {
    /// Spawns `workers` threads (0 = one per host core).
    pub fn new(workers: usize) -> WorkerPool {
        let n = if workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            workers
        };
        let jobs: Arc<MetricQueue<Job>> = Arc::new(MetricQueue::unbounded());
        let shared = Arc::new(PoolShared::default());
        let handles = (0..n)
            .map(|_| spawn_worker(Arc::clone(&jobs), Arc::clone(&shared)))
            .collect();
        WorkerPool {
            jobs,
            workers: Mutex::new(handles),
            shared,
            size: n,
        }
    }

    /// The configured worker count (live count may briefly dip below
    /// between a worker death and the next [`WorkerPool::supervise`]).
    pub fn workers(&self) -> usize {
        self.size
    }

    /// Sentences `n` workers to exit after their next completed job.
    /// The pool keeps making progress regardless (scatter callers help
    /// drain the queue); [`WorkerPool::supervise`] restores capacity.
    pub fn condemn(&self, n: u64) {
        self.shared.condemned.fetch_add(n, Ordering::SeqCst);
    }

    /// Reaps finished worker threads and spawns replacements up to the
    /// configured size. Returns how many workers were respawned.
    pub fn supervise(&self) -> usize {
        // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input: the list only holds join handles
        let mut workers = self.workers.lock().expect("worker list poisoned");
        let mut respawned = 0;
        let mut live = Vec::with_capacity(self.size);
        for handle in workers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        while live.len() < self.size {
            live.push(spawn_worker(
                Arc::clone(&self.jobs),
                Arc::clone(&self.shared),
            ));
            respawned += 1;
        }
        *workers = live;
        if respawned > 0 {
            self.shared
                .workers_respawned
                .fetch_add(respawned as u64, Ordering::Relaxed);
        }
        respawned
    }

    /// Supervision counters plus the current live-worker census.
    pub fn stats(&self) -> PoolStats {
        // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input
        let workers = self.workers.lock().expect("worker list poisoned");
        PoolStats {
            panics_caught: self.shared.panics_caught.load(Ordering::Relaxed),
            workers_respawned: self.shared.workers_respawned.load(Ordering::Relaxed),
            live_workers: workers.iter().filter(|h| !h.is_finished()).count(),
        }
    }

    /// Enqueues one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.jobs
            .push_wait(Box::new(job))
            // fs2-lint: allow(no-panic-service) -- the job queue closes only in Drop, which requires exclusive ownership; no live caller can observe it closed
            .unwrap_or_else(|_| panic!("worker pool is shut down"));
    }

    /// Fans `tasks` out and gathers every outcome — completed result
    /// or caught panic — in task order. This is the supervision-aware
    /// core that [`scatter`](WorkerPool::scatter) and
    /// [`try_scatter`](WorkerPool::try_scatter) wrap.
    fn scatter_raw<R, F>(&self, tasks: Vec<F>) -> Vec<std::thread::Result<R>>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let n = tasks.len();
        let results: Arc<MetricQueue<(usize, std::thread::Result<R>)>> =
            Arc::new(MetricQueue::unbounded());
        for (i, task) in tasks.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let shared = Arc::clone(&self.shared);
            self.execute(move || {
                // The catch is what keeps a panicking task from
                // leaving its result slot forever empty (the caller
                // would block on pop_wait for a push that never
                // comes); the panic payload travels as the result.
                let r = catch_unwind(AssertUnwindSafe(task));
                if r.is_err() {
                    shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
                let _ = results.try_push((i, r));
            });
        }
        let mut out: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        let mut filled = 0;
        while filled < n {
            if let Some((i, r)) = results.try_pop() {
                out[i] = Some(r);
                filled += 1;
            } else if let Some(job) = self.jobs.try_pop() {
                // Help instead of blocking: run someone's job (possibly
                // one of ours) while our results trickle in. The catch
                // keeps a stranger's panicking job from unwinding into
                // this scatter.
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    self.shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
            } else if let Some((i, r)) = results.pop_wait() {
                out[i] = Some(r);
                filled += 1;
            } else {
                // fs2-lint: allow(no-panic-service) -- the result queue is owned by this scatter and never closed; pop_wait returns None only after close
                unreachable!("result queue closed with tasks outstanding");
            }
        }
        out.into_iter()
            .map(|slot| {
                // fs2-lint: allow(no-panic-service) -- the loop above exits only once all n slots are filled
                slot.expect("all slots filled")
            })
            .collect()
    }

    /// Runs every task on the pool and returns their results in task
    /// order. The calling thread also drains jobs while it waits, so
    /// a scatter submitted *from* a pool worker (nested requests)
    /// cannot deadlock the pool.
    ///
    /// A panicking task can never hang the scatter: every task runs
    /// under `catch_unwind` so its result slot is always filled, and
    /// the first panic (by task index) is re-raised on the calling
    /// thread once all tasks have settled.
    pub fn scatter<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let mut gathered = Vec::with_capacity(tasks.len());
        for r in self.scatter_raw(tasks) {
            match r {
                Ok(v) => gathered.push(v),
                // Re-raise the first panic (lowest task index) on the
                // caller: the legacy contract minus the deadlock.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        gathered
    }

    /// Like [`scatter`](WorkerPool::scatter), but a panicking task
    /// becomes a typed [`ShardError`] in its slot instead of
    /// re-raising — the service layer's route to a failed reply
    /// instead of a crashed connection thread.
    pub fn try_scatter<R, F>(&self, tasks: Vec<F>) -> Vec<Result<R, ShardError>>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.scatter_raw(tasks)
            .into_iter()
            .enumerate()
            .map(|(index, r)| {
                r.map_err(|payload| ShardError {
                    index,
                    message: panic_message(payload.as_ref()),
                })
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.jobs.close();
        // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for worker in workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..64).map(|i| move || i * i).collect();
        assert_eq!(
            pool.scatter(tasks),
            (0..64).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn execute_runs_everything_before_shutdown() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop closes the queue and joins; queued jobs still run.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scatter_task_panic_propagates_instead_of_hanging() {
        // Regression: a panicking task used to kill its worker thread
        // before the result push, so scatter blocked forever on a
        // result that would never arrive. It must now re-raise the
        // panic on the caller once every task has settled.
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("task {i} exploded");
                    }
                    i * 2
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| pool.scatter(tasks)));
        let payload = caught.expect_err("the task panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("task 3 exploded"), "wrong payload: {msg}");
        // The pool survives: a later scatter still completes in order.
        let tasks: Vec<_> = (0..16).map(|i| move || i + 1).collect();
        assert_eq!(
            pool.scatter(tasks),
            (1..=16).collect::<Vec<_>>(),
            "pool must keep serving after a task panic"
        );
        assert_eq!(pool.stats().panics_caught, 1);
        assert_eq!(pool.stats().live_workers, 2);
    }

    #[test]
    fn try_scatter_types_the_panics_and_keeps_the_rest() {
        let pool = WorkerPool::new(3);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..6u32)
            .map(|i| {
                Box::new(move || {
                    if i % 3 == 1 {
                        panic!("boom {i}");
                    }
                    i * 10
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let outcomes = pool.try_scatter(tasks);
        assert_eq!(outcomes.len(), 6);
        for (i, o) in outcomes.iter().enumerate() {
            if i % 3 == 1 {
                let e = o.as_ref().unwrap_err();
                assert_eq!(e.index, i);
                assert!(e.message.contains(&format!("boom {i}")), "{e}");
                assert!(e
                    .to_string()
                    .starts_with(&format!("shard task {i} panicked")));
            } else {
                assert_eq!(*o.as_ref().unwrap(), (i as u32) * 10);
            }
        }
        assert_eq!(pool.stats().panics_caught, 2);
    }

    #[test]
    fn execute_panics_are_contained_and_counted() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                if i % 2 == 0 {
                    panic!("fire-and-forget {i}");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // A scatter behind the panicking jobs still completes, which
        // proves both workers survived.
        let tasks: Vec<_> = (0..4).map(|i| move || i).collect();
        assert_eq!(pool.scatter(tasks), vec![0, 1, 2, 3]);
        // The final fire-and-forget job can still be mid-flight on a
        // worker when the scatter returns; wait for it to land.
        while done.load(Ordering::Relaxed) < 5 || pool.stats().panics_caught < 5 {
            std::thread::yield_now();
        }
        assert_eq!(done.load(Ordering::Relaxed), 5);
        assert_eq!(pool.stats().panics_caught, 5);
        assert_eq!(pool.stats().live_workers, 2);
    }

    #[test]
    fn condemned_workers_die_and_supervise_respawns_them() {
        let pool = WorkerPool::new(3);
        pool.condemn(2);
        // Pin one job on every worker simultaneously (each parks until
        // all three have started), so each worker — not the scatter
        // help loop — finishes a job and observes its condemnation.
        let gate = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                gate.fetch_add(1, Ordering::SeqCst);
                while gate.load(Ordering::SeqCst) < 3 {
                    std::thread::yield_now();
                }
            });
        }
        // Give the condemned threads a moment to actually exit.
        for _ in 0..200 {
            if pool.stats().live_workers == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(pool.stats().live_workers, 1, "condemnations not served");
        let respawned = pool.supervise();
        assert_eq!(respawned, 2);
        let stats = pool.stats();
        assert_eq!(stats.live_workers, 3);
        assert_eq!(stats.workers_respawned, 2);
        // The refreshed pool still serves ordered scatters.
        let tasks: Vec<_> = (0..12).map(|i| move || i * 3).collect();
        assert_eq!(
            pool.scatter(tasks),
            (0..12).map(|i| i * 3).collect::<Vec<_>>()
        );
        // Nothing left to reap: supervise is idempotent.
        assert_eq!(pool.supervise(), 0);
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        // More outer tasks than workers, each scattering again: the
        // help-while-waiting loop must keep the pool moving.
        let pool = Arc::new(WorkerPool::new(2));
        let outer: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<_> = (0..4).map(|j| move || i * 10 + j).collect();
                    pool.scatter(inner).into_iter().sum::<usize>()
                }
            })
            .collect();
        let sums = pool.scatter(outer);
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, i * 40 + 6);
        }
    }
}
