//! The persistent worker pool behind the scheduler/shard layer.
//!
//! Workers live for the service's lifetime and pull boxed jobs from a
//! shared [`MetricQueue`] — the same channel seam the metric stack
//! uses (Fig. 10's buffered out-of-band source), reused here as the
//! job conduit. [`WorkerPool::scatter`] fans a batch of closures out
//! and gathers their results *in submission order*, which is what
//! keeps sharded fleet runs bitwise-identical to serial ones.

use fs2_metrics::MetricQueue;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size pool of long-lived worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    jobs: Arc<MetricQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (0 = one per host core).
    pub fn new(workers: usize) -> WorkerPool {
        let n = if workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            workers
        };
        let jobs: Arc<MetricQueue<Job>> = Arc::new(MetricQueue::unbounded());
        let handles = (0..n)
            .map(|_| {
                let jobs = Arc::clone(&jobs);
                std::thread::spawn(move || {
                    // pop_wait returns None once the queue is closed
                    // and drained — the pool's shutdown signal.
                    while let Some(job) = jobs.pop_wait() {
                        job();
                    }
                })
            })
            .collect();
        WorkerPool {
            jobs,
            workers: handles,
        }
    }

    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.jobs
            .push_wait(Box::new(job))
            // fs2-lint: allow(no-panic-service) -- the job queue closes only in Drop, which requires exclusive ownership; no live caller can observe it closed
            .unwrap_or_else(|_| panic!("worker pool is shut down"));
    }

    /// Runs every task on the pool and returns their results in task
    /// order. The calling thread also drains jobs while it waits, so
    /// a scatter submitted *from* a pool worker (nested requests)
    /// cannot deadlock the pool.
    ///
    /// A panicking task can never hang the scatter: every task runs
    /// under `catch_unwind` so its result slot is always filled, and
    /// the first panic (by task index) is re-raised on the calling
    /// thread once all tasks have settled.
    pub fn scatter<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let n = tasks.len();
        let results: Arc<MetricQueue<(usize, std::thread::Result<R>)>> =
            Arc::new(MetricQueue::unbounded());
        for (i, task) in tasks.into_iter().enumerate() {
            let results = Arc::clone(&results);
            self.execute(move || {
                // The catch is what keeps a panicking task from
                // leaving its result slot forever empty (the caller
                // would block on pop_wait for a push that never
                // comes); the panic payload travels as the result.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                let _ = results.try_push((i, r));
            });
        }
        let mut out: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        let mut filled = 0;
        while filled < n {
            if let Some((i, r)) = results.try_pop() {
                out[i] = Some(r);
                filled += 1;
            } else if let Some(job) = self.jobs.try_pop() {
                // Help instead of blocking: run someone's job (possibly
                // one of ours) while our results trickle in.
                job();
            } else if let Some((i, r)) = results.pop_wait() {
                out[i] = Some(r);
                filled += 1;
            } else {
                // fs2-lint: allow(no-panic-service) -- the result queue is owned by this scatter and never closed; pop_wait returns None only after close
                unreachable!("result queue closed with tasks outstanding");
            }
        }
        let mut gathered = Vec::with_capacity(n);
        for slot in out {
            // fs2-lint: allow(no-panic-service) -- the loop above exits only once all n slots are filled
            match slot.expect("all slots filled") {
                Ok(r) => gathered.push(r),
                // Re-raise the first panic (lowest task index) on the
                // caller: the legacy contract minus the deadlock.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        gathered
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.jobs.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..64).map(|i| move || i * i).collect();
        assert_eq!(
            pool.scatter(tasks),
            (0..64).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn execute_runs_everything_before_shutdown() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop closes the queue and joins; queued jobs still run.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scatter_task_panic_propagates_instead_of_hanging() {
        // Regression: a panicking task used to kill its worker thread
        // before the result push, so scatter blocked forever on a
        // result that would never arrive. It must now re-raise the
        // panic on the caller once every task has settled.
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("task {i} exploded");
                    }
                    i * 2
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.scatter(tasks)));
        let payload = caught.expect_err("the task panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("task 3 exploded"), "wrong payload: {msg}");
        // The pool survives: a later scatter still completes in order.
        let tasks: Vec<_> = (0..16).map(|i| move || i + 1).collect();
        assert_eq!(
            pool.scatter(tasks),
            (1..=16).collect::<Vec<_>>(),
            "pool must keep serving after a task panic"
        );
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        // More outer tasks than workers, each scattering again: the
        // help-while-waiting loop must keep the pool moving.
        let pool = Arc::new(WorkerPool::new(2));
        let outer: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<_> = (0..4).map(|j| move || i * 10 + j).collect();
                    pool.scatter(inner).into_iter().sum::<usize>()
                }
            })
            .collect();
        let sums = pool.scatter(outer);
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, i * 40 + 6);
        }
    }
}
