//! Property tests: every encodable instruction round-trips through the
//! decoder, and decoded lengths always match encoded lengths.
//!
//! proptest is not available offline; the properties run over a
//! deterministic pseudo-random instruction stream instead (fixed seed,
//! same 2048-case budget the proptest version used).

use fs2_isa::prelude::*;

/// xorshift64* case generator.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn gp(&mut self) -> Gp {
        Gp::from_num(self.below(16) as u8).unwrap()
    }

    fn index_gp(&mut self) -> Gp {
        loop {
            let g = self.gp();
            if g != Gp::Rsp {
                return g; // rsp is not an index register
            }
        }
    }

    fn ymm(&mut self) -> Ymm {
        Ymm::new(self.below(16) as u8)
    }

    fn xmm(&mut self) -> Xmm {
        Xmm::new(self.below(16) as u8)
    }

    fn scale(&mut self) -> Scale {
        [Scale::X1, Scale::X2, Scale::X4, Scale::X8][self.below(4) as usize]
    }

    fn disp(&mut self) -> i32 {
        match self.below(3) {
            0 => 0,
            1 => (self.below(256) as i32) - 128, // disp8 band
            _ => self.next_u64() as i32,
        }
    }

    fn mem(&mut self) -> Mem {
        let base = self.gp();
        let index = if self.below(2) == 0 {
            Some((self.index_gp(), self.scale()))
        } else {
            None
        };
        Mem {
            base,
            index,
            disp: self.disp(),
        }
    }

    fn rm_ymm(&mut self) -> RmYmm {
        if self.below(2) == 0 {
            RmYmm::Reg(self.ymm())
        } else {
            RmYmm::Mem(self.mem())
        }
    }

    fn hint(&mut self) -> PrefetchHint {
        [
            PrefetchHint::Nta,
            PrefetchHint::T0,
            PrefetchHint::T1,
            PrefetchHint::T2,
        ][self.below(4) as usize]
    }

    fn inst(&mut self) -> Inst {
        match self.below(21) {
            0 => Inst::Vfmadd231pd {
                dst: self.ymm(),
                src1: self.ymm(),
                src2: self.rm_ymm(),
            },
            1 => Inst::Vmulpd {
                dst: self.ymm(),
                src1: self.ymm(),
                src2: self.rm_ymm(),
            },
            2 => Inst::Vaddpd {
                dst: self.ymm(),
                src1: self.ymm(),
                src2: self.rm_ymm(),
            },
            3 => Inst::Vxorps {
                dst: self.ymm(),
                src1: self.ymm(),
                src2: self.ymm(),
            },
            4 => Inst::VmovapdLoad {
                dst: self.ymm(),
                src: self.mem(),
            },
            5 => Inst::VmovapdStore {
                dst: self.mem(),
                src: self.ymm(),
            },
            6 => Inst::Sqrtsd {
                dst: self.xmm(),
                src: self.xmm(),
            },
            7 => Inst::Mulsd {
                dst: self.xmm(),
                src: self.xmm(),
            },
            8 => Inst::Addsd {
                dst: self.xmm(),
                src: self.xmm(),
            },
            9 => Inst::XorGp {
                dst: self.gp(),
                src: self.gp(),
            },
            10 => Inst::ShlImm {
                dst: self.gp(),
                imm: self.below(64) as u8,
            },
            11 => Inst::ShrImm {
                dst: self.gp(),
                imm: self.below(64) as u8,
            },
            12 => Inst::AddImm {
                dst: self.gp(),
                imm: self.next_u64() as i32,
            },
            13 => Inst::AddGp {
                dst: self.gp(),
                src: self.gp(),
            },
            14 => Inst::MovImm64 {
                dst: self.gp(),
                imm: self.next_u64(),
            },
            15 => Inst::Dec(self.gp()),
            16 => Inst::CmpGp {
                a: self.gp(),
                b: self.gp(),
            },
            17 => Inst::Jnz {
                rel: self.next_u64() as i32,
            },
            18 => Inst::Prefetch {
                hint: self.hint(),
                mem: self.mem(),
            },
            19 => Inst::Nop,
            _ => Inst::Ret,
        }
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut g = Gen::new(0x15A_0001);
    for case in 0..2048 {
        let inst = g.inst();
        let mut buf = Vec::new();
        encode(&inst, &mut buf);
        let (decoded, len) = decode_one(&buf).expect("decode failure");
        assert_eq!(decoded, inst, "case {case}: {inst:?}");
        assert_eq!(len, buf.len(), "case {case}: {inst:?}");
    }
}

#[test]
fn instruction_lengths_are_bounded() {
    let mut g = Gen::new(0x15A_0002);
    for case in 0..2048 {
        let inst = g.inst();
        let mut buf = Vec::new();
        encode(&inst, &mut buf);
        // x86-64 instructions are at most 15 bytes; our subset tops out at
        // 10 (mov r64, imm64).
        assert!(
            !buf.is_empty() && buf.len() <= 10,
            "case {case}: len = {} for {inst:?}",
            buf.len()
        );
    }
}

#[test]
fn sequences_decode_without_resync() {
    let mut g = Gen::new(0x15A_0003);
    for case in 0..256 {
        let insts: Vec<Inst> = (0..1 + g.below(63)).map(|_| g.inst()).collect();
        let mut buf = Vec::new();
        for inst in &insts {
            encode(inst, &mut buf);
        }
        let decoded = decode_all(&buf).expect("sequence decode failure");
        assert_eq!(decoded, insts, "case {case}");
    }
}
