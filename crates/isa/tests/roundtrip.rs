//! Property tests: every encodable instruction round-trips through the
//! decoder, and decoded lengths always match encoded lengths.

use fs2_isa::prelude::*;
use proptest::prelude::*;

fn arb_gp() -> impl Strategy<Value = Gp> {
    (0u8..16).prop_map(|n| Gp::from_num(n).unwrap())
}

fn arb_index_gp() -> impl Strategy<Value = Gp> {
    arb_gp().prop_filter("rsp is not an index register", |g| *g != Gp::Rsp)
}

fn arb_ymm() -> impl Strategy<Value = Ymm> {
    (0u8..16).prop_map(Ymm::new)
}

fn arb_xmm() -> impl Strategy<Value = Xmm> {
    (0u8..16).prop_map(Xmm::new)
}

fn arb_scale() -> impl Strategy<Value = Scale> {
    prop_oneof![
        Just(Scale::X1),
        Just(Scale::X2),
        Just(Scale::X4),
        Just(Scale::X8)
    ]
}

fn arb_mem() -> impl Strategy<Value = Mem> {
    let disp = prop_oneof![
        Just(0i32),
        -128i32..=127,
        prop::num::i32::ANY,
    ];
    (arb_gp(), proptest::option::of((arb_index_gp(), arb_scale())), disp).prop_map(
        |(base, index, disp)| Mem {
            base,
            index,
            disp,
        },
    )
}

fn arb_rm_ymm() -> impl Strategy<Value = RmYmm> {
    prop_oneof![arb_ymm().prop_map(RmYmm::Reg), arb_mem().prop_map(RmYmm::Mem)]
}

fn arb_hint() -> impl Strategy<Value = PrefetchHint> {
    prop_oneof![
        Just(PrefetchHint::Nta),
        Just(PrefetchHint::T0),
        Just(PrefetchHint::T1),
        Just(PrefetchHint::T2)
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_ymm(), arb_ymm(), arb_rm_ymm())
            .prop_map(|(dst, src1, src2)| Inst::Vfmadd231pd { dst, src1, src2 }),
        (arb_ymm(), arb_ymm(), arb_rm_ymm()).prop_map(|(dst, src1, src2)| Inst::Vmulpd {
            dst,
            src1,
            src2
        }),
        (arb_ymm(), arb_ymm(), arb_rm_ymm()).prop_map(|(dst, src1, src2)| Inst::Vaddpd {
            dst,
            src1,
            src2
        }),
        (arb_ymm(), arb_ymm(), arb_ymm()).prop_map(|(dst, src1, src2)| Inst::Vxorps {
            dst,
            src1,
            src2
        }),
        (arb_ymm(), arb_mem()).prop_map(|(dst, src)| Inst::VmovapdLoad { dst, src }),
        (arb_mem(), arb_ymm()).prop_map(|(dst, src)| Inst::VmovapdStore { dst, src }),
        (arb_xmm(), arb_xmm()).prop_map(|(dst, src)| Inst::Sqrtsd { dst, src }),
        (arb_xmm(), arb_xmm()).prop_map(|(dst, src)| Inst::Mulsd { dst, src }),
        (arb_xmm(), arb_xmm()).prop_map(|(dst, src)| Inst::Addsd { dst, src }),
        (arb_gp(), arb_gp()).prop_map(|(dst, src)| Inst::XorGp { dst, src }),
        (arb_gp(), 0u8..64).prop_map(|(dst, imm)| Inst::ShlImm { dst, imm }),
        (arb_gp(), 0u8..64).prop_map(|(dst, imm)| Inst::ShrImm { dst, imm }),
        (arb_gp(), prop::num::i32::ANY).prop_map(|(dst, imm)| Inst::AddImm { dst, imm }),
        (arb_gp(), arb_gp()).prop_map(|(dst, src)| Inst::AddGp { dst, src }),
        (arb_gp(), prop::num::u64::ANY).prop_map(|(dst, imm)| Inst::MovImm64 { dst, imm }),
        arb_gp().prop_map(Inst::Dec),
        (arb_gp(), arb_gp()).prop_map(|(a, b)| Inst::CmpGp { a, b }),
        prop::num::i32::ANY.prop_map(|rel| Inst::Jnz { rel }),
        (arb_hint(), arb_mem()).prop_map(|(hint, mem)| Inst::Prefetch { hint, mem }),
        Just(Inst::Nop),
        Just(Inst::Ret),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_round_trip(inst in arb_inst()) {
        let mut buf = Vec::new();
        encode(&inst, &mut buf);
        let (decoded, len) = decode_one(&buf).expect("decode failure");
        prop_assert_eq!(decoded, inst);
        prop_assert_eq!(len, buf.len());
    }

    #[test]
    fn instruction_lengths_are_bounded(inst in arb_inst()) {
        let mut buf = Vec::new();
        encode(&inst, &mut buf);
        // x86-64 instructions are at most 15 bytes; our subset tops out at
        // 10 (mov r64, imm64).
        prop_assert!(!buf.is_empty() && buf.len() <= 10, "len = {}", buf.len());
    }

    #[test]
    fn sequences_decode_without_resync(insts in prop::collection::vec(arb_inst(), 1..64)) {
        let mut buf = Vec::new();
        for inst in &insts {
            encode(inst, &mut buf);
        }
        let decoded = decode_all(&buf).expect("sequence decode failure");
        prop_assert_eq!(decoded, insts);
    }
}
