//! The instruction subset emitted by FIRESTARTER 2 payloads.

use crate::mem::Mem;
use crate::reg::{Gp, Xmm, Ymm};
use std::fmt;

/// Software-prefetch locality hint (the payloads use T0 for near caches and
/// T2 for far caches / RAM streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchHint {
    /// `prefetcht0` — into all cache levels.
    T0,
    /// `prefetcht1` — into L2 and up.
    T1,
    /// `prefetcht2` — into L3 and up.
    T2,
    /// `prefetchnta` — non-temporal.
    Nta,
}

impl PrefetchHint {
    /// The ModRM `reg` opcode-extension field selecting the hint.
    #[inline]
    pub const fn modrm_reg(self) -> u8 {
        match self {
            PrefetchHint::Nta => 0,
            PrefetchHint::T0 => 1,
            PrefetchHint::T1 => 2,
            PrefetchHint::T2 => 3,
        }
    }

    pub fn from_modrm_reg(reg: u8) -> Option<PrefetchHint> {
        match reg {
            0 => Some(PrefetchHint::Nta),
            1 => Some(PrefetchHint::T0),
            2 => Some(PrefetchHint::T1),
            3 => Some(PrefetchHint::T2),
            _ => None,
        }
    }

    pub const fn mnemonic(self) -> &'static str {
        match self {
            PrefetchHint::Nta => "prefetchnta",
            PrefetchHint::T0 => "prefetcht0",
            PrefetchHint::T1 => "prefetcht1",
            PrefetchHint::T2 => "prefetcht2",
        }
    }
}

/// Register-or-memory source operand for VEX instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmYmm {
    Reg(Ymm),
    Mem(Mem),
}

impl RmYmm {
    /// Memory operand, if any.
    pub fn mem(&self) -> Option<&Mem> {
        match self {
            RmYmm::Reg(_) => None,
            RmYmm::Mem(m) => Some(m),
        }
    }
}

impl fmt::Display for RmYmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmYmm::Reg(r) => r.fmt(f),
            RmYmm::Mem(m) => write!(f, "ymmword ptr {m}"),
        }
    }
}

/// An instruction of the FIRESTARTER payload subset.
///
/// Operand order follows Intel syntax (destination first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `vfmadd231pd dst, src1, src2` — dst = dst + src1 * src2 (4×f64).
    /// The workhorse of every modern FIRESTARTER instruction mix.
    Vfmadd231pd { dst: Ymm, src1: Ymm, src2: RmYmm },
    /// `vmulpd dst, src1, src2` (4×f64).
    Vmulpd { dst: Ymm, src1: Ymm, src2: RmYmm },
    /// `vaddpd dst, src1, src2` (4×f64).
    Vaddpd { dst: Ymm, src1: Ymm, src2: RmYmm },
    /// `vxorps dst, src1, src2` — used to clear/refresh vector registers.
    Vxorps { dst: Ymm, src1: Ymm, src2: Ymm },
    /// 256-bit aligned load: `vmovapd dst, [mem]`.
    VmovapdLoad { dst: Ymm, src: Mem },
    /// 256-bit aligned store: `vmovapd [mem], src`.
    VmovapdStore { dst: Mem, src: Ymm },
    /// `sqrtsd dst, src` — the deliberately low-power loop of Fig. 2.
    Sqrtsd { dst: Xmm, src: Xmm },
    /// `mulsd dst, src` — scalar multiply (models unvectorized code,
    /// e.g. stress-ng's long-double matrix kernel).
    Mulsd { dst: Xmm, src: Xmm },
    /// `addsd dst, src` — scalar add.
    Addsd { dst: Xmm, src: Xmm },
    /// `xor dst, src` (64-bit) — ALU filler.
    XorGp { dst: Gp, src: Gp },
    /// `shl dst, imm8` — ALU filler toggling 0b0101…/0b1010… patterns.
    ShlImm { dst: Gp, imm: u8 },
    /// `shr dst, imm8`.
    ShrImm { dst: Gp, imm: u8 },
    /// `add dst, imm32` — pointer advance in access streams.
    AddImm { dst: Gp, imm: i32 },
    /// `add dst, src` (64-bit).
    AddGp { dst: Gp, src: Gp },
    /// `mov dst, imm64` — buffer base initialization.
    MovImm64 { dst: Gp, imm: u64 },
    /// `dec reg` — loop counter.
    Dec(Gp),
    /// `cmp a, b` (64-bit).
    CmpGp { a: Gp, b: Gp },
    /// `jnz rel32` — loop back-edge. The relative offset is from the end of
    /// the instruction.
    Jnz { rel: i32 },
    /// `prefetchT [mem]`.
    Prefetch { hint: PrefetchHint, mem: Mem },
    /// Single-byte `nop` (padding).
    Nop,
    /// `ret`.
    Ret,
}

impl Inst {
    /// Memory operand referenced by this instruction, if any.
    pub fn mem_operand(&self) -> Option<&Mem> {
        match self {
            Inst::Vfmadd231pd { src2, .. }
            | Inst::Vmulpd { src2, .. }
            | Inst::Vaddpd { src2, .. } => src2.mem(),
            Inst::VmovapdLoad { src, .. } => Some(src),
            Inst::VmovapdStore { dst, .. } => Some(dst),
            Inst::Prefetch { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// Whether the instruction reads from memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Inst::VmovapdLoad { .. }
                | Inst::Vfmadd231pd {
                    src2: RmYmm::Mem(_),
                    ..
                }
                | Inst::Vmulpd {
                    src2: RmYmm::Mem(_),
                    ..
                }
                | Inst::Vaddpd {
                    src2: RmYmm::Mem(_),
                    ..
                }
        )
    }

    /// Whether the instruction writes to memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::VmovapdStore { .. })
    }

    /// Whether this is a software prefetch.
    pub fn is_prefetch(&self) -> bool {
        matches!(self, Inst::Prefetch { .. })
    }

    /// Mnemonic (without operands).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Vfmadd231pd { .. } => "vfmadd231pd",
            Inst::Vmulpd { .. } => "vmulpd",
            Inst::Vaddpd { .. } => "vaddpd",
            Inst::Vxorps { .. } => "vxorps",
            Inst::VmovapdLoad { .. } | Inst::VmovapdStore { .. } => "vmovapd",
            Inst::Sqrtsd { .. } => "sqrtsd",
            Inst::Mulsd { .. } => "mulsd",
            Inst::Addsd { .. } => "addsd",
            Inst::XorGp { .. } => "xor",
            Inst::ShlImm { .. } => "shl",
            Inst::ShrImm { .. } => "shr",
            Inst::AddImm { .. } | Inst::AddGp { .. } => "add",
            Inst::MovImm64 { .. } => "mov",
            Inst::Dec(_) => "dec",
            Inst::CmpGp { .. } => "cmp",
            Inst::Jnz { .. } => "jnz",
            Inst::Prefetch { hint, .. } => hint.mnemonic(),
            Inst::Nop => "nop",
            Inst::Ret => "ret",
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Vfmadd231pd { dst, src1, src2 } => {
                write!(f, "vfmadd231pd {dst}, {src1}, {src2}")
            }
            Inst::Vmulpd { dst, src1, src2 } => write!(f, "vmulpd {dst}, {src1}, {src2}"),
            Inst::Vaddpd { dst, src1, src2 } => write!(f, "vaddpd {dst}, {src1}, {src2}"),
            Inst::Vxorps { dst, src1, src2 } => write!(f, "vxorps {dst}, {src1}, {src2}"),
            Inst::VmovapdLoad { dst, src } => write!(f, "vmovapd {dst}, ymmword ptr {src}"),
            Inst::VmovapdStore { dst, src } => write!(f, "vmovapd ymmword ptr {dst}, {src}"),
            Inst::Sqrtsd { dst, src } => write!(f, "sqrtsd {dst}, {src}"),
            Inst::Mulsd { dst, src } => write!(f, "mulsd {dst}, {src}"),
            Inst::Addsd { dst, src } => write!(f, "addsd {dst}, {src}"),
            Inst::XorGp { dst, src } => write!(f, "xor {dst}, {src}"),
            Inst::ShlImm { dst, imm } => write!(f, "shl {dst}, {imm}"),
            Inst::ShrImm { dst, imm } => write!(f, "shr {dst}, {imm}"),
            Inst::AddImm { dst, imm } => write!(f, "add {dst}, {imm}"),
            Inst::AddGp { dst, src } => write!(f, "add {dst}, {src}"),
            Inst::MovImm64 { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Inst::Dec(r) => write!(f, "dec {r}"),
            Inst::CmpGp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::Jnz { rel } => write!(f, "jnz {rel:+}"),
            Inst::Prefetch { hint, mem } => write!(f, "{} byte ptr {mem}", hint.mnemonic()),
            Inst::Nop => f.write_str("nop"),
            Inst::Ret => f.write_str("ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_hint_fields_round_trip() {
        for h in [
            PrefetchHint::Nta,
            PrefetchHint::T0,
            PrefetchHint::T1,
            PrefetchHint::T2,
        ] {
            assert_eq!(PrefetchHint::from_modrm_reg(h.modrm_reg()), Some(h));
        }
        assert_eq!(PrefetchHint::from_modrm_reg(4), None);
    }

    #[test]
    fn load_store_classification() {
        let load = Inst::VmovapdLoad {
            dst: Ymm::new(0),
            src: Mem::base(Gp::Rax),
        };
        let store = Inst::VmovapdStore {
            dst: Mem::base(Gp::Rax),
            src: Ymm::new(0),
        };
        let fma_mem = Inst::Vfmadd231pd {
            dst: Ymm::new(0),
            src1: Ymm::new(1),
            src2: RmYmm::Mem(Mem::base(Gp::Rbx)),
        };
        let fma_reg = Inst::Vfmadd231pd {
            dst: Ymm::new(0),
            src1: Ymm::new(1),
            src2: RmYmm::Reg(Ymm::new(2)),
        };
        assert!(load.is_load() && !load.is_store());
        assert!(store.is_store() && !store.is_load());
        assert!(fma_mem.is_load());
        assert!(!fma_reg.is_load());
        assert!(fma_mem.mem_operand().is_some());
        assert!(fma_reg.mem_operand().is_none());
    }

    #[test]
    fn display_covers_all_forms() {
        let insts = [
            Inst::Vfmadd231pd {
                dst: Ymm::new(0),
                src1: Ymm::new(1),
                src2: RmYmm::Mem(Mem::base_disp(Gp::Rbx, 32)),
            },
            Inst::Vxorps {
                dst: Ymm::new(5),
                src1: Ymm::new(5),
                src2: Ymm::new(5),
            },
            Inst::Sqrtsd {
                dst: Xmm::new(0),
                src: Xmm::new(0),
            },
            Inst::ShlImm {
                dst: Gp::Rdx,
                imm: 4,
            },
            Inst::Jnz { rel: -128 },
            Inst::Prefetch {
                hint: PrefetchHint::T2,
                mem: Mem::base(Gp::R9),
            },
        ];
        let rendered: Vec<String> = insts.iter().map(|i| i.to_string()).collect();
        assert_eq!(
            rendered[0],
            "vfmadd231pd ymm0, ymm1, ymmword ptr [rbx+0x20]"
        );
        assert_eq!(rendered[1], "vxorps ymm5, ymm5, ymm5");
        assert_eq!(rendered[2], "sqrtsd xmm0, xmm0");
        assert_eq!(rendered[3], "shl rdx, 4");
        assert_eq!(rendered[4], "jnz -128");
        assert_eq!(rendered[5], "prefetcht2 byte ptr [r9]");
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Inst::Nop.mnemonic(), "nop");
        assert_eq!(Inst::Ret.mnemonic(), "ret");
        assert_eq!(Inst::Dec(Gp::Rdi).mnemonic(), "dec");
        assert_eq!(
            Inst::Prefetch {
                hint: PrefetchHint::T0,
                mem: Mem::base(Gp::Rax)
            }
            .mnemonic(),
            "prefetcht0"
        );
    }
}
