//! Per-instruction microarchitectural metadata.
//!
//! The `fs2-sim` pipeline model and the `fs2-power` energy model both key
//! off this table rather than re-interpreting instructions themselves, so
//! there is a single source of truth for "what does one `vfmadd231pd`
//! cost".

use crate::inst::Inst;

/// Execution-resource class of a µop, used for port-pressure accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// 256-bit FMA/multiply pipes (2 on Zen 2 and Haswell).
    FpFma,
    /// 256-bit FP add pipes.
    FpAdd,
    /// Any FP/vector pipe (logic ops issue to whichever is free).
    FpAny,
    /// Scalar integer ALU pipes.
    Alu,
    /// Load pipes (incl. the AGU µop).
    Load,
    /// Store pipe.
    Store,
    /// Branch unit.
    Branch,
}

/// Coarse µop classification, doubling as the energy-model key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopClass {
    /// 256-bit fused multiply-add — the highest-power operation.
    FpFma256,
    /// 256-bit multiply.
    FpMul256,
    /// 256-bit add.
    FpAdd256,
    /// 256-bit bitwise logic (`vxorps`).
    VecLogic256,
    /// Scalar double-precision square root (low power, long latency).
    FpSqrt64,
    /// Scalar double-precision multiply/add (unvectorized code).
    FpScalar64,
    /// 256-bit load.
    Load256,
    /// 256-bit store.
    Store256,
    /// Software prefetch (line-sized memory traffic, no register result).
    Prefetch,
    /// Light scalar ALU op (xor/shift/add/dec/cmp/mov-imm).
    AluLight,
    /// Taken/not-taken conditional branch.
    Branch,
    /// No-op.
    Nop,
}

/// Static metadata for one instruction instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstMeta {
    /// Energy/identity class.
    pub class: UopClass,
    /// Fused-domain µops dispatched (what the 4-wide decoder counts).
    pub uops: u8,
    /// Pressure on the FMA-capable FP pipes.
    pub fp_fma: u8,
    /// Pressure on the FP-add pipes.
    pub fp_add: u8,
    /// Pressure on "any FP pipe" (vector logic).
    pub fp_any: u8,
    /// Pressure on scalar ALU pipes.
    pub alu: u8,
    /// Load-pipe µops.
    pub load: u8,
    /// Store-pipe µops.
    pub store: u8,
    /// Branch-unit µops.
    pub branch: u8,
    /// Double-precision floating-point operations performed (FLOP count;
    /// an FMA on 4 lanes counts 8).
    pub flops: u8,
    /// Bytes moved to/from the memory hierarchy (0 for register ops;
    /// prefetches count a full 64-byte line).
    pub mem_bytes: u16,
}

impl InstMeta {
    const fn zero(class: UopClass) -> InstMeta {
        InstMeta {
            class,
            uops: 1,
            fp_fma: 0,
            fp_add: 0,
            fp_any: 0,
            alu: 0,
            load: 0,
            store: 0,
            branch: 0,
            flops: 0,
            mem_bytes: 0,
        }
    }
}

/// Computes the metadata for an instruction.
pub fn meta(inst: &Inst) -> InstMeta {
    match inst {
        Inst::Vfmadd231pd { src2, .. } => {
            let mut m = InstMeta::zero(UopClass::FpFma256);
            m.fp_fma = 1;
            m.flops = 8;
            if src2.mem().is_some() {
                // Micro-fused load+op: one fused µop, but load-pipe pressure.
                m.load = 1;
                m.mem_bytes = 32;
            }
            m
        }
        Inst::Vmulpd { src2, .. } => {
            let mut m = InstMeta::zero(UopClass::FpMul256);
            m.fp_fma = 1;
            m.flops = 4;
            if src2.mem().is_some() {
                m.load = 1;
                m.mem_bytes = 32;
            }
            m
        }
        Inst::Vaddpd { src2, .. } => {
            let mut m = InstMeta::zero(UopClass::FpAdd256);
            m.fp_add = 1;
            m.flops = 4;
            if src2.mem().is_some() {
                m.load = 1;
                m.mem_bytes = 32;
            }
            m
        }
        Inst::Vxorps { .. } => {
            let mut m = InstMeta::zero(UopClass::VecLogic256);
            m.fp_any = 1;
            m
        }
        Inst::VmovapdLoad { .. } => {
            let mut m = InstMeta::zero(UopClass::Load256);
            m.load = 1;
            m.mem_bytes = 32;
            m
        }
        Inst::VmovapdStore { .. } => {
            let mut m = InstMeta::zero(UopClass::Store256);
            m.store = 1;
            m.mem_bytes = 32;
            m
        }
        Inst::Sqrtsd { .. } => {
            let mut m = InstMeta::zero(UopClass::FpSqrt64);
            m.fp_fma = 1; // occupies a divider-adjacent FP pipe
            m.flops = 1;
            m
        }
        Inst::Mulsd { .. } => {
            let mut m = InstMeta::zero(UopClass::FpScalar64);
            m.fp_fma = 1;
            m.flops = 1;
            m
        }
        Inst::Addsd { .. } => {
            let mut m = InstMeta::zero(UopClass::FpScalar64);
            m.fp_add = 1;
            m.flops = 1;
            m
        }
        Inst::XorGp { .. }
        | Inst::ShlImm { .. }
        | Inst::ShrImm { .. }
        | Inst::AddImm { .. }
        | Inst::AddGp { .. }
        | Inst::MovImm64 { .. }
        | Inst::Dec(_)
        | Inst::CmpGp { .. } => {
            let mut m = InstMeta::zero(UopClass::AluLight);
            m.alu = 1;
            m
        }
        Inst::Jnz { .. } => {
            let mut m = InstMeta::zero(UopClass::Branch);
            m.branch = 1;
            m
        }
        Inst::Prefetch { .. } => {
            let mut m = InstMeta::zero(UopClass::Prefetch);
            m.load = 1;
            m.mem_bytes = 64;
            m
        }
        Inst::Nop => InstMeta::zero(UopClass::Nop),
        Inst::Ret => {
            let mut m = InstMeta::zero(UopClass::Branch);
            m.branch = 1;
            m
        }
    }
}

/// Aggregated metadata over a sequence of instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqMeta {
    pub insts: u64,
    pub uops: u64,
    pub fp_fma: u64,
    pub fp_add: u64,
    pub fp_any: u64,
    pub alu: u64,
    pub load: u64,
    pub store: u64,
    pub branch: u64,
    pub flops: u64,
    pub mem_bytes: u64,
    /// `sqrtsd` µops (throughput-limited by the unpipelined divider).
    pub sqrt: u64,
}

impl SeqMeta {
    pub fn add(&mut self, m: &InstMeta) {
        self.insts += 1;
        if m.class == UopClass::FpSqrt64 {
            self.sqrt += 1;
        }
        self.uops += u64::from(m.uops);
        self.fp_fma += u64::from(m.fp_fma);
        self.fp_add += u64::from(m.fp_add);
        self.fp_any += u64::from(m.fp_any);
        self.alu += u64::from(m.alu);
        self.load += u64::from(m.load);
        self.store += u64::from(m.store);
        self.branch += u64::from(m.branch);
        self.flops += u64::from(m.flops);
        self.mem_bytes += u64::from(m.mem_bytes);
    }
}

/// Sums metadata over an instruction slice.
pub fn sequence_meta(insts: &[Inst]) -> SeqMeta {
    let mut s = SeqMeta::default();
    for inst in insts {
        s.add(&meta(inst));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{PrefetchHint, RmYmm};
    use crate::mem::Mem;
    use crate::reg::{Gp, Xmm, Ymm};

    #[test]
    fn fma_register_form() {
        let m = meta(&Inst::Vfmadd231pd {
            dst: Ymm::new(0),
            src1: Ymm::new(1),
            src2: RmYmm::Reg(Ymm::new(2)),
        });
        assert_eq!(m.class, UopClass::FpFma256);
        assert_eq!(m.fp_fma, 1);
        assert_eq!(m.load, 0);
        assert_eq!(m.flops, 8);
        assert_eq!(m.mem_bytes, 0);
    }

    #[test]
    fn fma_memory_form_adds_load_pressure() {
        let m = meta(&Inst::Vfmadd231pd {
            dst: Ymm::new(0),
            src1: Ymm::new(1),
            src2: RmYmm::Mem(Mem::base(Gp::Rax)),
        });
        assert_eq!(m.load, 1);
        assert_eq!(m.mem_bytes, 32);
        // Micro-fusion: still one fused-domain µop.
        assert_eq!(m.uops, 1);
    }

    #[test]
    fn loads_stores_prefetch_bytes() {
        assert_eq!(
            meta(&Inst::VmovapdLoad {
                dst: Ymm::new(0),
                src: Mem::base(Gp::Rax)
            })
            .mem_bytes,
            32
        );
        assert_eq!(
            meta(&Inst::VmovapdStore {
                dst: Mem::base(Gp::Rax),
                src: Ymm::new(0)
            })
            .store,
            1
        );
        assert_eq!(
            meta(&Inst::Prefetch {
                hint: PrefetchHint::T2,
                mem: Mem::base(Gp::Rax)
            })
            .mem_bytes,
            64
        );
    }

    #[test]
    fn alu_mix_counts() {
        for i in [
            Inst::XorGp {
                dst: Gp::Rax,
                src: Gp::Rbx,
            },
            Inst::ShlImm {
                dst: Gp::Rax,
                imm: 4,
            },
            Inst::ShrImm {
                dst: Gp::Rax,
                imm: 4,
            },
            Inst::Dec(Gp::Rdi),
        ] {
            let m = meta(&i);
            assert_eq!(m.class, UopClass::AluLight);
            assert_eq!(m.alu, 1);
            assert_eq!(m.fp_fma + m.fp_add + m.fp_any, 0);
        }
    }

    #[test]
    fn sqrt_is_low_flop_fp() {
        let m = meta(&Inst::Sqrtsd {
            dst: Xmm::new(0),
            src: Xmm::new(0),
        });
        assert_eq!(m.class, UopClass::FpSqrt64);
        assert_eq!(m.flops, 1);
    }

    #[test]
    fn sequence_aggregation() {
        let seq = [
            Inst::Vfmadd231pd {
                dst: Ymm::new(0),
                src1: Ymm::new(1),
                src2: RmYmm::Reg(Ymm::new(2)),
            },
            Inst::Vfmadd231pd {
                dst: Ymm::new(3),
                src1: Ymm::new(4),
                src2: RmYmm::Mem(Mem::base(Gp::Rax)),
            },
            Inst::XorGp {
                dst: Gp::Rax,
                src: Gp::Rbx,
            },
            Inst::Dec(Gp::Rdi),
            Inst::Jnz { rel: -10 },
        ];
        let s = sequence_meta(&seq);
        assert_eq!(s.insts, 5);
        assert_eq!(s.fp_fma, 2);
        assert_eq!(s.alu, 2);
        assert_eq!(s.branch, 1);
        assert_eq!(s.load, 1);
        assert_eq!(s.flops, 16);
        assert_eq!(s.mem_bytes, 32);
    }
}
