//! Memory operand representation (`[base + index*scale + disp]`).

use crate::reg::Gp;
use std::fmt;

/// Index-register scale factor for SIB addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Scale {
    X1 = 0,
    X2 = 1,
    X4 = 2,
    X8 = 3,
}

impl Scale {
    /// The multiplication factor (1, 2, 4, 8).
    #[inline]
    pub const fn factor(self) -> u8 {
        1 << (self as u8)
    }

    /// The two SIB scale bits.
    #[inline]
    pub const fn bits(self) -> u8 {
        self as u8
    }

    pub fn from_bits(bits: u8) -> Option<Scale> {
        match bits {
            0 => Some(Scale::X1),
            1 => Some(Scale::X2),
            2 => Some(Scale::X4),
            3 => Some(Scale::X8),
            _ => None,
        }
    }

    pub fn from_factor(factor: u8) -> Option<Scale> {
        match factor {
            1 => Some(Scale::X1),
            2 => Some(Scale::X2),
            4 => Some(Scale::X4),
            8 => Some(Scale::X8),
            _ => None,
        }
    }
}

/// A memory operand: `[base + index*scale + disp]`.
///
/// RSP cannot be an index register on x86-64; the constructors reject it so
/// an invalid operand is unrepresentable by the time it reaches the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    pub base: Gp,
    pub index: Option<(Gp, Scale)>,
    pub disp: i32,
}

impl Mem {
    /// `[base]`
    #[inline]
    pub const fn base(base: Gp) -> Mem {
        Mem {
            base,
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`
    #[inline]
    pub const fn base_disp(base: Gp, disp: i32) -> Mem {
        Mem {
            base,
            index: None,
            disp,
        }
    }

    /// `[base + index*scale + disp]`. Panics if `index` is RSP (not
    /// encodable as an index register).
    pub fn base_index(base: Gp, index: Gp, scale: Scale, disp: i32) -> Mem {
        assert!(index != Gp::Rsp, "rsp cannot be used as an index register");
        Mem {
            base,
            index: Some((index, scale)),
            disp,
        }
    }

    /// Fallible variant of [`Mem::base_index`].
    pub fn try_base_index(base: Gp, index: Gp, scale: Scale, disp: i32) -> Option<Mem> {
        (index != Gp::Rsp).then_some(Mem {
            base,
            index: Some((index, scale)),
            disp,
        })
    }

    /// Displacement fits in a sign-extended 8-bit immediate.
    #[inline]
    pub fn disp_fits_i8(&self) -> bool {
        i8::try_from(self.disp).is_ok()
    }

    /// Returns the operand shifted by `delta` bytes.
    pub fn with_offset(self, delta: i32) -> Mem {
        Mem {
            disp: self.disp.wrapping_add(delta),
            ..self
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some((index, scale)) = self.index {
            write!(f, "+{}*{}", index, scale.factor())?;
        }
        if self.disp > 0 {
            write!(f, "+{:#x}", self.disp)?;
        } else if self.disp < 0 {
            write!(f, "-{:#x}", -(self.disp as i64))?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::X1.factor(), 1);
        assert_eq!(Scale::X2.factor(), 2);
        assert_eq!(Scale::X4.factor(), 4);
        assert_eq!(Scale::X8.factor(), 8);
        for s in [Scale::X1, Scale::X2, Scale::X4, Scale::X8] {
            assert_eq!(Scale::from_bits(s.bits()), Some(s));
            assert_eq!(Scale::from_factor(s.factor()), Some(s));
        }
        assert_eq!(Scale::from_bits(4), None);
        assert_eq!(Scale::from_factor(3), None);
    }

    #[test]
    fn disp_classification() {
        assert!(Mem::base_disp(Gp::Rax, 0).disp_fits_i8());
        assert!(Mem::base_disp(Gp::Rax, 127).disp_fits_i8());
        assert!(Mem::base_disp(Gp::Rax, -128).disp_fits_i8());
        assert!(!Mem::base_disp(Gp::Rax, 128).disp_fits_i8());
        assert!(!Mem::base_disp(Gp::Rax, -129).disp_fits_i8());
    }

    #[test]
    #[should_panic]
    fn rsp_index_rejected() {
        let _ = Mem::base_index(Gp::Rax, Gp::Rsp, Scale::X1, 0);
    }

    #[test]
    fn try_base_index_rejects_rsp() {
        assert!(Mem::try_base_index(Gp::Rax, Gp::Rsp, Scale::X2, 0).is_none());
        assert!(Mem::try_base_index(Gp::Rax, Gp::R12, Scale::X2, 0).is_some());
    }

    #[test]
    fn with_offset_wraps() {
        let m = Mem::base_disp(Gp::Rbx, 64);
        assert_eq!(m.with_offset(64).disp, 128);
        assert_eq!(m.with_offset(-128).disp, -64);
    }

    #[test]
    fn display_format() {
        assert_eq!(Mem::base(Gp::Rax).to_string(), "[rax]");
        assert_eq!(Mem::base_disp(Gp::Rbx, 0x40).to_string(), "[rbx+0x40]");
        assert_eq!(Mem::base_disp(Gp::Rbx, -64).to_string(), "[rbx-0x40]");
        assert_eq!(
            Mem::base_index(Gp::Rax, Gp::Rcx, Scale::X8, 8).to_string(),
            "[rax+rcx*8+0x8]"
        );
    }
}
