//! x86-64 machine-code encoder for the payload instruction subset.
//!
//! This is the reproduction's stand-in for AsmJit: FIRESTARTER 2 builds its
//! inner loop at runtime from the instruction-mix definition, the unroll
//! factor `u` and the memory accesses `M`, then jumps into the generated
//! buffer. We emit the identical byte sequences (verified against
//! hand-derived encodings and a round-trip decoder); execution happens on
//! the `fs2-sim` model instead of the real CPU (see DESIGN.md §2).

use crate::inst::{Inst, RmYmm};
use crate::mem::Mem;
use crate::reg::Gp;
use std::fmt;

/// Errors produced while assembling a code buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A `jnz` referenced a label that was never bound.
    UnboundLabel(Label),
    /// Branch displacement exceeded ±2 GiB (cannot happen for realistic
    /// payloads; kept for completeness).
    BranchOutOfRange,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnboundLabel(l) => write!(f, "label L{} was never bound", l.0),
            EncodeError::BranchOutOfRange => f.write_str("branch displacement out of range"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Opcode map selector for VEX-encoded instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VexMap {
    /// Two-byte opcode map (`0F`).
    M0f,
    /// Three-byte opcode map (`0F 38`).
    M0f38,
}

impl VexMap {
    fn mmmmm(self) -> u8 {
        match self {
            VexMap::M0f => 0b00001,
            VexMap::M0f38 => 0b00010,
        }
    }
}

/// ModRM/SIB/displacement bytes plus the prefix extension bits they need.
struct ModRmEnc {
    x_ext: bool,
    b_ext: bool,
    /// modrm, optional sib, displacement bytes.
    bytes: [u8; 6],
    len: usize,
}

/// Encodes a register-direct ModRM byte (`mod = 11`).
#[inline]
fn reg_modrm(reg_low3: u8, rm_low3: u8) -> u8 {
    0b1100_0000 | (reg_low3 << 3) | rm_low3
}

/// Encodes a memory ModRM (+SIB, +disp) for `[base + index*scale + disp]`.
fn mem_modrm(reg_low3: u8, mem: &Mem) -> ModRmEnc {
    let need_sib = mem.index.is_some() || mem.base.needs_sib();
    // RBP/R13 cannot be encoded with mod=00; force a disp8 of zero.
    let (modbits, disp_len) = if mem.disp == 0 && !mem.base.needs_disp() {
        (0b00u8, 0usize)
    } else if mem.disp_fits_i8() {
        (0b01, 1)
    } else {
        (0b10, 4)
    };
    let rm = if need_sib { 0b100 } else { mem.base.low3() };
    let mut bytes = [0u8; 6];
    let mut len = 0;
    bytes[len] = (modbits << 6) | (reg_low3 << 3) | rm;
    len += 1;
    let mut x_ext = false;
    if need_sib {
        let (index_bits, scale_bits, x) = match mem.index {
            Some((idx, scale)) => (idx.low3(), scale.bits(), idx.is_extended()),
            // index=100 with VEX.X/REX.X clear means "no index".
            None => (0b100, 0, false),
        };
        x_ext = x;
        bytes[len] = (scale_bits << 6) | (index_bits << 3) | mem.base.low3();
        len += 1;
    }
    let disp = mem.disp.to_le_bytes();
    bytes[len..len + disp_len].copy_from_slice(&disp[..disp_len]);
    len += disp_len;
    ModRmEnc {
        x_ext,
        b_ext: mem.base.is_extended(),
        bytes,
        len,
    }
}

/// Emits a VEX prefix, choosing the 2-byte form when legal.
#[allow(clippy::too_many_arguments)]
fn emit_vex(
    out: &mut Vec<u8>,
    map: VexMap,
    w: bool,
    l256: bool,
    pp: u8,
    r_ext: bool,
    x_ext: bool,
    b_ext: bool,
    vvvv: u8,
) {
    debug_assert!(pp < 4 && vvvv < 16);
    let inv = |b: bool| u8::from(!b);
    if map == VexMap::M0f && !w && !x_ext && !b_ext {
        out.push(0xC5);
        out.push((inv(r_ext) << 7) | (((!vvvv) & 0xF) << 3) | (u8::from(l256) << 2) | pp);
    } else {
        out.push(0xC4);
        out.push((inv(r_ext) << 7) | (inv(x_ext) << 6) | (inv(b_ext) << 5) | map.mmmmm());
        out.push((u8::from(w) << 7) | (((!vvvv) & 0xF) << 3) | (u8::from(l256) << 2) | pp);
    }
}

/// Emits a REX prefix if any bit is needed (always when `w`).
fn emit_rex(out: &mut Vec<u8>, w: bool, r: bool, x: bool, b: bool) {
    if w || r || x || b {
        out.push(0x40 | (u8::from(w) << 3) | (u8::from(r) << 2) | (u8::from(x) << 1) | u8::from(b));
    }
}

/// pp field values (implied legacy prefixes).
const PP_NONE: u8 = 0b00;
const PP_66: u8 = 0b01;

/// Emits a three-operand VEX instruction (`dst, vvvv=src1, rm=src2`).
#[allow(clippy::too_many_arguments)]
fn emit_vex3op(
    out: &mut Vec<u8>,
    map: VexMap,
    w: bool,
    pp: u8,
    opcode: u8,
    dst: u8,
    src1: u8,
    src2: &RmYmm,
) {
    match src2 {
        RmYmm::Reg(r) => {
            emit_vex(
                out,
                map,
                w,
                true,
                pp,
                dst >= 8,
                false,
                r.is_extended(),
                src1,
            );
            out.push(opcode);
            out.push(reg_modrm(dst & 7, r.low3()));
        }
        RmYmm::Mem(m) => {
            let enc = mem_modrm(dst & 7, m);
            emit_vex(out, map, w, true, pp, dst >= 8, enc.x_ext, enc.b_ext, src1);
            out.push(opcode);
            out.extend_from_slice(&enc.bytes[..enc.len]);
        }
    }
}

/// Encodes one instruction, appending its bytes to `out`.
///
/// `Jnz` encodes the stored relative displacement verbatim; use
/// [`Assembler`] for label-based control flow.
pub fn encode(inst: &Inst, out: &mut Vec<u8>) {
    match *inst {
        Inst::Vfmadd231pd { dst, src1, src2 } => {
            // VEX.DDS.256.66.0F38.W1 B8 /r
            emit_vex3op(
                out,
                VexMap::M0f38,
                true,
                PP_66,
                0xB8,
                dst.num(),
                src1.num(),
                &src2,
            );
        }
        Inst::Vmulpd { dst, src1, src2 } => {
            // VEX.NDS.256.66.0F.WIG 59 /r
            emit_vex3op(
                out,
                VexMap::M0f,
                false,
                PP_66,
                0x59,
                dst.num(),
                src1.num(),
                &src2,
            );
        }
        Inst::Vaddpd { dst, src1, src2 } => {
            // VEX.NDS.256.66.0F.WIG 58 /r
            emit_vex3op(
                out,
                VexMap::M0f,
                false,
                PP_66,
                0x58,
                dst.num(),
                src1.num(),
                &src2,
            );
        }
        Inst::Vxorps { dst, src1, src2 } => {
            // VEX.NDS.256.0F.WIG 57 /r
            emit_vex3op(
                out,
                VexMap::M0f,
                false,
                PP_NONE,
                0x57,
                dst.num(),
                src1.num(),
                &RmYmm::Reg(src2),
            );
        }
        Inst::VmovapdLoad { dst, src } => {
            // VEX.256.66.0F.WIG 28 /r
            let enc = mem_modrm(dst.low3(), &src);
            emit_vex(
                out,
                VexMap::M0f,
                false,
                true,
                PP_66,
                dst.is_extended(),
                enc.x_ext,
                enc.b_ext,
                0,
            );
            out.push(0x28);
            out.extend_from_slice(&enc.bytes[..enc.len]);
        }
        Inst::VmovapdStore { dst, src } => {
            // VEX.256.66.0F.WIG 29 /r
            let enc = mem_modrm(src.low3(), &dst);
            emit_vex(
                out,
                VexMap::M0f,
                false,
                true,
                PP_66,
                src.is_extended(),
                enc.x_ext,
                enc.b_ext,
                0,
            );
            out.push(0x29);
            out.extend_from_slice(&enc.bytes[..enc.len]);
        }
        Inst::Sqrtsd { dst, src } => {
            // F2 0F 51 /r
            out.push(0xF2);
            emit_rex(out, false, dst.is_extended(), false, src.is_extended());
            out.push(0x0F);
            out.push(0x51);
            out.push(reg_modrm(dst.low3(), src.low3()));
        }
        Inst::Mulsd { dst, src } => {
            // F2 0F 59 /r
            out.push(0xF2);
            emit_rex(out, false, dst.is_extended(), false, src.is_extended());
            out.push(0x0F);
            out.push(0x59);
            out.push(reg_modrm(dst.low3(), src.low3()));
        }
        Inst::Addsd { dst, src } => {
            // F2 0F 58 /r
            out.push(0xF2);
            emit_rex(out, false, dst.is_extended(), false, src.is_extended());
            out.push(0x0F);
            out.push(0x58);
            out.push(reg_modrm(dst.low3(), src.low3()));
        }
        Inst::XorGp { dst, src } => {
            // REX.W 31 /r (xor r/m64, r64)
            emit_rex(out, true, src.is_extended(), false, dst.is_extended());
            out.push(0x31);
            out.push(reg_modrm(src.low3(), dst.low3()));
        }
        Inst::ShlImm { dst, imm } => {
            // REX.W C1 /4 ib
            emit_rex(out, true, false, false, dst.is_extended());
            out.push(0xC1);
            out.push(reg_modrm(4, dst.low3()));
            out.push(imm);
        }
        Inst::ShrImm { dst, imm } => {
            // REX.W C1 /5 ib
            emit_rex(out, true, false, false, dst.is_extended());
            out.push(0xC1);
            out.push(reg_modrm(5, dst.low3()));
            out.push(imm);
        }
        Inst::AddImm { dst, imm } => {
            emit_rex(out, true, false, false, dst.is_extended());
            if let Ok(imm8) = i8::try_from(imm) {
                // REX.W 83 /0 ib
                out.push(0x83);
                out.push(reg_modrm(0, dst.low3()));
                out.push(imm8 as u8);
            } else {
                // REX.W 81 /0 id
                out.push(0x81);
                out.push(reg_modrm(0, dst.low3()));
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::AddGp { dst, src } => {
            // REX.W 01 /r (add r/m64, r64)
            emit_rex(out, true, src.is_extended(), false, dst.is_extended());
            out.push(0x01);
            out.push(reg_modrm(src.low3(), dst.low3()));
        }
        Inst::MovImm64 { dst, imm } => {
            // REX.W B8+rd io
            emit_rex(out, true, false, false, dst.is_extended());
            out.push(0xB8 + dst.low3());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Dec(r) => {
            // REX.W FF /1
            emit_rex(out, true, false, false, r.is_extended());
            out.push(0xFF);
            out.push(reg_modrm(1, r.low3()));
        }
        Inst::CmpGp { a, b } => {
            // REX.W 39 /r (cmp r/m64, r64)
            emit_rex(out, true, b.is_extended(), false, a.is_extended());
            out.push(0x39);
            out.push(reg_modrm(b.low3(), a.low3()));
        }
        Inst::Jnz { rel } => {
            // 0F 85 cd
            out.push(0x0F);
            out.push(0x85);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::Prefetch { hint, mem } => {
            // 0F 18 /hint
            let enc = mem_modrm(hint.modrm_reg(), &mem);
            emit_rex(out, false, false, enc.x_ext, enc.b_ext);
            out.push(0x0F);
            out.push(0x18);
            out.extend_from_slice(&enc.bytes[..enc.len]);
        }
        Inst::Nop => out.push(0x90),
        Inst::Ret => out.push(0xC3),
    }
}

/// Byte length of a single encoded instruction.
pub fn encoded_len(inst: &Inst) -> usize {
    let mut buf = Vec::with_capacity(16);
    encode(inst, &mut buf);
    buf.len()
}

/// A forward/backward branch target handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

/// A small assembler with label support, mirroring the AsmJit usage in
/// FIRESTARTER 2 (one backward `jnz` closing the unrolled loop).
#[derive(Debug, Default)]
pub struct Assembler {
    buf: Vec<u8>,
    insts: Vec<Inst>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl Assembler {
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.buf.len());
    }

    /// Appends one instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
        encode(&inst, &mut self.buf);
    }

    /// Appends a `jnz` to `label` (patched in [`Assembler::finish`]).
    pub fn jnz(&mut self, label: Label) {
        let at = self.buf.len();
        self.insts.push(Inst::Jnz { rel: 0 });
        encode(&Inst::Jnz { rel: 0 }, &mut self.buf);
        self.fixups.push((at, label));
    }

    /// Current offset into the code buffer.
    pub fn offset(&self) -> usize {
        self.buf.len()
    }

    /// Instructions pushed so far, in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Resolves fixups and returns the finished code buffer.
    pub fn finish(mut self) -> Result<Vec<u8>, EncodeError> {
        for &(at, label) in &self.fixups {
            let target = self.labels[label.0].ok_or(EncodeError::UnboundLabel(label))?;
            // jnz rel32 is 6 bytes; displacement is relative to its end.
            let end = at as i64 + 6;
            let rel = target as i64 - end;
            let rel32 = i32::try_from(rel).map_err(|_| EncodeError::BranchOutOfRange)?;
            self.buf[at + 2..at + 6].copy_from_slice(&rel32.to_le_bytes());
        }
        Ok(self.buf)
    }
}

/// Encodes a straight-line sequence (no labels) into a fresh buffer.
pub fn encode_sequence(insts: &[Inst]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(insts.len() * 5);
    for inst in insts {
        encode(inst, &mut buf);
    }
    buf
}

/// Total encoded size of a sequence, in bytes. Payload builders use this to
/// decide which front-end structure (loop buffer / µop cache / L1I / L2) a
/// given unroll factor lands in.
pub fn sequence_len(insts: &[Inst]) -> usize {
    insts.iter().map(encoded_len).sum()
}

/// Marker helper: the canonical loop-closing sequence `dec rdi; jnz top`.
pub fn loop_tail(counter: Gp) -> [Inst; 1] {
    [Inst::Dec(counter)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::PrefetchHint;
    use crate::mem::Scale;
    use crate::reg::{Xmm, Ymm};

    fn enc(i: Inst) -> Vec<u8> {
        let mut v = Vec::new();
        encode(&i, &mut v);
        v
    }

    #[test]
    fn vxorps_reg_reg_reg() {
        // vxorps ymm0, ymm0, ymm0
        assert_eq!(
            enc(Inst::Vxorps {
                dst: Ymm::new(0),
                src1: Ymm::new(0),
                src2: Ymm::new(0)
            }),
            vec![0xC5, 0xFC, 0x57, 0xC0]
        );
        // vxorps ymm8, ymm8, ymm8 — forces the 3-byte VEX form.
        assert_eq!(
            enc(Inst::Vxorps {
                dst: Ymm::new(8),
                src1: Ymm::new(8),
                src2: Ymm::new(8)
            }),
            vec![0xC4, 0x41, 0x3C, 0x57, 0xC0]
        );
    }

    #[test]
    fn vfmadd231pd_forms() {
        // vfmadd231pd ymm1, ymm2, ymm3
        assert_eq!(
            enc(Inst::Vfmadd231pd {
                dst: Ymm::new(1),
                src1: Ymm::new(2),
                src2: RmYmm::Reg(Ymm::new(3))
            }),
            vec![0xC4, 0xE2, 0xED, 0xB8, 0xCB]
        );
        // vfmadd231pd ymm1, ymm2, [rax]
        assert_eq!(
            enc(Inst::Vfmadd231pd {
                dst: Ymm::new(1),
                src1: Ymm::new(2),
                src2: RmYmm::Mem(Mem::base(Gp::Rax))
            }),
            vec![0xC4, 0xE2, 0xED, 0xB8, 0x08]
        );
    }

    #[test]
    fn vmulpd_vaddpd() {
        // vmulpd ymm0, ymm1, ymm2
        assert_eq!(
            enc(Inst::Vmulpd {
                dst: Ymm::new(0),
                src1: Ymm::new(1),
                src2: RmYmm::Reg(Ymm::new(2))
            }),
            vec![0xC5, 0xF5, 0x59, 0xC2]
        );
        // vaddpd ymm0, ymm1, ymm2
        assert_eq!(
            enc(Inst::Vaddpd {
                dst: Ymm::new(0),
                src1: Ymm::new(1),
                src2: RmYmm::Reg(Ymm::new(2))
            }),
            vec![0xC5, 0xF5, 0x58, 0xC2]
        );
    }

    #[test]
    fn vmovapd_addressing_modes() {
        // vmovapd ymm1, [rax]
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(1),
                src: Mem::base(Gp::Rax)
            }),
            vec![0xC5, 0xFD, 0x28, 0x08]
        );
        // vmovapd [rax], ymm1
        assert_eq!(
            enc(Inst::VmovapdStore {
                dst: Mem::base(Gp::Rax),
                src: Ymm::new(1)
            }),
            vec![0xC5, 0xFD, 0x29, 0x08]
        );
        // vmovapd ymm1, [rax+0x40] — disp8 compression
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(1),
                src: Mem::base_disp(Gp::Rax, 0x40)
            }),
            vec![0xC5, 0xFD, 0x28, 0x48, 0x40]
        );
        // vmovapd ymm1, [rax+0x12345678] — disp32
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(1),
                src: Mem::base_disp(Gp::Rax, 0x1234_5678)
            }),
            vec![0xC5, 0xFD, 0x28, 0x88, 0x78, 0x56, 0x34, 0x12]
        );
        // vmovapd ymm1, [rsp] — SIB escape for RSP base
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(1),
                src: Mem::base(Gp::Rsp)
            }),
            vec![0xC5, 0xFD, 0x28, 0x0C, 0x24]
        );
        // vmovapd ymm1, [rbp] — forced disp8=0 for RBP base
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(1),
                src: Mem::base(Gp::Rbp)
            }),
            vec![0xC5, 0xFD, 0x28, 0x4D, 0x00]
        );
        // vmovapd ymm9, [r8] — extended registers need 3-byte VEX
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(9),
                src: Mem::base(Gp::R8)
            }),
            vec![0xC4, 0x41, 0x7D, 0x28, 0x08]
        );
        // vmovapd ymm1, [rax+rbx*2] — SIB with index
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(1),
                src: Mem::base_index(Gp::Rax, Gp::Rbx, Scale::X2, 0)
            }),
            vec![0xC5, 0xFD, 0x28, 0x0C, 0x58]
        );
    }

    #[test]
    fn gp_alu_encodings() {
        // xor rax, rbx
        assert_eq!(
            enc(Inst::XorGp {
                dst: Gp::Rax,
                src: Gp::Rbx
            }),
            vec![0x48, 0x31, 0xD8]
        );
        // xor r8, r9
        assert_eq!(
            enc(Inst::XorGp {
                dst: Gp::R8,
                src: Gp::R9
            }),
            vec![0x4D, 0x31, 0xC8]
        );
        // shl rax, 4 / shr rax, 4
        assert_eq!(
            enc(Inst::ShlImm {
                dst: Gp::Rax,
                imm: 4
            }),
            vec![0x48, 0xC1, 0xE0, 0x04]
        );
        assert_eq!(
            enc(Inst::ShrImm {
                dst: Gp::Rax,
                imm: 4
            }),
            vec![0x48, 0xC1, 0xE8, 0x04]
        );
        // shl r10, 4
        assert_eq!(
            enc(Inst::ShlImm {
                dst: Gp::R10,
                imm: 4
            }),
            vec![0x49, 0xC1, 0xE2, 0x04]
        );
        // add rax, 0x40 (imm8 form)
        assert_eq!(
            enc(Inst::AddImm {
                dst: Gp::Rax,
                imm: 0x40
            }),
            vec![0x48, 0x83, 0xC0, 0x40]
        );
        // add rax, 0x1000 (imm32 form)
        assert_eq!(
            enc(Inst::AddImm {
                dst: Gp::Rax,
                imm: 0x1000
            }),
            vec![0x48, 0x81, 0xC0, 0x00, 0x10, 0x00, 0x00]
        );
        // add rbx, rax
        assert_eq!(
            enc(Inst::AddGp {
                dst: Gp::Rbx,
                src: Gp::Rax
            }),
            vec![0x48, 0x01, 0xC3]
        );
        // dec rdi
        assert_eq!(enc(Inst::Dec(Gp::Rdi)), vec![0x48, 0xFF, 0xCF]);
        // cmp rax, rbx
        assert_eq!(
            enc(Inst::CmpGp {
                a: Gp::Rax,
                b: Gp::Rbx
            }),
            vec![0x48, 0x39, 0xD8]
        );
    }

    #[test]
    fn mov_imm64() {
        let bytes = enc(Inst::MovImm64 {
            dst: Gp::Rax,
            imm: 0x1122_3344_5566_7788,
        });
        assert_eq!(
            bytes,
            vec![0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
        let bytes = enc(Inst::MovImm64 {
            dst: Gp::R9,
            imm: 1,
        });
        assert_eq!(bytes[..2], [0x49, 0xB9]);
        assert_eq!(bytes.len(), 10);
    }

    #[test]
    fn sqrtsd_and_misc() {
        assert_eq!(
            enc(Inst::Sqrtsd {
                dst: Xmm::new(0),
                src: Xmm::new(0)
            }),
            vec![0xF2, 0x0F, 0x51, 0xC0]
        );
        assert_eq!(
            enc(Inst::Sqrtsd {
                dst: Xmm::new(1),
                src: Xmm::new(2)
            }),
            vec![0xF2, 0x0F, 0x51, 0xCA]
        );
        // extended registers add a REX prefix after the F2 prefix
        assert_eq!(
            enc(Inst::Sqrtsd {
                dst: Xmm::new(9),
                src: Xmm::new(10)
            }),
            vec![0xF2, 0x45, 0x0F, 0x51, 0xCA]
        );
        assert_eq!(enc(Inst::Nop), vec![0x90]);
        assert_eq!(enc(Inst::Ret), vec![0xC3]);
    }

    #[test]
    fn scalar_mul_add_encodings() {
        // mulsd xmm1, xmm2 = F2 0F 59 /r
        assert_eq!(
            enc(Inst::Mulsd {
                dst: Xmm::new(1),
                src: Xmm::new(2)
            }),
            vec![0xF2, 0x0F, 0x59, 0xCA]
        );
        // addsd xmm0, xmm3 = F2 0F 58 /r
        assert_eq!(
            enc(Inst::Addsd {
                dst: Xmm::new(0),
                src: Xmm::new(3)
            }),
            vec![0xF2, 0x0F, 0x58, 0xC3]
        );
        // Extended registers pick up a REX prefix after the F2.
        assert_eq!(
            enc(Inst::Mulsd {
                dst: Xmm::new(12),
                src: Xmm::new(3)
            }),
            vec![0xF2, 0x44, 0x0F, 0x59, 0xE3]
        );
    }

    #[test]
    fn prefetch_encodings() {
        assert_eq!(
            enc(Inst::Prefetch {
                hint: PrefetchHint::T0,
                mem: Mem::base(Gp::Rax)
            }),
            vec![0x0F, 0x18, 0x08]
        );
        assert_eq!(
            enc(Inst::Prefetch {
                hint: PrefetchHint::T2,
                mem: Mem::base(Gp::Rax)
            }),
            vec![0x0F, 0x18, 0x18]
        );
        // extended base ⇒ REX.B without W
        assert_eq!(
            enc(Inst::Prefetch {
                hint: PrefetchHint::T2,
                mem: Mem::base(Gp::R8)
            }),
            vec![0x41, 0x0F, 0x18, 0x18]
        );
    }

    #[test]
    fn jnz_encoding_and_label_resolution() {
        assert_eq!(
            enc(Inst::Jnz { rel: -32 }),
            vec![0x0F, 0x85, 0xE0, 0xFF, 0xFF, 0xFF]
        );

        // A minimal loop: top: dec rdi; jnz top; ret
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.push(Inst::Dec(Gp::Rdi)); // 3 bytes
        asm.jnz(top); // 6 bytes, rel = 0 - (3+6) = -9
        asm.push(Inst::Ret);
        let code = asm.finish().unwrap();
        assert_eq!(
            code,
            vec![0x48, 0xFF, 0xCF, 0x0F, 0x85, 0xF7, 0xFF, 0xFF, 0xFF, 0xC3]
        );
    }

    #[test]
    fn forward_label() {
        let mut asm = Assembler::new();
        let out = asm.label();
        asm.jnz(out); // 6 bytes; target = 7 ⇒ rel = 7 - 6 = 1
        asm.push(Inst::Nop);
        asm.bind(out);
        asm.push(Inst::Ret);
        let code = asm.finish().unwrap();
        assert_eq!(code, vec![0x0F, 0x85, 0x01, 0x00, 0x00, 0x00, 0x90, 0xC3]);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Assembler::new();
        let l = asm.label();
        asm.jnz(l);
        assert_eq!(asm.finish(), Err(EncodeError::UnboundLabel(Label(0))));
    }

    #[test]
    fn sequence_len_matches_encoding() {
        let seq = [
            Inst::Vfmadd231pd {
                dst: Ymm::new(0),
                src1: Ymm::new(1),
                src2: RmYmm::Reg(Ymm::new(2)),
            },
            Inst::XorGp {
                dst: Gp::Rax,
                src: Gp::Rbx,
            },
            Inst::Nop,
        ];
        assert_eq!(sequence_len(&seq), encode_sequence(&seq).len());
        assert_eq!(sequence_len(&seq), 5 + 3 + 1);
    }

    #[test]
    fn negative_disp8_encoding() {
        // vmovapd ymm0, [rbx-0x20]
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(0),
                src: Mem::base_disp(Gp::Rbx, -0x20)
            }),
            vec![0xC5, 0xFD, 0x28, 0x43, 0xE0]
        );
    }

    #[test]
    fn r12_base_needs_sib_r13_needs_disp() {
        // vmovapd ymm0, [r12]
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(0),
                src: Mem::base(Gp::R12)
            }),
            vec![0xC4, 0xC1, 0x7D, 0x28, 0x04, 0x24]
        );
        // vmovapd ymm0, [r13]
        assert_eq!(
            enc(Inst::VmovapdLoad {
                dst: Ymm::new(0),
                src: Mem::base(Gp::R13)
            }),
            vec![0xC4, 0xC1, 0x7D, 0x28, 0x45, 0x00]
        );
    }
}
