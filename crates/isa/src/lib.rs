//! # fs2-isa — x86-64 instruction model for FIRESTARTER 2 payloads
//!
//! FIRESTARTER 2 generates its stress kernels at runtime with the AsmJit
//! just-in-time assembler. This crate is the reproduction's equivalent
//! substrate: a from-scratch model of exactly the x86-64 instruction subset
//! the stress payloads use, together with
//!
//! * an [`encoder`] that emits real machine-code bytes (REX/VEX prefixes,
//!   ModRM/SIB addressing, displacement compression),
//! * a [`decoder`] that round-trips those bytes back into [`inst::Inst`]
//!   values (used by property tests to validate the encoder), and
//! * per-instruction [`mod@meta`] (µop class, execution-port set, energy class)
//!   consumed by the `fs2-sim` pipeline model.
//!
//! The subset covers everything the paper's workloads need: FMA3
//! (`vfmadd231pd`), AVX arithmetic (`vmulpd`, `vaddpd`, `vxorps`), 256-bit
//! loads/stores (`vmovapd`), software prefetch, the ALU filler mix
//! (`xor`/`shl`/`shr`/`add`), loop control (`dec`/`jnz`), the low-power
//! `sqrtsd` loop of Fig. 2, and assorted glue (`mov imm64`, `nop`, `ret`).
//!
//! ## Example
//!
//! ```
//! use fs2_isa::prelude::*;
//!
//! let mut asm = Assembler::new();
//! let top = asm.label();
//! asm.bind(top);
//! asm.push(Inst::Vfmadd231pd {
//!     dst: Ymm::new(0),
//!     src1: Ymm::new(1),
//!     src2: RmYmm::Reg(Ymm::new(2)),
//! });
//! asm.push(Inst::Dec(Gp::Rdi));
//! asm.jnz(top);
//! asm.push(Inst::Ret);
//! let code = asm.finish().unwrap();
//! assert!(!code.is_empty());
//! ```

pub mod decoder;
pub mod encoder;
pub mod inst;
pub mod mem;
pub mod meta;
pub mod reg;

pub use decoder::{decode_all, decode_one, DecodeError};
pub use encoder::{encode, Assembler, EncodeError, Label};
pub use inst::{Inst, PrefetchHint, RmYmm};
pub use mem::{Mem, Scale};
pub use meta::{meta, sequence_meta, InstMeta, Port, SeqMeta, UopClass};
pub use reg::{Gp, Xmm, Ymm};

/// Convenience re-exports for payload builders.
pub mod prelude {
    pub use crate::decoder::{decode_all, decode_one};
    pub use crate::encoder::{encode, Assembler, Label};
    pub use crate::inst::{Inst, PrefetchHint, RmYmm};
    pub use crate::mem::{Mem, Scale};
    pub use crate::meta::{meta, sequence_meta, InstMeta, Port, SeqMeta, UopClass};
    pub use crate::reg::{Gp, Xmm, Ymm};
}
