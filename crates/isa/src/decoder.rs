//! Round-trip decoder for the emitted instruction subset.
//!
//! The encoder cannot be validated against a real CPU inside this
//! environment, so the decoder serves as the independent second
//! implementation: property tests assert `decode(encode(i)) == i` for the
//! whole operand space, and golden-byte tests pin both sides to
//! hand-derived encodings.

use crate::inst::{Inst, PrefetchHint, RmYmm};
use crate::mem::{Mem, Scale};
use crate::reg::{Gp, Xmm, Ymm};
use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-instruction.
    Truncated,
    /// A byte sequence outside the supported payload subset.
    Unsupported(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("truncated instruction"),
            DecodeError::Unsupported(what) => write!(f, "unsupported encoding: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn peek(&self) -> Result<u8, DecodeError> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or(DecodeError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = self.peek()?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32le(&mut self) -> Result<i32, DecodeError> {
        let mut buf = [0u8; 4];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(i32::from_le_bytes(buf))
    }

    fn u64le(&mut self) -> Result<u64, DecodeError> {
        let mut buf = [0u8; 8];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(u64::from_le_bytes(buf))
    }
}

enum Rm {
    Reg(u8),
    Mem(Mem),
}

/// Parses ModRM (+SIB, +disp). Returns `(reg_field_with_ext, rm)`.
fn parse_modrm(
    cur: &mut Cursor<'_>,
    rex_r: bool,
    rex_x: bool,
    rex_b: bool,
) -> Result<(u8, Rm), DecodeError> {
    let modrm = cur.u8()?;
    let modbits = modrm >> 6;
    let reg = ((modrm >> 3) & 7) | (u8::from(rex_r) << 3);
    let rm_bits = modrm & 7;
    if modbits == 0b11 {
        return Ok((reg, Rm::Reg(rm_bits | (u8::from(rex_b) << 3))));
    }
    let (base_num, index) = if rm_bits == 0b100 {
        let sib = cur.u8()?;
        let scale = Scale::from_bits(sib >> 6).expect("2-bit scale");
        let index_bits = (sib >> 3) & 7;
        let base_bits = sib & 7;
        if modbits == 0b00 && base_bits == 0b101 {
            return Err(DecodeError::Unsupported("SIB with no base register"));
        }
        let index = if index_bits == 0b100 && !rex_x {
            None
        } else {
            let idx = Gp::from_num(index_bits | (u8::from(rex_x) << 3)).expect("index reg");
            Some((idx, scale))
        };
        (base_bits | (u8::from(rex_b) << 3), index)
    } else {
        if modbits == 0b00 && rm_bits == 0b101 {
            return Err(DecodeError::Unsupported("RIP-relative addressing"));
        }
        (rm_bits | (u8::from(rex_b) << 3), None)
    };
    let disp = match modbits {
        0b00 => 0,
        0b01 => i32::from(cur.i8()?),
        0b10 => cur.i32le()?,
        _ => unreachable!(),
    };
    let base = Gp::from_num(base_num).expect("base reg");
    Ok((reg, Rm::Mem(Mem { base, index, disp })))
}

fn rm_to_ymm(rm: Rm) -> RmYmm {
    match rm {
        Rm::Reg(n) => RmYmm::Reg(Ymm::new(n)),
        Rm::Mem(m) => RmYmm::Mem(m),
    }
}

struct VexFields {
    map_0f38: bool,
    w: bool,
    l256: bool,
    pp: u8,
    r_ext: bool,
    x_ext: bool,
    b_ext: bool,
    vvvv: u8,
}

fn parse_vex(cur: &mut Cursor<'_>, three_byte: bool) -> Result<VexFields, DecodeError> {
    if three_byte {
        let b1 = cur.u8()?;
        let b2 = cur.u8()?;
        let mmmmm = b1 & 0x1F;
        let map_0f38 = match mmmmm {
            0b00001 => false,
            0b00010 => true,
            _ => return Err(DecodeError::Unsupported("VEX opcode map")),
        };
        Ok(VexFields {
            map_0f38,
            w: b2 & 0x80 != 0,
            l256: b2 & 0x04 != 0,
            pp: b2 & 0x03,
            r_ext: b1 & 0x80 == 0,
            x_ext: b1 & 0x40 == 0,
            b_ext: b1 & 0x20 == 0,
            vvvv: (!(b2 >> 3)) & 0xF,
        })
    } else {
        let b = cur.u8()?;
        Ok(VexFields {
            map_0f38: false,
            w: false,
            l256: b & 0x04 != 0,
            pp: b & 0x03,
            r_ext: b & 0x80 == 0,
            x_ext: false,
            b_ext: false,
            vvvv: (!(b >> 3)) & 0xF,
        })
    }
}

fn decode_vex(cur: &mut Cursor<'_>, three_byte: bool) -> Result<Inst, DecodeError> {
    let v = parse_vex(cur, three_byte)?;
    let opcode = cur.u8()?;
    if !v.l256 {
        return Err(DecodeError::Unsupported("128-bit VEX form"));
    }
    let (reg, rm) = parse_modrm(cur, v.r_ext, v.x_ext, v.b_ext)?;
    match (v.map_0f38, v.pp, opcode) {
        (true, 0b01, 0xB8) => {
            if !v.w {
                return Err(DecodeError::Unsupported("vfmadd231 W0 (single precision)"));
            }
            Ok(Inst::Vfmadd231pd {
                dst: Ymm::new(reg),
                src1: Ymm::new(v.vvvv),
                src2: rm_to_ymm(rm),
            })
        }
        (false, 0b01, 0x59) => Ok(Inst::Vmulpd {
            dst: Ymm::new(reg),
            src1: Ymm::new(v.vvvv),
            src2: rm_to_ymm(rm),
        }),
        (false, 0b01, 0x58) => Ok(Inst::Vaddpd {
            dst: Ymm::new(reg),
            src1: Ymm::new(v.vvvv),
            src2: rm_to_ymm(rm),
        }),
        (false, 0b00, 0x57) => match rm {
            Rm::Reg(n) => Ok(Inst::Vxorps {
                dst: Ymm::new(reg),
                src1: Ymm::new(v.vvvv),
                src2: Ymm::new(n),
            }),
            Rm::Mem(_) => Err(DecodeError::Unsupported("vxorps with memory operand")),
        },
        (false, 0b01, 0x28) => match rm {
            Rm::Mem(m) => Ok(Inst::VmovapdLoad {
                dst: Ymm::new(reg),
                src: m,
            }),
            Rm::Reg(_) => Err(DecodeError::Unsupported("vmovapd reg-reg")),
        },
        (false, 0b01, 0x29) => match rm {
            Rm::Mem(m) => Ok(Inst::VmovapdStore {
                dst: m,
                src: Ymm::new(reg),
            }),
            Rm::Reg(_) => Err(DecodeError::Unsupported("vmovapd reg-reg")),
        },
        _ => Err(DecodeError::Unsupported("VEX opcode")),
    }
}

fn decode_0f(cur: &mut Cursor<'_>, rex_x: bool, rex_b: bool) -> Result<Inst, DecodeError> {
    let opcode = cur.u8()?;
    match opcode {
        0x85 => Ok(Inst::Jnz { rel: cur.i32le()? }),
        0x18 => {
            let (reg, rm) = parse_modrm(cur, false, rex_x, rex_b)?;
            let hint = PrefetchHint::from_modrm_reg(reg)
                .ok_or(DecodeError::Unsupported("prefetch hint"))?;
            match rm {
                Rm::Mem(m) => Ok(Inst::Prefetch { hint, mem: m }),
                Rm::Reg(_) => Err(DecodeError::Unsupported("prefetch on register")),
            }
        }
        _ => Err(DecodeError::Unsupported("0F opcode")),
    }
}

fn decode_rex(cur: &mut Cursor<'_>, rex: u8) -> Result<Inst, DecodeError> {
    let w = rex & 0x08 != 0;
    let r = rex & 0x04 != 0;
    let x = rex & 0x02 != 0;
    let b = rex & 0x01 != 0;
    let opcode = cur.u8()?;
    if opcode == 0x0F {
        // Only prefetch reaches here with a bare REX (no W).
        if w {
            return Err(DecodeError::Unsupported("REX.W 0F escape"));
        }
        return decode_0f(cur, x, b);
    }
    if !w {
        return Err(DecodeError::Unsupported("REX without W on GP opcode"));
    }
    match opcode {
        0x31 => {
            let (reg, rm) = parse_modrm(cur, r, x, b)?;
            match rm {
                Rm::Reg(n) => Ok(Inst::XorGp {
                    dst: Gp::from_num(n).unwrap(),
                    src: Gp::from_num(reg).unwrap(),
                }),
                Rm::Mem(_) => Err(DecodeError::Unsupported("xor with memory")),
            }
        }
        0x01 => {
            let (reg, rm) = parse_modrm(cur, r, x, b)?;
            match rm {
                Rm::Reg(n) => Ok(Inst::AddGp {
                    dst: Gp::from_num(n).unwrap(),
                    src: Gp::from_num(reg).unwrap(),
                }),
                Rm::Mem(_) => Err(DecodeError::Unsupported("add with memory")),
            }
        }
        0x39 => {
            let (reg, rm) = parse_modrm(cur, r, x, b)?;
            match rm {
                Rm::Reg(n) => Ok(Inst::CmpGp {
                    a: Gp::from_num(n).unwrap(),
                    b: Gp::from_num(reg).unwrap(),
                }),
                Rm::Mem(_) => Err(DecodeError::Unsupported("cmp with memory")),
            }
        }
        0xC1 => {
            let (reg, rm) = parse_modrm(cur, false, x, b)?;
            let dst = match rm {
                Rm::Reg(n) => Gp::from_num(n).unwrap(),
                Rm::Mem(_) => return Err(DecodeError::Unsupported("shift on memory")),
            };
            let imm = cur.u8()?;
            match reg {
                4 => Ok(Inst::ShlImm { dst, imm }),
                5 => Ok(Inst::ShrImm { dst, imm }),
                _ => Err(DecodeError::Unsupported("C1 /reg extension")),
            }
        }
        0x83 | 0x81 => {
            let (reg, rm) = parse_modrm(cur, false, x, b)?;
            if reg != 0 {
                return Err(DecodeError::Unsupported("group-1 /reg extension"));
            }
            let dst = match rm {
                Rm::Reg(n) => Gp::from_num(n).unwrap(),
                Rm::Mem(_) => return Err(DecodeError::Unsupported("add imm to memory")),
            };
            let imm = if opcode == 0x83 {
                i32::from(cur.i8()?)
            } else {
                cur.i32le()?
            };
            Ok(Inst::AddImm { dst, imm })
        }
        0xB8..=0xBF => {
            let dst = Gp::from_num((opcode - 0xB8) | (u8::from(b) << 3)).unwrap();
            Ok(Inst::MovImm64 {
                dst,
                imm: cur.u64le()?,
            })
        }
        0xFF => {
            let (reg, rm) = parse_modrm(cur, false, x, b)?;
            if reg != 1 {
                return Err(DecodeError::Unsupported("FF /reg extension"));
            }
            match rm {
                Rm::Reg(n) => Ok(Inst::Dec(Gp::from_num(n).unwrap())),
                Rm::Mem(_) => Err(DecodeError::Unsupported("dec on memory")),
            }
        }
        _ => Err(DecodeError::Unsupported("REX.W opcode")),
    }
}

fn decode_f2(cur: &mut Cursor<'_>) -> Result<Inst, DecodeError> {
    let mut rex_r = false;
    let mut rex_b = false;
    let mut next = cur.u8()?;
    if (0x40..=0x4F).contains(&next) {
        rex_r = next & 0x04 != 0;
        rex_b = next & 0x01 != 0;
        next = cur.u8()?;
    }
    if next != 0x0F {
        return Err(DecodeError::Unsupported("F2-prefixed opcode"));
    }
    let opcode = cur.u8()?;
    let (reg, rm) = parse_modrm(cur, rex_r, false, rex_b)?;
    let (dst, src) = match rm {
        Rm::Reg(n) => (Xmm::new(reg), Xmm::new(n)),
        Rm::Mem(_) => return Err(DecodeError::Unsupported("scalar FP with memory")),
    };
    match opcode {
        0x51 => Ok(Inst::Sqrtsd { dst, src }),
        0x59 => Ok(Inst::Mulsd { dst, src }),
        0x58 => Ok(Inst::Addsd { dst, src }),
        _ => Err(DecodeError::Unsupported("F2 0F opcode")),
    }
}

/// Decodes a single instruction from the start of `bytes`.
///
/// Returns the instruction and the number of bytes consumed.
pub fn decode_one(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    let mut cur = Cursor::new(bytes);
    let first = cur.u8()?;
    let inst = match first {
        0x90 => Inst::Nop,
        0xC3 => Inst::Ret,
        0xC5 => decode_vex(&mut cur, false)?,
        0xC4 => decode_vex(&mut cur, true)?,
        0xF2 => decode_f2(&mut cur)?,
        0x0F => decode_0f(&mut cur, false, false)?,
        0x40..=0x4F => decode_rex(&mut cur, first)?,
        _ => return Err(DecodeError::Unsupported("opcode byte")),
    };
    Ok((inst, cur.pos))
}

/// Decodes an entire buffer into a sequence of instructions.
pub fn decode_all(mut bytes: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (inst, len) = decode_one(bytes)?;
        out.push(inst);
        bytes = &bytes[len..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, encode_sequence};

    fn round_trip(inst: Inst) {
        let mut buf = Vec::new();
        encode(&inst, &mut buf);
        let (decoded, len) = decode_one(&buf).unwrap_or_else(|e| {
            panic!("failed to decode {inst}: {e} (bytes {buf:02x?})");
        });
        assert_eq!(decoded, inst, "round trip mismatch for bytes {buf:02x?}");
        assert_eq!(len, buf.len(), "decoder consumed wrong length for {inst}");
    }

    #[test]
    fn round_trip_representative_instructions() {
        use crate::inst::PrefetchHint::*;
        let mems = [
            Mem::base(Gp::Rax),
            Mem::base(Gp::Rsp),
            Mem::base(Gp::Rbp),
            Mem::base(Gp::R12),
            Mem::base(Gp::R13),
            Mem::base_disp(Gp::Rbx, 64),
            Mem::base_disp(Gp::Rbx, -64),
            Mem::base_disp(Gp::R9, 0x4000),
            Mem::base_index(Gp::Rax, Gp::Rcx, Scale::X8, 8),
            Mem::base_index(Gp::R8, Gp::R15, Scale::X4, -4096),
            Mem::base_index(Gp::Rbp, Gp::R12, Scale::X1, 0),
        ];
        for &m in &mems {
            round_trip(Inst::VmovapdLoad {
                dst: Ymm::new(3),
                src: m,
            });
            round_trip(Inst::VmovapdStore {
                dst: m,
                src: Ymm::new(14),
            });
            round_trip(Inst::Vfmadd231pd {
                dst: Ymm::new(7),
                src1: Ymm::new(12),
                src2: RmYmm::Mem(m),
            });
            round_trip(Inst::Prefetch { hint: T2, mem: m });
        }
        for n in 0..16u8 {
            round_trip(Inst::Vxorps {
                dst: Ymm::new(n),
                src1: Ymm::new(15 - n),
                src2: Ymm::new(n / 2),
            });
            round_trip(Inst::Sqrtsd {
                dst: Xmm::new(n),
                src: Xmm::new(15 - n),
            });
            round_trip(Inst::MovImm64 {
                dst: Gp::from_num(n).unwrap(),
                imm: 0xDEAD_BEEF_0000_0000 | u64::from(n),
            });
        }
        round_trip(Inst::Vmulpd {
            dst: Ymm::new(1),
            src1: Ymm::new(2),
            src2: RmYmm::Reg(Ymm::new(3)),
        });
        round_trip(Inst::Vaddpd {
            dst: Ymm::new(8),
            src1: Ymm::new(9),
            src2: RmYmm::Reg(Ymm::new(10)),
        });
        round_trip(Inst::XorGp {
            dst: Gp::R13,
            src: Gp::Rsi,
        });
        round_trip(Inst::ShlImm {
            dst: Gp::Rdx,
            imm: 63,
        });
        round_trip(Inst::ShrImm {
            dst: Gp::R11,
            imm: 1,
        });
        round_trip(Inst::AddImm {
            dst: Gp::Rcx,
            imm: 127,
        });
        round_trip(Inst::AddImm {
            dst: Gp::Rcx,
            imm: 128,
        });
        round_trip(Inst::AddImm {
            dst: Gp::R15,
            imm: -1_000_000,
        });
        round_trip(Inst::AddGp {
            dst: Gp::Rbx,
            src: Gp::R14,
        });
        round_trip(Inst::Dec(Gp::R10));
        round_trip(Inst::CmpGp {
            a: Gp::Rax,
            b: Gp::R8,
        });
        round_trip(Inst::Jnz { rel: -1234 });
        round_trip(Inst::Prefetch {
            hint: T0,
            mem: Mem::base(Gp::Rdi),
        });
        round_trip(Inst::Prefetch {
            hint: Nta,
            mem: Mem::base(Gp::Rdi),
        });
        round_trip(Inst::Prefetch {
            hint: T1,
            mem: Mem::base(Gp::Rdi),
        });
        round_trip(Inst::Nop);
        round_trip(Inst::Ret);
    }

    #[test]
    fn decode_all_sequence() {
        let seq = vec![
            Inst::MovImm64 {
                dst: Gp::Rdi,
                imm: 1000,
            },
            Inst::Vfmadd231pd {
                dst: Ymm::new(0),
                src1: Ymm::new(1),
                src2: RmYmm::Reg(Ymm::new(2)),
            },
            Inst::Dec(Gp::Rdi),
            Inst::Jnz { rel: -14 },
            Inst::Ret,
        ];
        let bytes = encode_sequence(&seq);
        assert_eq!(decode_all(&bytes).unwrap(), seq);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        encode(
            &Inst::Vfmadd231pd {
                dst: Ymm::new(0),
                src1: Ymm::new(1),
                src2: RmYmm::Reg(Ymm::new(2)),
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            match decode_one(&buf[..cut]) {
                Err(DecodeError::Truncated) => {}
                other => panic!("expected Truncated at cut {cut}, got {other:?}"),
            }
        }
    }

    #[test]
    fn foreign_bytes_rejected() {
        assert!(matches!(
            decode_one(&[0xCC]),
            Err(DecodeError::Unsupported(_))
        ));
        // RIP-relative form of a supported opcode.
        assert!(matches!(
            decode_one(&[0xC5, 0xFD, 0x28, 0x05, 0, 0, 0, 0]),
            Err(DecodeError::Unsupported(_))
        ));
    }
}
