//! Register definitions for the payload subset.
//!
//! FIRESTARTER payloads use general-purpose registers for pointers, loop
//! counters and the ALU filler mix, and YMM/XMM registers for the SIMD
//! floating-point stream.

use std::fmt;

/// 64-bit general-purpose registers.
///
/// The discriminant is the hardware register number used in ModRM/REX
/// encoding (RAX = 0 … R15 = 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Gp {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gp {
    /// All sixteen GP registers in encoding order.
    pub const ALL: [Gp; 16] = [
        Gp::Rax,
        Gp::Rcx,
        Gp::Rdx,
        Gp::Rbx,
        Gp::Rsp,
        Gp::Rbp,
        Gp::Rsi,
        Gp::Rdi,
        Gp::R8,
        Gp::R9,
        Gp::R10,
        Gp::R11,
        Gp::R12,
        Gp::R13,
        Gp::R14,
        Gp::R15,
    ];

    /// Hardware encoding number (0..=15).
    #[inline]
    pub const fn num(self) -> u8 {
        self as u8
    }

    /// Low three bits placed in ModRM/SIB fields.
    #[inline]
    pub const fn low3(self) -> u8 {
        self as u8 & 0b111
    }

    /// Whether the register needs a REX/VEX extension bit.
    #[inline]
    pub const fn is_extended(self) -> bool {
        self as u8 >= 8
    }

    /// Registers whose low-3 encoding collides with the "no base / RIP"
    /// ModRM escape (RBP/R13): they always need an explicit displacement.
    #[inline]
    pub const fn needs_disp(self) -> bool {
        self.low3() == 0b101
    }

    /// Registers whose low-3 encoding collides with the SIB escape
    /// (RSP/R12): they always need a SIB byte when used as a base.
    #[inline]
    pub const fn needs_sib(self) -> bool {
        self.low3() == 0b100
    }

    /// Lookup by hardware number.
    pub fn from_num(n: u8) -> Option<Gp> {
        Gp::ALL.get(n as usize).copied()
    }

    /// Canonical AT&T-free lowercase mnemonic name.
    pub const fn name(self) -> &'static str {
        match self {
            Gp::Rax => "rax",
            Gp::Rcx => "rcx",
            Gp::Rdx => "rdx",
            Gp::Rbx => "rbx",
            Gp::Rsp => "rsp",
            Gp::Rbp => "rbp",
            Gp::Rsi => "rsi",
            Gp::Rdi => "rdi",
            Gp::R8 => "r8",
            Gp::R9 => "r9",
            Gp::R10 => "r10",
            Gp::R11 => "r11",
            Gp::R12 => "r12",
            Gp::R13 => "r13",
            Gp::R14 => "r14",
            Gp::R15 => "r15",
        }
    }
}

impl fmt::Display for Gp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A 256-bit AVX register (`ymm0`..`ymm15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ymm(u8);

impl Ymm {
    /// Creates `ymmN`. Panics if `n >= 16`.
    #[inline]
    pub const fn new(n: u8) -> Ymm {
        assert!(n < 16, "ymm register number out of range");
        Ymm(n)
    }

    /// Fallible constructor.
    pub fn try_new(n: u8) -> Option<Ymm> {
        (n < 16).then_some(Ymm(n))
    }

    #[inline]
    pub const fn num(self) -> u8 {
        self.0
    }

    #[inline]
    pub const fn low3(self) -> u8 {
        self.0 & 0b111
    }

    #[inline]
    pub const fn is_extended(self) -> bool {
        self.0 >= 8
    }

    /// The XMM register aliasing the low 128 bits.
    #[inline]
    pub const fn as_xmm(self) -> Xmm {
        Xmm(self.0)
    }
}

impl fmt::Display for Ymm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ymm{}", self.0)
    }
}

/// A 128-bit SSE register (`xmm0`..`xmm15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xmm(u8);

impl Xmm {
    /// Creates `xmmN`. Panics if `n >= 16`.
    #[inline]
    pub const fn new(n: u8) -> Xmm {
        assert!(n < 16, "xmm register number out of range");
        Xmm(n)
    }

    pub fn try_new(n: u8) -> Option<Xmm> {
        (n < 16).then_some(Xmm(n))
    }

    #[inline]
    pub const fn num(self) -> u8 {
        self.0
    }

    #[inline]
    pub const fn low3(self) -> u8 {
        self.0 & 0b111
    }

    #[inline]
    pub const fn is_extended(self) -> bool {
        self.0 >= 8
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_numbering_matches_hardware() {
        assert_eq!(Gp::Rax.num(), 0);
        assert_eq!(Gp::Rsp.num(), 4);
        assert_eq!(Gp::Rbp.num(), 5);
        assert_eq!(Gp::R8.num(), 8);
        assert_eq!(Gp::R15.num(), 15);
    }

    #[test]
    fn gp_low3_wraps_extended_registers() {
        assert_eq!(Gp::R8.low3(), 0);
        assert_eq!(Gp::R12.low3(), 4);
        assert_eq!(Gp::R13.low3(), 5);
        assert!(Gp::R8.is_extended());
        assert!(!Gp::Rdi.is_extended());
    }

    #[test]
    fn sib_and_disp_escapes() {
        assert!(Gp::Rsp.needs_sib());
        assert!(Gp::R12.needs_sib());
        assert!(!Gp::Rax.needs_sib());
        assert!(Gp::Rbp.needs_disp());
        assert!(Gp::R13.needs_disp());
        assert!(!Gp::Rbx.needs_disp());
    }

    #[test]
    fn from_num_round_trips() {
        for r in Gp::ALL {
            assert_eq!(Gp::from_num(r.num()), Some(r));
        }
        assert_eq!(Gp::from_num(16), None);
    }

    #[test]
    fn ymm_construction_and_alias() {
        let y = Ymm::new(11);
        assert_eq!(y.num(), 11);
        assert_eq!(y.low3(), 3);
        assert!(y.is_extended());
        assert_eq!(y.as_xmm().num(), 11);
        assert_eq!(Ymm::try_new(16), None);
        assert_eq!(Xmm::try_new(15), Some(Xmm::new(15)));
    }

    #[test]
    #[should_panic]
    fn ymm_out_of_range_panics() {
        let _ = Ymm::new(16);
    }

    #[test]
    fn display_names() {
        assert_eq!(Gp::R10.to_string(), "r10");
        assert_eq!(Ymm::new(3).to_string(), "ymm3");
        assert_eq!(Xmm::new(0).to_string(), "xmm0");
    }
}
