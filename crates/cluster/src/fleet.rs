//! Fleet simulation and the Fig. 1 CDF pipeline.

use crate::jobs::JobMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fleet parameters (Fig. 1: 612 nodes, one year, 60 s means).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    pub nodes: u32,
    /// 60 s-mean samples generated per node (a full year would be
    /// 525 600; the CDF converges far earlier).
    pub samples_per_node: u32,
    pub mix: JobMix,
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            nodes: 612,
            samples_per_node: 2000,
            mix: JobMix::taurus_haswell(),
            seed: 0xF1EE7,
        }
    }
}

/// An empirical power CDF over fixed-width bins.
#[derive(Debug, Clone)]
pub struct PowerCdf {
    /// `(bin_upper_edge_w, cumulative_fraction)`, ascending.
    pub bins: Vec<(f64, f64)>,
    pub min_w: f64,
    pub max_w: f64,
    pub samples: usize,
}

impl PowerCdf {
    /// Builds the CDF from samples with the paper's 0.1 W bins.
    pub fn from_samples(samples: &[f64], bin_width: f64) -> PowerCdf {
        assert!(!samples.is_empty() && bin_width > 0.0);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let nbins = (((max - min) / bin_width).floor() as usize + 1).max(1);
        let mut counts = vec![0u64; nbins];
        for &s in samples {
            let b = (((s - min) / bin_width) as usize).min(nbins - 1);
            counts[b] += 1;
        }
        let total = samples.len() as f64;
        let mut acc = 0u64;
        let bins = counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                acc += c;
                (min + bin_width * (i as f64 + 1.0), acc as f64 / total)
            })
            .collect();
        PowerCdf {
            bins,
            min_w: min,
            max_w: max,
            samples: samples.len(),
        }
    }

    /// Cumulative fraction at or below `power_w`.
    pub fn fraction_at(&self, power_w: f64) -> f64 {
        match self.bins.iter().find(|(edge, _)| *edge >= power_w) {
            Some((_, frac)) => *frac,
            None => 1.0,
        }
    }

    /// Power at a given quantile (first bin reaching it).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        self.bins
            .iter()
            .find(|(_, frac)| *frac >= q)
            .map(|(edge, _)| *edge)
            .unwrap_or(self.max_w)
    }
}

/// The fleet generator.
#[derive(Debug, Clone)]
pub struct FleetSim {
    pub config: FleetConfig,
}

impl FleetSim {
    pub fn new(config: FleetConfig) -> FleetSim {
        FleetSim { config }
    }

    /// Generates all 60 s-mean samples for the fleet.
    pub fn generate(&self) -> Vec<f64> {
        let n = self.config.nodes as usize * self.config.samples_per_node as usize;
        let mut out = Vec::with_capacity(n);
        for node in 0..self.config.nodes {
            // Per-node RNG streams keep generation order-independent.
            let mut rng = StdRng::seed_from_u64(
                self.config.seed ^ (u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            for _ in 0..self.config.samples_per_node {
                let class = self.config.mix.pick(&mut rng);
                out.push(class.sample(&mut rng));
            }
        }
        out
    }

    /// Full Fig. 1 pipeline: generate, bin at 0.1 W, return the CDF.
    pub fn power_cdf(&self) -> PowerCdf {
        PowerCdf::from_samples(&self.generate(), 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> FleetSim {
        FleetSim::new(FleetConfig {
            nodes: 64,
            samples_per_node: 500,
            ..FleetConfig::default()
        })
    }

    #[test]
    fn cdf_shape_matches_fig1_landmarks() {
        let cdf = small_fleet().power_cdf();
        // Maximum below the physical cap (paper: 359.9 W).
        assert!(cdf.max_w <= 359.9 + 1e-9);
        assert!(cdf.max_w > 300.0, "no high-power tail: max {}", cdf.max_w);
        // Steep idle shoulder: a large fraction between 50 W and 100 W.
        let below_100 = cdf.fraction_at(100.0);
        let below_50 = cdf.fraction_at(50.0);
        assert!(below_50 < 0.02, "mass below 50 W: {below_50}");
        assert!(
            below_100 > 0.35,
            "idle shoulder missing: only {below_100} below 100 W"
        );
        // Most of the time, the power budget is far from exhausted.
        assert!(cdf.fraction_at(250.0) > 0.75);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let cdf = small_fleet().power_cdf();
        assert!((cdf.bins.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.bins.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        assert_eq!(cdf.samples, 64 * 500);
    }

    #[test]
    fn quantiles_are_ordered() {
        let cdf = small_fleet().power_cdf();
        let q25 = cdf.quantile(0.25);
        let q50 = cdf.quantile(0.50);
        let q95 = cdf.quantile(0.95);
        assert!(q25 <= q50 && q50 <= q95);
        assert!(q95 > 200.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_fleet().generate();
        let b = small_fleet().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = FleetConfig {
            nodes: 8,
            samples_per_node: 100,
            ..FleetConfig::default()
        };
        let a = FleetSim::new(cfg.clone()).generate();
        cfg.seed = 123;
        let b = FleetSim::new(cfg).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn fraction_at_extremes() {
        let cdf = PowerCdf::from_samples(&[100.0, 200.0, 300.0], 0.1);
        assert_eq!(cdf.fraction_at(1000.0), 1.0);
        assert!(cdf.fraction_at(100.05) > 0.3);
    }
}
