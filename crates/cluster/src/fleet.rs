//! Fleet simulation and the Fig. 1 CDF pipeline.
//!
//! A [`FleetSim`] owns a heterogeneous set of nodes (mixable SKUs) and
//! drives one real `fs2_core::Engine` per SKU through an
//! [`EngineRegistry`]. Per 60 s sample, a node draws a job class from
//! the [`JobMix`], a duty cycle and a P-state, and its mean power is
//! composed from engine-evaluated payload power and the node's idle
//! floor — the workload-cloning pipeline, not distribution fitting.
//!
//! Two temporal modes share those operating points
//! ([`TemporalMode`]): the historical i.i.d. per-node-minute sampler
//! (the byte-stable Fig. 1 default) and the Markov episode model of
//! [`crate::episodes`], which adds dwell times, ramps and hand-backs
//! to the idle floor — the time correlation real traces show.
//!
//! Generation is a tick-synchronous three-phase pass: (1) **propose** —
//! every node draws its full tick stream from its own `(seed, node_id)`
//! RNG stream, fanned out over [`fs2_core::Engine::sweep_hinted`] with
//! per-node size hints; (2) **arbitrate** — when
//! [`FleetConfig::budget_w`] is set, a serial node-id-ordered fold
//! ([`crate::budget`]) admits proposals against the remaining fleet
//! budget per 60 s tick and sheds or defers the rest; (3) **apply** —
//! decisions become samples in parallel. Every phase is deterministic,
//! so the result is bitwise-identical for any thread count, and runs
//! without a budget reproduce the historical sample streams byte for
//! byte.

use crate::budget::{arbitrate, Arbitration, BudgetPolicy, Decision, NodeStream};
use crate::episodes::{EpisodeModel, EpisodeWalk};
use crate::jobs::JobMix;
use fs2_core::{EngineRegistry, GroupEvalRequest, InitScheme, RegistryStats};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Mutex;

/// One homogeneous slice of the fleet.
#[derive(Debug, Clone)]
pub struct NodeGroup {
    pub sku: fs2_arch::Sku,
    pub nodes: u32,
    /// Overrides [`FleetConfig::samples_per_node`] for this group
    /// (e.g. a slice monitored at a higher rate) — this is what makes
    /// per-node size hints matter to the sweep packing.
    pub samples_per_node: Option<u32>,
}

/// How consecutive 60 s samples of one node relate to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TemporalMode {
    /// Independent draws per node-minute (the original Fig. 1
    /// pipeline; the default, byte-stable across releases).
    #[default]
    Iid,
    /// Markov job episodes over the same operating points: geometric
    /// dwell times, ramp-in profiles, explicit idle-floor hand-backs
    /// (see [`FleetConfig::episodes`]).
    Episodes,
}

/// Fleet parameters (Fig. 1: 612 nodes, one year, 60 s means).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Heterogeneous node groups; engines are shared per SKU.
    pub groups: Vec<NodeGroup>,
    /// 60 s-mean samples generated per node (a full year would be
    /// 525 600; the CDF converges far earlier).
    pub samples_per_node: u32,
    pub mix: JobMix,
    /// Temporal structure of each node's sample stream.
    pub temporal: TemporalMode,
    /// The episode model used when `temporal` is
    /// [`TemporalMode::Episodes`]; ignored in i.i.d. mode.
    pub episodes: EpisodeModel,
    pub seed: u64,
    /// Sweep worker threads; 0 = host parallelism, 1 = serial. The
    /// samples are identical either way.
    pub threads: usize,
    /// Facility-side clamp, W (the paper's observed 359.9 W maximum).
    pub cap_w: f64,
    /// What-if power cap, W: a drawn P-state whose engine-evaluated
    /// operating point exceeds the cap is clamped to the class's
    /// highest admissible P-state (the fastest one still under the
    /// cap). Classes with no admissible P-state keep their
    /// lowest-power one (the facility clamp still applies; such
    /// still-over-cap points are reported via
    /// [`FleetRun::infeasible_points`]). `None` disables capping and
    /// leaves the sampler byte-stable.
    pub power_cap_w: Option<f64>,
    /// Fleet-wide power budget per 60 s tick, W: node draws are
    /// admitted in node-id order until the tick's fleet sum would
    /// exceed this, and the rest are resolved via `budget_policy`.
    /// Idle floors are unconditional, so a budget below the sum of the
    /// active floors is infeasible (counted, not hidden). `None`
    /// disables arbitration and keeps both samplers byte-stable.
    pub budget_w: Option<f64>,
    /// How the arbiter resolves denied proposals (ignored without
    /// `budget_w`).
    pub budget_policy: BudgetPolicy,
}

impl FleetConfig {
    /// The 612-node Taurus Haswell partition: mostly 12-core
    /// E5-2680 v3 nodes with a 14-core E5-2695 v3 slice mixed in.
    pub fn taurus_haswell() -> FleetConfig {
        FleetConfig::taurus_haswell_scaled(612)
    }

    /// A Taurus profile scaled to `nodes` total nodes, keeping the
    /// SKU ratio (~7:1) and at least one node per group.
    pub fn taurus_haswell_scaled(nodes: u32) -> FleetConfig {
        assert!(nodes > 0, "fleet needs at least one node");
        // 64-bit ratio: `nodes * 72` would wrap u32 for the huge node
        // counts service requests can carry (the result fits, the
        // intermediate does not).
        let fat = if nodes >= 2 {
            u32::try_from(u64::from(nodes) * 72 / 612)
                .expect("quotient is <= nodes, which is u32")
                .max(1)
        } else {
            0
        };
        let mut groups = vec![NodeGroup {
            sku: fs2_arch::Sku::intel_xeon_e5_2680_v3(),
            nodes: nodes - fat,
            samples_per_node: None,
        }];
        if fat > 0 {
            groups.push(NodeGroup {
                sku: fs2_arch::Sku::intel_xeon_e5_2695_v3(),
                nodes: fat,
                samples_per_node: None,
            });
        }
        let mix = JobMix::taurus_haswell();
        let episodes = EpisodeModel::taurus_haswell(&mix);
        FleetConfig {
            groups,
            samples_per_node: 2000,
            mix,
            temporal: TemporalMode::Iid,
            episodes,
            seed: 0xF1EE7,
            threads: 0,
            cap_w: 359.9,
            power_cap_w: None,
            budget_w: None,
            budget_policy: BudgetPolicy::default(),
        }
    }

    /// Total node count across all groups.
    pub fn total_nodes(&self) -> u32 {
        self.groups.iter().map(|g| g.nodes).sum()
    }

    /// Total 60 s-mean samples the fleet will generate.
    ///
    /// Panics when the total does not fit a `usize` — use
    /// [`FleetConfig::try_total_samples`] to surface the error instead
    /// (the fleet service's admission control does, so an absurd
    /// request is rejected rather than wrapped on 32-bit targets).
    pub fn total_samples(&self) -> usize {
        self.try_total_samples()
            .unwrap_or_else(|e| panic!("fleet size overflows the address space: {e}"))
    }

    /// Checked [`FleetConfig::total_samples`]: `node_count * samples`
    /// is summed in 128-bit so it cannot wrap, and a total beyond
    /// `usize::MAX` comes back as [`FleetSizeError`].
    pub fn try_total_samples(&self) -> Result<usize, FleetSizeError> {
        let total: u128 = self
            .groups
            .iter()
            .map(|g| {
                u128::from(g.nodes)
                    * u128::from(g.samples_per_node.unwrap_or(self.samples_per_node))
            })
            .sum();
        usize::try_from(total).map_err(|_| FleetSizeError { total })
    }
}

/// A fleet configuration asks for more samples than the address space
/// holds ([`FleetConfig::try_total_samples`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSizeError {
    /// The requested total sample count.
    pub total: u128,
}

impl std::fmt::Display for FleetSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet requests {} samples, more than usize::MAX ({})",
            self.total,
            usize::MAX
        )
    }
}

impl std::error::Error for FleetSizeError {}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig::taurus_haswell()
    }
}

/// An empirical power CDF over fixed-width bins.
#[derive(Debug, Clone)]
pub struct PowerCdf {
    /// `(bin_upper_edge_w, cumulative_fraction)`, ascending.
    pub bins: Vec<(f64, f64)>,
    pub min_w: f64,
    pub max_w: f64,
    pub samples: usize,
}

impl PowerCdf {
    /// Builds the CDF from samples with the paper's 0.1 W bins. An
    /// empty sample set yields an empty CDF (zero mass everywhere)
    /// rather than panicking.
    pub fn from_samples(samples: &[f64], bin_width: f64) -> PowerCdf {
        assert!(bin_width > 0.0);
        if samples.is_empty() {
            return PowerCdf {
                bins: Vec::new(),
                min_w: 0.0,
                max_w: 0.0,
                samples: 0,
            };
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let nbins = (((max - min) / bin_width).floor() as usize + 1).max(1);
        let mut counts = vec![0u64; nbins];
        for &s in samples {
            let b = (((s - min) / bin_width) as usize).min(nbins - 1);
            counts[b] += 1;
        }
        let total = samples.len() as f64;
        let mut acc = 0u64;
        let bins = counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                acc += c;
                (min + bin_width * (i as f64 + 1.0), acc as f64 / total)
            })
            .collect();
        PowerCdf {
            bins,
            min_w: min,
            max_w: max,
            samples: samples.len(),
        }
    }

    /// Cumulative fraction at or below `power_w`. Queries below the
    /// first bin's lower edge are outside the observed range and have
    /// zero cumulative mass, as does any query on an empty CDF.
    pub fn fraction_at(&self, power_w: f64) -> f64 {
        if self.samples == 0 || power_w < self.min_w {
            return 0.0;
        }
        match self.bins.iter().find(|(edge, _)| *edge >= power_w) {
            Some((_, frac)) => *frac,
            None => 1.0,
        }
    }

    /// Power at quantile `q`: the lower edge of the first bin whose
    /// cumulative fraction reaches `q`, so that
    /// `quantile(fraction_at(x)) <= x` for any `x` at or above the
    /// observed minimum. Out-of-range `q` clamps (`q <= 0` returns
    /// `min_w`, `q >= 1` the last massed bin's lower edge) and an
    /// empty CDF returns 0.0 — no panic, no NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min_w;
        }
        let q = q.min(1.0);
        match self.bins.iter().position(|&(_, frac)| frac >= q) {
            Some(0) => self.min_w,
            Some(i) => self.bins[i - 1].0,
            None => self.max_w,
        }
    }
}

/// One engine-evaluated `(SKU, class, P-state)` operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPower {
    pub sku: &'static str,
    pub class: &'static str,
    /// Requested P-state frequency, MHz.
    pub freq_mhz: u32,
    /// Applied (possibly EDC/PPT-throttled) frequency, MHz.
    pub applied_mhz: f64,
    /// Node power while the payload executes, W.
    pub watts: f64,
}

/// Episode-mode statistics of one fleet generation pass.
#[derive(Debug, Clone)]
pub struct EpisodeStats {
    /// State names (index 0 = the idle floor, then the mix classes).
    pub states: Vec<&'static str>,
    /// Empirical fraction of ticks spent per state.
    pub empirical_shares: Vec<f64>,
    /// The model's predicted long-run time shares.
    pub model_shares: Vec<f64>,
    /// Empirical mean dwell per state, in 60 s ticks (0 when a state
    /// never started an episode).
    pub mean_dwell_ticks: Vec<f64>,
    /// Lag-1 autocorrelation of node power, pooled over all nodes
    /// (per-node centered; i.i.d. sampling would measure ~0 here).
    ///
    /// Zero-variance contract: when the pooled denominator is zero —
    /// every node's stream is constant, every node has fewer than two
    /// samples, or the fleet is empty — the statistic is **defined as
    /// `0.0`**, never `NaN` or an error. A constant stream carries no
    /// linear dependence to measure, and downstream consumers
    /// (calibration divides distances by tolerances built on this
    /// field) rely on it always being finite.
    pub lag1_autocorr: f64,
}

/// Budget-arbitration telemetry of one fleet generation pass.
#[derive(Debug, Clone)]
pub struct BudgetStats {
    /// The configured per-tick fleet budget, W.
    pub budget_w: f64,
    pub policy: BudgetPolicy,
    /// Synchronized 60 s ticks arbitrated (the longest node horizon).
    pub ticks: usize,
    /// Highest per-tick fleet draw, W.
    pub peak_fleet_w: f64,
    /// Mean per-tick fleet draw, W.
    pub mean_fleet_w: f64,
    /// Per-state count of proposals shed to the floor
    /// ([`BudgetPolicy::ShedToFloor`]; index 0 = floor, then the mix
    /// classes — floor proposals have zero increment and are never
    /// denied).
    pub shed_ticks: Vec<u64>,
    /// Per-state count of tick-denials that deferred a proposal
    /// ([`BudgetPolicy::Defer`]; one proposal can defer repeatedly).
    pub deferred_ticks: Vec<u64>,
    /// Proposals deferred past the end of their node's horizon and
    /// therefore never run.
    pub truncated_proposals: u64,
    /// Ticks whose unconditional idle floors alone exceeded the
    /// budget (the budget is infeasible on those ticks).
    pub infeasible_floor_ticks: u64,
    /// CDF of per-tick budget utilization (fleet draw / budget,
    /// binned at 0.5 %).
    pub utilization: PowerCdf,
    /// State names aligned with the shed/deferred counters.
    pub states: Vec<&'static str>,
}

/// The output of one fleet generation pass.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// All 60 s-mean node power samples, in node order.
    pub samples: Vec<f64>,
    /// Registry/engine cache counters for the run.
    pub registry: RegistryStats,
    /// The engine-evaluated operating points the samples composed from.
    pub power_table: Vec<ClassPower>,
    /// Episode statistics ([`TemporalMode::Episodes`] only). State
    /// shares and dwells describe the *proposed* walks; under a budget
    /// the emitted stream additionally reflects sheds and defers,
    /// which [`FleetRun::budget`] accounts for.
    pub episodes: Option<EpisodeStats>,
    /// Number of static `(SKU, class, P-state)` remap-table cells the
    /// power cap redirected to a lower P-state (0 when no cap is
    /// set). This counts table cells, not drawn samples — see
    /// `capped_samples` for the per-sample count.
    pub capped_points: usize,
    /// Number of drawn samples whose P-state the power cap actually
    /// remapped (accumulated per node, summed in node input order, so
    /// the count is identical for any thread count).
    pub capped_samples: usize,
    /// Remap-table cells whose final operating point still exceeds
    /// `power_cap_w` — the class has no admissible P-state and fell
    /// back to its lowest-power one over the cap.
    pub infeasible_points: usize,
    /// Budget arbitration telemetry ([`FleetConfig::budget_w`] only).
    pub budget: Option<BudgetStats>,
}

/// Per-node work item handed to the sweep.
struct NodeItem {
    sku_idx: usize,
    /// Fleet-global node id (stable across thread counts).
    node_id: u32,
    samples: u32,
}

/// Per-node propose-phase output: the proposal stream plus the walk's
/// state accounting (episode mode) and the per-sample cap counter.
struct NodeOut {
    stream: NodeStream,
    state_ticks: Vec<u64>,
    episode_counts: Vec<u64>,
    capped_samples: usize,
}

/// Per-node episode accounting carried past the propose phase:
/// `(state_ticks, episode_counts)`.
type NodeAccounting = (Vec<u64>, Vec<u64>);

/// The request-shared generation plan built by [`FleetSim::plan`]:
/// the engine-evaluated operating-point tables, the power-cap remap,
/// the flattened sampling lanes and the per-node work items —
/// everything the propose loops read. A plan is immutable and `Sync`,
/// so shard workers on any thread run [`FleetSim::run_shard`] against
/// one shared plan without ever touching the engine registry.
pub struct FleetPlan {
    /// Per-group idle floor, W.
    idle_w: Vec<f64>,
    /// `table[sku][class][pstate]`: payload node power, W.
    table: Vec<Vec<Vec<f64>>>,
    /// Power-cap P-state remap, same shape as `table`.
    remap: Vec<Vec<Vec<usize>>>,
    /// Flattened per-SKU sampling tables for the batched composer.
    lanes: Vec<SkuLanes>,
    /// Per-node work items; index == fleet-global node id.
    items: Vec<NodeItem>,
    power_table: Vec<ClassPower>,
    capped_points: usize,
    infeasible_points: usize,
}

impl FleetPlan {
    /// Total nodes the plan covers (shard ranges index into this).
    pub fn total_nodes(&self) -> u32 {
        u32::try_from(self.items.len()).expect("one item per node, and node counts are u32")
    }

    /// The engine-evaluated operating points backing the plan.
    pub fn power_table(&self) -> &[ClassPower] {
        &self.power_table
    }
}

impl std::fmt::Debug for FleetPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetPlan")
            .field("nodes", &self.items.len())
            .field("power_points", &self.power_table.len())
            .field("capped_points", &self.capped_points)
            .field("infeasible_points", &self.infeasible_points)
            .finish()
    }
}

/// One shard's propose-phase output ([`FleetSim::run_shard`]): the
/// node range it covers plus either directly-filled samples
/// (unbudgeted i.i.d. mode) or full per-node streams for the
/// merge-side arbitrate/apply phases.
pub struct FleetShard {
    lo: u32,
    hi: u32,
    data: ShardData,
}

impl FleetShard {
    /// The `[lo, hi)` node range this shard covers.
    pub fn range(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }
}

/// The shard set handed to [`FleetSim::try_merge_shards`] does not
/// tile the plan's node range — a shard is missing (e.g. it panicked
/// upstream and was dropped), duplicated, or overlapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTilingError {
    /// First node index left uncovered (or covered twice).
    pub expected_lo: u32,
    /// The shard range actually found there (`None`: coverage simply
    /// ran out before `total_nodes`).
    pub found_lo: Option<u32>,
    /// Nodes the plan expects covered.
    pub total_nodes: usize,
}

impl std::fmt::Display for ShardTilingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.found_lo {
            Some(got) => write!(
                f,
                "shards do not tile the node range: expected lo {}, got {got}",
                self.expected_lo
            ),
            None => write!(
                f,
                "shards cover {} of {} nodes",
                self.expected_lo, self.total_nodes
            ),
        }
    }
}

impl std::error::Error for ShardTilingError {}

enum ShardData {
    /// Unbudgeted i.i.d. shards write final samples directly.
    Samples {
        samples: Vec<f64>,
        capped_samples: usize,
    },
    /// Everything else keeps per-node streams: the fleet-global budget
    /// arbitration and episode accounting happen at merge time.
    Nodes(Vec<NodeOut>),
}

/// Splits `0..total_nodes` into at most `shards` contiguous,
/// near-equal, non-empty ranges (fewer when the fleet has fewer nodes
/// than the requested shard count; always at least one).
pub fn shard_ranges(total_nodes: u32, shards: usize) -> Vec<(u32, u32)> {
    let n = u32::try_from(shards.clamp(1, total_nodes.max(1) as usize))
        .expect("clamped to a u32 node count");
    let base = total_nodes / n;
    let rem = total_nodes % n;
    let mut out = Vec::with_capacity(n as usize);
    let mut lo = 0u32;
    for i in 0..n {
        let len = base + u32::from(i < rem);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// The per-node RNG stream: a pure function of `(seed, node_id)` —
/// which is exactly what makes sharding byte-transparent.
fn rng_for(seed: u64, node_id: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (u64::from(node_id).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Draws every sample of up to four node slices in lockstep: the
/// per-sample critical path is the serial xoshiro/convert/compare
/// chain, and the extra independent streams fill its pipeline bubbles.
/// Per-node draw sequences and output slices are untouched, so the
/// bytes match the one-stream-at-a-time reference exactly. Returns the
/// number of cap-remapped samples. Shared by the whole-fleet fast path
/// and the shard layer.
fn lockstep_fill(mut parts: Vec<(&SkuLanes, StdRng, &mut [f64])>, cap: f64) -> usize {
    let mut capped_samples = 0usize;
    // Four-stream lockstep over the shortest slice.
    if let [a, b, c, d] = parts.as_mut_slice() {
        let n = a.2.len().min(b.2.len()).min(c.2.len()).min(d.2.len());
        let (ha, ta) = std::mem::take(&mut a.2).split_at_mut(n);
        let (hb, tb) = std::mem::take(&mut b.2).split_at_mut(n);
        let (hc, tc) = std::mem::take(&mut c.2).split_at_mut(n);
        let (hd, td) = std::mem::take(&mut d.2).split_at_mut(n);
        (a.2, b.2, c.2, d.2) = (ta, tb, tc, td);
        for (((sa, sb), sc), sd) in ha
            .iter_mut()
            .zip(hb.iter_mut())
            .zip(hc.iter_mut())
            .zip(hd.iter_mut())
        {
            let (pa, _, ra) = a.0.draw(&mut a.1);
            let (pb, _, rb) = b.0.draw(&mut b.1);
            let (pc, _, rc) = c.0.draw(&mut c.1);
            let (pd, _, rd) = d.0.draw(&mut d.1);
            capped_samples += usize::from(ra) + usize::from(rb) + usize::from(rc) + usize::from(rd);
            *sa = pa.min(cap);
            *sb = pb.min(cap);
            *sc = pc.min(cap);
            *sd = pd.min(cap);
        }
    }
    // Remainders (under-four chunks, long-tail nodes): pairwise
    // lockstep while possible, then singles.
    parts.retain(|p| !p.2.is_empty());
    while parts.len() >= 2 {
        let n = parts[0].2.len().min(parts[1].2.len());
        let (first, rest) = parts.split_at_mut(1);
        let (a, b) = (&mut first[0], &mut rest[0]);
        let (ha, ta) = std::mem::take(&mut a.2).split_at_mut(n);
        let (hb, tb) = std::mem::take(&mut b.2).split_at_mut(n);
        (a.2, b.2) = (ta, tb);
        for (sa, sb) in ha.iter_mut().zip(hb.iter_mut()) {
            let (pa, _, ra) = a.0.draw(&mut a.1);
            let (pb, _, rb) = b.0.draw(&mut b.1);
            capped_samples += usize::from(ra) + usize::from(rb);
            *sa = pa.min(cap);
            *sb = pb.min(cap);
        }
        parts.retain(|p| !p.2.is_empty());
    }
    if let [(l, rng, out)] = parts.as_mut_slice() {
        for slot in out.iter_mut() {
            let (p, _, remapped) = l.draw(rng);
            capped_samples += usize::from(remapped);
            *slot = p.min(cap);
        }
    }
    capped_samples
}

/// Per-class draw parameters of the batched composer, packed so one
/// indexed load per sample fetches everything the class needs.
#[derive(Clone, Copy)]
struct ClassLane {
    duty_lo: f64,
    /// `duty.1 - duty.0`; `lo + unit * span` reproduces
    /// `gen_range(lo..hi)` bit-for-bit.
    duty_span: f64,
    /// Number of drawable P-states.
    pstates: u64,
    /// `pstates.wrapping_neg() % pstates`, hoisted out of the
    /// per-sample Lemire draw (a u64 division per draw otherwise).
    lemire_threshold: u64,
    /// Offset of this class's lanes in [`SkuLanes::lanes`].
    lane_base: u32,
    /// The class's index in `JobMix::classes()` order (the episode
    /// state label).
    class_idx: u16,
}

/// One `(class, drawn P-state)` composition lane.
struct Lane {
    /// `load - idle`, with the power-cap remap pre-applied.
    delta: f64,
    /// Whether the drawn P-state was remapped by the cap.
    remapped: bool,
}

/// Flattened per-SKU sampling tables for the batched composer. The
/// per-sample hot loop reads only this struct: the positive-weight mix
/// scan entries, the packed per-class draw parameters and one
/// contiguous [`Lane`] per `(class, drawn P-state)`. All values are
/// precomputed from the exact operands the per-node reference path
/// reads per sample — `duty.1 - duty.0`, `load - idle` — so the
/// composed watts are bit-identical.
struct SkuLanes {
    idle: f64,
    floor_w: f64,
    /// `JobMix::total_fraction()` — the draw range of the class pick.
    total: f64,
    /// The `pick_weighted` subtract/compare chain collapsed into exact
    /// per-entry thresholds on the *raw* draw (see
    /// [`collapse_pick_chain`]): entry `j` of the scan is picked iff
    /// `x < thresholds[j]`, so the pick is `picks[#{t <= x}]` — a
    /// branchless count instead of a serial float chain. The first
    /// eight live in a fixed array padded with `+inf` (`x >= +inf`
    /// never counts), so the common count is eight unrolled compares
    /// with no loop-carried branch; mixes with more positive classes
    /// spill into `spill` and the counts add up regardless of the
    /// split because the thresholds are sorted.
    thresholds: [f64; 8],
    spill: Vec<f64>,
    /// The picked class's draw parameters per threshold count, with
    /// the `pick_weighted` fallback (last positive-weight class) in
    /// the final slot. Inlining the [`ClassLane`] here (instead of a
    /// class-index table pointing into a second array) drops one
    /// dependent load from the per-sample critical path.
    picks: Vec<ClassLane>,
    lanes: Vec<Lane>,
}

/// Collapses the `pick_weighted` subtract/compare chain over positive
/// weights `w` into per-entry thresholds on the raw draw `x`.
///
/// The chain value before test `j` is `g_j(x)` with `g_0(x) = x` and
/// `g_{j+1}(x) = fl(g_j(x) - w_j)` (each step rounded to nearest).
/// Every `g_j` is monotone non-decreasing in `x` — float subtraction
/// of a constant and rounding both preserve order — so the test
/// `g_j(x) < w_j` holds exactly for `x` below a single boundary
/// `T_j = min { x : g_j(x) >= w_j }`, found here by binary search on
/// the f64 bit representation (order-isomorphic for non-negative
/// floats). The thresholds come out sorted: failing test `j + 1`
/// forces `g_j(x) > w_j`, i.e. failing test `j` first. Hence the
/// picked entry `min { j : x < T_j }` equals `#{ j : T_j <= x }`,
/// and the collapse is bit-exact for every representable draw — not
/// an approximation of the chain.
fn collapse_pick_chain(weights: &[f64], total: f64) -> Vec<f64> {
    let chain = |x: f64, j: usize| -> f64 {
        let mut v = x;
        for &w in &weights[..j] {
            v -= w;
        }
        v
    };
    (0..weights.len())
        .map(|j| {
            // Draws satisfy `0 <= x <= total`; if even `total` keeps
            // the chain below `w_j`, the test always passes.
            if chain(total, j) < weights[j] {
                return f64::INFINITY;
            }
            // Invariant: chain(lo) < w_j <= chain(hi). `lo = 0` holds
            // because `g_0(0) = 0` and later chain values are negative
            // at zero, while weights are strictly positive.
            let (mut lo, mut hi) = (0u64, total.to_bits());
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if chain(f64::from_bits(mid), j) >= weights[j] {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            f64::from_bits(hi)
        })
        .collect()
}

impl SkuLanes {
    /// One tick of the batched composer: draws `(class, duty, P-state)`
    /// from `rng` with the exact draw sequence (and bit patterns) the
    /// per-node reference path consumes, and returns the uncapped
    /// watts, the drawn class index and whether the power cap remapped
    /// the drawn P-state.
    #[inline(always)]
    fn draw(&self, rng: &mut StdRng) -> (f64, usize, bool) {
        // `gen_range(0.0..total)` with the zero start folded away:
        // `0.0 + unit * (total - 0.0)` is bitwise `unit * total`.
        // Both always-consumed draws are pulled up front (same
        // consumption order: class first, duty second), so the RNG
        // state updates overlap the threshold count.
        let x = rng.gen_unit() * self.total;
        let duty_unit = rng.gen_unit();
        // The collapsed `pick_weighted` chain: a branchless count of
        // crossed thresholds instead of a serial subtract/compare
        // chain with one data-random branch per entry.
        let mut idx = 0usize;
        for &t in &self.thresholds {
            idx += usize::from(x >= t);
        }
        for &t in &self.spill {
            idx += usize::from(x >= t);
        }
        let cl = &self.picks[idx];
        let duty = cl.duty_lo + duty_unit * cl.duty_span;
        let k = if cl.pstates == 2 {
            // Lemire for span 2: the rejection threshold is 0 and the
            // 128-bit product's high word is the raw draw's top bit —
            // one `next_u64`, the exact `gen_range(0..2)` stream.
            (rng.next_u64() >> 63) as usize
        } else if cl.pstates > 1 {
            // Lemire with the per-class rejection threshold
            // precomputed (the generic path pays a u64 division per
            // draw).
            loop {
                let m = u128::from(rng.next_u64()) * u128::from(cl.pstates);
                if (m as u64) >= cl.lemire_threshold {
                    break (m >> 64) as usize;
                }
            }
        } else {
            0
        };
        let lane = &self.lanes[cl.lane_base as usize + k];
        // The 60 s mean: duty-cycled payload power on top of the idle
        // floor (the facility cap clamp is the caller's).
        (
            self.idle + duty * lane.delta,
            cl.class_idx as usize,
            lane.remapped,
        )
    }
}

/// The fleet generator.
#[derive(Debug, Clone)]
pub struct FleetSim {
    pub config: FleetConfig,
}

impl FleetSim {
    pub fn new(config: FleetConfig) -> FleetSim {
        assert!(!config.groups.is_empty(), "fleet needs at least one group");
        if config.temporal == TemporalMode::Episodes {
            assert_eq!(
                config.episodes.n_states(),
                config.mix.classes().len() + 1,
                "episode model must cover the floor plus every mix class"
            );
        }
        if let Some(b) = config.budget_w {
            assert!(
                b.is_finite() && b > 0.0,
                "budget_w must be a positive wattage, got {b}"
            );
        }
        FleetSim { config }
    }

    /// Generates every 60 s-mean sample plus the run's cache counters.
    pub fn run(&self) -> FleetRun {
        self.run_with(&EngineRegistry::with_seed(self.config.seed))
    }

    /// [`FleetSim::run`] against a caller-owned registry. Repeat fleet
    /// requests (a service loop, the benches) that hold one registry
    /// reuse its registry-wide payload/decode/ExecStats tier instead of
    /// rewarming fresh caches per run — the second request's table
    /// build is pure cache hits. The samples are identical to
    /// [`FleetSim::run`] whenever the registry was created with the
    /// fleet's seed (the engine seed keys the cached functional
    /// passes).
    pub fn run_with(&self, registry: &EngineRegistry) -> FleetRun {
        self.run_inner(registry, true)
    }

    /// The pre-batching per-node path: every sample draw goes through
    /// the [`JobMix`]/[`crate::jobs::JobClass`] API and the nested
    /// power tables, exactly as the historical hot loop did. Retained
    /// as the golden baseline the batched composer is pinned against
    /// bit-for-bit (and as the bench's per-node speedup reference).
    pub fn run_reference(&self) -> FleetRun {
        self.run_inner(&EngineRegistry::with_seed(self.config.seed), false)
    }

    /// Builds the request-shared generation plan: one batched
    /// engine-evaluation of the operating-point table, the power-cap
    /// remap and the flattened sampling lanes. This is the only phase
    /// that touches the engine registry (plus the final merge, for its
    /// counters), so shard workers stay pure table readers. Also
    /// announces the request to the registry's cross-request counters.
    pub fn plan(&self, registry: &EngineRegistry) -> FleetPlan {
        registry.begin_request();
        let cfg = &self.config;
        let classes = cfg.mix.classes();

        // Engine-evaluate each (SKU, class, P-state) operating point
        // once; the per-sample loop then only composes duty cycles.
        // `table[sku][class][pstate]` is the payload's node power.
        // All of a class's P-state frequencies ride one batched
        // request, so each (SKU, class) row costs a single cached
        // payload fetch, one memoized decode and one cached functional
        // pass regardless of how many P-states it spans.
        let mut idle_w: Vec<f64> = Vec::with_capacity(cfg.groups.len());
        let mut requests: Vec<GroupEvalRequest<'_>> = Vec::new();
        // Distinct `(pstate, freq)` pairs per request, in first-seen
        // class order (the historical NaN-dedup order).
        let mut req_pstates: Vec<Vec<(usize, u32)>> = Vec::new();
        for group in &cfg.groups {
            let engine = registry.engine(&group.sku);
            idle_w.push(engine.idle_power_w());
            let n_pstates = group.sku.pstates.states.len();
            for (class, _) in classes {
                let mut seen: Vec<(usize, u32)> = Vec::new();
                for &p in class.pstates {
                    assert!(
                        p < n_pstates,
                        "{}: P-state index {p} out of range for {}",
                        class.name,
                        group.sku.name
                    );
                    if !seen.iter().any(|&(q, _)| q == p) {
                        seen.push((p, group.sku.pstates.states[p].freq_mhz));
                    }
                }
                requests.push(GroupEvalRequest {
                    sku: &group.sku,
                    spec: class.spec,
                    init: InitScheme::V2Safe,
                    freqs_mhz: seen.iter().map(|&(_, f)| f64::from(f)).collect(),
                });
                req_pstates.push(seen);
            }
        }
        let batches = registry
            .eval_groups(&requests)
            .unwrap_or_else(|e| panic!("fleet job-class spec rejected: {e}"));

        let mut table: Vec<Vec<Vec<f64>>> = Vec::with_capacity(cfg.groups.len());
        let mut power_table: Vec<ClassPower> = Vec::new();
        let mut batch_iter = req_pstates.iter().zip(&batches);
        for group in &cfg.groups {
            let n_pstates = group.sku.pstates.states.len();
            let mut rows = Vec::with_capacity(classes.len());
            for (class, _) in classes {
                let (pstates, batch) = batch_iter.next().expect("one batch per (group, class)");
                let mut row = vec![f64::NAN; n_pstates];
                for (&(p, freq), point) in pstates.iter().zip(&batch.points) {
                    row[p] = point.power.total_w();
                    power_table.push(ClassPower {
                        sku: group.sku.name,
                        class: class.name,
                        freq_mhz: freq,
                        applied_mhz: point.applied_mhz,
                        watts: row[p],
                    });
                }
                rows.push(row);
            }
            table.push(rows);
        }

        // P-state admission under the what-if power cap:
        // `remap[sku][class][pstate]` redirects a drawn P-state whose
        // operating point exceeds the cap to the class's highest
        // admissible one. The draw itself is untouched, so the RNG
        // streams — and therefore capped/uncapped comparisons — stay
        // aligned sample-for-sample. `capped_points` counts remapped
        // *table cells*; the per-sample count is accumulated in the
        // propose phase. A class with no admissible P-state keeps its
        // lowest-power one and every still-over-cap cell is surfaced
        // through `infeasible_points` instead of silently passing.
        let mut capped_points = 0usize;
        let mut infeasible_points = 0usize;
        let remap: Vec<Vec<Vec<usize>>> = cfg
            .groups
            .iter()
            .enumerate()
            .map(|(sku_idx, group)| {
                let n_pstates = group.sku.pstates.states.len();
                classes
                    .iter()
                    .enumerate()
                    .map(|(ci, (class, _))| {
                        let mut m: Vec<usize> = (0..n_pstates).collect();
                        if let Some(cap) = cfg.power_cap_w {
                            let row = &table[sku_idx][ci];
                            let admissible = class
                                .pstates
                                .iter()
                                .copied()
                                .filter(|&p| row[p] <= cap)
                                .max_by(|&a, &b| row[a].total_cmp(&row[b]));
                            let fallback = class
                                .pstates
                                .iter()
                                .copied()
                                .min_by(|&a, &b| row[a].total_cmp(&row[b]))
                                .expect("classes always have P-states");
                            let target = admissible.unwrap_or(fallback);
                            for &p in class.pstates {
                                if row[p] > cap && p != target {
                                    m[p] = target;
                                    capped_points += 1;
                                }
                                if row[m[p]] > cap {
                                    infeasible_points += 1;
                                }
                            }
                        }
                        m
                    })
                    .collect()
            })
            .collect();

        // Flatten the fleet into per-node work items. Node ids are
        // global and stable, so per-node RNG streams (and therefore
        // the samples) do not depend on grouping or thread count.
        let mut items: Vec<NodeItem> = Vec::with_capacity(cfg.total_nodes() as usize);
        let mut node_id = 0u32;
        for (sku_idx, group) in cfg.groups.iter().enumerate() {
            let samples = group.samples_per_node.unwrap_or(cfg.samples_per_node);
            for _ in 0..group.nodes {
                items.push(NodeItem {
                    sku_idx,
                    node_id,
                    samples,
                });
                node_id += 1;
            }
        }

        // Flattened per-SKU sampling tables for the batched composer:
        // mix scan weights, packed per-class draw parameters and
        // per-(class, drawn-P-state) power deltas laid out
        // contiguously, with the cap remap pre-resolved into the
        // lanes. Every value is built from the same operands the
        // per-node reference path reads per sample — `duty.1 -
        // duty.0`, `load - idle` — so the composed watts are
        // bit-identical; the hot loop just stops chasing `JobClass`
        // structs and nested `Vec` rows per sample.
        let lanes: Vec<SkuLanes> = cfg
            .groups
            .iter()
            .enumerate()
            .map(|(si, _)| {
                let idle = idle_w[si];
                let rows = &table[si];
                let remap_s = &remap[si];
                let mut sku_lanes = SkuLanes {
                    idle,
                    floor_w: idle.min(cfg.cap_w),
                    total: cfg.mix.total_fraction(),
                    thresholds: [f64::INFINITY; 8],
                    spill: Vec::new(),
                    picks: Vec::new(),
                    lanes: Vec::new(),
                };
                let mut weights = Vec::new();
                for (ci, (class, frac)) in classes.iter().enumerate() {
                    let pstates = class.pstates.len() as u64;
                    let class_lane = ClassLane {
                        duty_lo: class.duty.0,
                        duty_span: class.duty.1 - class.duty.0,
                        pstates,
                        lemire_threshold: if pstates > 1 {
                            pstates.wrapping_neg() % pstates
                        } else {
                            0
                        },
                        lane_base: u32::try_from(sku_lanes.lanes.len())
                            .expect("a few lanes per job class"),
                        class_idx: u16::try_from(ci).expect("class catalogue is tiny"),
                    };
                    if *frac > 0.0 {
                        weights.push(*frac);
                        sku_lanes.picks.push(class_lane);
                    }
                    for &p in class.pstates {
                        let mapped = remap_s[ci][p];
                        debug_assert!(!rows[ci][mapped].is_nan());
                        sku_lanes.lanes.push(Lane {
                            delta: rows[ci][mapped] - idle,
                            remapped: mapped != p,
                        });
                    }
                }
                // The `pick_weighted` fallback: past every threshold,
                // the last positive-weight class wins.
                let last = *sku_lanes.picks.last().expect("mix has a positive weight");
                sku_lanes.picks.push(last);
                let collapsed = collapse_pick_chain(&weights, sku_lanes.total);
                for (i, &t) in collapsed.iter().enumerate() {
                    if i < 8 {
                        sku_lanes.thresholds[i] = t;
                    } else {
                        sku_lanes.spill.push(t);
                    }
                }
                sku_lanes
            })
            .collect();

        FleetPlan {
            idle_w,
            table,
            remap,
            lanes,
            items,
            power_table,
            capped_points,
            infeasible_points,
        }
    }

    fn run_inner(&self, registry: &EngineRegistry, batched: bool) -> FleetRun {
        let cfg = &self.config;
        let plan = self.plan(registry);
        let cap = cfg.cap_w;
        let seed = cfg.seed;
        let lanes = &plan.lanes;
        // Any engine can host the sweep; the workers only read the
        // precomputed tables (the &Engine argument goes unused).
        let driver = registry.engine(&cfg.groups[0].sku);

        // Fast path — unbudgeted i.i.d. runs (the CDF and bench
        // workload): every node writes its samples straight into the
        // final fleet buffer through per-node disjoint slices, so the
        // per-node stream Vecs, the state-label column and the final
        // flatten copy disappear. Draw streams and slice order match
        // the per-node reference path, so the output bytes are
        // identical.
        if batched && cfg.temporal == TemporalMode::Iid && cfg.budget_w.is_none() {
            let total_n: usize = plan.items.iter().map(|it| it.samples as usize).sum();
            let mut samples = vec![0.0f64; total_n];
            struct FillNode<'a> {
                sku_idx: usize,
                node_id: u32,
                out: Mutex<Option<&'a mut [f64]>>,
            }
            // Nodes are grouped in fours so one worker draws four
            // independent RNG streams in lockstep: the per-sample
            // critical path is the serial xoshiro/convert/compare
            // chain, and the extra streams fill its pipeline bubbles.
            // Per-node draws and output slices are untouched, so the
            // bytes can't change.
            struct FillUnit<'a> {
                nodes: Vec<FillNode<'a>>,
                samples: u32,
            }
            let nodes: Vec<FillNode<'_>> = {
                let mut rest = samples.as_mut_slice();
                plan.items
                    .iter()
                    .map(|it| {
                        let (head, tail) =
                            std::mem::take(&mut rest).split_at_mut(it.samples as usize);
                        rest = tail;
                        FillNode {
                            sku_idx: it.sku_idx,
                            node_id: it.node_id,
                            out: Mutex::new(Some(head)),
                        }
                    })
                    .collect()
            };
            let count = |n: &FillNode<'_>| {
                n.out
                    .lock()
                    .expect("slice handoff mutex")
                    .as_ref()
                    .map_or(0, |s| {
                        u32::try_from(s.len()).expect("per-node sample counts are u32")
                    })
            };
            let mut units: Vec<FillUnit<'_>> = Vec::with_capacity(nodes.len().div_ceil(4));
            let mut nodes = nodes.into_iter().peekable();
            while nodes.peek().is_some() {
                let chunk: Vec<FillNode<'_>> = nodes.by_ref().take(4).collect();
                let samples = chunk.iter().map(&count).sum();
                units.push(FillUnit {
                    nodes: chunk,
                    samples,
                });
            }
            fn take<'a>(n: &FillNode<'a>) -> &'a mut [f64] {
                n.out
                    .lock()
                    .expect("slice handoff mutex")
                    .take()
                    .expect("each node is filled once")
            }
            let capped: Vec<usize> = driver.sweep_hinted(
                &units,
                cfg.threads,
                |_, u| u64::from(u.samples),
                move |_, _, u| {
                    let parts: Vec<(&SkuLanes, StdRng, &mut [f64])> = u
                        .nodes
                        .iter()
                        .map(|n| (&lanes[n.sku_idx], rng_for(seed, n.node_id), take(n)))
                        .collect();
                    lockstep_fill(parts, cap)
                },
            );
            drop(units);
            return FleetRun {
                samples,
                registry: registry.stats(),
                power_table: plan.power_table,
                episodes: None,
                capped_points: plan.capped_points,
                capped_samples: capped.iter().sum(),
                infeasible_points: plan.infeasible_points,
                budget: None,
            };
        }

        // Phase 1 — propose (parallel): every node draws its full tick
        // stream from its own `(seed, node_id)` RNG stream. The draws
        // and the composed watts are identical to the historical
        // per-node generation, so runs without a budget stay
        // byte-stable. The batched composer and the per-node reference
        // path are pinned bit-identical by the regression tests below.
        let plan_ref = &plan;
        let per_node: Vec<NodeOut> = driver.sweep_hinted(
            &plan.items,
            cfg.threads,
            |_, item| u64::from(item.samples),
            move |_, _, item| {
                if batched {
                    self.propose_batched(plan_ref, item)
                } else {
                    self.propose_reference(plan_ref, item)
                }
            },
        );
        self.finish(registry, &plan, per_node)
    }

    /// Proposes one node's stream through the batched composer (the
    /// production path: flattened [`SkuLanes`] draws in i.i.d. mode,
    /// the episode walk otherwise). Also the shard layer's per-node
    /// propose, so sharded runs share every draw with the serial path.
    fn propose_batched(&self, plan: &FleetPlan, item: &NodeItem) -> NodeOut {
        match self.config.temporal {
            TemporalMode::Iid => self.propose_iid_batched(plan, item),
            TemporalMode::Episodes => self.propose_episode(plan, item),
        }
    }

    /// Proposes one node's stream through the historical per-node
    /// reference path (every draw walks the `JobMix`/`JobClass` API
    /// and the nested power tables).
    fn propose_reference(&self, plan: &FleetPlan, item: &NodeItem) -> NodeOut {
        match self.config.temporal {
            TemporalMode::Iid => self.propose_iid_reference(plan, item),
            TemporalMode::Episodes => self.propose_episode(plan, item),
        }
    }

    fn propose_iid_batched(&self, plan: &FleetPlan, item: &NodeItem) -> NodeOut {
        // Unbudgeted whole-fleet Iid runs take the direct-fill fast
        // path in `run_inner`, so this arm feeds the budget arbiter
        // and the shard layer, which keep state labels.
        let cap = self.config.cap_w;
        let l = &plan.lanes[item.sku_idx];
        let mut capped_samples = 0usize;
        let mut watts = Vec::with_capacity(item.samples as usize);
        let mut states = Vec::with_capacity(item.samples as usize);
        // Per-node RNG streams keep generation order-independent.
        let mut rng = rng_for(self.config.seed, item.node_id);
        for _ in 0..item.samples {
            let (p, ci, remapped) = l.draw(&mut rng);
            capped_samples += usize::from(remapped);
            watts.push(p.min(cap));
            // fs2-lint: allow(checked-cast) -- class index < catalogue size (JobMix validates); hot per-sample loop
            states.push((ci + 1) as u16);
        }
        NodeOut {
            stream: NodeStream {
                floor_w: l.floor_w,
                watts,
                states,
            },
            state_ticks: Vec::new(),
            episode_counts: Vec::new(),
            capped_samples,
        }
    }

    fn propose_iid_reference(&self, plan: &FleetPlan, item: &NodeItem) -> NodeOut {
        let cap = self.config.cap_w;
        let mix = &self.config.mix;
        let idle = plan.idle_w[item.sku_idx];
        let rows = &plan.table[item.sku_idx];
        let remap = &plan.remap[item.sku_idx];
        let mut capped_samples = 0usize;
        let mut watts = Vec::with_capacity(item.samples as usize);
        let mut states = Vec::with_capacity(item.samples as usize);
        let mut rng = rng_for(self.config.seed, item.node_id);
        for _ in 0..item.samples {
            let ci = mix.pick_idx(&mut rng);
            let class = &mix.classes()[ci].0;
            let duty = class.draw_duty(&mut rng);
            let drawn = class.draw_pstate(&mut rng);
            let pstate = remap[ci][drawn];
            if pstate != drawn {
                capped_samples += 1;
            }
            let load = rows[ci][pstate];
            debug_assert!(!load.is_nan());
            watts.push((idle + duty * (load - idle)).min(cap));
            // fs2-lint: allow(checked-cast) -- class index < catalogue size (JobMix validates); hot per-sample loop
            states.push((ci + 1) as u16);
        }
        NodeOut {
            stream: NodeStream {
                floor_w: idle.min(cap),
                watts,
                states,
            },
            state_ticks: Vec::new(),
            episode_counts: Vec::new(),
            capped_samples,
        }
    }

    fn propose_episode(&self, plan: &FleetPlan, item: &NodeItem) -> NodeOut {
        let cfg = &self.config;
        let cap = cfg.cap_w;
        let idle = plan.idle_w[item.sku_idx];
        let rows = &plan.table[item.sku_idx];
        let remap = &plan.remap[item.sku_idx];
        let mut capped_samples = 0usize;
        let mut watts = Vec::with_capacity(item.samples as usize);
        let mut states = Vec::with_capacity(item.samples as usize);
        let mut walk = EpisodeWalk::new(&cfg.episodes, &cfg.mix, cfg.seed, item.node_id);
        for _ in 0..item.samples {
            let t = walk.next_tick();
            let p = match t.class {
                None => idle,
                Some(ci) => {
                    let pstate = remap[ci][t.pstate];
                    if pstate != t.pstate {
                        capped_samples += 1;
                    }
                    let load = rows[ci][pstate];
                    debug_assert!(!load.is_nan());
                    idle + t.duty * (load - idle)
                }
            };
            watts.push(p.min(cap));
            // fs2-lint: allow(checked-cast) -- episode state index is bounded by the class count; hot per-sample loop
            states.push(t.state as u16);
        }
        NodeOut {
            stream: NodeStream {
                floor_w: idle.min(cap),
                watts,
                states,
            },
            state_ticks: walk.state_ticks().to_vec(),
            episode_counts: walk.episode_counts().to_vec(),
            capped_samples,
        }
    }

    /// Phases 2 + 3 over already-proposed node streams: arbitrate the
    /// fleet budget in node-id order, apply decisions, and fold the
    /// episode/budget accounting. Shared verbatim by the whole-fleet
    /// path and the shard merge, so both produce identical bytes.
    fn finish(
        &self,
        registry: &EngineRegistry,
        plan: &FleetPlan,
        per_node: Vec<NodeOut>,
    ) -> FleetRun {
        let cfg = &self.config;
        let classes = cfg.mix.classes();
        let driver = registry.engine(&cfg.groups[0].sku);

        // Per-sample cap accounting is summed in node input order, so
        // the total is identical for any sweep thread count.
        let capped_samples: usize = per_node.iter().map(|n| n.capped_samples).sum();
        let (streams, accounting): (Vec<NodeStream>, Vec<NodeAccounting>) = per_node
            .into_iter()
            .map(|n| (n.stream, (n.state_ticks, n.episode_counts)))
            .unzip();

        // Phase 2 — arbitrate (serial): fold the proposals against the
        // fleet budget in node-id order. Skipped entirely without a
        // budget, which keeps the historical streams byte-stable.
        let n_states = classes.len() + 1;
        let arbitration: Option<Arbitration> = cfg
            .budget_w
            .map(|b| arbitrate(&streams, b, cfg.budget_policy, n_states));

        // Phase 3 — apply: decisions become samples. Each node only
        // reads its own stream and decision row, so the budgeted
        // fan-out is embarrassingly parallel and input-ordered. With
        // no budget every decision is trivially "admit", so the watts
        // columns *move* into the output — zero copies, exactly the
        // historical unbudgeted cost.
        let per_node_samples: Vec<Vec<f64>> = match &arbitration {
            None => streams.into_iter().map(|s| s.watts).collect(),
            Some(arb) => {
                let streams_ref = &streams;
                driver.sweep(streams_ref, cfg.threads, move |_, i, stream| {
                    arb.decisions[i]
                        .iter()
                        .map(|d| match d {
                            Decision::Admit(k) => stream.watts[*k as usize],
                            Decision::Floor => stream.floor_w,
                        })
                        .collect()
                })
            }
        };

        let episode_stats = (cfg.temporal == TemporalMode::Episodes)
            .then(|| aggregate_episode_stats(&cfg.episodes, &accounting, &per_node_samples));

        let budget = arbitration.map(|arb| {
            let budget_w = cfg.budget_w.expect("arbitration implies a budget");
            let ticks = arb.tick_draw_w.len();
            let peak_fleet_w = arb.tick_draw_w.iter().copied().fold(0.0, f64::max);
            let mean_fleet_w = if ticks == 0 {
                0.0
            } else {
                arb.tick_draw_w.iter().sum::<f64>() / ticks as f64
            };
            let util: Vec<f64> = arb.tick_draw_w.iter().map(|&d| d / budget_w).collect();
            let mut states = vec!["floor"];
            states.extend(classes.iter().map(|(c, _)| c.name));
            BudgetStats {
                budget_w,
                policy: cfg.budget_policy,
                ticks,
                peak_fleet_w,
                mean_fleet_w,
                shed_ticks: arb.shed_ticks,
                deferred_ticks: arb.deferred_ticks,
                truncated_proposals: arb.truncated_proposals,
                infeasible_floor_ticks: arb.infeasible_floor_ticks,
                utilization: PowerCdf::from_samples(&util, 0.005),
                states,
            }
        });

        FleetRun {
            samples: per_node_samples.into_iter().flatten().collect(),
            registry: registry.stats(),
            power_table: plan.power_table.clone(),
            episodes: episode_stats,
            capped_points: plan.capped_points,
            capped_samples,
            infeasible_points: plan.infeasible_points,
            budget,
        }
    }

    /// Proposes the node range `[lo, hi)` of an already-built plan.
    ///
    /// This is the scheduler/shard layer's unit of work: because every
    /// node's stream is a pure function of `(seed, node_id)`, a shard
    /// proposes exactly the bytes the serial run would have produced
    /// for those nodes, and [`FleetSim::merge_shards`] reassembles the
    /// full run bitwise-identically. Unbudgeted i.i.d. shards take the
    /// same 4-lane lockstep fill as the whole-fleet fast path.
    pub fn run_shard(&self, plan: &FleetPlan, lo: u32, hi: u32) -> FleetShard {
        let cfg = &self.config;
        assert!(
            lo <= hi && (hi as usize) <= plan.items.len(),
            "shard [{lo}, {hi}) out of range for {} nodes",
            plan.items.len()
        );
        let nodes = &plan.items[lo as usize..hi as usize];
        let data = if cfg.temporal == TemporalMode::Iid && cfg.budget_w.is_none() {
            // Direct fill, chunked 4 nodes at a time exactly like the
            // whole-fleet fast path's lockstep units.
            let total: usize = nodes.iter().map(|n| n.samples as usize).sum();
            let mut samples = vec![0.0f64; total];
            let mut capped_samples = 0usize;
            let mut rest = samples.as_mut_slice();
            let mut parts: Vec<(&SkuLanes, StdRng, &mut [f64])> = Vec::with_capacity(4);
            let mut it = nodes.iter().peekable();
            while it.peek().is_some() {
                for n in it.by_ref().take(4) {
                    let (head, tail) = rest.split_at_mut(n.samples as usize);
                    rest = tail;
                    parts.push((&plan.lanes[n.sku_idx], rng_for(cfg.seed, n.node_id), head));
                }
                capped_samples += lockstep_fill(std::mem::take(&mut parts), cfg.cap_w);
            }
            ShardData::Samples {
                samples,
                capped_samples,
            }
        } else {
            ShardData::Nodes(
                nodes
                    .iter()
                    .map(|it| self.propose_batched(plan, it))
                    .collect(),
            )
        };
        FleetShard { lo, hi, data }
    }

    /// Merges shard results back into one [`FleetRun`].
    ///
    /// Shards must tile the plan's node range exactly (any order; they
    /// are sorted by range here) — a gap or overlap panics. Fallible
    /// callers (the fleet service, whose shard set may be missing a
    /// panicked task) should use [`FleetSim::try_merge_shards`].
    pub fn merge_shards(
        &self,
        registry: &EngineRegistry,
        plan: &FleetPlan,
        shards: Vec<FleetShard>,
    ) -> FleetRun {
        self.try_merge_shards(registry, plan, shards)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`FleetSim::merge_shards`], but a shard set that fails to
    /// tile the plan's node range is a typed [`ShardTilingError`]
    /// instead of a panic. Streams concatenate in node-id order and
    /// the shared `finish` phase arbitrates and aggregates, so the
    /// merged run is byte-identical to [`FleetSim::run`] for every
    /// shard split.
    pub fn try_merge_shards(
        &self,
        registry: &EngineRegistry,
        plan: &FleetPlan,
        mut shards: Vec<FleetShard>,
    ) -> Result<FleetRun, ShardTilingError> {
        shards.sort_by_key(|s| s.lo);
        let mut expected = 0u32;
        for s in &shards {
            if s.lo != expected {
                return Err(ShardTilingError {
                    expected_lo: expected,
                    found_lo: Some(s.lo),
                    total_nodes: plan.items.len(),
                });
            }
            expected = s.hi;
        }
        if expected as usize != plan.items.len() {
            return Err(ShardTilingError {
                expected_lo: expected,
                found_lo: None,
                total_nodes: plan.items.len(),
            });
        }

        if shards
            .iter()
            .all(|s| matches!(s.data, ShardData::Samples { .. }))
        {
            // Fast-path shards: samples are final, concatenate.
            let mut samples = Vec::with_capacity(self.config.total_samples());
            let mut capped_samples = 0usize;
            for s in shards {
                match s.data {
                    ShardData::Samples {
                        samples: mut part,
                        capped_samples: c,
                    } => {
                        samples.append(&mut part);
                        capped_samples += c;
                    }
                    ShardData::Nodes(_) => unreachable!(),
                }
            }
            return Ok(FleetRun {
                samples,
                registry: registry.stats(),
                power_table: plan.power_table.clone(),
                episodes: None,
                capped_points: plan.capped_points,
                capped_samples,
                infeasible_points: plan.infeasible_points,
                budget: None,
            });
        }

        let per_node: Vec<NodeOut> = shards
            .into_iter()
            .flat_map(|s| match s.data {
                ShardData::Nodes(nodes) => nodes,
                ShardData::Samples { .. } => {
                    unreachable!("mixed shard kinds cannot arise from run_shard")
                }
            })
            .collect();
        Ok(self.finish(registry, plan, per_node))
    }

    /// Runs the fleet split across `shards` shards, each proposed on
    /// its own OS thread, and merges the results. Produces bytes
    /// identical to [`FleetSim::run`] for every shard count.
    pub fn run_sharded(&self, registry: &EngineRegistry, shards: usize) -> FleetRun {
        let plan = self.plan(registry);
        let ranges = shard_ranges(plan.total_nodes(), shards);
        let parts: Vec<FleetShard> = std::thread::scope(|scope| {
            let plan = &plan;
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| scope.spawn(move || self.run_shard(plan, lo, hi)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        self.merge_shards(registry, &plan, parts)
    }

    /// Generates all 60 s-mean samples for the fleet.
    pub fn generate(&self) -> Vec<f64> {
        self.run().samples
    }

    /// Full Fig. 1 pipeline: generate, bin at 0.1 W, return the CDF.
    pub fn power_cdf(&self) -> PowerCdf {
        PowerCdf::from_samples(&self.generate(), 0.1)
    }
}

/// Folds per-node walk accounting `(state_ticks, episode_counts)` and
/// the emitted sample streams into fleet-wide episode statistics.
/// Nodes are visited in input order, so the result is identical for
/// any sweep thread count. The state shares and dwells describe the
/// *proposed* walks; the autocorrelation measures the emitted stream
/// (post-arbitration when a budget is set).
fn aggregate_episode_stats(
    model: &EpisodeModel,
    accounting: &[NodeAccounting],
    per_node_samples: &[Vec<f64>],
) -> EpisodeStats {
    let n = model.n_states();
    let mut ticks = vec![0u64; n];
    let mut episodes = vec![0u64; n];
    // Pooled lag-1 autocorrelation: per-node centering, fleet-wide
    // numerator/denominator (constant-power nodes contribute nothing).
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for ((state_ticks, episode_counts), s) in accounting.iter().zip(per_node_samples) {
        for (a, b) in ticks.iter_mut().zip(state_ticks) {
            *a += b;
        }
        for (a, b) in episodes.iter_mut().zip(episode_counts) {
            *a += b;
        }
        if s.len() >= 2 {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            den += s.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>();
            num += s
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>();
        }
    }
    let total: u64 = ticks.iter().sum();
    let empirical_shares = ticks
        .iter()
        .map(|&t| {
            if total == 0 {
                0.0
            } else {
                t as f64 / total as f64
            }
        })
        .collect();
    let mean_dwell_ticks = ticks
        .iter()
        .zip(&episodes)
        .map(|(&t, &e)| if e == 0 { 0.0 } else { t as f64 / e as f64 })
        .collect();
    EpisodeStats {
        states: model.state_names().to_vec(),
        empirical_shares,
        model_shares: model.stationary_time_shares().to_vec(),
        mean_dwell_ticks,
        // Zero pooled variance (constant streams, streams shorter than
        // two samples, or no nodes) is defined as 0.0 — see the
        // `EpisodeStats::lag1_autocorr` contract.
        lag1_autocorr: if den > 0.0 { num / den } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> FleetSim {
        FleetSim::new(FleetConfig {
            samples_per_node: 500,
            ..FleetConfig::taurus_haswell_scaled(64)
        })
    }

    fn small_episode_fleet() -> FleetSim {
        FleetSim::new(FleetConfig {
            samples_per_node: 500,
            temporal: TemporalMode::Episodes,
            ..FleetConfig::taurus_haswell_scaled(64)
        })
    }

    #[test]
    fn cdf_shape_matches_fig1_landmarks() {
        let cdf = small_fleet().power_cdf();
        // Maximum below the physical cap (paper: 359.9 W).
        assert!(cdf.max_w <= 359.9 + 1e-9);
        assert!(cdf.max_w > 300.0, "no high-power tail: max {}", cdf.max_w);
        // Steep idle shoulder: a large fraction between 50 W and 100 W.
        let below_100 = cdf.fraction_at(100.0);
        let below_50 = cdf.fraction_at(50.0);
        assert!(below_50 < 0.02, "mass below 50 W: {below_50}");
        assert!(
            below_100 > 0.35,
            "idle shoulder missing: only {below_100} below 100 W"
        );
        // Most of the time, the power budget is far from exhausted.
        assert!(cdf.fraction_at(250.0) > 0.75);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let cdf = small_fleet().power_cdf();
        assert!((cdf.bins.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.bins.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        assert_eq!(cdf.samples, 64 * 500);
    }

    #[test]
    fn quantiles_are_ordered() {
        let cdf = small_fleet().power_cdf();
        let q25 = cdf.quantile(0.25);
        let q50 = cdf.quantile(0.50);
        let q95 = cdf.quantile(0.95);
        assert!(q25 <= q50 && q50 <= q95);
        assert!(q95 > 200.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_fleet().generate();
        let b = small_fleet().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_fleet_matches_serial_bitwise() {
        let mut serial = small_fleet();
        serial.config.threads = 1;
        let mut parallel = small_fleet();
        parallel.config.threads = 4;
        assert_eq!(serial.generate(), parallel.generate());
    }

    #[test]
    fn episode_fleet_parallel_matches_serial_bitwise() {
        let mut serial = small_episode_fleet();
        serial.config.threads = 1;
        let mut parallel = small_episode_fleet();
        parallel.config.threads = 4;
        let a = serial.run();
        let b = parallel.run();
        assert_eq!(a.samples, b.samples);
        // The aggregated episode statistics must match too.
        let (sa, sb) = (a.episodes.unwrap(), b.episodes.unwrap());
        assert_eq!(sa.empirical_shares, sb.empirical_shares);
        assert_eq!(sa.mean_dwell_ticks, sb.mean_dwell_ticks);
        assert_eq!(sa.lag1_autocorr, sb.lag1_autocorr);
    }

    #[test]
    fn episode_mode_is_time_correlated_iid_is_not() {
        let iid = small_fleet().run();
        assert!(iid.episodes.is_none(), "i.i.d. runs carry no episode stats");
        let ep = small_episode_fleet().run();
        let stats = ep.episodes.expect("episode stats present");
        assert!(
            stats.lag1_autocorr > 0.3,
            "episodes not time-correlated: r1 = {}",
            stats.lag1_autocorr
        );
        // The i.i.d. stream, measured the same way, sits near zero.
        let mut num = 0.0;
        let mut den = 0.0;
        for chunk in iid.samples.chunks(500) {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            den += chunk.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>();
            num += chunk
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>();
        }
        let r1_iid = num / den;
        assert!(r1_iid.abs() < 0.05, "i.i.d. autocorrelation {r1_iid}");
        assert!(stats.lag1_autocorr > r1_iid + 0.25);
    }

    #[test]
    fn zero_variance_autocorr_is_zero_not_nan() {
        // Regression for the documented `EpisodeStats::lag1_autocorr`
        // contract: a zero pooled denominator — constant per-node
        // streams, streams shorter than two samples, or no nodes at
        // all — yields exactly 0.0, never NaN (calibration feeds this
        // field into error terms and must stay finite).
        let mix = JobMix::taurus_haswell();
        let model = EpisodeModel::taurus_haswell(&mix);
        let n = model.n_states();
        let acct = |ticks: u64| -> NodeAccounting { (vec![ticks; n], vec![1; n]) };
        // Constant streams: positive length, zero variance.
        let stats = aggregate_episode_stats(
            &model,
            &[acct(5), acct(5)],
            &[vec![120.0; 5], vec![80.5; 5]],
        );
        assert_eq!(stats.lag1_autocorr, 0.0);
        assert!(!stats.lag1_autocorr.is_nan());
        // Streams too short for a lag-1 pair.
        let stats = aggregate_episode_stats(&model, &[acct(1)], &[vec![97.0]]);
        assert_eq!(stats.lag1_autocorr, 0.0);
        // Empty fleet: no nodes, no ticks, shares all zero.
        let stats = aggregate_episode_stats(&model, &[], &[]);
        assert_eq!(stats.lag1_autocorr, 0.0);
        assert!(stats.empirical_shares.iter().all(|&s| s == 0.0));
        // A varying stream still measures nonzero correlation (the
        // guard must not clamp legitimate statistics to zero).
        let ramp: Vec<f64> = (0..64).map(|i| 50.0 + f64::from(i)).collect();
        let stats = aggregate_episode_stats(&model, &[acct(64)], &[ramp]);
        assert!(stats.lag1_autocorr > 0.8);
    }

    #[test]
    fn episode_stationary_tracks_model_shares() {
        let run = small_episode_fleet().run();
        let stats = run.episodes.unwrap();
        assert_eq!(stats.states[0], "floor");
        assert!((stats.empirical_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (i, (&got, &want)) in stats
            .empirical_shares
            .iter()
            .zip(&stats.model_shares)
            .enumerate()
        {
            assert!(
                (got - want).abs() < 0.05,
                "state {i}: empirical {got} vs model {want}"
            );
        }
    }

    #[test]
    fn restructured_run_reproduces_pre_budget_streams() {
        // Golden bit patterns captured from the pre-restructure
        // (independent per-node streams) generator: the three-phase
        // pass without a budget must reproduce them byte for byte.
        let golden_iid: &[(usize, u64)] = &[
            (0, 0x405526E41CAD1777),
            (1, 0x4055D8E7012860E9),
            (2, 0x4071A34942E8597B),
            (99, 0x4064A3BB333C277E),
            (100, 0x4070D0229EDDF40F),
            (399, 0x40649B9C33875320),
            (400, 0x407663A3160EC8BE),
            (799, 0x4056EF96D9D21AC2),
        ];
        let golden_ep: &[(usize, u64)] = &[
            (0, 0x405692472853DB3B),
            (1, 0x405692472853DB3B),
            (99, 0x4054B33333333333),
            (100, 0x405C94D884529681),
            (399, 0x4060E750EBC4F7BE),
            (400, 0x405B564B57C70C39),
            (799, 0x406A0C383723A280),
        ];
        for (mode, golden, sum_bits) in [
            (TemporalMode::Iid, golden_iid, 0x40FDE54A0DD66BD7u64),
            (TemporalMode::Episodes, golden_ep, 0x40FDBE5E1099D13Au64),
        ] {
            let s = FleetSim::new(FleetConfig {
                samples_per_node: 100,
                temporal: mode,
                ..FleetConfig::taurus_haswell_scaled(8)
            })
            .generate();
            for &(i, bits) in golden {
                assert_eq!(
                    s[i].to_bits(),
                    bits,
                    "{mode:?} sample {i} drifted from the pre-budget stream"
                );
            }
            let sum: f64 = s.iter().sum();
            assert_eq!(sum.to_bits(), sum_bits, "{mode:?} stream sum drifted");
        }
    }

    /// Per-tick fleet sums of a uniform-horizon run (samples are
    /// node-major: node `n`'s tick `t` sits at `n * spn + t`).
    fn tick_sums(samples: &[f64], spn: usize) -> Vec<f64> {
        let nodes = samples.len() / spn;
        (0..spn)
            .map(|t| (0..nodes).map(|n| samples[n * spn + t]).sum())
            .collect()
    }

    #[test]
    fn budget_caps_the_fleet_sum_every_tick() {
        let spn = 300usize;
        let base_cfg = FleetConfig {
            samples_per_node: spn as u32,
            temporal: TemporalMode::Episodes,
            ..FleetConfig::taurus_haswell_scaled(16)
        };
        let unbudgeted = FleetSim::new(base_cfg.clone()).run();
        assert!(unbudgeted.budget.is_none());
        // A budget below the unconstrained peak but well above the
        // idle-floor sum (~16 x 83 W), so it binds and is feasible.
        let budget_w = 2000.0;
        let unconstrained_peak = tick_sums(&unbudgeted.samples, spn)
            .into_iter()
            .fold(0.0, f64::max);
        assert!(unconstrained_peak > budget_w, "budget would not bind");
        for policy in [BudgetPolicy::ShedToFloor, BudgetPolicy::Defer] {
            let run = FleetSim::new(FleetConfig {
                budget_w: Some(budget_w),
                budget_policy: policy,
                ..base_cfg.clone()
            })
            .run();
            let stats = run.budget.as_ref().expect("budget stats present");
            assert_eq!(stats.infeasible_floor_ticks, 0);
            for (t, sum) in tick_sums(&run.samples, spn).into_iter().enumerate() {
                assert!(
                    sum <= budget_w + 1e-9,
                    "{policy:?} tick {t}: fleet draw {sum} exceeds {budget_w}"
                );
            }
            // The arbiter's own accounting matches the emitted stream.
            assert_eq!(stats.ticks, spn);
            assert!(stats.peak_fleet_w <= budget_w + 1e-9);
            assert!(stats.peak_fleet_w > budget_w * 0.9, "budget never filled");
            assert!(stats.mean_fleet_w < stats.peak_fleet_w);
            assert!((stats.utilization.max_w - stats.peak_fleet_w / budget_w).abs() < 0.005);
            let denied: u64 = match policy {
                BudgetPolicy::ShedToFloor => stats.shed_ticks.iter().sum(),
                BudgetPolicy::Defer => stats.deferred_ticks.iter().sum(),
            };
            assert!(denied > 0, "{policy:?}: a binding budget must deny ticks");
            // Floor proposals are never denied.
            assert_eq!(stats.shed_ticks[0], 0);
            assert_eq!(stats.deferred_ticks[0], 0);
        }
    }

    #[test]
    fn budget_applies_to_the_iid_sampler_too() {
        let spn = 200usize;
        let budget_w = 1800.0;
        let run = FleetSim::new(FleetConfig {
            samples_per_node: spn as u32,
            budget_w: Some(budget_w),
            ..FleetConfig::taurus_haswell_scaled(16)
        })
        .run();
        let stats = run.budget.as_ref().expect("budget stats");
        assert!(stats.shed_ticks.iter().sum::<u64>() > 0);
        for (t, sum) in tick_sums(&run.samples, spn).into_iter().enumerate() {
            assert!(sum <= budget_w + 1e-9, "tick {t}: {sum} over budget");
        }
    }

    #[test]
    fn budgeted_runs_are_thread_count_invariant() {
        for (temporal, policy) in [
            (TemporalMode::Iid, BudgetPolicy::ShedToFloor),
            (TemporalMode::Episodes, BudgetPolicy::ShedToFloor),
            (TemporalMode::Episodes, BudgetPolicy::Defer),
        ] {
            let cfg = FleetConfig {
                samples_per_node: 250,
                temporal,
                budget_w: Some(2000.0),
                budget_policy: policy,
                ..FleetConfig::taurus_haswell_scaled(16)
            };
            let mut serial_cfg = cfg.clone();
            serial_cfg.threads = 1;
            let mut parallel_cfg = cfg;
            parallel_cfg.threads = 4;
            let a = FleetSim::new(serial_cfg).run();
            let b = FleetSim::new(parallel_cfg).run();
            assert_eq!(a.samples, b.samples, "{temporal:?}/{policy:?} diverged");
            let (sa, sb) = (a.budget.unwrap(), b.budget.unwrap());
            assert_eq!(sa.shed_ticks, sb.shed_ticks);
            assert_eq!(sa.deferred_ticks, sb.deferred_ticks);
            assert_eq!(sa.peak_fleet_w.to_bits(), sb.peak_fleet_w.to_bits());
            assert_eq!(a.capped_samples, b.capped_samples);
        }
    }

    #[test]
    fn shed_loses_work_defer_delays_it() {
        let cfg = FleetConfig {
            samples_per_node: 400,
            temporal: TemporalMode::Episodes,
            budget_w: Some(1900.0),
            ..FleetConfig::taurus_haswell_scaled(16)
        };
        let shed = FleetSim::new(FleetConfig {
            budget_policy: BudgetPolicy::ShedToFloor,
            ..cfg.clone()
        })
        .run();
        let defer = FleetSim::new(FleetConfig {
            budget_policy: BudgetPolicy::Defer,
            ..cfg
        })
        .run();
        let (ss, ds) = (shed.budget.unwrap(), defer.budget.unwrap());
        // Shed never defers or truncates; defer never sheds.
        assert!(ss.shed_ticks.iter().sum::<u64>() > 0);
        assert_eq!(ss.deferred_ticks.iter().sum::<u64>(), 0);
        assert_eq!(ss.truncated_proposals, 0);
        assert_eq!(ds.shed_ticks.iter().sum::<u64>(), 0);
        assert!(ds.deferred_ticks.iter().sum::<u64>() > 0);
        // The two policies genuinely produce different streams.
        assert_ne!(shed.samples, defer.samples);
    }

    #[test]
    fn capped_samples_counts_per_sample_and_is_thread_invariant() {
        // Regression: `capped_points` counts static remap-table cells
        // (the CLI's per-sample claim was wrong); `capped_samples` is
        // the per-sample count, accumulated in node input order.
        for temporal in [TemporalMode::Iid, TemporalMode::Episodes] {
            let cfg = FleetConfig {
                samples_per_node: 400,
                temporal,
                power_cap_w: Some(300.0),
                ..FleetConfig::taurus_haswell_scaled(16)
            };
            let mut serial_cfg = cfg.clone();
            serial_cfg.threads = 1;
            let mut parallel_cfg = cfg.clone();
            parallel_cfg.threads = 4;
            let a = FleetSim::new(serial_cfg).run();
            let b = FleetSim::new(parallel_cfg).run();
            assert_eq!(
                a.capped_samples, b.capped_samples,
                "{temporal:?}: capped_samples depends on thread count"
            );
            assert!(a.capped_samples > 0, "{temporal:?}: cap clamped nothing");
            // The static table count is far smaller than the drawn
            // total and unchanged between the two runs.
            assert_eq!(a.capped_points, b.capped_points);
            assert!(a.capped_points > 0);
            assert!(a.capped_points < 50, "table cells, not samples");
            assert!(a.capped_samples > a.capped_points);
            // Uncapped runs report zero on both counters.
            let uncapped = FleetSim::new(FleetConfig {
                power_cap_w: None,
                ..cfg
            })
            .run();
            assert_eq!(uncapped.capped_points, 0);
            assert_eq!(uncapped.capped_samples, 0);
        }
    }

    #[test]
    fn infeasible_cap_is_surfaced_not_silent() {
        // Regression: a cap below every operating point of a class used
        // to fall back to the lowest-power P-state with no signal. A
        // 150 W cap is under the whole "peak" class (and more).
        let mut cfg = small_fleet().config;
        cfg.power_cap_w = Some(150.0);
        let run = FleetSim::new(cfg).run();
        assert!(
            run.infeasible_points > 0,
            "cap below a whole class must surface infeasible points"
        );
        // 150 W is under every operating point: every drawable cell is
        // infeasible (one per evaluated (SKU, class, P-state)).
        let drawable = run.power_table.len();
        assert_eq!(run.infeasible_points, drawable);
        // A 300 W cap remaps the multi-P-state classes, but the
        // single-P-state "peak" class (and the flat "high" rows) has no
        // admissible point — both counters must be nonzero at once.
        let mut mid_cfg = small_fleet().config;
        mid_cfg.power_cap_w = Some(300.0);
        let mid = FleetSim::new(mid_cfg).run();
        assert!(mid.capped_points > 0);
        assert!(mid.infeasible_points > 0);
        assert!(mid.infeasible_points < drawable);
        // A cap above every operating point touches nothing.
        let mut ok_cfg = small_fleet().config;
        ok_cfg.power_cap_w = Some(400.0);
        let ok = FleetSim::new(ok_cfg).run();
        assert_eq!(ok.capped_points, 0);
        assert_eq!(ok.infeasible_points, 0);
        // No cap: no accounting at all.
        assert_eq!(small_fleet().run().infeasible_points, 0);
    }

    #[test]
    fn power_cap_clamps_operating_points() {
        let uncapped = small_episode_fleet().run();
        assert_eq!(uncapped.capped_points, 0);
        let mut capped_cfg = small_episode_fleet().config;
        capped_cfg.power_cap_w = Some(300.0);
        let capped = FleetSim::new(capped_cfg).run();
        assert!(capped.capped_points > 0, "a 300 W cap must remap points");
        // Same RNG streams: sample-for-sample the capped run is never
        // hotter, and strictly cooler somewhere.
        assert_eq!(capped.samples.len(), uncapped.samples.len());
        let mut lowered = 0usize;
        for (c, u) in capped.samples.iter().zip(&uncapped.samples) {
            assert!(c <= &(u + 1e-9), "cap raised a sample: {c} > {u}");
            if c + 1e-9 < *u {
                lowered += 1;
            }
        }
        assert!(lowered > 0, "cap lowered nothing");
        // The cap also applies to the i.i.d. sampler.
        let mut iid_cfg = small_fleet().config;
        iid_cfg.power_cap_w = Some(300.0);
        let iid_capped = FleetSim::new(iid_cfg).run();
        assert!(iid_capped.capped_points > 0);
    }

    #[test]
    fn every_sample_traces_to_the_engine_registry() {
        let run = small_fleet().run();
        let s = run.registry;
        // One engine per distinct SKU; one payload per (SKU, class).
        assert_eq!(s.engines, 2);
        assert_eq!(s.payload_misses, 10);
        assert_eq!(s.payload_entries, 10);
        // The five class specs parse once, registry-wide.
        assert_eq!(s.spec_misses, 5);
        assert!(s.spec_hits >= 5, "second SKU must reuse parses");
        // Every operating point is one engine eval — no sample power
        // arrives outside the engine pipeline.
        assert_eq!(s.evals as usize, run.power_table.len());
        // The power table holds every evaluated operating point, and
        // every sample lies between the idle floor and the cap.
        assert!(!run.power_table.is_empty());
        for row in &run.power_table {
            assert!(row.watts > 80.0 && row.watts < 400.0, "{row:?}");
        }
        assert_eq!(run.samples.len(), small_fleet().config.total_samples());
        for &p in &run.samples {
            assert!((50.0..=359.9).contains(&p), "sample {p} out of range");
        }
    }

    #[test]
    fn heterogeneous_skus_differ_in_power() {
        // The two SKU slices must not produce identical operating
        // points — heterogeneity has to be visible in the table.
        let run = small_fleet().run();
        let of = |sku: &str| -> Vec<f64> {
            run.power_table
                .iter()
                .filter(|r| r.sku == sku)
                .map(|r| r.watts)
                .collect()
        };
        let a = of("Intel Xeon E5-2680 v3 (2S)");
        let b = of("Intel Xeon E5-2695 v3 (2S)");
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = FleetConfig {
            samples_per_node: 100,
            ..FleetConfig::taurus_haswell_scaled(8)
        };
        let a = FleetSim::new(cfg.clone()).generate();
        cfg.seed = 123;
        let b = FleetSim::new(cfg.clone()).generate();
        assert_ne!(a, b);
        // And the two temporal modes draw from distinct streams.
        cfg.seed = 0xF1EE7;
        cfg.temporal = TemporalMode::Episodes;
        let c = FleetSim::new(cfg).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn per_group_sample_overrides_are_respected() {
        let mut cfg = FleetConfig {
            samples_per_node: 50,
            threads: 3,
            ..FleetConfig::taurus_haswell_scaled(9)
        };
        // Long-tailed fleet: the fat-node slice is sampled 10x longer.
        cfg.groups[1].samples_per_node = Some(500);
        let sim = FleetSim::new(cfg.clone());
        assert_eq!(
            sim.config.total_samples(),
            8 * 50 + 500 // 8 thin nodes + 1 fat node
        );
        let run = sim.run();
        assert_eq!(run.samples.len(), sim.config.total_samples());
        // Still bitwise-identical to serial despite the hint reorder.
        let mut serial_cfg = cfg;
        serial_cfg.threads = 1;
        assert_eq!(run.samples, FleetSim::new(serial_cfg).generate());
    }

    #[test]
    fn fraction_at_extremes() {
        let cdf = PowerCdf::from_samples(&[100.0, 200.0, 300.0], 0.1);
        assert_eq!(cdf.fraction_at(1000.0), 1.0);
        assert!(cdf.fraction_at(100.05) > 0.3);
    }

    #[test]
    fn fraction_at_below_min_is_zero() {
        // Regression: queries below the first bin used to return the
        // first bin's cumulative mass (~0.33 here) instead of 0.
        let cdf = PowerCdf::from_samples(&[100.0, 200.0, 300.0], 0.1);
        assert_eq!(cdf.fraction_at(0.0), 0.0);
        assert_eq!(cdf.fraction_at(99.9), 0.0);
        assert_eq!(cdf.fraction_at(-5.0), 0.0);
        // At or above the minimum, mass appears.
        assert!(cdf.fraction_at(100.0) > 0.3);
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        // Regression: q outside [0, 1] used to assert-panic.
        let cdf = PowerCdf::from_samples(&[100.0, 200.0, 300.0], 0.1);
        assert_eq!(cdf.quantile(0.0), 100.0);
        assert_eq!(cdf.quantile(-3.0), 100.0);
        let top = cdf.quantile(1.0);
        assert!(top <= 300.0 && top > 299.0, "q=1 -> {top}");
        assert_eq!(cdf.quantile(7.5), top);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert!(cdf.quantile(q).is_finite());
        }
    }

    #[test]
    fn quantile_round_trips_through_fraction_at() {
        // Regression: with upper-edge quantiles,
        // quantile(fraction_at(x)) could exceed x by up to one bin.
        let cdf = PowerCdf::from_samples(&[100.0, 100.04, 200.0, 300.0], 0.1);
        for x in [100.0, 100.05, 150.0, 200.0, 299.95, 300.0, 350.0] {
            let q = cdf.quantile(cdf.fraction_at(x));
            assert!(q <= x + 1e-9, "round trip rose: x {x} -> {q}");
        }
    }

    #[test]
    fn empty_cdf_never_panics_or_returns_nan() {
        // Regression: an empty sample set used to assert-panic in
        // from_samples.
        let cdf = PowerCdf::from_samples(&[], 0.1);
        assert_eq!(cdf.samples, 0);
        assert_eq!(cdf.fraction_at(100.0), 0.0);
        assert_eq!(cdf.fraction_at(-1.0), 0.0);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            let v = cdf.quantile(q);
            assert!(v.is_finite() && !v.is_nan());
        }
    }

    fn bits(samples: &[f64]) -> Vec<u64> {
        samples.iter().map(|w| w.to_bits()).collect()
    }

    fn assert_runs_identical(reference: &FleetRun, run: &FleetRun, label: &str) {
        assert_eq!(
            bits(&reference.samples),
            bits(&run.samples),
            "{label}: sample bytes diverged"
        );
        assert_eq!(
            reference.capped_samples, run.capped_samples,
            "{label}: capped_samples diverged"
        );
        assert_eq!(
            reference.capped_points, run.capped_points,
            "{label}: capped_points diverged"
        );
        assert_eq!(
            reference.infeasible_points, run.infeasible_points,
            "{label}: infeasible_points diverged"
        );
        assert_eq!(
            reference.power_table.len(),
            run.power_table.len(),
            "{label}: power table rows diverged"
        );
        for (a, b) in reference.power_table.iter().zip(&run.power_table) {
            assert_eq!(a.sku, b.sku, "{label}: power table SKU order");
            assert_eq!(a.class, b.class, "{label}: power table class order");
            assert_eq!(a.freq_mhz, b.freq_mhz, "{label}: power table P-state order");
            assert_eq!(
                a.applied_mhz.to_bits(),
                b.applied_mhz.to_bits(),
                "{label}: applied frequency bits"
            );
            assert_eq!(a.watts.to_bits(), b.watts.to_bits(), "{label}: watt bits");
        }
    }

    #[test]
    fn batched_run_matches_per_node_reference_bitwise() {
        // The tentpole's golden-bits contract: the batched composer
        // (group-deduplicated `eval_groups` table build + flattened
        // lockstep sampler) reproduces the per-node serial path
        // byte-for-byte at any thread count.
        let cfg = FleetConfig {
            samples_per_node: 300,
            threads: 1,
            ..FleetConfig::taurus_haswell_scaled(12)
        };
        let sim = FleetSim::new(cfg.clone());
        let reference = sim.run_reference();
        let registry = EngineRegistry::with_seed(cfg.seed);
        let serial = sim.run_with(&registry);
        assert_runs_identical(&reference, &serial, "batched serial");
        let parallel = FleetSim::new(FleetConfig {
            threads: 4,
            ..cfg.clone()
        })
        .run_with(&registry);
        assert_runs_identical(&reference, &parallel, "batched 4-thread");
        // Default entry point takes the batched path too.
        let via_run = sim.run();
        assert_runs_identical(&reference, &via_run, "run()");
    }

    #[test]
    fn batched_grouping_order_is_immaterial() {
        // Interleaved duplicate-SKU groups with unequal per-group
        // sample counts: eval_groups buckets and deduplicates the
        // (SKU, spec, P-state) requests in a different order than the
        // per-group reference iteration, and the odd node count plus
        // long-tail groups leave unequal tails for the lockstep
        // sampler. Bytes must not care.
        let thin = fs2_arch::Sku::intel_xeon_e5_2680_v3();
        let fat = fs2_arch::Sku::intel_xeon_e5_2695_v3();
        let cfg = FleetConfig {
            groups: vec![
                NodeGroup {
                    sku: thin.clone(),
                    nodes: 3,
                    samples_per_node: None,
                },
                NodeGroup {
                    sku: fat.clone(),
                    nodes: 2,
                    samples_per_node: Some(701),
                },
                NodeGroup {
                    sku: thin.clone(),
                    nodes: 5,
                    samples_per_node: Some(157),
                },
                NodeGroup {
                    sku: fat.clone(),
                    nodes: 1,
                    samples_per_node: None,
                },
            ],
            samples_per_node: 250,
            threads: 1,
            power_cap_w: Some(250.0),
            ..FleetConfig::taurus_haswell_scaled(2)
        };
        let sim = FleetSim::new(cfg.clone());
        let reference = sim.run_reference();
        assert!(
            reference.capped_samples > 0,
            "power cap should bite so the remap lanes are exercised"
        );
        let batched = sim.run();
        assert_runs_identical(&reference, &batched, "interleaved groups");
        let parallel = FleetSim::new(FleetConfig { threads: 4, ..cfg }).run();
        assert_runs_identical(&reference, &parallel, "interleaved groups, 4 threads");
    }

    #[test]
    fn budgeted_batched_composer_matches_reference_bitwise() {
        // With a fleet budget the batched Iid path keeps per-node
        // streams and state labels for the arbiter instead of the
        // direct-fill fast path; the draws are the same either way.
        let cfg = FleetConfig {
            samples_per_node: 400,
            threads: 1,
            budget_w: Some(64.0 * 180.0),
            ..FleetConfig::taurus_haswell_scaled(64)
        };
        let sim = FleetSim::new(cfg);
        let reference = sim.run_reference();
        let run = sim.run();
        let budget = reference.budget.as_ref().expect("budget stats");
        let arbitrated: u64 = budget.shed_ticks.iter().sum::<u64>()
            + budget.deferred_ticks.iter().sum::<u64>()
            + budget.truncated_proposals;
        assert!(
            arbitrated > 0,
            "budget should bite so arbitration is exercised"
        );
        assert_runs_identical(&reference, &run, "budgeted batched");
    }

    #[test]
    fn shared_registry_reuse_hits_caches_across_fleet_runs() {
        // The registry-wide cache tier: a second fleet run against the
        // same registry rebuilds its power table entirely from shared
        // payload/decode/ExecStats caches — and still produces the
        // same bytes.
        let sim = small_fleet();
        let registry = EngineRegistry::with_seed(sim.config.seed);
        let first = sim.run_with(&registry);
        assert_eq!(first.registry.payload_hits, 0, "cold registry");
        assert!(first.registry.payload_misses > 0);
        assert!(first.registry.exec_misses > 0);
        let second = sim.run_with(&registry);
        assert_eq!(bits(&first.samples), bits(&second.samples));
        assert!(
            second.registry.payload_hits >= first.registry.payload_misses,
            "second run should re-serve every payload from the shared cache: {:?}",
            second.registry
        );
        assert!(
            second.registry.exec_hits >= first.registry.exec_misses,
            "second run should re-serve every functional pass: {:?}",
            second.registry
        );
        assert_eq!(
            second.registry.payload_misses, first.registry.payload_misses,
            "no new payload builds on the warm run"
        );
        assert_eq!(
            second.registry.exec_misses, first.registry.exec_misses,
            "no new functional passes on the warm run"
        );
    }

    #[test]
    fn collapsed_pick_chain_matches_reference_scan() {
        // Exhaustive cross-check of the threshold collapse against the
        // reference subtract/compare chain on many draws and several
        // weight sets, including awkward ones (tiny trailing weights,
        // sums above/below 1, rounding-hostile magnitudes).
        let weight_sets: &[&[f64]] = &[
            &[0.30, 0.25, 0.22, 0.20, 0.03],
            &[0.1, 0.1, 0.1],
            &[1e-3, 0.9, 1e-9],
            &[0.7, 0.1 + 1e-16, 0.2],
            &[0.2; 7],
            &[f64::MIN_POSITIVE, 0.5, f64::MIN_POSITIVE],
        ];
        for (si, weights) in weight_sets.iter().enumerate() {
            let total: f64 = weights.iter().sum();
            let thresholds = collapse_pick_chain(weights, total);
            assert!(
                thresholds.windows(2).all(|w| w[0] <= w[1]),
                "set {si}: thresholds not sorted: {thresholds:?}"
            );
            let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ si as u64);
            for _ in 0..20_000 {
                let x = rng.gen_unit() * total;
                // Reference `pick_weighted` chain.
                let mut rx = x;
                let mut expected = weights.len();
                for (j, &w) in weights.iter().enumerate() {
                    if rx < w {
                        expected = j;
                        break;
                    }
                    rx -= w;
                }
                let counted = thresholds.iter().filter(|&&t| x >= t).count();
                assert_eq!(
                    counted.min(weights.len()),
                    expected.min(weights.len()),
                    "set {si}, draw {x:e}: collapse diverged from the chain"
                );
            }
        }
    }

    #[test]
    fn shard_ranges_tile_the_node_range() {
        for &(total, shards) in &[
            (64u32, 1usize),
            (64, 2),
            (64, 7),
            (64, 64),
            (64, 100),
            (5, 3),
            (1, 8),
            (0, 4),
        ] {
            let ranges = shard_ranges(total, shards);
            let mut expected = 0u32;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, expected, "{total} nodes / {shards} shards: gap");
                assert!(hi >= lo);
                expected = hi;
            }
            assert_eq!(expected, total, "{total} nodes / {shards} shards: cover");
            if total > 0 {
                assert!(ranges.iter().all(|&(lo, hi)| hi > lo), "empty shard");
                let sizes: Vec<u32> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced split: {sizes:?}");
            }
        }
    }

    fn assert_optional_stats_identical(a: &FleetRun, b: &FleetRun, label: &str) {
        match (&a.episodes, &b.episodes) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.states, y.states, "{label}: episode states");
                assert_eq!(
                    bits(&x.empirical_shares),
                    bits(&y.empirical_shares),
                    "{label}: empirical shares"
                );
                assert_eq!(
                    bits(&x.mean_dwell_ticks),
                    bits(&y.mean_dwell_ticks),
                    "{label}: mean dwells"
                );
                assert_eq!(
                    x.lag1_autocorr.to_bits(),
                    y.lag1_autocorr.to_bits(),
                    "{label}: lag-1 autocorrelation"
                );
            }
            _ => panic!("{label}: episode stats presence diverged"),
        }
        match (&a.budget, &b.budget) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.ticks, y.ticks, "{label}: arbitrated ticks");
                assert_eq!(
                    x.peak_fleet_w.to_bits(),
                    y.peak_fleet_w.to_bits(),
                    "{label}: peak draw"
                );
                assert_eq!(
                    x.mean_fleet_w.to_bits(),
                    y.mean_fleet_w.to_bits(),
                    "{label}: mean draw"
                );
                assert_eq!(x.shed_ticks, y.shed_ticks, "{label}: shed ticks");
                assert_eq!(x.deferred_ticks, y.deferred_ticks, "{label}: deferrals");
                assert_eq!(
                    x.truncated_proposals, y.truncated_proposals,
                    "{label}: truncations"
                );
            }
            _ => panic!("{label}: budget stats presence diverged"),
        }
    }

    #[test]
    fn sharded_run_is_bitwise_identical_for_any_split() {
        // The scheduler/shard layer's contract: every split of the
        // node range merges back to the bytes of the unsharded run —
        // samples, CDF, episode stats, and budget stats — because each
        // node's walk is a pure function of `(seed, node_id)`.
        let configs: Vec<(&str, FleetConfig)> = vec![
            (
                "iid fast path",
                FleetConfig {
                    samples_per_node: 300,
                    ..FleetConfig::taurus_haswell_scaled(63)
                },
            ),
            (
                "episodes",
                FleetConfig {
                    samples_per_node: 300,
                    temporal: TemporalMode::Episodes,
                    ..FleetConfig::taurus_haswell_scaled(63)
                },
            ),
            (
                "budgeted iid + cap",
                FleetConfig {
                    samples_per_node: 200,
                    budget_w: Some(63.0 * 180.0),
                    power_cap_w: Some(250.0),
                    ..FleetConfig::taurus_haswell_scaled(63)
                },
            ),
        ];
        for (label, cfg) in configs {
            let sim = FleetSim::new(cfg.clone());
            let reference = sim.run();
            let ref_cdf = PowerCdf::from_samples(&reference.samples, 0.1);
            for shards in [1usize, 2, 7, 64] {
                let registry = EngineRegistry::with_seed(cfg.seed);
                let sharded = sim.run_sharded(&registry, shards);
                let tag = format!("{label}, {shards} shards");
                assert_runs_identical(&reference, &sharded, &tag);
                assert_optional_stats_identical(&reference, &sharded, &tag);
                let cdf = PowerCdf::from_samples(&sharded.samples, 0.1);
                assert_eq!(ref_cdf.bins, cdf.bins, "{tag}: CDF bins diverged");
            }
        }
    }

    #[test]
    fn uneven_hand_built_shards_merge_identically() {
        // merge_shards accepts any tiling in any order; deliberately
        // lopsided out-of-order ranges must still reassemble the
        // serial bytes.
        let sim = small_episode_fleet();
        let reference = sim.run();
        let registry = EngineRegistry::with_seed(sim.config.seed);
        let plan = sim.plan(&registry);
        let ranges = [(13u32, 64u32), (0, 1), (1, 13)];
        let shards: Vec<FleetShard> = ranges
            .iter()
            .map(|&(lo, hi)| sim.run_shard(&plan, lo, hi))
            .collect();
        let merged = sim.merge_shards(&registry, &plan, shards);
        assert_runs_identical(&reference, &merged, "uneven shards");
        assert_optional_stats_identical(&reference, &merged, "uneven shards");
    }

    #[test]
    #[should_panic(expected = "do not tile")]
    fn merge_rejects_gapped_shards() {
        let sim = small_fleet();
        let registry = EngineRegistry::with_seed(sim.config.seed);
        let plan = sim.plan(&registry);
        let shards = vec![sim.run_shard(&plan, 0, 10), sim.run_shard(&plan, 20, 64)];
        sim.merge_shards(&registry, &plan, shards);
    }

    #[test]
    fn total_samples_overflow_is_an_error_not_a_wrap() {
        // A service request for u32::MAX nodes × u32::MAX samples each
        // exceeds usize::MAX on every target; try_total_samples must
        // surface that instead of wrapping (the admission layer turns
        // it into a reject).
        let cfg = FleetConfig {
            groups: vec![
                NodeGroup {
                    sku: fs2_arch::Sku::intel_xeon_e5_2680_v3(),
                    nodes: u32::MAX,
                    samples_per_node: Some(u32::MAX),
                },
                NodeGroup {
                    sku: fs2_arch::Sku::intel_xeon_e5_2695_v3(),
                    nodes: u32::MAX,
                    samples_per_node: Some(u32::MAX),
                },
            ],
            ..FleetConfig::taurus_haswell_scaled(1)
        };
        let err = cfg.try_total_samples().expect_err("must overflow");
        assert_eq!(err.total, 2 * (u128::from(u32::MAX) * u128::from(u32::MAX)));
        assert!(err.to_string().contains("more than usize::MAX"));
        // Sane configs round-trip through the checked path.
        let ok = FleetConfig::taurus_haswell_scaled(612);
        assert_eq!(ok.try_total_samples().unwrap(), ok.total_samples());
    }
}
