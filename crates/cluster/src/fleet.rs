//! Fleet simulation and the Fig. 1 CDF pipeline.
//!
//! A [`FleetSim`] owns a heterogeneous set of nodes (mixable SKUs) and
//! drives one real `fs2_core::Engine` per SKU through an
//! [`EngineRegistry`]. Per 60 s sample, a node draws a job class from
//! the [`JobMix`], a duty cycle and a P-state, and its mean power is
//! composed from engine-evaluated payload power and the node's idle
//! floor — the workload-cloning pipeline, not distribution fitting.
//!
//! Two temporal modes share those operating points
//! ([`TemporalMode`]): the historical i.i.d. per-node-minute sampler
//! (the byte-stable Fig. 1 default) and the Markov episode model of
//! [`crate::episodes`], which adds dwell times, ramps and hand-backs
//! to the idle floor — the time correlation real traces show.
//!
//! Generation is a tick-synchronous three-phase pass: (1) **propose** —
//! every node draws its full tick stream from its own `(seed, node_id)`
//! RNG stream, fanned out over [`fs2_core::Engine::sweep_hinted`] with
//! per-node size hints; (2) **arbitrate** — when
//! [`FleetConfig::budget_w`] is set, a serial node-id-ordered fold
//! ([`crate::budget`]) admits proposals against the remaining fleet
//! budget per 60 s tick and sheds or defers the rest; (3) **apply** —
//! decisions become samples in parallel. Every phase is deterministic,
//! so the result is bitwise-identical for any thread count, and runs
//! without a budget reproduce the historical sample streams byte for
//! byte.

use crate::budget::{arbitrate, Arbitration, BudgetPolicy, Decision, NodeStream};
use crate::episodes::{EpisodeModel, EpisodeWalk};
use crate::jobs::JobMix;
use fs2_core::{EngineRegistry, RegistryStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One homogeneous slice of the fleet.
#[derive(Debug, Clone)]
pub struct NodeGroup {
    pub sku: fs2_arch::Sku,
    pub nodes: u32,
    /// Overrides [`FleetConfig::samples_per_node`] for this group
    /// (e.g. a slice monitored at a higher rate) — this is what makes
    /// per-node size hints matter to the sweep packing.
    pub samples_per_node: Option<u32>,
}

/// How consecutive 60 s samples of one node relate to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TemporalMode {
    /// Independent draws per node-minute (the original Fig. 1
    /// pipeline; the default, byte-stable across releases).
    #[default]
    Iid,
    /// Markov job episodes over the same operating points: geometric
    /// dwell times, ramp-in profiles, explicit idle-floor hand-backs
    /// (see [`FleetConfig::episodes`]).
    Episodes,
}

/// Fleet parameters (Fig. 1: 612 nodes, one year, 60 s means).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Heterogeneous node groups; engines are shared per SKU.
    pub groups: Vec<NodeGroup>,
    /// 60 s-mean samples generated per node (a full year would be
    /// 525 600; the CDF converges far earlier).
    pub samples_per_node: u32,
    pub mix: JobMix,
    /// Temporal structure of each node's sample stream.
    pub temporal: TemporalMode,
    /// The episode model used when `temporal` is
    /// [`TemporalMode::Episodes`]; ignored in i.i.d. mode.
    pub episodes: EpisodeModel,
    pub seed: u64,
    /// Sweep worker threads; 0 = host parallelism, 1 = serial. The
    /// samples are identical either way.
    pub threads: usize,
    /// Facility-side clamp, W (the paper's observed 359.9 W maximum).
    pub cap_w: f64,
    /// What-if power cap, W: a drawn P-state whose engine-evaluated
    /// operating point exceeds the cap is clamped to the class's
    /// highest admissible P-state (the fastest one still under the
    /// cap). Classes with no admissible P-state keep their
    /// lowest-power one (the facility clamp still applies; such
    /// still-over-cap points are reported via
    /// [`FleetRun::infeasible_points`]). `None` disables capping and
    /// leaves the sampler byte-stable.
    pub power_cap_w: Option<f64>,
    /// Fleet-wide power budget per 60 s tick, W: node draws are
    /// admitted in node-id order until the tick's fleet sum would
    /// exceed this, and the rest are resolved via `budget_policy`.
    /// Idle floors are unconditional, so a budget below the sum of the
    /// active floors is infeasible (counted, not hidden). `None`
    /// disables arbitration and keeps both samplers byte-stable.
    pub budget_w: Option<f64>,
    /// How the arbiter resolves denied proposals (ignored without
    /// `budget_w`).
    pub budget_policy: BudgetPolicy,
}

impl FleetConfig {
    /// The 612-node Taurus Haswell partition: mostly 12-core
    /// E5-2680 v3 nodes with a 14-core E5-2695 v3 slice mixed in.
    pub fn taurus_haswell() -> FleetConfig {
        FleetConfig::taurus_haswell_scaled(612)
    }

    /// A Taurus profile scaled to `nodes` total nodes, keeping the
    /// SKU ratio (~7:1) and at least one node per group.
    pub fn taurus_haswell_scaled(nodes: u32) -> FleetConfig {
        assert!(nodes > 0, "fleet needs at least one node");
        let fat = if nodes >= 2 {
            (nodes * 72 / 612).max(1)
        } else {
            0
        };
        let mut groups = vec![NodeGroup {
            sku: fs2_arch::Sku::intel_xeon_e5_2680_v3(),
            nodes: nodes - fat,
            samples_per_node: None,
        }];
        if fat > 0 {
            groups.push(NodeGroup {
                sku: fs2_arch::Sku::intel_xeon_e5_2695_v3(),
                nodes: fat,
                samples_per_node: None,
            });
        }
        let mix = JobMix::taurus_haswell();
        let episodes = EpisodeModel::taurus_haswell(&mix);
        FleetConfig {
            groups,
            samples_per_node: 2000,
            mix,
            temporal: TemporalMode::Iid,
            episodes,
            seed: 0xF1EE7,
            threads: 0,
            cap_w: 359.9,
            power_cap_w: None,
            budget_w: None,
            budget_policy: BudgetPolicy::default(),
        }
    }

    /// Total node count across all groups.
    pub fn total_nodes(&self) -> u32 {
        self.groups.iter().map(|g| g.nodes).sum()
    }

    /// Total 60 s-mean samples the fleet will generate.
    pub fn total_samples(&self) -> usize {
        self.groups
            .iter()
            .map(|g| {
                g.nodes as usize * g.samples_per_node.unwrap_or(self.samples_per_node) as usize
            })
            .sum()
    }
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig::taurus_haswell()
    }
}

/// An empirical power CDF over fixed-width bins.
#[derive(Debug, Clone)]
pub struct PowerCdf {
    /// `(bin_upper_edge_w, cumulative_fraction)`, ascending.
    pub bins: Vec<(f64, f64)>,
    pub min_w: f64,
    pub max_w: f64,
    pub samples: usize,
}

impl PowerCdf {
    /// Builds the CDF from samples with the paper's 0.1 W bins. An
    /// empty sample set yields an empty CDF (zero mass everywhere)
    /// rather than panicking.
    pub fn from_samples(samples: &[f64], bin_width: f64) -> PowerCdf {
        assert!(bin_width > 0.0);
        if samples.is_empty() {
            return PowerCdf {
                bins: Vec::new(),
                min_w: 0.0,
                max_w: 0.0,
                samples: 0,
            };
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let nbins = (((max - min) / bin_width).floor() as usize + 1).max(1);
        let mut counts = vec![0u64; nbins];
        for &s in samples {
            let b = (((s - min) / bin_width) as usize).min(nbins - 1);
            counts[b] += 1;
        }
        let total = samples.len() as f64;
        let mut acc = 0u64;
        let bins = counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                acc += c;
                (min + bin_width * (i as f64 + 1.0), acc as f64 / total)
            })
            .collect();
        PowerCdf {
            bins,
            min_w: min,
            max_w: max,
            samples: samples.len(),
        }
    }

    /// Cumulative fraction at or below `power_w`. Queries below the
    /// first bin's lower edge are outside the observed range and have
    /// zero cumulative mass, as does any query on an empty CDF.
    pub fn fraction_at(&self, power_w: f64) -> f64 {
        if self.samples == 0 || power_w < self.min_w {
            return 0.0;
        }
        match self.bins.iter().find(|(edge, _)| *edge >= power_w) {
            Some((_, frac)) => *frac,
            None => 1.0,
        }
    }

    /// Power at quantile `q`: the lower edge of the first bin whose
    /// cumulative fraction reaches `q`, so that
    /// `quantile(fraction_at(x)) <= x` for any `x` at or above the
    /// observed minimum. Out-of-range `q` clamps (`q <= 0` returns
    /// `min_w`, `q >= 1` the last massed bin's lower edge) and an
    /// empty CDF returns 0.0 — no panic, no NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min_w;
        }
        let q = q.min(1.0);
        match self.bins.iter().position(|&(_, frac)| frac >= q) {
            Some(0) => self.min_w,
            Some(i) => self.bins[i - 1].0,
            None => self.max_w,
        }
    }
}

/// One engine-evaluated `(SKU, class, P-state)` operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPower {
    pub sku: &'static str,
    pub class: &'static str,
    /// Requested P-state frequency, MHz.
    pub freq_mhz: u32,
    /// Applied (possibly EDC/PPT-throttled) frequency, MHz.
    pub applied_mhz: f64,
    /// Node power while the payload executes, W.
    pub watts: f64,
}

/// Episode-mode statistics of one fleet generation pass.
#[derive(Debug, Clone)]
pub struct EpisodeStats {
    /// State names (index 0 = the idle floor, then the mix classes).
    pub states: Vec<&'static str>,
    /// Empirical fraction of ticks spent per state.
    pub empirical_shares: Vec<f64>,
    /// The model's predicted long-run time shares.
    pub model_shares: Vec<f64>,
    /// Empirical mean dwell per state, in 60 s ticks (0 when a state
    /// never started an episode).
    pub mean_dwell_ticks: Vec<f64>,
    /// Lag-1 autocorrelation of node power, pooled over all nodes
    /// (per-node centered; i.i.d. sampling would measure ~0 here).
    pub lag1_autocorr: f64,
}

/// Budget-arbitration telemetry of one fleet generation pass.
#[derive(Debug, Clone)]
pub struct BudgetStats {
    /// The configured per-tick fleet budget, W.
    pub budget_w: f64,
    pub policy: BudgetPolicy,
    /// Synchronized 60 s ticks arbitrated (the longest node horizon).
    pub ticks: usize,
    /// Highest per-tick fleet draw, W.
    pub peak_fleet_w: f64,
    /// Mean per-tick fleet draw, W.
    pub mean_fleet_w: f64,
    /// Per-state count of proposals shed to the floor
    /// ([`BudgetPolicy::ShedToFloor`]; index 0 = floor, then the mix
    /// classes — floor proposals have zero increment and are never
    /// denied).
    pub shed_ticks: Vec<u64>,
    /// Per-state count of tick-denials that deferred a proposal
    /// ([`BudgetPolicy::Defer`]; one proposal can defer repeatedly).
    pub deferred_ticks: Vec<u64>,
    /// Proposals deferred past the end of their node's horizon and
    /// therefore never run.
    pub truncated_proposals: u64,
    /// Ticks whose unconditional idle floors alone exceeded the
    /// budget (the budget is infeasible on those ticks).
    pub infeasible_floor_ticks: u64,
    /// CDF of per-tick budget utilization (fleet draw / budget,
    /// binned at 0.5 %).
    pub utilization: PowerCdf,
    /// State names aligned with the shed/deferred counters.
    pub states: Vec<&'static str>,
}

/// The output of one fleet generation pass.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// All 60 s-mean node power samples, in node order.
    pub samples: Vec<f64>,
    /// Registry/engine cache counters for the run.
    pub registry: RegistryStats,
    /// The engine-evaluated operating points the samples composed from.
    pub power_table: Vec<ClassPower>,
    /// Episode statistics ([`TemporalMode::Episodes`] only). State
    /// shares and dwells describe the *proposed* walks; under a budget
    /// the emitted stream additionally reflects sheds and defers,
    /// which [`FleetRun::budget`] accounts for.
    pub episodes: Option<EpisodeStats>,
    /// Number of static `(SKU, class, P-state)` remap-table cells the
    /// power cap redirected to a lower P-state (0 when no cap is
    /// set). This counts table cells, not drawn samples — see
    /// `capped_samples` for the per-sample count.
    pub capped_points: usize,
    /// Number of drawn samples whose P-state the power cap actually
    /// remapped (accumulated per node, summed in node input order, so
    /// the count is identical for any thread count).
    pub capped_samples: usize,
    /// Remap-table cells whose final operating point still exceeds
    /// `power_cap_w` — the class has no admissible P-state and fell
    /// back to its lowest-power one over the cap.
    pub infeasible_points: usize,
    /// Budget arbitration telemetry ([`FleetConfig::budget_w`] only).
    pub budget: Option<BudgetStats>,
}

/// Per-node work item handed to the sweep.
struct NodeItem {
    sku_idx: usize,
    /// Fleet-global node id (stable across thread counts).
    node_id: u32,
    samples: u32,
}

/// Per-node propose-phase output: the proposal stream plus the walk's
/// state accounting (episode mode) and the per-sample cap counter.
struct NodeOut {
    stream: NodeStream,
    state_ticks: Vec<u64>,
    episode_counts: Vec<u64>,
    capped_samples: usize,
}

/// Per-node episode accounting carried past the propose phase:
/// `(state_ticks, episode_counts)`.
type NodeAccounting = (Vec<u64>, Vec<u64>);

/// The fleet generator.
#[derive(Debug, Clone)]
pub struct FleetSim {
    pub config: FleetConfig,
}

impl FleetSim {
    pub fn new(config: FleetConfig) -> FleetSim {
        assert!(!config.groups.is_empty(), "fleet needs at least one group");
        if config.temporal == TemporalMode::Episodes {
            assert_eq!(
                config.episodes.n_states(),
                config.mix.classes().len() + 1,
                "episode model must cover the floor plus every mix class"
            );
        }
        if let Some(b) = config.budget_w {
            assert!(
                b.is_finite() && b > 0.0,
                "budget_w must be a positive wattage, got {b}"
            );
        }
        FleetSim { config }
    }

    /// Generates every 60 s-mean sample plus the run's cache counters.
    pub fn run(&self) -> FleetRun {
        let cfg = &self.config;
        let registry = EngineRegistry::with_seed(cfg.seed);
        let classes = cfg.mix.classes();

        // Engine-evaluate each (SKU, class, P-state) operating point
        // once; the per-sample loop then only composes duty cycles.
        // `table[sku][class][pstate]` is the payload's node power.
        let mut idle_w: Vec<f64> = Vec::with_capacity(cfg.groups.len());
        let mut table: Vec<Vec<Vec<f64>>> = Vec::with_capacity(cfg.groups.len());
        let mut power_table: Vec<ClassPower> = Vec::new();
        for group in &cfg.groups {
            let engine = registry.engine(&group.sku);
            idle_w.push(engine.idle_power_w());
            let n_pstates = group.sku.pstates.states.len();
            let mut rows = Vec::with_capacity(classes.len());
            for (class, _) in classes {
                let config = registry
                    .config_for(&group.sku, class.spec)
                    .unwrap_or_else(|e| panic!("{}: bad spec {}: {e}", class.name, class.spec));
                let payload = engine.payload(&config);
                let mut row = vec![f64::NAN; n_pstates];
                for &p in class.pstates {
                    assert!(
                        p < n_pstates,
                        "{}: P-state index {p} out of range for {}",
                        class.name,
                        group.sku.name
                    );
                    if row[p].is_nan() {
                        let freq = group.sku.pstates.states[p].freq_mhz;
                        let r = engine.eval(&payload, f64::from(freq));
                        row[p] = r.power.total_w();
                        power_table.push(ClassPower {
                            sku: group.sku.name,
                            class: class.name,
                            freq_mhz: freq,
                            applied_mhz: r.applied_mhz,
                            watts: row[p],
                        });
                    }
                }
                rows.push(row);
            }
            table.push(rows);
        }

        // P-state admission under the what-if power cap:
        // `remap[sku][class][pstate]` redirects a drawn P-state whose
        // operating point exceeds the cap to the class's highest
        // admissible one. The draw itself is untouched, so the RNG
        // streams — and therefore capped/uncapped comparisons — stay
        // aligned sample-for-sample. `capped_points` counts remapped
        // *table cells*; the per-sample count is accumulated in the
        // propose phase. A class with no admissible P-state keeps its
        // lowest-power one and every still-over-cap cell is surfaced
        // through `infeasible_points` instead of silently passing.
        let mut capped_points = 0usize;
        let mut infeasible_points = 0usize;
        let remap: Vec<Vec<Vec<usize>>> = cfg
            .groups
            .iter()
            .enumerate()
            .map(|(sku_idx, group)| {
                let n_pstates = group.sku.pstates.states.len();
                classes
                    .iter()
                    .enumerate()
                    .map(|(ci, (class, _))| {
                        let mut m: Vec<usize> = (0..n_pstates).collect();
                        if let Some(cap) = cfg.power_cap_w {
                            let row = &table[sku_idx][ci];
                            let admissible = class
                                .pstates
                                .iter()
                                .copied()
                                .filter(|&p| row[p] <= cap)
                                .max_by(|&a, &b| row[a].total_cmp(&row[b]));
                            let fallback = class
                                .pstates
                                .iter()
                                .copied()
                                .min_by(|&a, &b| row[a].total_cmp(&row[b]))
                                .expect("classes always have P-states");
                            let target = admissible.unwrap_or(fallback);
                            for &p in class.pstates {
                                if row[p] > cap && p != target {
                                    m[p] = target;
                                    capped_points += 1;
                                }
                                if row[m[p]] > cap {
                                    infeasible_points += 1;
                                }
                            }
                        }
                        m
                    })
                    .collect()
            })
            .collect();

        // Flatten the fleet into per-node work items. Node ids are
        // global and stable, so per-node RNG streams (and therefore
        // the samples) do not depend on grouping or thread count.
        let mut items: Vec<NodeItem> = Vec::with_capacity(cfg.total_nodes() as usize);
        let mut node_id = 0u32;
        for (sku_idx, group) in cfg.groups.iter().enumerate() {
            let samples = group.samples_per_node.unwrap_or(cfg.samples_per_node);
            for _ in 0..group.nodes {
                items.push(NodeItem {
                    sku_idx,
                    node_id,
                    samples,
                });
                node_id += 1;
            }
        }

        let mix = &cfg.mix;
        let episodes = &cfg.episodes;
        let temporal = cfg.temporal;
        let cap = cfg.cap_w;
        let seed = cfg.seed;
        let idle_w = &idle_w;
        let table = &table;
        let remap = &remap;
        // Any engine can host the sweep; the workers only read the
        // precomputed tables (the &Engine argument goes unused).
        let driver = registry.engine(&cfg.groups[0].sku);

        // Phase 1 — propose (parallel): every node draws its full tick
        // stream from its own `(seed, node_id)` RNG stream. The draws
        // and the composed watts are identical to the historical
        // per-node generation, so runs without a budget stay
        // byte-stable.
        let per_node: Vec<NodeOut> = driver.sweep_hinted(
            &items,
            cfg.threads,
            |_, item| u64::from(item.samples),
            move |_, _, item| {
                let idle = idle_w[item.sku_idx];
                let floor_w = idle.min(cap);
                let rows = &table[item.sku_idx];
                let remap = &remap[item.sku_idx];
                let mut capped_samples = 0usize;
                let mut watts = Vec::with_capacity(item.samples as usize);
                let mut states = Vec::with_capacity(item.samples as usize);
                match temporal {
                    TemporalMode::Iid => {
                        // Per-node RNG streams keep generation
                        // order-independent.
                        let mut rng = StdRng::seed_from_u64(
                            seed ^ (u64::from(item.node_id).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        );
                        for _ in 0..item.samples {
                            let ci = mix.pick_idx(&mut rng);
                            let class = &mix.classes()[ci].0;
                            let duty = class.draw_duty(&mut rng);
                            let drawn = class.draw_pstate(&mut rng);
                            let pstate = remap[ci][drawn];
                            if pstate != drawn {
                                capped_samples += 1;
                            }
                            let load = rows[ci][pstate];
                            debug_assert!(!load.is_nan());
                            // The 60 s mean: duty-cycled payload power
                            // on top of the idle floor, clamped at the
                            // facility cap.
                            watts.push((idle + duty * (load - idle)).min(cap));
                            states.push((ci + 1) as u16);
                        }
                        NodeOut {
                            stream: NodeStream {
                                floor_w,
                                watts,
                                states,
                            },
                            state_ticks: Vec::new(),
                            episode_counts: Vec::new(),
                            capped_samples,
                        }
                    }
                    TemporalMode::Episodes => {
                        let mut walk = EpisodeWalk::new(episodes, mix, seed, item.node_id);
                        for _ in 0..item.samples {
                            let t = walk.next_tick();
                            let p = match t.class {
                                None => idle,
                                Some(ci) => {
                                    let pstate = remap[ci][t.pstate];
                                    if pstate != t.pstate {
                                        capped_samples += 1;
                                    }
                                    let load = rows[ci][pstate];
                                    debug_assert!(!load.is_nan());
                                    idle + t.duty * (load - idle)
                                }
                            };
                            watts.push(p.min(cap));
                            states.push(t.state as u16);
                        }
                        NodeOut {
                            stream: NodeStream {
                                floor_w,
                                watts,
                                states,
                            },
                            state_ticks: walk.state_ticks().to_vec(),
                            episode_counts: walk.episode_counts().to_vec(),
                            capped_samples,
                        }
                    }
                }
            },
        );

        // Per-sample cap accounting is summed in node input order, so
        // the total is identical for any sweep thread count.
        let capped_samples: usize = per_node.iter().map(|n| n.capped_samples).sum();
        let (streams, accounting): (Vec<NodeStream>, Vec<NodeAccounting>) = per_node
            .into_iter()
            .map(|n| (n.stream, (n.state_ticks, n.episode_counts)))
            .unzip();

        // Phase 2 — arbitrate (serial): fold the proposals against the
        // fleet budget in node-id order. Skipped entirely without a
        // budget, which keeps the historical streams byte-stable.
        let n_states = classes.len() + 1;
        let arbitration: Option<Arbitration> = cfg
            .budget_w
            .map(|b| arbitrate(&streams, b, cfg.budget_policy, n_states));

        // Phase 3 — apply: decisions become samples. Each node only
        // reads its own stream and decision row, so the budgeted
        // fan-out is embarrassingly parallel and input-ordered. With
        // no budget every decision is trivially "admit", so the watts
        // columns *move* into the output — zero copies, exactly the
        // historical unbudgeted cost.
        let per_node_samples: Vec<Vec<f64>> = match &arbitration {
            None => streams.into_iter().map(|s| s.watts).collect(),
            Some(arb) => {
                let streams_ref = &streams;
                driver.sweep(streams_ref, cfg.threads, move |_, i, stream| {
                    arb.decisions[i]
                        .iter()
                        .map(|d| match d {
                            Decision::Admit(k) => stream.watts[*k as usize],
                            Decision::Floor => stream.floor_w,
                        })
                        .collect()
                })
            }
        };

        let episode_stats = (temporal == TemporalMode::Episodes)
            .then(|| aggregate_episode_stats(episodes, &accounting, &per_node_samples));

        let budget = arbitration.map(|arb| {
            let budget_w = cfg.budget_w.expect("arbitration implies a budget");
            let ticks = arb.tick_draw_w.len();
            let peak_fleet_w = arb.tick_draw_w.iter().copied().fold(0.0, f64::max);
            let mean_fleet_w = if ticks == 0 {
                0.0
            } else {
                arb.tick_draw_w.iter().sum::<f64>() / ticks as f64
            };
            let util: Vec<f64> = arb.tick_draw_w.iter().map(|&d| d / budget_w).collect();
            let mut states = vec!["floor"];
            states.extend(classes.iter().map(|(c, _)| c.name));
            BudgetStats {
                budget_w,
                policy: cfg.budget_policy,
                ticks,
                peak_fleet_w,
                mean_fleet_w,
                shed_ticks: arb.shed_ticks,
                deferred_ticks: arb.deferred_ticks,
                truncated_proposals: arb.truncated_proposals,
                infeasible_floor_ticks: arb.infeasible_floor_ticks,
                utilization: PowerCdf::from_samples(&util, 0.005),
                states,
            }
        });

        FleetRun {
            samples: per_node_samples.into_iter().flatten().collect(),
            registry: registry.stats(),
            power_table,
            episodes: episode_stats,
            capped_points,
            capped_samples,
            infeasible_points,
            budget,
        }
    }

    /// Generates all 60 s-mean samples for the fleet.
    pub fn generate(&self) -> Vec<f64> {
        self.run().samples
    }

    /// Full Fig. 1 pipeline: generate, bin at 0.1 W, return the CDF.
    pub fn power_cdf(&self) -> PowerCdf {
        PowerCdf::from_samples(&self.generate(), 0.1)
    }
}

/// Folds per-node walk accounting `(state_ticks, episode_counts)` and
/// the emitted sample streams into fleet-wide episode statistics.
/// Nodes are visited in input order, so the result is identical for
/// any sweep thread count. The state shares and dwells describe the
/// *proposed* walks; the autocorrelation measures the emitted stream
/// (post-arbitration when a budget is set).
fn aggregate_episode_stats(
    model: &EpisodeModel,
    accounting: &[NodeAccounting],
    per_node_samples: &[Vec<f64>],
) -> EpisodeStats {
    let n = model.n_states();
    let mut ticks = vec![0u64; n];
    let mut episodes = vec![0u64; n];
    // Pooled lag-1 autocorrelation: per-node centering, fleet-wide
    // numerator/denominator (constant-power nodes contribute nothing).
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for ((state_ticks, episode_counts), s) in accounting.iter().zip(per_node_samples) {
        for (a, b) in ticks.iter_mut().zip(state_ticks) {
            *a += b;
        }
        for (a, b) in episodes.iter_mut().zip(episode_counts) {
            *a += b;
        }
        if s.len() >= 2 {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            den += s.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>();
            num += s
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>();
        }
    }
    let total: u64 = ticks.iter().sum();
    let empirical_shares = ticks
        .iter()
        .map(|&t| {
            if total == 0 {
                0.0
            } else {
                t as f64 / total as f64
            }
        })
        .collect();
    let mean_dwell_ticks = ticks
        .iter()
        .zip(&episodes)
        .map(|(&t, &e)| if e == 0 { 0.0 } else { t as f64 / e as f64 })
        .collect();
    EpisodeStats {
        states: model.state_names().to_vec(),
        empirical_shares,
        model_shares: model.stationary_time_shares().to_vec(),
        mean_dwell_ticks,
        lag1_autocorr: if den > 0.0 { num / den } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> FleetSim {
        FleetSim::new(FleetConfig {
            samples_per_node: 500,
            ..FleetConfig::taurus_haswell_scaled(64)
        })
    }

    fn small_episode_fleet() -> FleetSim {
        FleetSim::new(FleetConfig {
            samples_per_node: 500,
            temporal: TemporalMode::Episodes,
            ..FleetConfig::taurus_haswell_scaled(64)
        })
    }

    #[test]
    fn cdf_shape_matches_fig1_landmarks() {
        let cdf = small_fleet().power_cdf();
        // Maximum below the physical cap (paper: 359.9 W).
        assert!(cdf.max_w <= 359.9 + 1e-9);
        assert!(cdf.max_w > 300.0, "no high-power tail: max {}", cdf.max_w);
        // Steep idle shoulder: a large fraction between 50 W and 100 W.
        let below_100 = cdf.fraction_at(100.0);
        let below_50 = cdf.fraction_at(50.0);
        assert!(below_50 < 0.02, "mass below 50 W: {below_50}");
        assert!(
            below_100 > 0.35,
            "idle shoulder missing: only {below_100} below 100 W"
        );
        // Most of the time, the power budget is far from exhausted.
        assert!(cdf.fraction_at(250.0) > 0.75);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let cdf = small_fleet().power_cdf();
        assert!((cdf.bins.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.bins.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        assert_eq!(cdf.samples, 64 * 500);
    }

    #[test]
    fn quantiles_are_ordered() {
        let cdf = small_fleet().power_cdf();
        let q25 = cdf.quantile(0.25);
        let q50 = cdf.quantile(0.50);
        let q95 = cdf.quantile(0.95);
        assert!(q25 <= q50 && q50 <= q95);
        assert!(q95 > 200.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_fleet().generate();
        let b = small_fleet().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_fleet_matches_serial_bitwise() {
        let mut serial = small_fleet();
        serial.config.threads = 1;
        let mut parallel = small_fleet();
        parallel.config.threads = 4;
        assert_eq!(serial.generate(), parallel.generate());
    }

    #[test]
    fn episode_fleet_parallel_matches_serial_bitwise() {
        let mut serial = small_episode_fleet();
        serial.config.threads = 1;
        let mut parallel = small_episode_fleet();
        parallel.config.threads = 4;
        let a = serial.run();
        let b = parallel.run();
        assert_eq!(a.samples, b.samples);
        // The aggregated episode statistics must match too.
        let (sa, sb) = (a.episodes.unwrap(), b.episodes.unwrap());
        assert_eq!(sa.empirical_shares, sb.empirical_shares);
        assert_eq!(sa.mean_dwell_ticks, sb.mean_dwell_ticks);
        assert_eq!(sa.lag1_autocorr, sb.lag1_autocorr);
    }

    #[test]
    fn episode_mode_is_time_correlated_iid_is_not() {
        let iid = small_fleet().run();
        assert!(iid.episodes.is_none(), "i.i.d. runs carry no episode stats");
        let ep = small_episode_fleet().run();
        let stats = ep.episodes.expect("episode stats present");
        assert!(
            stats.lag1_autocorr > 0.3,
            "episodes not time-correlated: r1 = {}",
            stats.lag1_autocorr
        );
        // The i.i.d. stream, measured the same way, sits near zero.
        let mut num = 0.0;
        let mut den = 0.0;
        for chunk in iid.samples.chunks(500) {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            den += chunk.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>();
            num += chunk
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>();
        }
        let r1_iid = num / den;
        assert!(r1_iid.abs() < 0.05, "i.i.d. autocorrelation {r1_iid}");
        assert!(stats.lag1_autocorr > r1_iid + 0.25);
    }

    #[test]
    fn episode_stationary_tracks_model_shares() {
        let run = small_episode_fleet().run();
        let stats = run.episodes.unwrap();
        assert_eq!(stats.states[0], "floor");
        assert!((stats.empirical_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (i, (&got, &want)) in stats
            .empirical_shares
            .iter()
            .zip(&stats.model_shares)
            .enumerate()
        {
            assert!(
                (got - want).abs() < 0.05,
                "state {i}: empirical {got} vs model {want}"
            );
        }
    }

    #[test]
    fn restructured_run_reproduces_pre_budget_streams() {
        // Golden bit patterns captured from the pre-restructure
        // (independent per-node streams) generator: the three-phase
        // pass without a budget must reproduce them byte for byte.
        let golden_iid: &[(usize, u64)] = &[
            (0, 0x405526E41CAD1777),
            (1, 0x4055D8E7012860E9),
            (2, 0x4071A34942E8597B),
            (99, 0x4064A3BB333C277E),
            (100, 0x4070D0229EDDF40F),
            (399, 0x40649B9C33875320),
            (400, 0x407663A3160EC8BE),
            (799, 0x4056EF96D9D21AC2),
        ];
        let golden_ep: &[(usize, u64)] = &[
            (0, 0x405692472853DB3B),
            (1, 0x405692472853DB3B),
            (99, 0x4054B33333333333),
            (100, 0x405C94D884529681),
            (399, 0x4060E750EBC4F7BE),
            (400, 0x405B564B57C70C39),
            (799, 0x406A0C383723A280),
        ];
        for (mode, golden, sum_bits) in [
            (TemporalMode::Iid, golden_iid, 0x40FDE54A0DD66BD7u64),
            (TemporalMode::Episodes, golden_ep, 0x40FDBE5E1099D13Au64),
        ] {
            let s = FleetSim::new(FleetConfig {
                samples_per_node: 100,
                temporal: mode,
                ..FleetConfig::taurus_haswell_scaled(8)
            })
            .generate();
            for &(i, bits) in golden {
                assert_eq!(
                    s[i].to_bits(),
                    bits,
                    "{mode:?} sample {i} drifted from the pre-budget stream"
                );
            }
            let sum: f64 = s.iter().sum();
            assert_eq!(sum.to_bits(), sum_bits, "{mode:?} stream sum drifted");
        }
    }

    /// Per-tick fleet sums of a uniform-horizon run (samples are
    /// node-major: node `n`'s tick `t` sits at `n * spn + t`).
    fn tick_sums(samples: &[f64], spn: usize) -> Vec<f64> {
        let nodes = samples.len() / spn;
        (0..spn)
            .map(|t| (0..nodes).map(|n| samples[n * spn + t]).sum())
            .collect()
    }

    #[test]
    fn budget_caps_the_fleet_sum_every_tick() {
        let spn = 300usize;
        let base_cfg = FleetConfig {
            samples_per_node: spn as u32,
            temporal: TemporalMode::Episodes,
            ..FleetConfig::taurus_haswell_scaled(16)
        };
        let unbudgeted = FleetSim::new(base_cfg.clone()).run();
        assert!(unbudgeted.budget.is_none());
        // A budget below the unconstrained peak but well above the
        // idle-floor sum (~16 x 83 W), so it binds and is feasible.
        let budget_w = 2000.0;
        let unconstrained_peak = tick_sums(&unbudgeted.samples, spn)
            .into_iter()
            .fold(0.0, f64::max);
        assert!(unconstrained_peak > budget_w, "budget would not bind");
        for policy in [BudgetPolicy::ShedToFloor, BudgetPolicy::Defer] {
            let run = FleetSim::new(FleetConfig {
                budget_w: Some(budget_w),
                budget_policy: policy,
                ..base_cfg.clone()
            })
            .run();
            let stats = run.budget.as_ref().expect("budget stats present");
            assert_eq!(stats.infeasible_floor_ticks, 0);
            for (t, sum) in tick_sums(&run.samples, spn).into_iter().enumerate() {
                assert!(
                    sum <= budget_w + 1e-9,
                    "{policy:?} tick {t}: fleet draw {sum} exceeds {budget_w}"
                );
            }
            // The arbiter's own accounting matches the emitted stream.
            assert_eq!(stats.ticks, spn);
            assert!(stats.peak_fleet_w <= budget_w + 1e-9);
            assert!(stats.peak_fleet_w > budget_w * 0.9, "budget never filled");
            assert!(stats.mean_fleet_w < stats.peak_fleet_w);
            assert!((stats.utilization.max_w - stats.peak_fleet_w / budget_w).abs() < 0.005);
            let denied: u64 = match policy {
                BudgetPolicy::ShedToFloor => stats.shed_ticks.iter().sum(),
                BudgetPolicy::Defer => stats.deferred_ticks.iter().sum(),
            };
            assert!(denied > 0, "{policy:?}: a binding budget must deny ticks");
            // Floor proposals are never denied.
            assert_eq!(stats.shed_ticks[0], 0);
            assert_eq!(stats.deferred_ticks[0], 0);
        }
    }

    #[test]
    fn budget_applies_to_the_iid_sampler_too() {
        let spn = 200usize;
        let budget_w = 1800.0;
        let run = FleetSim::new(FleetConfig {
            samples_per_node: spn as u32,
            budget_w: Some(budget_w),
            ..FleetConfig::taurus_haswell_scaled(16)
        })
        .run();
        let stats = run.budget.as_ref().expect("budget stats");
        assert!(stats.shed_ticks.iter().sum::<u64>() > 0);
        for (t, sum) in tick_sums(&run.samples, spn).into_iter().enumerate() {
            assert!(sum <= budget_w + 1e-9, "tick {t}: {sum} over budget");
        }
    }

    #[test]
    fn budgeted_runs_are_thread_count_invariant() {
        for (temporal, policy) in [
            (TemporalMode::Iid, BudgetPolicy::ShedToFloor),
            (TemporalMode::Episodes, BudgetPolicy::ShedToFloor),
            (TemporalMode::Episodes, BudgetPolicy::Defer),
        ] {
            let cfg = FleetConfig {
                samples_per_node: 250,
                temporal,
                budget_w: Some(2000.0),
                budget_policy: policy,
                ..FleetConfig::taurus_haswell_scaled(16)
            };
            let mut serial_cfg = cfg.clone();
            serial_cfg.threads = 1;
            let mut parallel_cfg = cfg;
            parallel_cfg.threads = 4;
            let a = FleetSim::new(serial_cfg).run();
            let b = FleetSim::new(parallel_cfg).run();
            assert_eq!(a.samples, b.samples, "{temporal:?}/{policy:?} diverged");
            let (sa, sb) = (a.budget.unwrap(), b.budget.unwrap());
            assert_eq!(sa.shed_ticks, sb.shed_ticks);
            assert_eq!(sa.deferred_ticks, sb.deferred_ticks);
            assert_eq!(sa.peak_fleet_w.to_bits(), sb.peak_fleet_w.to_bits());
            assert_eq!(a.capped_samples, b.capped_samples);
        }
    }

    #[test]
    fn shed_loses_work_defer_delays_it() {
        let cfg = FleetConfig {
            samples_per_node: 400,
            temporal: TemporalMode::Episodes,
            budget_w: Some(1900.0),
            ..FleetConfig::taurus_haswell_scaled(16)
        };
        let shed = FleetSim::new(FleetConfig {
            budget_policy: BudgetPolicy::ShedToFloor,
            ..cfg.clone()
        })
        .run();
        let defer = FleetSim::new(FleetConfig {
            budget_policy: BudgetPolicy::Defer,
            ..cfg
        })
        .run();
        let (ss, ds) = (shed.budget.unwrap(), defer.budget.unwrap());
        // Shed never defers or truncates; defer never sheds.
        assert!(ss.shed_ticks.iter().sum::<u64>() > 0);
        assert_eq!(ss.deferred_ticks.iter().sum::<u64>(), 0);
        assert_eq!(ss.truncated_proposals, 0);
        assert_eq!(ds.shed_ticks.iter().sum::<u64>(), 0);
        assert!(ds.deferred_ticks.iter().sum::<u64>() > 0);
        // The two policies genuinely produce different streams.
        assert_ne!(shed.samples, defer.samples);
    }

    #[test]
    fn capped_samples_counts_per_sample_and_is_thread_invariant() {
        // Regression: `capped_points` counts static remap-table cells
        // (the CLI's per-sample claim was wrong); `capped_samples` is
        // the per-sample count, accumulated in node input order.
        for temporal in [TemporalMode::Iid, TemporalMode::Episodes] {
            let cfg = FleetConfig {
                samples_per_node: 400,
                temporal,
                power_cap_w: Some(300.0),
                ..FleetConfig::taurus_haswell_scaled(16)
            };
            let mut serial_cfg = cfg.clone();
            serial_cfg.threads = 1;
            let mut parallel_cfg = cfg.clone();
            parallel_cfg.threads = 4;
            let a = FleetSim::new(serial_cfg).run();
            let b = FleetSim::new(parallel_cfg).run();
            assert_eq!(
                a.capped_samples, b.capped_samples,
                "{temporal:?}: capped_samples depends on thread count"
            );
            assert!(a.capped_samples > 0, "{temporal:?}: cap clamped nothing");
            // The static table count is far smaller than the drawn
            // total and unchanged between the two runs.
            assert_eq!(a.capped_points, b.capped_points);
            assert!(a.capped_points > 0);
            assert!(a.capped_points < 50, "table cells, not samples");
            assert!(a.capped_samples > a.capped_points);
            // Uncapped runs report zero on both counters.
            let uncapped = FleetSim::new(FleetConfig {
                power_cap_w: None,
                ..cfg
            })
            .run();
            assert_eq!(uncapped.capped_points, 0);
            assert_eq!(uncapped.capped_samples, 0);
        }
    }

    #[test]
    fn infeasible_cap_is_surfaced_not_silent() {
        // Regression: a cap below every operating point of a class used
        // to fall back to the lowest-power P-state with no signal. A
        // 150 W cap is under the whole "peak" class (and more).
        let mut cfg = small_fleet().config;
        cfg.power_cap_w = Some(150.0);
        let run = FleetSim::new(cfg).run();
        assert!(
            run.infeasible_points > 0,
            "cap below a whole class must surface infeasible points"
        );
        // 150 W is under every operating point: every drawable cell is
        // infeasible (one per evaluated (SKU, class, P-state)).
        let drawable = run.power_table.len();
        assert_eq!(run.infeasible_points, drawable);
        // A 300 W cap remaps the multi-P-state classes, but the
        // single-P-state "peak" class (and the flat "high" rows) has no
        // admissible point — both counters must be nonzero at once.
        let mut mid_cfg = small_fleet().config;
        mid_cfg.power_cap_w = Some(300.0);
        let mid = FleetSim::new(mid_cfg).run();
        assert!(mid.capped_points > 0);
        assert!(mid.infeasible_points > 0);
        assert!(mid.infeasible_points < drawable);
        // A cap above every operating point touches nothing.
        let mut ok_cfg = small_fleet().config;
        ok_cfg.power_cap_w = Some(400.0);
        let ok = FleetSim::new(ok_cfg).run();
        assert_eq!(ok.capped_points, 0);
        assert_eq!(ok.infeasible_points, 0);
        // No cap: no accounting at all.
        assert_eq!(small_fleet().run().infeasible_points, 0);
    }

    #[test]
    fn power_cap_clamps_operating_points() {
        let uncapped = small_episode_fleet().run();
        assert_eq!(uncapped.capped_points, 0);
        let mut capped_cfg = small_episode_fleet().config;
        capped_cfg.power_cap_w = Some(300.0);
        let capped = FleetSim::new(capped_cfg).run();
        assert!(capped.capped_points > 0, "a 300 W cap must remap points");
        // Same RNG streams: sample-for-sample the capped run is never
        // hotter, and strictly cooler somewhere.
        assert_eq!(capped.samples.len(), uncapped.samples.len());
        let mut lowered = 0usize;
        for (c, u) in capped.samples.iter().zip(&uncapped.samples) {
            assert!(c <= &(u + 1e-9), "cap raised a sample: {c} > {u}");
            if c + 1e-9 < *u {
                lowered += 1;
            }
        }
        assert!(lowered > 0, "cap lowered nothing");
        // The cap also applies to the i.i.d. sampler.
        let mut iid_cfg = small_fleet().config;
        iid_cfg.power_cap_w = Some(300.0);
        let iid_capped = FleetSim::new(iid_cfg).run();
        assert!(iid_capped.capped_points > 0);
    }

    #[test]
    fn every_sample_traces_to_the_engine_registry() {
        let run = small_fleet().run();
        let s = run.registry;
        // One engine per distinct SKU; one payload per (SKU, class).
        assert_eq!(s.engines, 2);
        assert_eq!(s.payload_misses, 10);
        assert_eq!(s.payload_entries, 10);
        // The five class specs parse once, registry-wide.
        assert_eq!(s.spec_misses, 5);
        assert!(s.spec_hits >= 5, "second SKU must reuse parses");
        // Every operating point is one engine eval — no sample power
        // arrives outside the engine pipeline.
        assert_eq!(s.evals as usize, run.power_table.len());
        // The power table holds every evaluated operating point, and
        // every sample lies between the idle floor and the cap.
        assert!(!run.power_table.is_empty());
        for row in &run.power_table {
            assert!(row.watts > 80.0 && row.watts < 400.0, "{row:?}");
        }
        assert_eq!(run.samples.len(), small_fleet().config.total_samples());
        for &p in &run.samples {
            assert!((50.0..=359.9).contains(&p), "sample {p} out of range");
        }
    }

    #[test]
    fn heterogeneous_skus_differ_in_power() {
        // The two SKU slices must not produce identical operating
        // points — heterogeneity has to be visible in the table.
        let run = small_fleet().run();
        let of = |sku: &str| -> Vec<f64> {
            run.power_table
                .iter()
                .filter(|r| r.sku == sku)
                .map(|r| r.watts)
                .collect()
        };
        let a = of("Intel Xeon E5-2680 v3 (2S)");
        let b = of("Intel Xeon E5-2695 v3 (2S)");
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = FleetConfig {
            samples_per_node: 100,
            ..FleetConfig::taurus_haswell_scaled(8)
        };
        let a = FleetSim::new(cfg.clone()).generate();
        cfg.seed = 123;
        let b = FleetSim::new(cfg.clone()).generate();
        assert_ne!(a, b);
        // And the two temporal modes draw from distinct streams.
        cfg.seed = 0xF1EE7;
        cfg.temporal = TemporalMode::Episodes;
        let c = FleetSim::new(cfg).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn per_group_sample_overrides_are_respected() {
        let mut cfg = FleetConfig {
            samples_per_node: 50,
            threads: 3,
            ..FleetConfig::taurus_haswell_scaled(9)
        };
        // Long-tailed fleet: the fat-node slice is sampled 10x longer.
        cfg.groups[1].samples_per_node = Some(500);
        let sim = FleetSim::new(cfg.clone());
        assert_eq!(
            sim.config.total_samples(),
            8 * 50 + 500 // 8 thin nodes + 1 fat node
        );
        let run = sim.run();
        assert_eq!(run.samples.len(), sim.config.total_samples());
        // Still bitwise-identical to serial despite the hint reorder.
        let mut serial_cfg = cfg;
        serial_cfg.threads = 1;
        assert_eq!(run.samples, FleetSim::new(serial_cfg).generate());
    }

    #[test]
    fn fraction_at_extremes() {
        let cdf = PowerCdf::from_samples(&[100.0, 200.0, 300.0], 0.1);
        assert_eq!(cdf.fraction_at(1000.0), 1.0);
        assert!(cdf.fraction_at(100.05) > 0.3);
    }

    #[test]
    fn fraction_at_below_min_is_zero() {
        // Regression: queries below the first bin used to return the
        // first bin's cumulative mass (~0.33 here) instead of 0.
        let cdf = PowerCdf::from_samples(&[100.0, 200.0, 300.0], 0.1);
        assert_eq!(cdf.fraction_at(0.0), 0.0);
        assert_eq!(cdf.fraction_at(99.9), 0.0);
        assert_eq!(cdf.fraction_at(-5.0), 0.0);
        // At or above the minimum, mass appears.
        assert!(cdf.fraction_at(100.0) > 0.3);
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        // Regression: q outside [0, 1] used to assert-panic.
        let cdf = PowerCdf::from_samples(&[100.0, 200.0, 300.0], 0.1);
        assert_eq!(cdf.quantile(0.0), 100.0);
        assert_eq!(cdf.quantile(-3.0), 100.0);
        let top = cdf.quantile(1.0);
        assert!(top <= 300.0 && top > 299.0, "q=1 -> {top}");
        assert_eq!(cdf.quantile(7.5), top);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert!(cdf.quantile(q).is_finite());
        }
    }

    #[test]
    fn quantile_round_trips_through_fraction_at() {
        // Regression: with upper-edge quantiles,
        // quantile(fraction_at(x)) could exceed x by up to one bin.
        let cdf = PowerCdf::from_samples(&[100.0, 100.04, 200.0, 300.0], 0.1);
        for x in [100.0, 100.05, 150.0, 200.0, 299.95, 300.0, 350.0] {
            let q = cdf.quantile(cdf.fraction_at(x));
            assert!(q <= x + 1e-9, "round trip rose: x {x} -> {q}");
        }
    }

    #[test]
    fn empty_cdf_never_panics_or_returns_nan() {
        // Regression: an empty sample set used to assert-panic in
        // from_samples.
        let cdf = PowerCdf::from_samples(&[], 0.1);
        assert_eq!(cdf.samples, 0);
        assert_eq!(cdf.fraction_at(100.0), 0.0);
        assert_eq!(cdf.fraction_at(-1.0), 0.0);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            let v = cdf.quantile(q);
            assert!(v.is_finite() && !v.is_nan());
        }
    }
}
