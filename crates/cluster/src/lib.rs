//! # fs2-cluster — node-fleet power simulation
//!
//! Fig. 1 of the paper shows the cumulative distribution of power
//! consumption of 612 Haswell nodes of the Taurus HPC system over one
//! year (1 Sa/s per node, aggregated to 60 s means, 0.1 W bins): most of
//! the time the power budget is unused, with a steep idle shoulder
//! between 50 W and 100 W and a maximum of 359.9 W — the argument for why
//! worst-case stress tests matter to infrastructure designers.
//!
//! The production trace is not available, so [`fleet`] *clones* the
//! workload instead of fitting a distribution: every node owns a seat in
//! a heterogeneous fleet whose SKUs share real `fs2_core::Engine`s
//! through an `EngineRegistry`. Per 60 s sample, a [`jobs::JobClass`] is
//! drawn from the [`jobs::JobMix`], its payload spec is evaluated through
//! `Engine::eval` at a drawn P-state, and the sample power is the
//! duty-cycled mix of that payload power and the node's idle floor. The
//! CDF pipeline (60 s aggregation, 0.1 W binning) is identical to the
//! paper's, and the fan-out over `Engine::sweep_hinted` is
//! bitwise-identical to a serial pass.
//!
//! On top of the i.i.d. per-node-minute sampler, [`episodes`] adds the
//! temporal structure real traces show: a semi-Markov model whose
//! states are the idle floor plus the job classes, with geometric
//! dwell times (in 60 s ticks), ramp-in profiles and per-episode
//! operating points. [`fleet::TemporalMode`] selects the sampler;
//! [`fleet::FleetConfig::power_cap_w`] adds a power-capping what-if
//! hook clamping draws to the highest admissible P-state.
//!
//! [`budget`] models facility-level power management on top of the
//! per-node cap: [`fleet::FleetConfig::budget_w`] caps the fleet-wide
//! *sum* of node draws per 60 s tick, with a pluggable
//! [`budget::BudgetPolicy`] that sheds denied node-minutes to the idle
//! floor or defers the episode's remaining ticks. Generation is a
//! tick-synchronous propose → arbitrate → apply pass that stays
//! bitwise-identical across thread counts and byte-stable when no
//! budget is set.

pub mod budget;
pub mod episodes;
pub mod fleet;
pub mod jobs;

pub use budget::{Arbitration, BudgetPolicy, Decision, NodeStream};
pub use episodes::{EpisodeModel, EpisodeWalk, Tick};
pub use fleet::{
    shard_ranges, BudgetStats, ClassPower, EpisodeStats, FleetConfig, FleetPlan, FleetRun,
    FleetShard, FleetSim, FleetSizeError, NodeGroup, PowerCdf, ShardTilingError, TemporalMode,
};
pub use jobs::{JobClass, JobMix};
