//! # fs2-cluster — node-fleet power simulation
//!
//! Fig. 1 of the paper shows the cumulative distribution of power
//! consumption of 612 Haswell nodes of the Taurus HPC system over one
//! year (1 Sa/s per node, aggregated to 60 s means, 0.1 W bins): most of
//! the time the power budget is unused, with a steep idle shoulder
//! between 50 W and 100 W and a maximum of 359.9 W — the argument for why
//! worst-case stress tests matter to infrastructure designers.
//!
//! The production trace is not available, so [`fleet`] generates a
//! synthetic equivalent from a parameterized [`jobs::JobMix`]: per-node
//! job episodes drawn from utilization classes whose power levels span
//! idle to full stress. The CDF pipeline (60 s aggregation, 0.1 W
//! binning) is identical to the paper's.

pub mod fleet;
pub mod jobs;

pub use fleet::{FleetConfig, FleetSim, PowerCdf};
pub use jobs::{JobClass, JobMix};
