//! Markov job episodes: the fleet's temporal structure.
//!
//! The i.i.d. per-node-minute sampler reproduces Fig. 1's power
//! *distribution* but not its time correlation: real traces show jobs
//! that dwell at an operating point for many 60 s ticks, ramp in, and
//! hand the node back to the idle floor. An [`EpisodeModel`] is a
//! semi-Markov chain over one explicit idle-floor state plus one state
//! per [`JobMix`] class: each state has a
//! geometric dwell-time distribution (in 60 s ticks), job states have a
//! linear ramp-in profile, and a row-stochastic transition matrix
//! (validated like `JobMix` weights) picks the next state when an
//! episode ends. Duty cycle and P-state are drawn **once per episode**,
//! so consecutive ticks of one job share an operating point — the
//! source of the lag-1 autocorrelation the i.i.d. sampler cannot
//! produce.
//!
//! An [`EpisodeWalk`] is a deterministic function of `(seed, node_id)`:
//! per-node streams are independent of grouping and thread count, so an
//! N-thread fleet fan-out stays bitwise-identical to a serial pass.

use crate::jobs::JobMix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper bound on one episode length; a pathological dwell draw must
/// not stall a walk (P(hit) < 1e-40 for any sane mean).
const MAX_EPISODE_TICKS: u32 = 100_000;

/// Mixing salt so episode streams never collide with the i.i.d.
/// per-node streams derived from the same `(seed, node_id)`.
const EPISODE_SALT: u64 = 0x1BD1_1BDA_A9FC_1A22;

/// Maps a draw `x ∈ [0, 1)` to an index of `row` (weights summing to
/// ~1). Floating-point rounding can push `x` past the last positive
/// weight; the fallthrough lands on the last state that can actually
/// occur, never on a zero-weight one (the `JobMix::pick` contract).
fn pick_weighted(row: &[f64], mut x: f64) -> usize {
    let mut last_weighted = 0;
    for (i, &w) in row.iter().enumerate() {
        if w > 0.0 {
            if x < w {
                return i;
            }
            last_weighted = i;
        }
        x -= w;
    }
    last_weighted
}

/// One geometric dwell draw on `{1, 2, ...}` with the given mean, via
/// the inverse CDF (one uniform per episode).
fn geometric_ticks(rng: &mut StdRng, mean_ticks: f64) -> u32 {
    if mean_ticks <= 1.0 {
        // Still consume the draw so episode streams do not depend on
        // which states have unit dwell.
        let _ = rng.gen_range(0.0..1.0);
        return 1;
    }
    let p = 1.0 / mean_ticks;
    let u = rng.gen_range(0.0..1.0);
    // L = 1 + floor(ln(1-u) / ln(1-p)) has mean 1/p on {1, 2, ...}.
    let l = 1.0 + ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if l >= f64::from(MAX_EPISODE_TICKS) {
        MAX_EPISODE_TICKS
    } else {
        (l as u32).max(1)
    }
}

/// A semi-Markov episode model over the fleet's states: index 0 is the
/// explicit idle floor (no payload), indices `1..` map to the job-mix
/// classes in order.
#[derive(Debug, Clone)]
pub struct EpisodeModel {
    /// State names (index 0 = `"floor"`, then the class names).
    names: Vec<&'static str>,
    /// Mean dwell per state, in 60 s ticks (>= 1).
    mean_dwell_ticks: Vec<f64>,
    /// Row-stochastic transition matrix of the embedded jump chain;
    /// rows are normalized at construction.
    transitions: Vec<Vec<f64>>,
    /// Linear ramp-in length per state, ticks (0 = full power at once;
    /// always 0 for the floor state).
    ramp_ticks: Vec<u32>,
    /// Long-run fraction of *time* spent in each state (jump-chain
    /// stationary distribution weighted by dwell), computed once.
    stationary_time: Vec<f64>,
}

impl EpisodeModel {
    /// Builds and validates a model. Panics (like [`JobMix::new`]) on
    /// malformed input: fewer than two states, mismatched lengths,
    /// dwell below one tick, negative matrix entries, or a row with no
    /// positive weight. Rows need not sum to 1; they are normalized.
    pub fn new(
        names: Vec<&'static str>,
        mean_dwell_ticks: Vec<f64>,
        transitions: Vec<Vec<f64>>,
        ramp_ticks: Vec<u32>,
    ) -> EpisodeModel {
        let n = names.len();
        assert!(n >= 2, "episode model needs the floor plus >= 1 class");
        assert_eq!(mean_dwell_ticks.len(), n, "dwell length != state count");
        assert_eq!(transitions.len(), n, "transition rows != state count");
        assert_eq!(ramp_ticks.len(), n, "ramp length != state count");
        for (i, &d) in mean_dwell_ticks.iter().enumerate() {
            assert!(
                d.is_finite() && d >= 1.0,
                "{}: mean dwell {d} below one tick",
                names[i]
            );
        }
        let transitions: Vec<Vec<f64>> = transitions
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                assert_eq!(row.len(), n, "{}: row length != state count", names[i]);
                let mut total = 0.0;
                for &w in &row {
                    assert!(
                        w.is_finite() && w >= 0.0,
                        "{}: negative transition weight {w}",
                        names[i]
                    );
                    total += w;
                }
                assert!(total > 0.0, "{}: row has no positive weight", names[i]);
                row.into_iter().map(|w| w / total).collect()
            })
            .collect();
        let stationary_time = time_shares(&transitions, &mean_dwell_ticks);
        EpisodeModel {
            names,
            mean_dwell_ticks,
            transitions,
            ramp_ticks,
            stationary_time,
        }
    }

    /// A model whose long-run *time* shares match `mix`'s weights
    /// scaled by `1 - floor_share`, with `floor_share` of the time on
    /// the explicit idle floor. Every row of the transition matrix is
    /// the same jump distribution `q_j ∝ share_j / dwell_j`, so the
    /// embedded chain's stationary distribution is `q` and the time
    /// share of state `j` is exactly `q_j · dwell_j ∝ share_j`.
    ///
    /// Because every row is identical, the diagonal is *not* zero:
    /// state `j` self-transitions with probability `q_j`. A
    /// self-transition ends the episode and immediately starts a new
    /// one in the same state — with fresh dwell, duty and P-state
    /// draws and a restarted ramp — so consecutive same-state ticks
    /// are not guaranteed to share an operating point (only ticks of
    /// one *episode* are). A zero-weight mix class gets `q_j = 0`:
    /// the state exists in the model but is unreachable (zero
    /// stationary share, never visited by an [`EpisodeWalk`]).
    pub fn from_mix(
        mix: &JobMix,
        floor_share: f64,
        floor_dwell_ticks: f64,
        class_dwell_ticks: &[f64],
        class_ramp_ticks: &[u32],
    ) -> EpisodeModel {
        let classes = mix.classes();
        assert!(
            (0.0..1.0).contains(&floor_share) && floor_share > 0.0,
            "floor share {floor_share} outside (0, 1)"
        );
        assert_eq!(class_dwell_ticks.len(), classes.len());
        assert_eq!(class_ramp_ticks.len(), classes.len());
        let total: f64 = classes.iter().map(|(_, w)| w).sum();
        let mut names = vec!["floor"];
        let mut dwell = vec![floor_dwell_ticks];
        let mut shares = vec![floor_share];
        let mut ramps = vec![0u32];
        for ((class, w), (&d, &r)) in classes
            .iter()
            .zip(class_dwell_ticks.iter().zip(class_ramp_ticks))
        {
            names.push(class.name);
            dwell.push(d);
            shares.push((1.0 - floor_share) * w / total);
            ramps.push(r);
        }
        let row: Vec<f64> = shares
            .iter()
            .zip(&dwell)
            .map(|(&s, &d)| s / d.max(1.0))
            .collect();
        let transitions = vec![row; names.len()];
        EpisodeModel::new(names, dwell, transitions, ramps)
    }

    /// The Taurus Haswell profile behind the Fig. 1 time-correlated
    /// variant: 10 % of node time on the bare idle floor, job dwells
    /// growing with intensity (interactive/idle sessions are short,
    /// peak jobs run for hours), short ramps on the heavy classes.
    pub fn taurus_haswell(mix: &JobMix) -> EpisodeModel {
        EpisodeModel::from_mix(
            mix,
            0.10,
            15.0,
            &[10.0, 20.0, 30.0, 60.0, 120.0],
            &[0, 1, 1, 2, 3],
        )
    }

    /// Number of states (floor + classes).
    pub fn n_states(&self) -> usize {
        self.names.len()
    }

    /// State names; index 0 is the floor.
    pub fn state_names(&self) -> &[&'static str] {
        &self.names
    }

    /// Mean dwell per state, in 60 s ticks.
    pub fn mean_dwell_ticks(&self) -> &[f64] {
        &self.mean_dwell_ticks
    }

    /// Ramp-in length per state, ticks.
    pub fn ramp_ticks(&self) -> &[u32] {
        &self.ramp_ticks
    }

    /// The normalized transition matrix (row `i` = jump distribution
    /// out of state `i`).
    pub fn transitions(&self) -> &[Vec<f64>] {
        &self.transitions
    }

    /// Long-run fraction of time per state (stationary distribution of
    /// the embedded jump chain, weighted by mean dwell).
    pub fn stationary_time_shares(&self) -> &[f64] {
        &self.stationary_time
    }
}

/// Stationary time shares: power-iterate `π ← πP` (deterministic, no
/// RNG), then weight by dwell and normalize.
fn time_shares(transitions: &[Vec<f64>], dwell: &[f64]) -> Vec<f64> {
    let n = transitions.len();
    let mut pi = vec![1.0 / n as f64; n];
    for _ in 0..500 {
        let mut next = vec![0.0; n];
        for (i, row) in transitions.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                next[j] += pi[i] * p;
            }
        }
        pi = next;
    }
    let mut t: Vec<f64> = pi.iter().zip(dwell).map(|(&p, &d)| p * d).collect();
    let total: f64 = t.iter().sum();
    assert!(total > 0.0, "degenerate stationary distribution");
    for v in &mut t {
        *v /= total;
    }
    t
}

/// One 60 s tick of an episode walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tick {
    /// Model state index (0 = floor).
    pub state: usize,
    /// Job-mix class index for job states, `None` on the floor.
    pub class: Option<usize>,
    /// Ramp-scaled effective duty cycle for this tick (0 on the floor).
    pub duty: f64,
    /// P-state index drawn for the episode (unused on the floor).
    pub pstate: usize,
}

/// A deterministic per-node walk through the episode model. The RNG
/// stream is a pure function of `(seed, node_id)`: two walks with the
/// same pair produce identical tick sequences regardless of how the
/// fleet is grouped or threaded.
#[derive(Debug, Clone)]
pub struct EpisodeWalk<'a> {
    model: &'a EpisodeModel,
    mix: &'a JobMix,
    rng: StdRng,
    state: usize,
    episode_len: u32,
    tick_in_episode: u32,
    duty: f64,
    pstate: usize,
    /// Ticks spent per state (for empirical stationary shares).
    state_ticks: Vec<u64>,
    /// Episodes started per state (for empirical mean dwell).
    episode_counts: Vec<u64>,
}

impl<'a> EpisodeWalk<'a> {
    /// Starts a walk for one node. The initial state is drawn from the
    /// model's stationary time shares so short runs start in steady
    /// state rather than burning in.
    pub fn new(
        model: &'a EpisodeModel,
        mix: &'a JobMix,
        seed: u64,
        node_id: u32,
    ) -> EpisodeWalk<'a> {
        assert_eq!(
            model.n_states(),
            mix.classes().len() + 1,
            "episode model states must be floor + one per mix class"
        );
        let mut rng = StdRng::seed_from_u64(
            seed ^ EPISODE_SALT ^ (u64::from(node_id).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let x = rng.gen_range(0.0..1.0);
        let state = pick_weighted(model.stationary_time_shares(), x);
        let n = model.n_states();
        let mut walk = EpisodeWalk {
            model,
            mix,
            rng,
            state,
            episode_len: 1,
            tick_in_episode: 0,
            duty: 0.0,
            pstate: 0,
            state_ticks: vec![0; n],
            episode_counts: vec![0; n],
        };
        walk.start_episode(state);
        walk
    }

    /// Begins a new episode in `state`: one dwell draw, plus one duty
    /// and one P-state draw for job states (shared by every tick of the
    /// episode — the time correlation).
    fn start_episode(&mut self, state: usize) {
        self.state = state;
        self.episode_counts[state] += 1;
        self.episode_len = geometric_ticks(&mut self.rng, self.model.mean_dwell_ticks[state]);
        self.tick_in_episode = 0;
        if state > 0 {
            let class = &self.mix.classes()[state - 1].0;
            self.duty = class.draw_duty(&mut self.rng);
            self.pstate = class.draw_pstate(&mut self.rng);
        } else {
            self.duty = 0.0;
            self.pstate = 0;
        }
    }

    /// Produces the next 60 s tick and advances the walk.
    pub fn next_tick(&mut self) -> Tick {
        let state = self.state;
        let ramp = self.model.ramp_ticks[state];
        let ramp_scale = if state > 0 && ramp > 0 {
            (f64::from(self.tick_in_episode + 1) / f64::from(ramp)).min(1.0)
        } else {
            1.0
        };
        let tick = Tick {
            state,
            class: state.checked_sub(1),
            duty: self.duty * ramp_scale,
            pstate: self.pstate,
        };
        self.state_ticks[state] += 1;
        self.tick_in_episode += 1;
        if self.tick_in_episode >= self.episode_len {
            let x = self.rng.gen_range(0.0..1.0);
            let next = pick_weighted(&self.model.transitions[state], x);
            self.start_episode(next);
        }
        tick
    }

    /// Ticks spent per state so far.
    pub fn state_ticks(&self) -> &[u64] {
        &self.state_ticks
    }

    /// Episodes started per state so far (the running one included).
    pub fn episode_counts(&self) -> &[u64] {
        &self.episode_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (JobMix, EpisodeModel) {
        let mix = JobMix::taurus_haswell();
        let model = EpisodeModel::taurus_haswell(&mix);
        (mix, model)
    }

    #[test]
    fn from_mix_time_shares_match_configured_weights() {
        let (mix, model) = model();
        let shares = model.stationary_time_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((shares[0] - 0.10).abs() < 1e-9, "floor share {}", shares[0]);
        let total: f64 = mix.classes().iter().map(|(_, w)| w).sum();
        for (i, (_, w)) in mix.classes().iter().enumerate() {
            let want = 0.90 * w / total;
            assert!(
                (shares[i + 1] - want).abs() < 1e-9,
                "class {i}: share {} != {want}",
                shares[i + 1]
            );
        }
    }

    #[test]
    fn rows_are_normalized_and_validated() {
        let m = EpisodeModel::new(
            vec!["floor", "a"],
            vec![5.0, 10.0],
            vec![vec![1.0, 3.0], vec![2.0, 2.0]],
            vec![0, 1],
        );
        for row in m.transitions() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        assert_eq!(m.transitions()[0], vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "below one tick")]
    fn sub_tick_dwell_is_rejected() {
        let _ = EpisodeModel::new(
            vec!["floor", "a"],
            vec![0.5, 10.0],
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            vec![0, 0],
        );
    }

    #[test]
    #[should_panic(expected = "no positive weight")]
    fn zero_row_is_rejected() {
        let _ = EpisodeModel::new(
            vec!["floor", "a"],
            vec![5.0, 10.0],
            vec![vec![0.0, 0.0], vec![0.5, 0.5]],
            vec![0, 0],
        );
    }

    #[test]
    #[should_panic(expected = "negative transition weight")]
    fn negative_weight_is_rejected() {
        let _ = EpisodeModel::new(
            vec!["floor", "a"],
            vec![5.0, 10.0],
            vec![vec![0.5, -0.5], vec![0.5, 0.5]],
            vec![0, 0],
        );
    }

    #[test]
    fn geometric_dwell_mean_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(7);
        for &mean in &[1.0, 4.0, 30.0, 120.0] {
            let n = 40_000;
            let total: u64 = (0..n)
                .map(|_| u64::from(geometric_ticks(&mut rng, mean)))
                .sum();
            let got = total as f64 / f64::from(n);
            assert!(
                (got - mean).abs() < mean * 0.05 + 0.01,
                "mean dwell {got} != {mean}"
            );
        }
    }

    #[test]
    fn unit_mean_dwell_consumes_exactly_one_draw() {
        // Regression guard for stream alignment: the `mean_ticks <= 1`
        // shortcut must consume exactly one uniform, like the general
        // path, so episode streams do not depend on which states have
        // unit dwell.
        for seed in 0..32u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            assert_eq!(geometric_ticks(&mut a, 1.0), 1);
            let _: f64 = b.gen_range(0.0..1.0); // the one draw
                                                // Both streams are now aligned: the next draws agree.
            for _ in 0..4 {
                assert_eq!(
                    a.gen_range(0.0..1.0).to_bits(),
                    b.gen_range(0.0..1.0).to_bits(),
                    "seed {seed}: unit-dwell path consumed != 1 draw"
                );
            }
        }
    }

    #[test]
    fn pathological_dwell_clamps_at_max_episode_ticks() {
        // A huge mean pushes nearly every inverse-CDF draw past the
        // clamp; no draw may ever exceed it (a stalled walk would hang
        // the fleet propose phase).
        let mut rng = StdRng::seed_from_u64(11);
        let mut clamped = 0u32;
        for _ in 0..1000 {
            let l = geometric_ticks(&mut rng, 1e12);
            assert!(l <= MAX_EPISODE_TICKS, "dwell {l} escaped the clamp");
            if l == MAX_EPISODE_TICKS {
                clamped += 1;
            }
        }
        assert!(clamped > 900, "only {clamped}/1000 draws hit the clamp");
        // Sane means never come near it.
        for _ in 0..1000 {
            assert!(geometric_ticks(&mut rng, 120.0) < MAX_EPISODE_TICKS);
        }
    }

    #[test]
    fn zero_weight_class_is_an_unreachable_state() {
        // `from_mix` with a zero-weight class: the identical-row
        // construction gives that state jump probability q_j = 0, so
        // it has zero stationary share and no walk ever visits it.
        let dummy = |name: &'static str, w: f64| {
            (
                crate::jobs::JobClass {
                    name,
                    spec: "REG:1",
                    duty: (0.1, 0.5),
                    pstates: &[0],
                },
                w,
            )
        };
        let mix = JobMix::new(vec![
            dummy("a", 0.5),
            dummy("disabled", 0.0),
            dummy("c", 0.5),
        ]);
        let model = EpisodeModel::from_mix(&mix, 0.2, 10.0, &[5.0, 5.0, 5.0], &[0, 0, 0]);
        // State 2 = the zero-weight class: zero stationary time share.
        assert_eq!(model.stationary_time_shares()[2], 0.0);
        for row in model.transitions() {
            assert_eq!(row[2], 0.0, "jump probability into a dead state");
        }
        for node in 0..8u32 {
            let mut walk = EpisodeWalk::new(&model, &mix, 77, node);
            for _ in 0..2000 {
                assert_ne!(
                    walk.next_tick().state,
                    2,
                    "node {node} visited a dead state"
                );
            }
            assert_eq!(walk.state_ticks()[2], 0);
            assert_eq!(walk.episode_counts()[2], 0);
        }
    }

    #[test]
    fn identical_rows_allow_self_transitions() {
        // The from_mix construction has a nonzero diagonal: an episode
        // can be followed by a fresh episode of the same state (new
        // dwell/duty/P-state draws). Verify the diagonal really is the
        // stationary jump distribution, i.e. rows are identical.
        let (_, model) = model();
        let rows = model.transitions();
        for row in rows.iter().skip(1) {
            assert_eq!(row, &rows[0], "from_mix rows must be identical");
        }
        assert!(
            rows[0].iter().all(|&p| p > 0.0),
            "every state (floor included) must self-transition with p > 0"
        );
    }

    #[test]
    fn walk_is_deterministic_per_seed_and_node() {
        let (mix, model) = model();
        let ticks = |seed: u64, node: u32| -> Vec<Tick> {
            let mut w = EpisodeWalk::new(&model, &mix, seed, node);
            (0..500).map(|_| w.next_tick()).collect()
        };
        assert_eq!(ticks(1, 3), ticks(1, 3));
        assert_ne!(ticks(1, 3), ticks(1, 4), "node streams must differ");
        assert_ne!(ticks(1, 3), ticks(2, 3), "seed streams must differ");
    }

    #[test]
    fn episodes_share_an_operating_point() {
        // With no self-transitions, consecutive same-state ticks always
        // belong to one episode: the P-state must be constant and the
        // ramped duty monotone within any same-state stretch.
        let mix = JobMix::taurus_haswell();
        let n = mix.classes().len() + 1;
        let mut rows = vec![vec![1.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        let model = EpisodeModel::new(
            vec!["floor", "idle", "low", "medium", "high", "peak"],
            vec![5.0, 10.0, 20.0, 30.0, 60.0, 120.0],
            rows,
            vec![0, 0, 1, 1, 2, 3],
        );
        let mut w = EpisodeWalk::new(&model, &mix, 9, 0);
        let mut prev: Option<Tick> = None;
        for _ in 0..3000 {
            let t = w.next_tick();
            if let Some(p) = prev {
                if p.state == t.state {
                    assert_eq!(p.pstate, t.pstate, "P-state changed mid-episode");
                    assert!(
                        t.duty >= p.duty - 1e-12,
                        "duty fell mid-ramp: {} -> {}",
                        p.duty,
                        t.duty
                    );
                }
            }
            if t.state == 0 {
                assert_eq!(t.duty, 0.0);
                assert_eq!(t.class, None);
            } else {
                assert_eq!(t.class, Some(t.state - 1));
                assert!((0.0..=1.0).contains(&t.duty));
            }
            prev = Some(t);
        }
    }

    #[test]
    fn empirical_time_shares_converge() {
        let (mix, model) = model();
        let n_states = model.n_states();
        let mut ticks = vec![0u64; n_states];
        for node in 0..24u32 {
            let mut w = EpisodeWalk::new(&model, &mix, 42, node);
            let mut local = vec![0u64; n_states];
            for _ in 0..3000 {
                let t = w.next_tick();
                local[t.state] += 1;
            }
            // The walk's own counters must agree with the tick stream.
            assert_eq!(local, w.state_ticks());
            for (a, b) in ticks.iter_mut().zip(&local) {
                *a += b;
            }
        }
        let total: u64 = ticks.iter().sum();
        for (i, &share) in model.stationary_time_shares().iter().enumerate() {
            let got = ticks[i] as f64 / total as f64;
            assert!(
                (got - share).abs() < 0.05,
                "state {i}: empirical {got} vs model {share}"
            );
        }
    }
}
